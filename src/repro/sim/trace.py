"""Execution traces: record what a simulation did, render it, replay it.

The paper's analysis leans on understanding *why* a scheduler won — which
jobs were deferred, what got preempted, how utilization evolved.  This
module captures a structured event trace from a simulation run and offers:

* JSON-lines round-tripping (``to_jsonl`` / ``from_jsonl``) so runs can be
  archived and diffed;
* a node-occupancy **Gantt chart** in plain text;
* a cluster **utilization timeline** for load analysis.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import SimulationError

#: Trace event kinds.
ARRIVAL = "arrival"
LAUNCH = "launch"
COMPLETION = "completion"
PREEMPTION = "preemption"
CULL = "cull"
FAILURE = "failure"
RESIZE = "resize"

_KINDS = (ARRIVAL, LAUNCH, COMPLETION, PREEMPTION, CULL, FAILURE, RESIZE)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event."""

    time: float
    kind: str
    job_id: str
    nodes: tuple[str, ...] = ()
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SimulationError(f"unknown trace event kind {self.kind!r}")


@dataclass
class ExecutionTrace:
    """An append-only log of simulation events."""

    events: list[TraceEvent] = field(default_factory=list)

    # -- recording -----------------------------------------------------------
    def record(self, time: float, kind: str, job_id: str,
               nodes: tuple[str, ...] = (), detail: str = "") -> None:
        self.events.append(TraceEvent(time, kind, job_id, tuple(nodes),
                                      detail))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_job(self, job_id: str) -> list[TraceEvent]:
        return [e for e in self.events if e.job_id == job_id]

    # -- serialization -----------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(asdict(e)) for e in self.events)

    @classmethod
    def from_jsonl(cls, text: str) -> "ExecutionTrace":
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            trace.record(raw["time"], raw["kind"], raw["job_id"],
                         tuple(raw.get("nodes", ())), raw.get("detail", ""))
        return trace

    # -- analyses -------------------------------------------------------------------
    def intervals(self) -> list[tuple[str, str, float, float]]:
        """Completed occupancy intervals: (job, node, start, end).

        A launch opens an interval on each node; the matching completion or
        preemption closes it.  A resize closes the running segment and
        opens a new one on the re-planned node set, so an elastic gang
        occupies exactly its current width at every instant.  Unclosed
        intervals are dropped.
        """
        open_runs: dict[str, tuple[float, tuple[str, ...]]] = {}
        out: list[tuple[str, str, float, float]] = []
        for e in self.events:
            if e.kind == LAUNCH:
                open_runs[e.job_id] = (e.time, e.nodes)
            elif e.kind == RESIZE:
                started = open_runs.pop(e.job_id, None)
                if started is not None:
                    start, nodes = started
                    for node in nodes:
                        out.append((e.job_id, node, start, e.time))
                open_runs[e.job_id] = (e.time, e.nodes)
            elif e.kind in (COMPLETION, PREEMPTION, FAILURE):
                started = open_runs.pop(e.job_id, None)
                if started is not None:
                    start, nodes = started
                    for node in nodes:
                        out.append((e.job_id, node, start, e.time))
        return out

    def utilization_timeline(self, total_nodes: int,
                             step_s: float) -> list[tuple[float, float]]:
        """(time, busy fraction) samples at ``step_s`` resolution."""
        if total_nodes <= 0 or step_s <= 0:
            raise SimulationError("total_nodes and step_s must be positive")
        intervals = self.intervals()
        if not intervals:
            return []
        end = max(e for _, _, _, e in intervals)
        samples = []
        t = 0.0
        while t <= end:
            busy = sum(1 for _, _, s, e in intervals if s <= t < e)
            samples.append((t, busy / total_nodes))
            t += step_s
        return samples

    def mean_utilization(self, total_nodes: int) -> float:
        """Node-seconds of work divided by (nodes x observed makespan)."""
        intervals = self.intervals()
        if not intervals:
            return 0.0
        start = min(s for _, _, s, _ in intervals)
        end = max(e for _, _, _, e in intervals)
        if end <= start:
            return 0.0
        work = sum(e - s for _, _, s, e in intervals)
        return work / (total_nodes * (end - start))

    def check_no_double_booking(self) -> None:
        """Raise :class:`SimulationError` if any node hosts two jobs at once.

        The strongest end-to-end invariant a scheduler trace can satisfy:
        for every node, the closed occupancy intervals never overlap.
        """
        per_node: dict[str, list[tuple[float, float, str]]] = {}
        for job_id, node, start, end in self.intervals():
            per_node.setdefault(node, []).append((start, end, job_id))
        for node, spans in per_node.items():
            spans.sort()
            for (s1, e1, j1), (s2, e2, j2) in zip(spans, spans[1:]):
                if s2 < e1 - 1e-9:
                    raise SimulationError(
                        f"node {node!r} double-booked: {j1} [{s1},{e1}) "
                        f"overlaps {j2} [{s2},{e2})")

    def gantt(self, nodes: list[str], quantum_s: float,
              width: int = 60) -> str:
        """Plain-text Gantt chart: one row per node, one column per quantum.

        Each cell shows the first character of the occupying job's id
        (``.`` when idle).  Useful in examples and debugging.
        """
        if quantum_s <= 0:
            raise SimulationError("quantum_s must be positive")
        intervals = self.intervals()
        end = max((e for _, _, _, e in intervals), default=0.0)
        columns = min(width, max(1, int(end / quantum_s + 0.999)))
        label_w = max((len(n) for n in nodes), default=4)
        lines = []
        for node in nodes:
            row = []
            for c in range(columns):
                t = (c + 0.5) * quantum_s
                cell = "."
                for job_id, inode, s, e in intervals:
                    if inode == node and s <= t < e:
                        cell = job_id[0]
                        break
                row.append(cell)
            lines.append(f"{node:<{label_w}} |{''.join(row)}|")
        scale = (f"{'':<{label_w}}  0s .. {columns * quantum_s:.0f}s "
                 f"({quantum_s:.0f}s/col)")
        return "\n".join(lines + [scale])
