"""Dense/sparse equivalence: export, presolve, and end-to-end solves.

The dense ``to_standard_arrays`` path is kept purely as a test oracle for
the CSR export; these differential tests are what make that oracle useful.
"""

import random

import numpy as np
import pytest

from repro.solver.branch_bound import BranchBoundOptions, BranchBoundSolver
from repro.solver.model import Model
from repro.solver.presolve import presolve, presolve_sparse
from repro.solver.scipy_backend import ScipyMILPSolver, scipy_available


def random_model(seed: int) -> Model:
    """A small random MILP mixing variable domains and constraint senses."""
    rng = random.Random(seed)
    m = Model(f"rand{seed}")
    n = rng.randint(3, 8)
    xs = []
    for i in range(n):
        kind = rng.choice(["binary", "integer", "continuous"])
        if kind == "binary":
            xs.append(m.add_binary(f"x{i}"))
        elif kind == "integer":
            xs.append(m.add_integer(f"x{i}", lb=0, ub=rng.randint(1, 6)))
        else:
            xs.append(m.add_continuous(f"x{i}", lb=0.0,
                                       ub=float(rng.randint(1, 6))))
    for c in range(rng.randint(2, 6)):
        terms = rng.sample(xs, rng.randint(1, min(3, n)))
        expr = sum((rng.randint(1, 4) * t for t in terms[1:]),
                   rng.randint(1, 4) * terms[0])
        sense = rng.choice(["<=", ">=", "<="])
        rhs = rng.randint(2, 10) if sense == "<=" else rng.randint(0, 2)
        m.add_constraint(expr, sense, rhs, name=f"c{c}")
    obj = sum((rng.randint(1, 5) * x for x in xs[1:]),
              rng.randint(1, 5) * xs[0])
    m.set_objective(obj + rng.randint(0, 3), sense="maximize")
    return m


def assert_arrays_equal(dense, other):
    assert np.array_equal(dense.c, other.c)
    assert dense.obj_constant == other.obj_constant
    assert dense.obj_sign == other.obj_sign
    assert np.array_equal(dense.a_ub, other.a_ub)
    assert np.array_equal(dense.b_ub, other.b_ub)
    assert np.array_equal(dense.a_eq, other.a_eq)
    assert np.array_equal(dense.b_eq, other.b_eq)
    assert np.array_equal(dense.lb, other.lb)
    assert np.array_equal(dense.ub, other.ub)
    assert np.array_equal(dense.integrality, other.integrality)


@pytest.mark.parametrize("seed", range(20))
def test_sparse_export_matches_dense_oracle(seed):
    m = random_model(seed)
    assert_arrays_equal(m.to_standard_arrays(), m.to_sparse_arrays().to_standard())


@pytest.mark.parametrize("seed", range(20))
def test_presolve_sparse_matches_dense(seed):
    m = random_model(seed)
    d = presolve(m.to_standard_arrays())
    s = presolve_sparse(m.to_sparse_arrays())
    assert d.infeasible == s.infeasible
    assert d.rows_dropped == s.rows_dropped
    assert d.bounds_tightened == s.bounds_tightened
    assert d.passes == s.passes
    if not d.infeasible:
        assert_arrays_equal(d.arrays, s.arrays.to_standard())


@pytest.mark.parametrize("seed", range(12))
def test_pure_backend_same_objective_both_paths(seed):
    m = random_model(seed)
    sparse = BranchBoundSolver(BranchBoundOptions(arrays="sparse")).solve(m)
    dense = BranchBoundSolver(BranchBoundOptions(arrays="dense")).solve(m)
    assert sparse.status == dense.status
    if sparse.status.has_solution:
        assert sparse.objective == pytest.approx(dense.objective, abs=1e-7)
        assert m.check_feasible(sparse.x)


@pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
@pytest.mark.parametrize("seed", range(12))
def test_scipy_backend_same_objective_both_paths(seed):
    m = random_model(seed)
    sparse = ScipyMILPSolver(use_sparse=True).solve(m)
    dense = ScipyMILPSolver(use_sparse=False).solve(m)
    assert sparse.status == dense.status
    if sparse.status.has_solution:
        assert sparse.objective == pytest.approx(dense.objective, abs=1e-6)


@pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
@pytest.mark.parametrize("seed", range(8))
def test_backends_agree_across_implementations(seed):
    m = random_model(seed)
    pure = BranchBoundSolver().solve(m)
    scipy_res = ScipyMILPSolver().solve(m)
    assert pure.status.has_solution == scipy_res.status.has_solution
    if pure.status.has_solution:
        assert pure.objective == pytest.approx(scipy_res.objective, abs=1e-5)


def test_sparse_cache_invalidation():
    m = random_model(0)
    first = m.to_sparse_arrays()
    assert m.to_sparse_arrays() is first  # cached
    v = m.add_continuous("extra", lb=0.0, ub=1.0)
    m.add_constraint(1 * v, "<=", 1)
    rebuilt = m.to_sparse_arrays()
    assert rebuilt is not first
    assert_arrays_equal(m.to_standard_arrays(), rebuilt.to_standard())
