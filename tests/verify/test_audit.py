"""Schedule auditor: clean cycles audit clean, tampered ones are caught."""

import dataclasses

import pytest

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.errors import ReproError
from repro.solver import BranchBoundSolver, SolveStatus
from repro.solver.result import MILPResult
from repro.strl import SpaceOption
from repro.valuefn import StepValue
from repro.verify import AuditViolation, audit_cycle
from repro.verify.instance import FuzzInstance, FuzzJob, build_instance


def spec(**kw):
    defaults = dict(
        racks=2, nodes_per_rack=2, quantum_s=10.0, plan_ahead_quanta=3,
        jobs=(FuzzJob("a", k=2, duration_q=1, value=9.0),
              FuzzJob("b", k=2, duration_q=2, value=6.0, rack=1,
                      fallback=True)))
    defaults.update(kw)
    return FuzzInstance(**defaults)


def solved_instance(instance=None):
    state, exprs, compiled = build_instance(instance or spec())
    assert compiled is not None
    res = BranchBoundSolver().solve(compiled.model)
    assert res.status == SolveStatus.OPTIMAL
    return state, exprs, compiled, res


class TestCleanAudit:
    def test_clean_solve_audits_clean(self):
        state, exprs, compiled, res = solved_instance()
        report = audit_cycle(state, compiled, res, exprs, quantum_s=10.0)
        assert report.ok
        assert report.placements > 0
        assert report.quanta_checked > 0
        assert report.objective_recomputed == pytest.approx(res.objective)
        report.raise_if_failed()

    def test_busy_cluster_audits_clean(self):
        # Pre-existing load shrinks the supply the auditor recomputes.
        state, exprs, compiled, res = solved_instance(
            spec(busy=((2, 2),)))
        report = audit_cycle(state, compiled, res, exprs, quantum_s=10.0)
        assert report.ok

    def test_no_solution_audits_vacuously(self):
        state, exprs, compiled, _ = solved_instance()
        import math
        empty = MILPResult(SolveStatus.INFEASIBLE, None, math.nan)
        report = audit_cycle(state, compiled, empty, exprs, quantum_s=10.0)
        assert report.ok
        assert report.placements == 0

    def test_solution_status_without_point_flagged(self):
        state, exprs, compiled, res = solved_instance()
        bad = dataclasses.replace(res, x=None)
        report = audit_cycle(state, compiled, bad, exprs, quantum_s=10.0)
        assert [v.kind for v in report.violations] == ["audit.missing-point"]


class TestTamperDetection:
    def _first_active_record(self, compiled, x):
        for rec in compiled.leaf_records:
            if x[rec.indicator.index] > 0.5:
                return rec
        pytest.fail("no active leaf in the solution")

    def test_bumped_partition_count_detected(self):
        # Give an inactive leaf phantom nodes: shape and capacity both
        # break, and the recomputed objective no longer matches.
        state, exprs, compiled, res = solved_instance()
        x = res.x.copy()
        for rec in compiled.leaf_records:
            if x[rec.indicator.index] <= 0.5:
                pid, var = next(iter(rec.partition_vars.items()))
                x[var.index] += len(
                    compiled.partitioning.partitions[pid].nodes) + 1
                break
        else:
            pytest.fail("no inactive leaf to tamper with")
        bad = dataclasses.replace(res, x=x)
        report = audit_cycle(state, compiled, bad, exprs, quantum_s=10.0)
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert ("audit.nck-orphan" in kinds) or ("audit.lnck-orphan" in kinds)
        assert "audit.partition-overflow" in kinds

    def test_dropped_node_breaks_gang_shape(self):
        # Steal one node from an active nCk leaf: k-shape violation.
        state, exprs, compiled, res = solved_instance()
        x = res.x.copy()
        rec = self._first_active_record(compiled, x)
        for var in rec.partition_vars.values():
            if x[var.index] >= 1.0:
                x[var.index] -= 1.0
                break
        bad = dataclasses.replace(res, x=x)
        report = audit_cycle(state, compiled, bad, exprs, quantum_s=10.0)
        kinds = {v.kind for v in report.violations}
        assert kinds & {"audit.nck-shape", "audit.objective-phantom",
                        "audit.lnck-shape"}

    def test_objective_lie_detected(self):
        state, exprs, compiled, res = solved_instance()
        lied = dataclasses.replace(res, objective=res.objective + 5.0)
        report = audit_cycle(state, compiled, lied, exprs, quantum_s=10.0)
        assert any(v.kind == "audit.objective-phantom"
                   for v in report.violations)

    def test_raise_if_failed_carries_all_violations(self):
        state, exprs, compiled, res = solved_instance()
        lied = dataclasses.replace(res, objective=res.objective + 5.0)
        report = audit_cycle(state, compiled, lied, exprs, quantum_s=10.0)
        with pytest.raises(AuditViolation) as exc:
            report.raise_if_failed()
        assert exc.value.violations == report.violations
        assert isinstance(exc.value, ReproError)
        assert "audit.objective-phantom" in str(exc.value)


class TestAuditModePipeline:
    """audit_mode=True runs the oracles inside every global cycle."""

    def make_sched(self, **overrides):
        cluster = Cluster.build(racks=2, nodes_per_rack=2)
        cfg = TetriSchedConfig(quantum_s=10.0, cycle_s=10.0,
                               plan_ahead_s=40.0, backend="pure",
                               rel_gap=1e-6, audit_mode=True, **overrides)
        return cluster, TetriSched(cluster, cfg)

    def submit(self, cluster, sched, job_id="j1", k=2):
        sched.submit(JobRequest(
            job_id=job_id,
            options=(SpaceOption(cluster.node_names, k=k, duration_s=20.0),),
            value_fn=StepValue(100.0, 100.0),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
            deadline=100.0))

    def test_cycle_runs_audit_stage(self):
        cluster, sched = self.make_sched()
        self.submit(cluster, sched)
        res = sched.run_cycle(0.0)
        assert len(res.allocations) == 1
        assert "audit" in res.stats.stage_timings

    def test_audit_off_by_default(self):
        cluster = Cluster.build(racks=2, nodes_per_rack=2)
        sched = TetriSched(cluster, TetriSchedConfig(
            quantum_s=10.0, cycle_s=10.0, plan_ahead_s=40.0, backend="pure"))
        self.submit(cluster, sched)
        res = sched.run_cycle(0.0)
        assert "audit" not in res.stats.stage_timings

    def test_multi_cycle_with_running_jobs_audits_clean(self):
        # The second cycle audits against a non-empty ledger (j1 running),
        # exercising the independent busy-quanta recomputation.
        cluster, sched = self.make_sched()
        self.submit(cluster, sched, "j1", k=2)
        sched.run_cycle(0.0)
        self.submit(cluster, sched, "j2", k=2)
        res = sched.run_cycle(10.0)
        assert "audit" in res.stats.stage_timings
        assert len(res.allocations) == 1
