"""Tests for the EDF baseline scheduler."""

import pytest

from repro.baselines import EdfScheduler
from repro.cluster import Cluster
from repro.errors import SchedulerError
from repro.sim import Job, Simulation, UnconstrainedType

UN = UnconstrainedType()


def make_edf(nodes=4, **kw):
    cluster = Cluster.build(racks=1, nodes_per_rack=nodes)
    return cluster, EdfScheduler(cluster, cycle_s=10.0, **kw)


class TestOrdering:
    def test_earliest_deadline_wins_contention(self):
        cluster, edf = make_edf(nodes=4)
        late = Job("late", UN, k=4, base_runtime_s=20, submit_time=0.0,
                   deadline=200.0)
        urgent = Job("urgent", UN, k=4, base_runtime_s=20, submit_time=0.0,
                     deadline=50.0)
        edf.submit(late, accepted=True, now=0.0)
        edf.submit(urgent, accepted=True, now=0.0)
        decisions = edf.cycle(0.0)
        assert [a.job_id for a in decisions.allocations] == ["urgent"]

    def test_fifo_tie_break(self):
        cluster, edf = make_edf(nodes=4)
        a = Job("a", UN, k=4, base_runtime_s=20, submit_time=0.0,
                deadline=100.0)
        b = Job("b", UN, k=4, base_runtime_s=20, submit_time=0.0,
                deadline=100.0)
        edf.submit(a, accepted=True, now=0.0)
        edf.submit(b, accepted=True, now=0.0)
        decisions = edf.cycle(0.0)
        assert [x.job_id for x in decisions.allocations] == ["a"]

    def test_slo_before_best_effort(self):
        cluster, edf = make_edf(nodes=4)
        be = Job("be", UN, k=4, base_runtime_s=20, submit_time=0.0)
        slo = Job("slo", UN, k=4, base_runtime_s=20, submit_time=0.0,
                  deadline=100.0)
        edf.submit(be, accepted=False, now=0.0)
        edf.submit(slo, accepted=True, now=0.0)
        decisions = edf.cycle(0.0)
        assert [x.job_id for x in decisions.allocations] == ["slo"]


class TestCulling:
    def test_hopeless_job_culled(self):
        cluster, edf = make_edf()
        dead = Job("dead", UN, k=2, base_runtime_s=100, submit_time=0.0,
                   deadline=50.0)
        edf.submit(dead, accepted=False, now=0.0)
        decisions = edf.cycle(0.0)
        assert decisions.culled == ["dead"]
        assert edf.active_jobs == 0

    def test_blind_mode_runs_hopeless_jobs(self):
        cluster, edf = make_edf(drop_hopeless=False)
        dead = Job("dead", UN, k=2, base_runtime_s=100, submit_time=0.0,
                   deadline=50.0)
        edf.submit(dead, accepted=False, now=0.0)
        decisions = edf.cycle(0.0)
        assert decisions.culled == []
        assert len(decisions.allocations) == 1


class TestLifecycle:
    def test_too_big_job_rejected(self):
        cluster, edf = make_edf(nodes=2)
        with pytest.raises(SchedulerError):
            edf.submit(Job("x", UN, k=3, base_runtime_s=10, submit_time=0.0),
                       accepted=False, now=0.0)

    def test_finish_unknown_raises(self):
        cluster, edf = make_edf()
        with pytest.raises(SchedulerError):
            edf.job_finished("ghost", 0.0)

    def test_end_to_end_simulation(self):
        cluster, edf = make_edf(nodes=4)
        jobs = [
            Job("s1", UN, k=2, base_runtime_s=20, submit_time=0.0,
                deadline=100.0),
            Job("s2", UN, k=2, base_runtime_s=20, submit_time=0.0,
                deadline=60.0),
            Job("b1", UN, k=2, base_runtime_s=10, submit_time=5.0),
        ]
        res = Simulation(cluster, edf, jobs).run()
        assert res.metrics.slo_total_pct == 100.0
        assert all(o.completed for o in res.outcomes.values())
