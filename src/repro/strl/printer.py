"""Render STRL expressions as s-expression text.

The textual form round-trips through :mod:`repro.strl.parser`:

.. code-block:: text

    (max (nCk (set M1 M2) :k 2 :start 0 :dur 2 :v 4)
         (nCk (set M1 M2 M3 M4) :k 2 :start 0 :dur 3 :v 3))
"""

from __future__ import annotations

from repro.errors import StrlError
from repro.strl.ast import (Barrier, ElasticNCk, LnCk, Max, Min, NCk, Scale,
                            StrlNode, Sum)


def _fmt_num(x: float) -> str:
    """Format a value without a trailing ``.0`` when it is integral."""
    if float(x).is_integer():
        return str(int(x))
    return repr(float(x))


def to_text(expr: StrlNode, indent: int | None = None) -> str:
    """Serialize ``expr``; pass ``indent`` for a pretty multi-line form."""
    if indent is None:
        return _to_text_flat(expr)
    return _to_text_pretty(expr, 0, indent)


def _leaf_text(tag: str, leaf) -> str:
    names = " ".join(sorted(leaf.nodes))
    return (f"({tag} (set {names}) :k {leaf.k} :start {leaf.start} "
            f":dur {leaf.duration} :v {_fmt_num(leaf.value)})")


def _elastic_text(leaf: ElasticNCk) -> str:
    names = " ".join(sorted(leaf.nodes))
    durs = " ".join(str(d) for d in leaf.durations)
    vals = " ".join(_fmt_num(v) for v in leaf.value_per_width)
    return (f"(elastic (set {names}) :min {leaf.min_width} "
            f":max {leaf.max_width} :start {leaf.start} "
            f":durs ({durs}) :vs ({vals}))")


def _to_text_flat(expr: StrlNode) -> str:
    if isinstance(expr, NCk):
        return _leaf_text("nCk", expr)
    if isinstance(expr, LnCk):
        return _leaf_text("LnCk", expr)
    if isinstance(expr, ElasticNCk):
        return _elastic_text(expr)
    if isinstance(expr, Max):
        return "(max " + " ".join(_to_text_flat(c) for c in expr.subexprs) + ")"
    if isinstance(expr, Min):
        return "(min " + " ".join(_to_text_flat(c) for c in expr.subexprs) + ")"
    if isinstance(expr, Sum):
        return "(sum " + " ".join(_to_text_flat(c) for c in expr.subexprs) + ")"
    if isinstance(expr, Scale):
        return f"(scale {_fmt_num(expr.factor)} {_to_text_flat(expr.subexpr)})"
    if isinstance(expr, Barrier):
        return (f"(barrier {_fmt_num(expr.threshold)} "
                f"{_to_text_flat(expr.subexpr)})")
    raise StrlError(f"cannot print {expr!r}")


def _to_text_pretty(expr: StrlNode, depth: int, indent: int) -> str:
    pad = " " * (depth * indent)
    if isinstance(expr, (NCk, LnCk, ElasticNCk)):
        return pad + _to_text_flat(expr)
    child_pad = "\n"
    if isinstance(expr, (Max, Min, Sum)):
        tag = type(expr).__name__.lower()
        body = child_pad.join(
            _to_text_pretty(c, depth + 1, indent) for c in expr.subexprs)
        return f"{pad}({tag}\n{body})"
    if isinstance(expr, Scale):
        body = _to_text_pretty(expr.subexpr, depth + 1, indent)
        return f"{pad}(scale {_fmt_num(expr.factor)}\n{body})"
    if isinstance(expr, Barrier):
        body = _to_text_pretty(expr.subexpr, depth + 1, indent)
        return f"{pad}(barrier {_fmt_num(expr.threshold)}\n{body})"
    raise StrlError(f"cannot print {expr!r}")
