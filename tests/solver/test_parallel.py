"""Parallel + memoized component solving: fingerprints, cache, pool.

The load-bearing invariant throughout: however a component's result is
produced — sequential in-process, worker pool, or cache replay — the
recombined solution and objective are bit-equal to the sequential solve.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (BranchBoundSolver, ComponentCache, Model,
                          SolveOptions, WorkerPool, component_fingerprint,
                          solve_decomposed)
from repro.solver.decompose import decompose
from repro.solver.parallel import (MIN_COMPONENT_BUDGET_S, best_warm_start,
                                   carve_time_budgets, get_pool,
                                   shutdown_pools)
from repro.solver.result import SolveStatus


def knapsack(capacity: int = 5, values=(10, 13, 7)) -> Model:
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(3)]
    m.add_constraint(3 * xs[0] + 4 * xs[1] + 2 * xs[2], "<=", capacity)
    m.set_objective(sum(v * x for v, x in zip(values, xs)),
                    sense="maximize")
    return m


def multi_block(blocks: int = 3) -> Model:
    """``blocks`` independent knapsacks with distinct values in one model."""
    m = Model("blocks")
    for b in range(blocks):
        xs = [m.add_binary(f"b{b}x{i}") for i in range(3)]
        m.add_constraint(3 * xs[0] + 4 * xs[1] + 2 * xs[2], "<=", 5,
                         name=f"cap{b}")
    m.set_objective(
        sum((10 + b + 0.13 * i) * m.variables[3 * b + i]
            for b in range(blocks) for i in range(3)),
        sense="maximize")
    return m


class TestFingerprint:
    def test_identical_models_share_both_fingerprints(self):
        fp1, fp2 = (component_fingerprint(knapsack()) for _ in range(2))
        assert fp1.exact == fp2.exact
        assert fp1.structural == fp2.structural

    def test_rhs_change_breaks_exact_keeps_structural(self):
        fp1 = component_fingerprint(knapsack(capacity=5))
        fp2 = component_fingerprint(knapsack(capacity=4))
        assert fp1.exact != fp2.exact
        assert fp1.structural == fp2.structural

    def test_coefficient_change_breaks_both(self):
        fp1 = component_fingerprint(knapsack(values=(10, 13, 7)))
        fp2 = component_fingerprint(knapsack(values=(10, 13, 8)))
        assert fp1.exact != fp2.exact
        assert fp1.structural != fp2.structural

    def test_variable_names_do_not_matter(self):
        m1 = knapsack()
        m2 = Model("renamed")
        ys = [m2.add_binary(f"y{i}") for i in range(3)]
        m2.add_constraint(3 * ys[0] + 4 * ys[1] + 2 * ys[2], "<=", 5)
        m2.set_objective(10 * ys[0] + 13 * ys[1] + 7 * ys[2],
                         sense="maximize")
        assert (component_fingerprint(m1).exact
                == component_fingerprint(m2).exact)


class TestComponentCache:
    def test_exact_hit_replays_result_bit_equal(self):
        cache = ComponentCache()
        m = knapsack()
        assert cache.lookup(m).result is None  # cold
        res = BranchBoundSolver().solve(m)
        cache.store(m, res)
        hit = cache.lookup(knapsack())  # numerically identical fresh model
        assert hit.result is not None
        assert hit.result.objective == res.objective
        assert np.array_equal(hit.result.x, res.x)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hit_returns_copy_not_alias(self):
        cache = ComponentCache()
        m = knapsack()
        cache.store(m, BranchBoundSolver().solve(m))
        hit = cache.lookup(m)
        hit.result.x[0] = 99.0
        assert cache.lookup(m).result.x[0] != 99.0

    def test_near_miss_donates_feasible_warm_start(self):
        cache = ComponentCache()
        m = knapsack(capacity=5)
        cache.store(m, BranchBoundSolver().solve(m))
        # Supply loosened: same structure, new rhs. Old optimum (items 0+2,
        # weight 5) is still feasible under capacity 6 -> warm seed.
        hit = cache.lookup(knapsack(capacity=6))
        assert hit.result is None
        assert hit.warm_start is not None
        assert knapsack(capacity=6).check_feasible(hit.warm_start)
        assert cache.stats.warm_hits == 1

    def test_near_miss_with_infeasible_seed_is_plain_miss(self):
        cache = ComponentCache()
        m = knapsack(capacity=5)
        cache.store(m, BranchBoundSolver().solve(m))
        # Tightened to 4: the cached optimum (weight 5) no longer fits.
        hit = cache.lookup(knapsack(capacity=4))
        assert hit.result is None and hit.warm_start is None
        assert cache.stats.warm_hits == 0

    def test_supply_change_invalidates_exact_entry(self):
        """A mid-window supply change alters rhs bytes -> no stale replay."""
        cache = ComponentCache()
        m5 = knapsack(capacity=5)
        cache.store(m5, BranchBoundSolver().solve(m5))
        assert cache.lookup(knapsack(capacity=4)).result is None
        assert cache.lookup(knapsack(capacity=5)).result is not None

    def test_solutionless_results_are_not_stored(self):
        cache = ComponentCache()
        m = knapsack()
        infeasible = Model()
        x = infeasible.add_binary("x")
        infeasible.add_constraint(x, ">=", 2)
        infeasible.set_objective(x, sense="maximize")
        cache.store(infeasible, BranchBoundSolver().solve(infeasible))
        assert len(cache) == 0
        cache.store(m, BranchBoundSolver().solve(m))
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = ComponentCache(max_entries=2)
        models = [knapsack(capacity=c) for c in (5, 6, 7)]
        for m in models:
            cache.store(m, BranchBoundSolver().solve(m))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(knapsack(capacity=5)).result is None  # evicted
        assert cache.lookup(knapsack(capacity=7)).result is not None

    def test_clear(self):
        cache = ComponentCache()
        m = knapsack()
        cache.store(m, BranchBoundSolver().solve(m))
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup(m).result is None


class TestBestWarmStart:
    def test_picks_best_feasible_candidate(self):
        m = knapsack()
        good = np.array([1.0, 0.0, 1.0])  # value 17
        ok = np.array([0.0, 0.0, 1.0])    # value 7
        bad = np.array([1.0, 1.0, 1.0])   # infeasible
        assert best_warm_start(m, ok, bad, good) is good

    def test_all_infeasible_returns_none(self):
        m = knapsack()
        assert best_warm_start(m, np.ones(3), None) is None


class TestBudgets:
    def test_unlimited_stays_unlimited(self):
        assert carve_time_budgets(None, [5, 10]) == [None, None]

    def test_proportional_split_with_floor(self):
        budgets = carve_time_budgets(1.0, [90, 10])
        assert budgets[0] == pytest.approx(0.9)
        assert budgets[1] == pytest.approx(0.1)
        tiny = carve_time_budgets(0.1, [99, 1])
        assert tiny[1] == MIN_COMPONENT_BUDGET_S

    def test_empty_components(self):
        assert carve_time_budgets(1.0, []) == []

    def test_hundred_tiny_components_never_oversubscribe(self):
        # Regression: the old proportional carve topped every small
        # share up to MIN_COMPONENT_BUDGET_S without renormalizing, so
        # 100 tiny components were handed 5s of a 1s budget.  The
        # water-filled split degrades to even shares instead.
        budgets = carve_time_budgets(1.0, [1] * 100)
        assert sum(budgets) <= 1.0 + 1e-9
        assert all(b == pytest.approx(0.01) for b in budgets)

    def test_floor_topups_come_out_of_the_large_shares(self):
        budgets = carve_time_budgets(1.0, [997, 1, 1, 1])
        assert budgets[1:] == [MIN_COMPONENT_BUDGET_S] * 3
        assert budgets[0] == pytest.approx(1.0 - 3 * MIN_COMPONENT_BUDGET_S)
        assert sum(budgets) <= 1.0 + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(total=st.floats(0.01, 10.0),
           sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=120))
    def test_sum_never_exceeds_total(self, total, sizes):
        budgets = carve_time_budgets(total, sizes)
        assert len(budgets) == len(sizes)
        assert all(b > 0.0 for b in budgets)
        assert sum(budgets) <= total + 1e-9


class TestWorkerPool:
    def teardown_method(self):
        shutdown_pools()

    def test_parallel_solve_bit_equal_to_sequential(self):
        m = multi_block(3)
        decomp = decompose(m)
        backend = BranchBoundSolver()
        seq = solve_decomposed(decomp, backend)
        par = solve_decomposed(decompose(m), backend,
                               SolveOptions(workers=2))
        assert par.objective == seq.objective  # bit-equal, not approx
        assert np.array_equal(par.x, seq.x)
        assert par.status == SolveStatus.OPTIMAL

    def test_pool_reused_across_solves(self):
        pool1 = get_pool(2)
        assert get_pool(2) is pool1
        m = multi_block(2)
        r1 = pool1.solve_many(
            BranchBoundSolver(),
            [(i, c.model, SolveOptions()) for i, c in
             enumerate(decompose(m).components)])
        r2 = pool1.solve_many(
            BranchBoundSolver(),
            [(i, c.model, SolveOptions()) for i, c in
             enumerate(decompose(m).components)])
        assert r1 is not None and r2 is not None
        assert sorted(r1) == sorted(r2) == [0, 1]

    def test_broken_pool_falls_back_to_sequential(self):
        class Unpicklable(BranchBoundSolver):
            """Backend the pool cannot ship (closure attribute)."""
        Unpicklable.__qualname__ = "no.such.attr"  # defeat pickling

        backend = Unpicklable()
        m = multi_block(2)
        res = solve_decomposed(decompose(m), backend,
                               SolveOptions(workers=2))
        # The cycle still completes with the correct answer.
        seq = solve_decomposed(decompose(m), BranchBoundSolver())
        assert res.objective == pytest.approx(seq.objective)

    def test_rejects_fewer_than_two_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(1)


class TestDecomposedCacheIntegration:
    def test_cached_cycle_is_bit_equal_and_solver_free(self):
        m = multi_block(3)
        cache = ComponentCache()
        backend = BranchBoundSolver()
        cold = solve_decomposed(decompose(m), backend,
                                SolveOptions(component_cache=cache))
        warm = solve_decomposed(decompose(m), backend,
                                SolveOptions(component_cache=cache))
        assert warm.objective == cold.objective
        assert np.array_equal(warm.x, cold.x)
        assert cold.stats["cache_hits"] == 0
        assert warm.stats["cache_hits"] == 3
        assert warm.nodes == cold.nodes  # replayed stats, no new search

    def test_cache_warm_start_on_changed_supply(self):
        """Supply shift mid-window: near-miss seeds, never stale replays."""
        cache = ComponentCache()
        backend = BranchBoundSolver()
        m1 = multi_block(2)
        solve_decomposed(decompose(m1), backend,
                         SolveOptions(component_cache=cache))
        # Loosen one block's capacity: that block near-misses (warm seed),
        # the untouched block exact-hits.
        m2 = Model("blocks")
        for b in range(2):
            xs = [m2.add_binary(f"b{b}x{i}") for i in range(3)]
            m2.add_constraint(3 * xs[0] + 4 * xs[1] + 2 * xs[2], "<=",
                              5 if b == 0 else 6, name=f"cap{b}")
        m2.set_objective(
            sum((10 + b + 0.13 * i) * m2.variables[3 * b + i]
                for b in range(2) for i in range(3)),
            sense="maximize")
        res = solve_decomposed(decompose(m2), backend,
                               SolveOptions(component_cache=cache))
        assert res.stats["cache_hits"] == 1
        assert res.stats["cache_warm_hits"] == 1
        # Correctness: matches an uncached solve of the new model.
        ref = solve_decomposed(decompose(m2), BranchBoundSolver())
        assert res.objective == pytest.approx(ref.objective)
