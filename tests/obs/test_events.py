"""Tests for JSONL event emission, validation and round-tripping."""

import io

import pytest

from repro.obs import (JsonlSink, ObsEventError, Registry, iter_kinds,
                       read_jsonl, read_jsonl_file, validate_event)


@pytest.fixture()
def registry():
    sink = JsonlSink()
    return Registry(enabled=True, sink=sink), sink


class TestEmission:
    def test_envelope_and_payload(self, registry):
        reg, sink = registry
        reg.emit("solver.solve", objective=1.5, nodes=3)
        reg.emit("sim.cycle", cycle=0)
        assert len(sink) == 2
        first, second = sink.records
        assert first["kind"] == "solver.solve"
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["t"] >= 0.0
        assert first["objective"] == 1.5 and first["nodes"] == 3
        for record in sink.records:
            validate_event(record)

    def test_disabled_emits_nothing(self):
        sink = JsonlSink()
        reg = Registry(enabled=False, sink=sink)
        reg.emit("solver.solve", objective=1.0)
        assert len(sink) == 0

    def test_no_sink_is_noop(self):
        Registry(enabled=True).emit("solver.solve")  # must not raise

    def test_eager_stream(self):
        stream = io.StringIO()
        sink = JsonlSink(stream=stream)
        reg = Registry(enabled=True, sink=sink)
        reg.emit("a")
        reg.emit("b")
        assert stream.getvalue().count("\n") == 2


class TestRoundTrip:
    def test_to_jsonl_and_back(self, registry):
        reg, sink = registry
        reg.emit("solver.incumbent", source="rounding", gap=0.25)
        reg.emit("solver.solve", status="optimal")
        records = read_jsonl(sink.to_jsonl())
        assert records == sink.records
        assert iter_kinds(records) == {"solver.incumbent": 1,
                                       "solver.solve": 1}

    def test_dump_and_read_file(self, registry, tmp_path):
        reg, sink = registry
        reg.emit("sim.cycle", cycle=0, launched=2)
        path = tmp_path / "profile.jsonl"
        sink.dump(path)
        records = read_jsonl_file(path)
        assert records == sink.records

    def test_blank_lines_skipped(self):
        text = '{"kind": "a", "seq": 1, "t": 0.0}\n\n'
        assert len(read_jsonl(text)) == 1


class TestValidation:
    def test_missing_field(self):
        with pytest.raises(ObsEventError, match="missing required field"):
            validate_event({"kind": "a", "seq": 1})

    def test_wrong_type(self):
        with pytest.raises(ObsEventError, match="expected"):
            validate_event({"kind": "a", "seq": "one", "t": 0.0})

    def test_empty_kind(self):
        with pytest.raises(ObsEventError, match="non-empty"):
            validate_event({"kind": "", "seq": 1, "t": 0.0})

    def test_not_an_object(self):
        with pytest.raises(ObsEventError, match="JSON object"):
            validate_event([1, 2, 3])

    def test_invalid_json_line(self):
        with pytest.raises(ObsEventError, match="line 1"):
            read_jsonl("{not json}")

    def test_read_jsonl_validates(self):
        with pytest.raises(ObsEventError):
            read_jsonl('{"seq": 1, "t": 0.0}')
        assert read_jsonl('{"seq": 1, "t": 0.0}', validate=False)
