"""Cluster model: nodes, racks, attributes, partitions, availability."""

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.partitions import Partition, Partitioning
from repro.cluster.state import ClusterState, RunningAllocation

__all__ = ["Cluster", "ClusterState", "Node", "Partition", "Partitioning",
           "RunningAllocation"]
