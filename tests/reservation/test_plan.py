"""Tests for the reservation capacity ledger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReservationError
from repro.reservation import ReservationPlan


class TestBasics:
    def test_validation(self):
        with pytest.raises(ReservationError):
            ReservationPlan(0)
        with pytest.raises(ReservationError):
            ReservationPlan(4, step_s=0)

    def test_reserve_and_query(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 2, 0.0, 20.0)
        assert plan.reserved_at(0.0) == 2
        assert plan.reserved_at(15.0) == 2
        assert plan.reserved_at(20.0) == 0
        assert plan.headroom(0.0, 20.0) == 2

    def test_overcommit_rejected(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 3, 0.0, 20.0)
        with pytest.raises(ReservationError):
            plan.reserve("j2", 2, 10.0, 30.0)

    def test_duplicate_rejected(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 1, 0.0, 10.0)
        with pytest.raises(ReservationError):
            plan.reserve("j1", 1, 50.0, 60.0)

    def test_snapping_is_conservative(self):
        plan = ReservationPlan(4, step_s=10)
        # [5, 15) covers steps 0 and 1 after snapping outward.
        plan.reserve("j1", 4, 5.0, 15.0)
        assert plan.reserved_at(0.0) == 4
        assert plan.reserved_at(10.0) == 4
        assert not plan.fits(1, 0.0, 10.0)

    def test_window_accessor(self):
        plan = ReservationPlan(4, step_s=10)
        w = plan.reserve("j1", 2, 10.0, 20.0)
        assert plan.window_of("j1") == w
        assert w.duration_s == 20.0
        with pytest.raises(ReservationError):
            plan.window_of("ghost")


class TestFindEarliestStart:
    def test_empty_plan_starts_at_earliest(self):
        plan = ReservationPlan(4, step_s=10)
        assert plan.find_earliest_start(2, 20.0, 0.0, 100.0) == 0.0

    def test_skips_busy_region(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 4, 0.0, 30.0)
        assert plan.find_earliest_start(1, 10.0, 0.0, 100.0) == 30.0

    def test_respects_deadline(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 4, 0.0, 30.0)
        assert plan.find_earliest_start(1, 10.0, 0.0, 35.0) is None

    def test_partial_capacity_overlap(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 2, 0.0, 40.0)
        assert plan.find_earliest_start(2, 20.0, 0.0, 100.0) == 0.0
        plan.reserve("j2", 2, 0.0, 20.0)
        assert plan.find_earliest_start(2, 20.0, 0.0, 100.0) == 20.0

    def test_too_big_request(self):
        plan = ReservationPlan(4, step_s=10)
        assert plan.find_earliest_start(5, 10.0, 0.0, 100.0) is None

    def test_earliest_not_step_aligned(self):
        plan = ReservationPlan(4, step_s=10)
        start = plan.find_earliest_start(1, 10.0, 7.0, 100.0)
        assert start is not None and start >= 7.0


class TestRelease:
    def test_full_release(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 4, 0.0, 40.0)
        plan.release("j1")
        assert plan.headroom(0.0, 40.0) == 4
        assert not plan.has_reservation("j1")

    def test_tail_release_on_early_completion(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 4, 0.0, 40.0)
        plan.release("j1", at_s=20.0)
        assert plan.reserved_at(25.0) == 0
        # Note: released reservations are forgotten entirely as windows.
        assert not plan.has_reservation("j1")

    def test_release_keeps_other_reservations(self):
        plan = ReservationPlan(4, step_s=10)
        plan.reserve("j1", 2, 0.0, 20.0)
        plan.reserve("j2", 2, 0.0, 20.0)
        plan.release("j1")
        assert plan.reserved_at(10.0) == 2


class TestLedgerProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 3),        # k
                              st.integers(0, 8),         # start step
                              st.integers(1, 4)),        # dur steps
                    min_size=1, max_size=10))
    def test_never_overcommits(self, reqs):
        plan = ReservationPlan(4, step_s=10)
        accepted = []
        for i, (k, start, dur) in enumerate(reqs):
            s, e = start * 10.0, (start + dur) * 10.0
            if plan.fits(k, s, e):
                plan.reserve(f"j{i}", k, s, e - s)
                accepted.append((k, start, dur))
        for t in range(0, 15):
            load = sum(k for k, start, dur in accepted
                       if start <= t < start + dur)
            assert load == plan.reserved_at(t * 10.0)
            assert load <= plan.capacity
