"""Job cancellation at cycle safe points — the stale-state regression.

A cancellation landing while the solver runs used to be a hazard: the
solution could launch the job anyway, leaving an allocation-ledger entry
for a job the caller believes is gone.  These tests pin the fixed
behavior: a cancel at *any* point (before the cycle, mid-solve, while
running) never strands ledger state, and the audit oracle's ledger-orphan
check would catch a regression.
"""

import pytest

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.pipeline.driver import CyclePipeline
from repro.strl import SpaceOption
from repro.valuefn import StepValue
from repro.verify.audit import check_ledger_orphans


def build(**kw):
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    defaults = dict(quantum_s=10.0, cycle_s=10.0, plan_ahead_s=40.0,
                    backend="pure", rel_gap=1e-6, audit_mode=True)
    defaults.update(kw)
    return cluster, TetriSched(cluster, TetriSchedConfig(**defaults))


def request(cluster, job_id, k=1, dur=20.0, deadline=500.0):
    return JobRequest(
        job_id=job_id,
        options=(SpaceOption(cluster.node_names, k=k, duration_s=dur),),
        value_fn=StepValue(1000.0, deadline),
        priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
        deadline=deadline)


class _CancelDuringSolve:
    """Injected pipeline stage: a cancel request lands after Solve."""

    name = "cancel-inject"

    def __init__(self, job_id):
        self.job_id = job_id

    def run(self, ctx):
        ctx.scheduler.cancel(self.job_id)


class TestCancelQueued:
    def test_cancel_before_cycle(self):
        cluster, sched = build()
        sched.submit(request(cluster, "a"))
        sched.cancel("a")
        result = sched.run_cycle(0.0)
        assert result.cancelled == ["a"]
        assert sched.pending_count == 0
        assert not result.allocations

    def test_cancel_unknown_job_is_discarded(self):
        _, sched = build()
        sched.cancel("ghost")
        result = sched.run_cycle(0.0)
        assert result.cancelled == []


class TestCancelRunning:
    def test_cancel_running_job_frees_ledger_and_registry(self):
        cluster, sched = build()
        sched.submit(request(cluster, "a", k=2))
        r1 = sched.run_cycle(0.0)
        assert [a.job_id for a in r1.allocations] == ["a"]
        sched.cancel("a")
        r2 = sched.run_cycle(10.0)
        assert r2.cancelled == ["a"]
        assert not sched.state.is_running("a")
        assert "a" not in sched._launched
        assert not check_ledger_orphans(sched.state, sched._launched)


class TestCancelDuringSolve:
    def test_mid_cycle_cancel_never_launches(self):
        """The regression: cancel lands between Solve and the launch loop."""
        cluster, sched = build()
        sched.submit(request(cluster, "a"))
        sched.submit(request(cluster, "b"))
        # Rebuild the global pipeline with the injector after Solve.
        stages = []
        for stage in sched._global_pipeline.stages:
            stages.append(stage)
            if stage.name == "solve":
                stages.append(_CancelDuringSolve("a"))
        sched._global_pipeline = CyclePipeline(stages)

        result = sched.run_cycle(0.0)
        launched = [a.job_id for a in result.allocations]
        assert "a" not in launched and "b" in launched
        assert "a" in result.cancelled
        # No stale state anywhere: ledger, registry, queue all clean.
        assert not sched.state.is_running("a")
        assert "a" not in sched._launched
        assert "a" not in sched.queues
        assert not check_ledger_orphans(sched.state, sched._launched)
        # The freed capacity is genuinely free: a new job can take it.
        sched.submit(request(cluster, "c"))
        r2 = sched.run_cycle(10.0)
        assert "c" in [a.job_id for a in r2.allocations]

    def test_mid_cycle_cancel_with_delta_mode_verify(self):
        cluster, sched = build(delta_mode="verify")
        sched.submit(request(cluster, "a"))
        stages = []
        for stage in sched._global_pipeline.stages:
            stages.append(stage)
            if stage.name == "solve":
                stages.append(_CancelDuringSolve("a"))
        sched._global_pipeline = CyclePipeline(stages)
        result = sched.run_cycle(0.0)
        assert result.cancelled == ["a"]
        # Next cycle the job is gone from the batch (delta sees a removal).
        sched.submit(request(cluster, "b"))
        r2 = sched.run_cycle(10.0)
        assert "b" in [a.job_id for a in r2.allocations]


class TestCancelMidResize:
    def elastic_request(self, cluster, job_id, value=50.0):
        return JobRequest(
            job_id=job_id,
            options=tuple(
                SpaceOption(cluster.node_names, k=w, duration_s=d)
                for w, d in ((4, 20.0), (3, 30.0), (2, 40.0))),
            value_fn=StepValue(value, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
            elastic=True)

    def test_cancel_running_elastic_mid_cycle_never_resizes(self):
        """A cancel landing after Solve, in a cycle where the running
        elastic job re-entered the batch as a resize candidate: the job
        must disappear cleanly — neither resized nor left in the ledger —
        even if the solver chose a new width for it."""
        cluster, sched = build(elastic_mode=True, reconfig_penalty=0.1)
        sched.submit(self.elastic_request(cluster, "e"))
        r1 = sched.run_cycle(0.0)
        assert [a.job_id for a in r1.allocations] == ["e"]
        # SLO pressure guarantees the next cycle offers (and wants) a
        # shrink of "e"; the cancel lands between Solve and Extract.
        sched.submit(request(cluster, "squeeze", k=2, dur=20.0,
                             deadline=35.0))
        stages = []
        for stage in sched._global_pipeline.stages:
            stages.append(stage)
            if stage.name == "solve":
                stages.append(_CancelDuringSolve("e"))
        sched._global_pipeline = CyclePipeline(stages)

        r2 = sched.run_cycle(10.0)
        assert "e" in r2.cancelled
        assert r2.resized == []
        assert not sched.state.is_running("e")
        assert "e" not in sched._launched
        assert not check_ledger_orphans(sched.state, sched._launched)
        # The freed capacity is genuinely free: the squeezer launched this
        # cycle and a later job can take the remaining nodes.
        assert "squeeze" in {a.job_id for a in r2.allocations}
        sched.submit(request(cluster, "after", k=2, dur=20.0,
                             deadline=1000.0))
        r3 = sched.run_cycle(20.0)
        assert "after" in {a.job_id for a in r3.allocations}


class TestLedgerOrphanOracle:
    def test_orphan_detected(self):
        cluster, sched = build()
        # Manufacture the hazard by touching one side only.
        sched.state.start("phantom", frozenset(list(cluster.node_names)[:1]),
                          0.0, 50.0)
        violations = check_ledger_orphans(sched.state, sched._launched)
        assert len(violations) == 1
        assert violations[0].kind == "audit.ledger-orphan"
        assert "phantom" in violations[0].message

    def test_audit_stage_raises_on_orphan(self):
        from repro.verify import AuditViolation

        cluster, sched = build()
        sched.state.start("phantom", frozenset(list(cluster.node_names)[:1]),
                          0.0, 50.0)
        sched.submit(request(cluster, "a"))
        with pytest.raises(AuditViolation):
            sched.run_cycle(0.0)
