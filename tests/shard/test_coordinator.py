"""Domain coordinator: sticky, seeded, affinity-aware job assignment."""

import pytest

from repro.api import Scheduler
from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import JobRequest, TetriSchedConfig
from repro.strl.generator import SpaceOption
from repro.valuefn import StepValue


def make_api(racks=8, nodes_per_rack=4, shard_count=2, seed=0, **kw):
    cfg = TetriSchedConfig(quantum_s=10, cycle_s=10, plan_ahead_s=40,
                           shard_mode="racks", shard_count=shard_count,
                           seed=seed, **kw)
    return Scheduler.open(Cluster.build(racks=racks,
                                        nodes_per_rack=nodes_per_rack), cfg)


def rack_job(api, job_id, rack, k=2, value=10.0):
    return JobRequest(
        job_id=job_id,
        options=(SpaceOption(api.cluster.rack_nodes(rack), k=k,
                             duration_s=20, label="rack"),),
        value_fn=StepValue(value, 1e9), priority=PriorityClass.SLO_ACCEPTED,
        submit_time=0.0)


def assign(api, requests):
    """Run DomainAssign's inputs by hand and return the ShardCycle."""
    sched = api.core
    exprs = []
    for req in requests:
        sched.submit(req)
        expr = sched._generate(req, 0.0)
        assert expr is not None
        exprs.append((req.job_id, expr))
    return sched._coordinator.assign(
        sched, exprs, {r.job_id: r for r in requests}, 0.0)


class TestAffinity:
    def test_rack_job_lands_in_containing_domain(self):
        api = make_api()
        sc = assign(api, [rack_job(api, "j0", "r0"),
                          rack_job(api, "j7", "r7")])
        by_id = {d.domain_id: d for d in sc.domains}
        of = sc.domain_of()
        assert api.cluster.rack_nodes("r0") <= by_id[of["j0"]].nodes
        assert api.cluster.rack_nodes("r7") <= by_id[of["j7"]].nodes
        assert not sc.trimmed and not sc.boundary
        assert sc.quality_bound == 0.0

    def test_cross_domain_gang_goes_boundary(self):
        api = make_api()
        gang = JobRequest(
            job_id="gang",
            options=(SpaceOption(api.cluster.node_names,
                                 k=len(api.cluster) - 2,
                                 duration_s=20, label="span"),),
            value_fn=StepValue(50.0, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0)
        sc = assign(api, [gang])
        assert [j for j, _ in sc.boundary] == ["gang"]
        assert sc.quality_bound > 0.0
        assert not sc.batches

    def test_spanning_option_trimmed_and_charged(self):
        api = make_api()
        job = JobRequest(
            job_id="flex",
            options=(SpaceOption(api.cluster.rack_nodes("r0"), k=2,
                                 duration_s=20, label="rack"),
                     SpaceOption(api.cluster.node_names, k=2,
                                 duration_s=30, label="any")),
            value_fn=StepValue(10.0, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0)
        sc = assign(api, [job])
        assert "flex" in sc.trimmed
        assert sc.quality_bound > 0.0
        assert sum(len(b) for b in sc.batches.values()) == 1


class TestDeterminism:
    def _whole_cluster_job(self, api, job_id, k=2):
        # Feasible in every domain with identical affinity scores, so the
        # choice comes down to load + the seeded tie-break.
        return JobRequest(
            job_id=job_id,
            options=(SpaceOption(api.cluster.node_names, k=k,
                                 duration_s=20, label="any"),),
            value_fn=StepValue(10.0, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0)

    def test_same_seed_same_assignment(self):
        outs = []
        for _ in range(2):
            api = make_api(seed=5)
            sc = assign(api, [self._whole_cluster_job(api, f"j{i}")
                              for i in range(6)])
            outs.append(sc.domain_of())
        assert outs[0] == outs[1]

    def test_seed_changes_tiebreaks(self):
        results = set()
        for seed in range(8):
            api = make_api(seed=seed)
            sc = assign(api, [self._whole_cluster_job(api, "solo")])
            results.add(sc.domain_of()["solo"])
        # Across eight seeds, the tie-broken choice must not be constant.
        assert len(results) > 1

    def test_load_balanced_across_equal_domains(self):
        api = make_api()
        sc = assign(api, [self._whole_cluster_job(api, f"j{i}")
                          for i in range(8)])
        sizes = sorted(len(b) for b in sc.batches.values())
        assert sizes == [4, 4]


class TestSticky:
    def test_job_keeps_domain_across_cycles(self):
        api = make_api()
        req = rack_job(api, "stay", "r0")
        sched = api.core
        expr = sched._generate(req, 0.0)
        coord = sched._coordinator
        first = coord.assign(sched, [("stay", expr)], {"stay": req}, 0.0)
        again = coord.assign(sched, [("stay", expr)], {"stay": req}, 10.0)
        assert first.domain_of() == again.domain_of()

    def test_sticky_pruned_when_job_leaves(self):
        api = make_api()
        req = rack_job(api, "gone", "r0")
        sched = api.core
        expr = sched._generate(req, 0.0)
        coord = sched._coordinator
        coord.assign(sched, [("gone", expr)], {"gone": req}, 0.0)
        assert "gone" in coord._sticky
        coord.assign(sched, [], {}, 10.0)
        assert "gone" not in coord._sticky


class TestDrainPreference:
    def test_drained_domain_avoided_when_alternative_exists(self):
        api = make_api()
        sched = api.core
        coord = sched._coordinator
        drained_dom = coord.domains[0]
        for node in drained_dom.nodes:
            sched.state.drain(node)
        req = JobRequest(
            job_id="mobile",
            options=(SpaceOption(api.cluster.node_names, k=2,
                                 duration_s=20, label="any"),),
            value_fn=StepValue(10.0, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0)
        sc = assign(api, [req])
        assert sc.domain_of()["mobile"] != drained_dom.domain_id

    def test_whole_cluster_domain_never_excluded(self):
        api = make_api(shard_count=1)
        sched = api.core
        for node in api.cluster.node_names:
            sched.state.drain(node)
        sc = assign(api, [rack_job(api, "j0", "r0")])
        # Even fully drained, the single domain still takes the batch
        # (bit-equality with the monolithic pipeline requires compiling).
        assert sc.domain_of() == {"j0": 0}
