"""TetriSched feature-ablation configurations (Table 2).

==================  ==========================================================
TetriSched          all features
TetriSched-NH       no heterogeneity (soft-constraint) awareness
TetriSched-NG       no global scheduling (greedy, one job at a time)
TetriSched-NP       no plan-ahead (equivalent to alsched [33])
==================  ==========================================================
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.scheduler import TetriSchedConfig


def tetrisched_config(**overrides) -> TetriSchedConfig:
    """Full-featured TetriSched configuration."""
    return TetriSchedConfig(**overrides)


def tetrisched_nh_config(**overrides) -> TetriSchedConfig:
    """TetriSched with No Heterogeneity awareness (Table 2).

    STRL expressions draw k containers from a single equivalence set (the
    whole cluster) using the conservative slowed-down runtime estimate.
    """
    return replace(TetriSchedConfig(**overrides), heterogeneity_aware=False)


def tetrisched_ng_config(**overrides) -> TetriSchedConfig:
    """TetriSched with No Global scheduling (Table 2).

    Full MILP formulation, but the solver sees one job at a time, drawn from
    three priority-ordered FIFO queues (Sec. 6.3).
    """
    return replace(TetriSchedConfig(**overrides), global_scheduling=False)


def tetrisched_np_config(**overrides) -> TetriSchedConfig:
    """TetriSched with No Plan-ahead (Table 2) — emulates alsched [33]."""
    return replace(TetriSchedConfig(**overrides), plan_ahead_s=0.0)


#: Table 2, as (name -> config factory).
TABLE2_CONFIGS = {
    "TetriSched": tetrisched_config,
    "TetriSched-NH": tetrisched_nh_config,
    "TetriSched-NG": tetrisched_ng_config,
    "TetriSched-NP": tetrisched_np_config,
}
