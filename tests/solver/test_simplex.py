"""Unit + property tests for the two-phase simplex LP solver.

Property tests cross-check against scipy's HiGHS LP solver on random
problems — the strongest correctness evidence we can get offline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import SolveStatus, solve_lp
from repro.solver.scipy_backend import scipy_available, solve_lp_scipy


class TestBasicLPs:
    def test_simple_maximization(self):
        # max x + 2y  s.t. x+y<=4, x<=2  ->  (0,4), obj -8 in min form
        r = solve_lp([-1, -2], a_ub=[[1, 1], [1, 0]], b_ub=[4, 2])
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(-8.0)
        np.testing.assert_allclose(r.x, [0, 4], atol=1e-7)

    def test_equality_constraint(self):
        # min x + y  s.t. x + y == 3, x,y >= 0
        r = solve_lp([1, 1], a_eq=[[1, 1]], b_eq=[3])
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(3.0)

    def test_infeasible(self):
        r = solve_lp([1], a_ub=[[1], [-1]], b_ub=[1, -3])  # x<=1 and x>=3
        assert r.status == SolveStatus.INFEASIBLE

    def test_unbounded(self):
        r = solve_lp([-1])  # min -x, x >= 0, no other rows
        assert r.status == SolveStatus.UNBOUNDED

    def test_bounds_only(self):
        r = solve_lp([1, -1], lb=[2, 0], ub=[5, 3])
        assert r.status == SolveStatus.OPTIMAL
        np.testing.assert_allclose(r.x, [2, 3], atol=1e-7)

    def test_crossed_bounds_infeasible(self):
        r = solve_lp([1], lb=[4], ub=[2])
        assert r.status == SolveStatus.INFEASIBLE

    def test_free_variable_split(self):
        # min x s.t. x >= -5 expressed through a row (x itself free).
        r = solve_lp([1], a_ub=[[-1]], b_ub=[5], lb=[-np.inf])
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(-5.0)

    def test_negative_lower_bounds_shift(self):
        # min x + y with lb=-2; optimum at both lower bounds.
        r = solve_lp([1, 1], lb=[-2, -2], ub=[3, 3])
        assert r.objective == pytest.approx(-4.0)

    def test_degenerate_problem(self):
        # Classic degenerate vertex: multiple rows intersecting.
        r = solve_lp([-1, -1],
                     a_ub=[[1, 0], [0, 1], [1, 1]],
                     b_ub=[1, 1, 1])
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(-1.0)

    def test_redundant_equalities(self):
        # Duplicate equality rows: phase 1 must drop the redundancy.
        r = solve_lp([1, 2], a_eq=[[1, 1], [1, 1]], b_eq=[2, 2])
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(2.0)

    def test_zero_rhs_rows(self):
        r = solve_lp([1, -1], a_ub=[[-1, 1]], b_ub=[0], ub=[4, 4])
        # y <= x; min x - y -> x == y -> 0
        assert r.objective == pytest.approx(0.0)


@pytest.mark.skipif(not scipy_available(), reason="scipy required for cross-check")
class TestAgainstHiGHS:
    """Random-LP differential testing of our simplex vs scipy/HiGHS."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_inequality_lps(self, data):
        n = data.draw(st.integers(1, 5), label="n")
        m = data.draw(st.integers(1, 6), label="m")
        coef = st.integers(-4, 4)
        c = np.array(data.draw(st.lists(coef, min_size=n, max_size=n)), float)
        a = np.array(data.draw(
            st.lists(st.lists(coef, min_size=n, max_size=n),
                     min_size=m, max_size=m)), float)
        b = np.array(data.draw(
            st.lists(st.integers(0, 10), min_size=m, max_size=m)), float)
        ub = np.full(n, 10.0)  # keep everything bounded -> always optimal

        ours = solve_lp(c, a_ub=a, b_ub=b, ub=ub)
        ref = solve_lp_scipy(c, a_ub=a, b_ub=b, ub=ub)
        assert ours.status == ref.status
        if ours.status == SolveStatus.OPTIMAL:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            # Our point must actually be feasible.
            assert np.all(a @ ours.x <= b + 1e-6)
            assert np.all(ours.x >= -1e-9) and np.all(ours.x <= ub + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_equality_lps(self, data):
        n = data.draw(st.integers(2, 5), label="n")
        coef = st.integers(-3, 3)
        c = np.array(data.draw(st.lists(coef, min_size=n, max_size=n)), float)
        row = np.array(data.draw(st.lists(st.integers(0, 3), min_size=n,
                                          max_size=n)), float)
        rhs = float(data.draw(st.integers(0, 8)))
        ub = np.full(n, 10.0)
        ours = solve_lp(c, a_eq=row.reshape(1, -1), b_eq=[rhs], ub=ub)
        ref = solve_lp_scipy(c, a_eq=row.reshape(1, -1), b_eq=[rhs], ub=ub)
        assert ours.status == ref.status
        if ours.status == SolveStatus.OPTIMAL:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            assert row @ ours.x == pytest.approx(rhs, abs=1e-6)
