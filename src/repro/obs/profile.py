"""Per-run profiles: what one simulation run cost, and where.

A :class:`RunProfile` has two layers:

* **counters** — always collected.  The simulator derives them from the
  per-cycle :class:`~repro.core.scheduler.CycleStats` records the scheduler
  already produces (solver solves, B&B nodes, LP iterations, warm-start
  hits, launches, culls), so they are available even with the observability
  registry disabled and cost nothing extra.
* **timers** — per-phase wall-clock aggregates (generate / compile / solve /
  decode / materialize, plus solver internals) captured from the global
  :class:`~repro.obs.registry.Registry` *when it is enabled*; empty
  otherwise.

The experiment runner attaches a profile to every
:class:`~repro.sim.engine.SimulationResult`; :mod:`repro.obs.report`
renders it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunProfile:
    """Aggregated observability data for one simulation run."""

    #: Flat counter name -> accumulated value.
    counters: dict[str, float] = field(default_factory=dict)
    #: Span path -> {count, total_s, mean_s, max_s} (empty when obs is off).
    timers: dict[str, dict[str, float]] = field(default_factory=dict)

    # -- building ------------------------------------------------------------
    def bump(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def maximize(self, name: str, value: float) -> None:
        """Track a high-water-mark counter (e.g. worst factor fill ratio)."""
        if value > self.counters.get(name, 0.0):
            self.counters[name] = value

    def merge_delta(self, delta: dict) -> None:
        """Fold a :func:`repro.obs.registry.snapshot_delta` into this profile."""
        self.timers.update(delta.get("timers", {}))
        for name, value in delta.get("counters", {}).items():
            self.bump(name, value)

    # -- derived metrics -----------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    @property
    def warm_start_hit_rate(self) -> float:
        """Fraction of warm-start attempts that produced a feasible seed.

        ``nan`` when the run never attempted a warm start (greedy mode, or
        warm starting disabled).
        """
        attempts = self.counter("scheduler.warm_start.attempts")
        if not attempts:
            return float("nan")
        return self.counter("scheduler.warm_start.hits") / attempts

    @property
    def lp_warm_restart_hit_rate(self) -> float:
        """Fraction of dual-simplex warm restarts that avoided a cold solve.

        ``nan`` when the run never attempted one (tableau engine, scipy
        backend, or a search that never branched).
        """
        attempts = self.counter("solver.lp.warm_restarts")
        if not attempts:
            return float("nan")
        return self.counter("solver.lp.warm_hits") / attempts

    @property
    def nodes_per_solve(self) -> float:
        solves = self.counter("solver.solves")
        if not solves:
            return 0.0
        return self.counter("solver.bnb.nodes") / solves

    def as_dict(self) -> dict:
        return {"counters": dict(self.counters),
                "timers": {k: dict(v) for k, v in self.timers.items()}}
