"""Tests for space-time availability tracking."""

import pytest

from repro.cluster import ClusterState
from repro.errors import ClusterError, SchedulerError

UNIVERSE = frozenset({"a", "b", "c", "d"})


@pytest.fixture()
def state():
    return ClusterState(UNIVERSE)


class TestLifecycle:
    def test_start_finish_roundtrip(self, state):
        state.start("j1", frozenset({"a", "b"}), 0.0, 20.0)
        assert state.is_running("j1")
        assert state.free_nodes() == frozenset({"c", "d"})
        freed = state.finish("j1")
        assert freed == frozenset({"a", "b"})
        assert state.free_nodes() == UNIVERSE

    def test_double_start_rejected(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 10.0)
        with pytest.raises(SchedulerError):
            state.start("j1", frozenset({"b"}), 0.0, 10.0)

    def test_node_conflict_rejected(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 10.0)
        with pytest.raises(SchedulerError):
            state.start("j2", frozenset({"a", "b"}), 0.0, 10.0)

    def test_unknown_node_rejected(self, state):
        with pytest.raises(ClusterError):
            state.start("j1", frozenset({"zz"}), 0.0, 10.0)

    def test_finish_unknown_job_rejected(self, state):
        with pytest.raises(SchedulerError):
            state.finish("nope")

    def test_bad_expected_end_rejected(self, state):
        with pytest.raises(SchedulerError):
            state.start("j1", frozenset({"a"}), 10.0, 10.0)

    def test_utilization(self, state):
        assert state.utilization() == 0.0
        state.start("j1", frozenset({"a", "b"}), 0.0, 10.0)
        assert state.utilization() == pytest.approx(0.5)


class TestExpectationAdjustment:
    def test_extend_moves_end_up(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 10.0)
        state.extend_expectation("j1", 30.0)
        assert state.allocation_of("j1").expected_end == 30.0

    def test_extend_never_moves_down(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 30.0)
        state.extend_expectation("j1", 10.0)
        assert state.allocation_of("j1").expected_end == 30.0

    def test_extend_unknown_job(self, state):
        with pytest.raises(SchedulerError):
            state.extend_expectation("nope", 5.0)


class TestAvailabilityProfile:
    def test_empty_cluster_profile(self, state):
        assert state.availability_profile(UNIVERSE, 3, 0.0, 10.0) == [4, 4, 4]

    def test_busy_quanta_rounding(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 25.0)
        busy = state.busy_quanta(now=0.0, quantum_s=10.0)
        assert busy == {"a": 3}  # 25s -> slices 0,1,2

    def test_profile_reflects_expected_release(self, state):
        state.start("j1", frozenset({"a", "b"}), 0.0, 25.0)
        prof = state.availability_profile(UNIVERSE, 4, 0.0, 10.0)
        assert prof == [2, 2, 2, 4]

    def test_profile_restricted_to_group(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 15.0)
        prof = state.availability_profile(frozenset({"c", "d"}), 2, 0.0, 10.0)
        assert prof == [2, 2]

    def test_overdue_job_still_occupies_one_quantum(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 10.0)
        # At now=50 the job is overdue but still running.
        prof = state.availability_profile(UNIVERSE, 2, 50.0, 10.0)
        assert prof == [3, 4]

    def test_profile_advances_with_now(self, state):
        state.start("j1", frozenset({"a"}), 0.0, 40.0)
        prof = state.availability_profile(UNIVERSE, 4, 20.0, 10.0)
        assert prof == [3, 3, 4, 4]

    def test_zero_horizon(self, state):
        assert state.availability_profile(UNIVERSE, 0, 0.0, 10.0) == []
