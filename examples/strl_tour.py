#!/usr/bin/env python3
"""A tour of STRL, the Space-Time Request Language (Sec. 4).

Builds the paper's example expressions programmatically and as parsed text,
shows how the STRL Generator expands a job over the plan-ahead window, and
compiles a batch down to the MILP that the solver sees.

Run:  python examples/strl_tour.py
"""

from repro import Cluster, ClusterState, Max, Min, NCk, StrlCompiler, parse, to_text
from repro.strl import (SpaceOption, ascii_tree, generate_job_strl,
                        simplify, spacetime_grid, stats)
from repro.valuefn import StepValue


def main() -> None:
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    gpu = cluster.nodes_with_attr("gpu")
    rack1 = cluster.rack_nodes("r0")
    rack2 = cluster.rack_nodes("r1")

    print("=== 1. The Fig. 3 soft-constraint expression, by hand ===")
    soft = Max(
        NCk(gpu, k=2, start=0, duration=2, value=4.0),
        NCk(cluster.node_names, k=2, start=0, duration=3, value=3.0))
    print(to_text(soft, indent=2))
    print(f"max attainable value: {soft.max_value()}")

    print("\n=== 2. The same thing, parsed from text ===")
    text = """
    (max (nCk (set r0n0 r0n1) :k 2 :start 0 :dur 2 :v 4)
         (nCk (set r0n0 r0n1 r1n0 r1n1) :k 2 :start 0 :dur 3 :v 3))
    """
    assert parse(text) == soft
    print("round-trips: parse(text) == hand-built AST")

    print("\n=== 3. Combinatorial constraints: one replica per rack (Min) ===")
    availability = Min(NCk(rack1, 1, 0, 3, 2.0), NCk(rack2, 1, 0, 3, 2.0))
    print(to_text(availability, indent=2))

    print("\n=== 4. What the STRL Generator produces for a real job ===")
    expr = generate_job_strl(
        [SpaceOption(gpu, k=2, duration_s=20, label="gpu"),
         SpaceOption(cluster.node_names, k=2, duration_s=30, label="any")],
        StepValue(1000.0, deadline=60.0), now=0.0, quantum_s=10,
        plan_ahead_quanta=9, deadline=60.0)
    print(f"expression stats: {stats(expr)}")
    print("(deadline culling kept only the start times that can finish "
          "by t=60)")
    print("\noperator tree:")
    print(ascii_tree(expr))
    print("\nspace-time footprints (Fig. 1 style):")
    print(spacetime_grid(expr))

    print("\n=== 5. Compiling a batch to MILP (Algorithm 1) ===")
    state = ClusterState(cluster.node_names)
    compiled = StrlCompiler(state, quantum_s=10).compile(
        [("gpu-job", expr), ("availability", simplify(availability))])
    print(f"MILP: {compiled.stats}")
    print(f"partitions (equivalence-set signatures): "
          f"{[sorted(p.nodes) for p in compiled.partitioning.partitions]}")


if __name__ == "__main__":
    main()
