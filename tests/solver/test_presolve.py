"""Tests for the presolve reductions."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.solver import (BranchBoundOptions, BranchBoundSolver, Model,
                          SolveStatus, make_backend, scipy_available)
from repro.solver.presolve import presolve
from tests.strategies import milp_models


def arrays_of(model):
    return model.to_standard_arrays()


class TestReductions:
    def test_singleton_row_becomes_bound(self):
        m = Model()
        x = m.add_continuous("x", ub=100)
        m.add_constraint(2 * x, "<=", 10)
        res = presolve(arrays_of(m))
        assert not res.infeasible
        assert res.arrays.a_ub.shape[0] == 0
        assert res.arrays.ub[0] == pytest.approx(5.0)

    def test_negative_singleton_tightens_lower_bound(self):
        m = Model()
        x = m.add_continuous("x", lb=0, ub=100)
        m.add_constraint(-1 * x, "<=", -3)  # x >= 3
        res = presolve(arrays_of(m))
        assert res.arrays.lb[0] == pytest.approx(3.0)

    def test_redundant_row_dropped(self):
        m = Model()
        x = m.add_continuous("x", ub=2)
        y = m.add_continuous("y", ub=2)
        m.add_constraint(x + y, "<=", 100)  # never binding
        res = presolve(arrays_of(m))
        assert res.rows_dropped == 1
        assert res.arrays.a_ub.shape[0] == 0

    def test_binding_row_kept(self):
        m = Model()
        x = m.add_continuous("x", ub=2)
        y = m.add_continuous("y", ub=2)
        m.add_constraint(x + y, "<=", 3)
        res = presolve(arrays_of(m))
        assert res.arrays.a_ub.shape[0] == 1

    def test_infeasible_row_detected(self):
        m = Model()
        x = m.add_continuous("x", ub=2)
        m.add_constraint(-1 * x, "<=", -5)  # x >= 5 vs ub 2
        res = presolve(arrays_of(m))
        assert res.infeasible

    def test_integer_bounds_rounded(self):
        m = Model()
        x = m.add_integer("x", lb=0, ub=100)
        m.add_constraint(2 * x, "<=", 7)  # x <= 3.5 -> 3
        res = presolve(arrays_of(m))
        assert res.arrays.ub[0] == pytest.approx(3.0)

    def test_equalities_untouched(self):
        m = Model()
        x = m.add_continuous("x", ub=5)
        m.add_constraint(x, "==", 3)
        res = presolve(arrays_of(m))
        assert res.arrays.a_eq.shape[0] == 1

    def test_input_not_mutated(self):
        m = Model()
        x = m.add_integer("x", lb=0, ub=100)
        m.add_constraint(2 * x, "<=", 7)
        sa = arrays_of(m)
        ub_before = sa.ub.copy()
        presolve(sa)
        np.testing.assert_array_equal(sa.ub, ub_before)


class TestSolverIntegration:
    def knapsack(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        m.add_constraint(sum((i + 1) * x for i, x in enumerate(xs)),
                         "<=", 7)
        m.set_objective(sum((5 - i) * x for i, x in enumerate(xs)),
                        sense="maximize")
        return m

    def test_presolve_preserves_optimum(self):
        with_p = BranchBoundSolver(BranchBoundOptions(presolve=True)).solve(
            self.knapsack())
        without_p = BranchBoundSolver(BranchBoundOptions(
            presolve=False)).solve(self.knapsack())
        assert with_p.objective == pytest.approx(without_p.objective)
        assert "presolve_rows_dropped" in with_p.stats

    def test_presolve_detects_infeasible_without_search(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x, ">=", 2)
        res = BranchBoundSolver(BranchBoundOptions(presolve=True)).solve(m)
        assert res.status == SolveStatus.INFEASIBLE
        assert res.nodes == 0

    @pytest.mark.skipif(not scipy_available(), reason="scipy required")
    @settings(max_examples=30, deadline=None)
    @given(m=milp_models())
    def test_presolved_solves_match_higgs(self, m):
        ours = BranchBoundSolver(BranchBoundOptions(presolve=True)).solve(m)
        ref = make_backend("scipy").solve(m)
        assert ours.status.has_solution == ref.status.has_solution
        if ours.status.has_solution:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


class TestRowActivityBounds:
    """``_row_activity_bounds`` with infinite bounds on either side.

    The helper feeds redundancy/infeasibility detection; with free
    variables in the row it must degrade to ``-inf``/``+inf`` activity
    (never NaN from a ``0 * inf``), so the caller keeps the row instead
    of misclassifying it.
    """

    def test_free_variable_both_sides_infinite(self):
        from repro.solver.presolve import _row_activity_bounds
        lo, hi = _row_activity_bounds(
            np.array([1.0]), np.array([-np.inf]), np.array([np.inf]))
        assert lo == -np.inf and hi == np.inf

    def test_mixed_signs_against_free_variables(self):
        from repro.solver.presolve import _row_activity_bounds
        # +2x with x free below and -3y with y free above both drive the
        # minimum activity down — the infinities accumulate on the same
        # side (no inf - inf NaN) while the maximum stays finite.
        lo, hi = _row_activity_bounds(
            np.array([2.0, -3.0]),
            np.array([-np.inf, 0.0]), np.array([5.0, np.inf]))
        assert lo == -np.inf
        assert hi == pytest.approx(10.0)
        assert not np.isnan(lo) and not np.isnan(hi)

    def test_one_sided_infinity_keeps_finite_side(self):
        from repro.solver.presolve import _row_activity_bounds
        lo, hi = _row_activity_bounds(
            np.array([1.0, 1.0]),
            np.array([-np.inf, 1.0]), np.array([2.0, 3.0]))
        assert lo == -np.inf
        assert hi == pytest.approx(5.0)

    def test_zero_coefficients_ignore_infinite_bounds(self):
        from repro.solver.presolve import _row_activity_bounds
        # The zero column's infinite box must not leak into the bounds.
        lo, hi = _row_activity_bounds(
            np.array([0.0, 2.0]),
            np.array([-np.inf, 1.0]), np.array([np.inf, 4.0]))
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(8.0)

    def test_empty_row_is_zero_activity(self):
        from repro.solver.presolve import _row_activity_bounds
        lo, hi = _row_activity_bounds(
            np.zeros(3), np.full(3, -np.inf), np.full(3, np.inf))
        assert (lo, hi) == (0.0, 0.0)
