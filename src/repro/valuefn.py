"""Value functions mapping job completion time to scheduler value (Fig. 5).

Value functions are the general mechanism TetriSched uses to encode
priorities, deadline sensitivity, budgets, or fairness (Sec. 3.2).  The
paper's experiments use exactly two shapes, reproduced here:

* **SLO jobs** (:class:`StepValue`): a constant value up to the deadline and
  zero after it.  The constant is ``1000x`` the best-effort base for SLO jobs
  with an accepted reservation and ``25x`` for SLO jobs whose reservation was
  rejected, prioritizing them accordingly (Sec. 6.2.2).
* **Best-effort jobs** (:class:`LinearDecayValue`): a linearly decaying
  function of completion time starting from the base constant, giving the
  scheduler an incentive to finish best-effort work early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

#: Base value constant shared by all experiments (the "v" of Fig. 5).
BASE_VALUE = 1.0
#: Multiplier for SLO jobs with an accepted reservation.
SLO_ACCEPTED_MULTIPLIER = 1000.0
#: Multiplier for SLO jobs without a reservation.
SLO_NO_RESERVATION_MULTIPLIER = 25.0


class ValueFunction(Protocol):
    """Maps an absolute completion time (seconds) to scalar value."""

    def __call__(self, completion_time: float) -> float: ...


@dataclass(frozen=True)
class StepValue:
    """Constant ``value`` for completions at or before ``deadline``, else 0."""

    value: float
    deadline: float

    def __call__(self, completion_time: float) -> float:
        return self.value if completion_time <= self.deadline else 0.0


@dataclass(frozen=True)
class LinearDecayValue:
    """Linear decay from ``value`` at ``release_time`` down to ``floor``.

    ``decay_horizon`` is the sojourn time at which the value would reach
    zero; the ``floor`` keeps long-waiting best-effort jobs schedulable
    (a zero-value job would be culled).
    """

    value: float
    release_time: float
    decay_horizon: float
    floor: float = 0.01

    def __post_init__(self) -> None:
        if self.decay_horizon <= 0:
            raise ValueError("decay_horizon must be positive")

    def __call__(self, completion_time: float) -> float:
        sojourn = max(0.0, completion_time - self.release_time)
        decayed = self.value * (1.0 - sojourn / self.decay_horizon)
        return max(self.floor, decayed)


@dataclass(frozen=True)
class GraceStepValue:
    """A step function with a discounted grace window past the deadline.

    ``value`` until ``deadline``; ``value * late_factor`` until
    ``deadline + grace``; zero after.  The grace window absorbs scheduling
    artifacts (duration ceil-rounding, cycle misalignment) so that a job
    whose *estimated* completion barely overshoots is still scheduled
    ("optimistically allows scheduled jobs to complete if their deadline
    has not passed", Sec. 7.1) — but the discount keeps genuinely on-time
    placements strictly preferred whenever one exists.
    """

    value: float
    deadline: float
    grace: float
    late_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.grace < 0:
            raise ValueError("grace must be nonnegative")
        if not 0.0 <= self.late_factor <= 1.0:
            raise ValueError("late_factor must be within [0, 1]")

    def __call__(self, completion_time: float) -> float:
        if completion_time <= self.deadline:
            return self.value
        if completion_time <= self.deadline + self.grace:
            return self.value * self.late_factor
        return 0.0


def slo_value(deadline: float, accepted: bool,
              base: float = BASE_VALUE) -> StepValue:
    """The paper's SLO value function (Fig. 5).

    Parameters
    ----------
    deadline:
        Absolute deadline in seconds.
    accepted:
        Whether the Rayon reservation was accepted (1000x) or not (25x).
    """
    mult = SLO_ACCEPTED_MULTIPLIER if accepted else SLO_NO_RESERVATION_MULTIPLIER
    return StepValue(value=mult * base, deadline=deadline)


def best_effort_value(release_time: float, decay_horizon: float = 600.0,
                      base: float = BASE_VALUE) -> LinearDecayValue:
    """The paper's best-effort value function (Fig. 5): linear decay."""
    return LinearDecayValue(value=base, release_time=release_time,
                            decay_horizon=decay_horizon)


def scale_value(fn: ValueFunction, factor: float) -> Callable[[float], float]:
    """Multiply a value function by a constant factor."""
    def scaled(completion_time: float) -> float:
        return factor * fn(completion_time)
    return scaled
