"""ASCII line charts for sweep series (figures without matplotlib).

Renders multiple series over a shared x-axis as a character grid, one
marker per series, with a legend and y-axis labels — enough to eyeball the
paper's figure shapes straight from a terminal or a CI log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.sweeps import SweepResult

_MARKERS = "ox*+#@%&"


@dataclass(frozen=True)
class ChartConfig:
    height: int = 12
    width: int = 56
    y_min: float | None = None
    y_max: float | None = None


def render_series(x_values: list[float],
                  series: dict[str, list[float]],
                  title: str = "", y_label: str = "",
                  config: ChartConfig | None = None) -> str:
    """Render named series sharing ``x_values`` as an ASCII chart."""
    cfg = config or ChartConfig()
    clean: dict[str, list[tuple[float, float]]] = {}
    all_y: list[float] = []
    for name, ys in series.items():
        pts = [(x, y) for x, y in zip(x_values, ys)
               if y is not None and not math.isnan(y)]
        clean[name] = pts
        all_y.extend(y for _, y in pts)
    if not all_y:
        return f"{title}\n(no data)"

    y_lo = cfg.y_min if cfg.y_min is not None else min(all_y)
    y_hi = cfg.y_max if cfg.y_max is not None else max(all_y)
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid = [[" "] * cfg.width for _ in range(cfg.height)]

    def col_of(x: float) -> int:
        return int(round((x - x_lo) / (x_hi - x_lo) * (cfg.width - 1)))

    def row_of(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return cfg.height - 1 - int(round(frac * (cfg.height - 1)))

    for (name, pts), marker in zip(clean.items(), _MARKERS):
        # Connect consecutive points with linear interpolation.
        for (x1, y1), (x2, y2) in zip(pts, pts[1:]):
            c1, c2 = col_of(x1), col_of(x2)
            for c in range(min(c1, c2), max(c1, c2) + 1):
                if c2 == c1:
                    y = y1
                else:
                    t = (c - c1) / (c2 - c1)
                    y = y1 + t * (y2 - y1)
                r = row_of(y)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in pts:
            grid[row_of(y)][col_of(x)] = marker

    label_w = 8
    lines = []
    if title:
        lines.append(title)
    for r in range(cfg.height):
        if r == 0:
            label = f"{y_hi:>{label_w}.1f}"
        elif r == cfg.height - 1:
            label = f"{y_lo:>{label_w}.1f}"
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(grid[r])}|")
    x_axis = f"{'':>{label_w}} +{'-' * cfg.width}+"
    lines.append(x_axis)
    gap = max(0, cfg.width - 22)
    lines.append(f"{'':>{label_w}}  {x_lo:<10.4g}{'':>{gap}}{x_hi:>10.4g}")
    legend = "   ".join(f"{marker}={name}"
                        for (name, _), marker in zip(clean.items(), _MARKERS))
    lines.append(f"{'':>{label_w}}  {legend}")
    if y_label:
        lines.append(f"{'':>{label_w}}  y: {y_label}")
    return "\n".join(lines)


def chart_sweep_metric(sweep: SweepResult, metric: str, title: str = "",
                       config: ChartConfig | None = None) -> str:
    """Chart one metric of a sweep, one series per scheduler."""
    series = {sched: sweep.get(sched, metric) for sched in sweep.schedulers}
    return render_series(sweep.x_values, series, title=title,
                         y_label=metric, config=config)
