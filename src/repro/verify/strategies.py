"""Hypothesis strategies for the differential fuzz harness.

Kept out of :mod:`repro.verify`'s eager imports so the auditor and
certificate checker stay usable without hypothesis installed.  The test
suite re-exports these from ``tests/strategies.py`` alongside the
strategies the example-based tests share.

All strategies generate *small* structures on purpose: the differential
harness solves every instance under every solver configuration in its
matrix, and hypothesis shrinks toward these minima anyway when something
fails.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.solver.model import Model
from repro.verify.instance import FuzzInstance, FuzzJob


@st.composite
def milp_models(draw) -> Model:
    """Small random bounded MILPs (maximization, <= rows, integer vars).

    The same shape the presolve property tests historically drew inline:
    every variable has a finite ``[0, ub]`` box, so the model is always
    bounded and (with ``x = 0``) always feasible.
    """
    n = draw(st.integers(2, 5))
    m = Model()
    xs = [m.add_integer(f"x{i}", lb=0, ub=8) for i in range(n)]
    rows = draw(st.integers(1, 3))
    for r in range(rows):
        coefs = draw(st.lists(st.integers(-3, 4), min_size=n, max_size=n))
        rhs = draw(st.integers(0, 20))
        expr = sum(c * x for c, x in zip(coefs, xs) if c)
        if not isinstance(expr, int):
            m.add_constraint(expr, "<=", rhs)
    obj_coefs = draw(st.lists(st.integers(-3, 3), min_size=n, max_size=n))
    objective = sum(c * x for c, x in zip(obj_coefs, xs) if c)
    if isinstance(objective, int):
        objective = 0 * xs[0]
    m.set_objective(objective, sense="maximize")
    return m


@st.composite
def lp_problems(draw) -> dict:
    """Random always-feasible bounded LPs in ``solve_lp`` array form.

    ``lb = 0`` with nonnegative right-hand sides keeps the origin feasible
    (never INFEASIBLE), and finite upper bounds keep the optimum finite
    (never UNBOUNDED) — so both backends must return OPTIMAL and agree.
    """
    import numpy as np

    n = draw(st.integers(1, 4))
    rows = draw(st.integers(1, 3))
    a_ub = np.array([
        draw(st.lists(st.integers(-3, 4), min_size=n, max_size=n))
        for _ in range(rows)], dtype=float)
    b_ub = np.array(draw(st.lists(st.integers(0, 15),
                                  min_size=rows, max_size=rows)),
                    dtype=float)
    c = np.array(draw(st.lists(st.integers(-4, 4), min_size=n, max_size=n)),
                 dtype=float)
    ub_vals = draw(st.lists(st.integers(1, 9), min_size=n, max_size=n))
    return {
        "c": c, "a_ub": a_ub, "b_ub": b_ub,
        "a_eq": np.zeros((0, n)), "b_eq": np.zeros(0),
        "lb": np.zeros(n), "ub": np.array(ub_vals, dtype=float),
    }


@st.composite
def mixed_bound_lps(draw) -> dict:
    """Random LPs mixing finite/infinite lower and upper bounds.

    Unlike :func:`lp_problems` these may be INFEASIBLE or UNBOUNDED —
    differential tests must compare *statuses* first and objectives only
    on agreement at OPTIMAL.  This is the shape that exercises the
    bounded-variable revised simplex's native bound handling (variables
    sitting at either bound, free variables, bound flips) against the
    legacy tableau's shift/split encoding.
    """
    import numpy as np

    n = draw(st.integers(1, 4))
    m_ub = draw(st.integers(0, 3))
    m_eq = draw(st.integers(0, 2))
    a_ub = np.array([
        draw(st.lists(st.integers(-3, 4), min_size=n, max_size=n))
        for _ in range(m_ub)], dtype=float).reshape(m_ub, n)
    b_ub = np.array(draw(st.lists(st.integers(-2, 12),
                                  min_size=m_ub, max_size=m_ub)), dtype=float)
    a_eq = np.array([
        draw(st.lists(st.integers(-2, 3), min_size=n, max_size=n))
        for _ in range(m_eq)], dtype=float).reshape(m_eq, n)
    b_eq = np.array(draw(st.lists(st.integers(0, 8),
                                  min_size=m_eq, max_size=m_eq)), dtype=float)
    c = np.array(draw(st.lists(st.integers(-4, 4), min_size=n, max_size=n)),
                 dtype=float)
    lb = np.array([
        -np.inf if draw(st.booleans()) and draw(st.booleans())
        else float(draw(st.integers(-3, 0))) for _ in range(n)])
    ub = np.array([
        np.inf if draw(st.booleans()) and draw(st.booleans())
        else float(draw(st.integers(1, 9))) for _ in range(n)])
    return {"c": c, "a_ub": a_ub if m_ub else None,
            "b_ub": b_ub if m_ub else None,
            "a_eq": a_eq if m_eq else None,
            "b_eq": b_eq if m_eq else None, "lb": lb, "ub": ub}


@st.composite
def degenerate_lps(draw) -> dict:
    """Always-feasible bounded LPs built to stress pivoting edge cases.

    Every instance duplicates at least one column and one row and zeroes
    some right-hand sides, so the simplex walks primal-degenerate
    vertices with tied ratio tests among *identical* columns — the regime
    that stalls Dantzig/Devex pricing and forces the Bland anti-cycling
    fallback, and that hands the basis factorization nearly-singular
    candidate bases.  Same feasibility guarantees as :func:`lp_problems`
    (origin feasible, finite boxes), so both engines must reach OPTIMAL
    and agree on the objective.
    """
    import numpy as np

    n = draw(st.integers(2, 4))
    rows = draw(st.integers(2, 4))
    a_ub = np.array([
        draw(st.lists(st.integers(-2, 3), min_size=n, max_size=n))
        for _ in range(rows)], dtype=float)
    # Duplicate a column (and its objective coefficient, below) so ratio
    # tests tie exactly, and duplicate a row so the basis sees linearly
    # dependent candidates.
    src, dst = draw(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)))
    a_ub[:, dst] = a_ub[:, src]
    r_src, r_dst = draw(st.tuples(st.integers(0, rows - 1),
                                  st.integers(0, rows - 1)))
    a_ub[r_dst] = a_ub[r_src]
    b_ub = np.array(draw(st.lists(st.integers(0, 10),
                                  min_size=rows, max_size=rows)), dtype=float)
    # Zero right-hand sides make the origin a degenerate vertex.
    for r in range(rows):
        if draw(st.booleans()):
            b_ub[r] = 0.0
    b_ub[r_dst] = b_ub[r_src]
    c = np.array(draw(st.lists(st.integers(-3, 3), min_size=n, max_size=n)),
                 dtype=float)
    c[dst] = c[src]
    ub_vals = draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
    ub = np.array(ub_vals, dtype=float)
    ub[dst] = ub[src]
    return {
        "c": c, "a_ub": a_ub, "b_ub": b_ub,
        "a_eq": np.zeros((0, n)), "b_eq": np.zeros(0),
        "lb": np.zeros(n), "ub": ub,
    }


@st.composite
def multi_component_models(draw) -> tuple[Model, int]:
    """A model of ``k`` independent knapsack blocks, plus that ``k``.

    Each block is internally connected (one constraint covering all its
    variables), and no constraint spans blocks, so union-find must find
    exactly ``k`` components.
    """
    k = draw(st.integers(1, 4))
    m = Model()
    objective = None
    for b in range(k):
        size = draw(st.integers(1, 3))
        xs = [m.add_binary(f"b{b}x{i}") for i in range(size)]
        weights = draw(st.lists(st.integers(1, 5),
                                min_size=size, max_size=size))
        cap = draw(st.integers(1, 8))
        m.add_constraint(sum(w * x for w, x in zip(weights, xs)), "<=", cap)
        values = draw(st.lists(st.integers(1, 6),
                               min_size=size, max_size=size))
        block = sum(v * x for v, x in zip(values, xs))
        objective = block if objective is None else objective + block
    m.set_objective(objective, sense="maximize")
    return m, k


@st.composite
def fuzz_instances(draw) -> FuzzInstance:
    """Small cluster + workload scenarios for the differential harness."""
    racks = draw(st.integers(1, 2))
    nodes_per_rack = draw(st.integers(1, 3))
    plan_ahead = draw(st.integers(1, 3))
    n_jobs = draw(st.integers(1, 4))
    jobs = []
    for j in range(n_jobs):
        k = draw(st.integers(1, 3))
        duration_q = draw(st.integers(1, 3))
        value = float(draw(st.integers(1, 20)))
        rack = draw(st.one_of(st.none(), st.integers(0, racks - 1)))
        deadline_q = draw(st.one_of(st.none(), st.integers(1, plan_ahead)))
        fallback = draw(st.booleans())
        # Roughly a third of jobs take the malleable ElasticNCk path so
        # every run of the matrix mixes rigid and elastic shapes.
        elastic = draw(st.sampled_from([False, False, True]))
        jobs.append(FuzzJob(f"j{j}", k=k, duration_q=duration_q, value=value,
                            rack=rack, deadline_q=deadline_q,
                            fallback=fallback, elastic=elastic))
    busy = draw(st.lists(
        st.tuples(st.integers(1, 2), st.integers(1, 2)),
        min_size=0, max_size=2))
    return FuzzInstance(racks=racks, nodes_per_rack=nodes_per_rack,
                        quantum_s=10.0, plan_ahead_quanta=plan_ahead,
                        jobs=tuple(jobs), busy=tuple(busy))


__all__ = ["degenerate_lps", "fuzz_instances", "lp_problems", "milp_models",
           "mixed_bound_lps", "multi_component_models"]
