"""Multi-seed statistics for experiment results.

Single-seed runs carry several percentage points of workload noise; the
``full`` scale runs each configuration across seeds.  This module
aggregates those runs (mean, standard deviation, a normal-approximation
confidence interval) and offers a paired comparison across schedulers on
common seeds — the standard methodology for simulator studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Aggregate:
    """Summary of one metric over seeds."""

    mean: float
    std: float
    n: int
    ci95_half_width: float

    @property
    def lo(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def hi(self) -> float:
        return self.mean + self.ci95_half_width

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.ci95_half_width:.1f} (n={self.n})"


def aggregate(values: list[float]) -> Aggregate:
    """Mean / std / 95 % CI of a metric across seeds (NaNs dropped)."""
    clean = np.asarray([v for v in values if not math.isnan(v)], dtype=float)
    if clean.size == 0:
        return Aggregate(math.nan, math.nan, 0, math.nan)
    mean = float(clean.mean())
    if clean.size == 1:
        return Aggregate(mean, 0.0, 1, math.nan)
    std = float(clean.std(ddof=1))
    half = 1.96 * std / math.sqrt(clean.size)
    return Aggregate(mean, std, int(clean.size), half)


@dataclass(frozen=True)
class PairedComparison:
    """Paired per-seed difference between two schedulers on one metric."""

    mean_diff: float
    ci95_half_width: float
    n: int

    @property
    def significant(self) -> bool:
        """True when the 95 % CI of the paired difference excludes zero."""
        if self.n < 2 or math.isnan(self.mean_diff):
            return False
        return abs(self.mean_diff) > self.ci95_half_width

    def __str__(self) -> str:
        marker = "*" if self.significant else " "
        return (f"Δ={self.mean_diff:+.1f} ± {self.ci95_half_width:.1f} "
                f"(n={self.n}){marker}")


def paired_compare(a_values: list[float],
                   b_values: list[float]) -> PairedComparison:
    """Paired comparison ``a - b`` over common seeds.

    Inputs must be aligned per seed (same index = same workload seed);
    pairs with a NaN on either side are dropped.
    """
    diffs = [a - b for a, b in zip(a_values, b_values)
             if not (math.isnan(a) or math.isnan(b))]
    if not diffs:
        return PairedComparison(math.nan, math.nan, 0)
    arr = np.asarray(diffs, dtype=float)
    mean = float(arr.mean())
    if arr.size == 1:
        return PairedComparison(mean, math.inf, 1)
    half = 1.96 * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return PairedComparison(mean, half, int(arr.size))


def aggregate_sweep_point(sweep, scheduler: str, x: float,
                          metric: str) -> Aggregate:
    """Aggregate a metric across the seeds of one sweep point."""
    runs = sweep.raw[(scheduler, x)]
    return aggregate([getattr(r.metrics, metric) for r in runs])
