"""Parameter sweeps: estimate error (Figs. 6-10) and plan-ahead (Figs. 11-12).

A sweep runs every (scheduler, x-value) combination, optionally averaging
over several workload seeds, and collects the paper's four metrics into
series keyed ``(scheduler, metric)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.runner import RunSpec, run_experiment

#: Metric keys extracted from every run.
METRICS = ("slo_total_pct", "slo_accepted_pct", "slo_no_reservation_pct",
           "mean_be_latency_s")


@dataclass
class SweepResult:
    """Series data for one figure."""

    x_label: str
    x_values: list[float]
    schedulers: list[str]
    #: (scheduler, metric) -> list aligned with x_values.
    series: dict[tuple[str, str], list[float]] = field(default_factory=dict)
    #: (scheduler, x) -> list of SimulationResult (one per seed).
    raw: dict = field(default_factory=dict)

    def get(self, scheduler: str, metric: str) -> list[float]:
        return self.series[(scheduler, metric)]


def _mean_ignoring_nan(values: list[float]) -> float:
    clean = [v for v in values if not math.isnan(v)]
    return float(np.mean(clean)) if clean else math.nan


def _run_point(base: RunSpec, scheduler: str, seeds: list[int],
               **overrides) -> list:
    results = []
    for seed in seeds:
        spec = base.with_(scheduler=scheduler, seed=seed, **overrides)
        results.append(run_experiment(spec))
    return results


def _collect(sweep: SweepResult, scheduler: str, x: float, results) -> None:
    sweep.raw[(scheduler, x)] = results
    for metric in METRICS:
        key = (scheduler, metric)
        sweep.series.setdefault(key, []).append(_mean_ignoring_nan(
            [getattr(r.metrics, metric) for r in results]))


def estimate_error_sweep(base: RunSpec, schedulers: list[str],
                         errors_pct: list[float],
                         seeds: list[int] | None = None) -> SweepResult:
    """Sweep runtime estimate error (percent, as on the paper's x-axes)."""
    seeds = seeds or [base.seed]
    sweep = SweepResult(x_label="Estimate Error(%)",
                        x_values=list(errors_pct), schedulers=list(schedulers))
    for scheduler in schedulers:
        for err in errors_pct:
            results = _run_point(base, scheduler, seeds,
                                 estimate_error=err / 100.0)
            _collect(sweep, scheduler, err, results)
    return sweep


def plan_ahead_sweep(base: RunSpec, schedulers: list[str],
                     plan_aheads_s: list[float],
                     seeds: list[int] | None = None) -> SweepResult:
    """Sweep the plan-ahead window (seconds, Fig. 11/12 x-axis)."""
    seeds = seeds or [base.seed]
    sweep = SweepResult(x_label="Plan-ahead(s)", x_values=list(plan_aheads_s),
                        schedulers=list(schedulers))
    for scheduler in schedulers:
        for pa in plan_aheads_s:
            results = _run_point(base, scheduler, seeds, plan_ahead_s=pa)
            _collect(sweep, scheduler, pa, results)
    return sweep
