"""The long-lived scheduler service core.

TetriSched in the paper is a standing YARN-side daemon: jobs arrive over
an RPC surface, cycles fire on a plan-ahead timer, completions and node
events stream in while the MILP solves (Sec. 3.3).  The repo grew up the
other way around — a library driven synchronously by the simulator — and
this module closes the gap: :class:`SchedulerService` owns a
:class:`~repro.core.scheduler.TetriSched`, a job-lifecycle registry, and
an injectable :class:`~repro.service.clock.Clock`, exposing thread-safe
operations (submit / status / cancel / cluster events / drain) for any
front end.  The asyncio HTTP API (:mod:`repro.service.http`) and the
simulator adapter (:class:`repro.sim.adapters.ServiceAdapter`) are both
thin clients of this one core.

Concurrency model: one lock serializes scheduling cycles and registry
mutation.  ``cancel_job`` is the deliberate exception — cancellation must
land *while a cycle is in flight* without waiting for it, so it records
the request on the scheduler's atomic cancel set and only takes the lock
opportunistically; the cycle's own safe-point drains (see
``TetriSched._drain_cancellations``) guarantee a cancelled job never
leaves an orphaned allocation-ledger entry either way.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api import Scheduler
from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import (CycleResult, JobRequest, TetriSchedConfig)
from repro.errors import ServiceError
from repro.service.clock import Clock
from repro.strl.generator import SpaceOption
from repro.valuefn import StepValue, best_effort_value

#: Job lifecycle states (terminal: completed / cancelled / culled).
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
CANCELLED = "cancelled"
CULLED = "culled"

_PRIORITIES = {
    "slo": PriorityClass.SLO_ACCEPTED,
    "slo_no_reservation": PriorityClass.SLO_NO_RESERVATION,
    "best_effort": PriorityClass.BEST_EFFORT,
}


@dataclass
class JobRecord:
    """One submitted job's lifecycle as the service saw it."""

    job_id: str
    state: str
    submitted_at: float
    request: JobRequest
    started_at: float | None = None
    expected_end: float | None = None
    finished_at: float | None = None
    nodes: tuple[str, ...] = ()
    cancel_requested: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id, "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "expected_end": self.expected_end,
            "finished_at": self.finished_at,
            "nodes": sorted(self.nodes),
            "cancel_requested": self.cancel_requested,
        }


class SchedulerService:
    """Thread-safe job lifecycle + cycle driver around a ``TetriSched``.

    With ``auto_complete=True`` (the serving default) jobs finish on their
    own when the service clock passes their expected end — the service is
    self-contained against synthetic workloads.  The simulator adapter
    runs with ``auto_complete=False`` and reports true completions itself
    (runtime mis-estimation experiments need the two times to differ).
    """

    def __init__(self, cluster: Cluster,
                 config: TetriSchedConfig | None = None,
                 clock: Clock | None = None,
                 auto_complete: bool = True,
                 stats_path: str | Path | None = None) -> None:
        self.cluster = cluster
        self.api = Scheduler.open(cluster, config)
        self.scheduler = self.api.core
        self.clock = clock if clock is not None else Clock()
        self.auto_complete = auto_complete
        self.stats_path = Path(stats_path) if stats_path else None
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._epoch = self.clock.now()
        self._seq = 0
        self._cycles_run = 0
        self._accepting = True
        self._drained_stats: dict[str, Any] | None = None

    @property
    def config(self) -> TetriSchedConfig:
        """The scheduler's resolved configuration (defaults applied)."""
        return self.scheduler.config

    # -- time ----------------------------------------------------------------
    def now(self) -> float:
        """Service time: seconds since the service started."""
        return self.clock.now() - self._epoch

    # -- job lifecycle -------------------------------------------------------
    def submit(self, request: JobRequest) -> JobRecord:
        """Register a pre-built :class:`JobRequest` with the scheduler."""
        with self._lock:
            if not self._accepting:
                raise ServiceError("service is draining; not accepting jobs")
            if request.job_id in self._jobs:
                raise ServiceError(
                    f"job {request.job_id!r} already submitted")
            self.scheduler.submit(request)
            rec = JobRecord(request.job_id, PENDING, self.now(), request)
            self._jobs[request.job_id] = rec
            return rec

    def submit_spec(self, spec: dict[str, Any]) -> JobRecord:
        """Build a :class:`JobRequest` from a JSON job spec and submit it.

        Spec shape (see ``docs/service.md``)::

            {"job_id": "j1",              # optional; generated if absent
             "options": [{"k": 2, "duration_s": 20,
                          "attr": "gpu"       # equivalence set by node attr
                          # or "nodes": [...] # or an explicit node list
                          # (neither -> the whole cluster)
                          , "label": "gpu"}],
             "value": 1000.0, "deadline": 120.0,   # deadline optional
             "priority": "slo"}  # slo | slo_no_reservation | best_effort
        """
        if not isinstance(spec, dict):
            raise ServiceError("job spec must be a JSON object")
        job_id = spec.get("job_id")
        if job_id is None:
            with self._lock:
                self._seq += 1
                job_id = f"job-{self._seq}"
        if not isinstance(job_id, str) or not job_id:
            raise ServiceError("job_id must be a non-empty string")

        raw_options = spec.get("options")
        if not isinstance(raw_options, list) or not raw_options:
            raise ServiceError("options must be a non-empty list")
        options: list[SpaceOption] = []
        for i, opt in enumerate(raw_options):
            if not isinstance(opt, dict):
                raise ServiceError(f"options[{i}] must be an object")
            try:
                k = int(opt["k"])
                duration_s = float(opt["duration_s"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ServiceError(
                    f"options[{i}] needs integer 'k' and numeric "
                    f"'duration_s'") from exc
            if "nodes" in opt:
                nodes = frozenset(str(n) for n in opt["nodes"])
                unknown = nodes - self.cluster.node_names
                if unknown:
                    raise ServiceError(
                        f"options[{i}] names unknown nodes "
                        f"{sorted(unknown)[:4]}")
            elif "attr" in opt:
                nodes = self.cluster.nodes_with_attr(str(opt["attr"]))
                if not nodes:
                    raise ServiceError(
                        f"options[{i}]: no node has attr {opt['attr']!r}")
            else:
                nodes = self.cluster.node_names
            options.append(SpaceOption(nodes, k=k, duration_s=duration_s,
                                       label=str(opt.get("label", ""))))

        priority_name = str(spec.get("priority", "slo"))
        try:
            priority = _PRIORITIES[priority_name]
        except KeyError:
            raise ServiceError(
                f"unknown priority {priority_name!r}; expected one of "
                f"{sorted(_PRIORITIES)}") from None
        deadline = spec.get("deadline")
        deadline = None if deadline is None else float(deadline)
        now = self.now()
        if priority is PriorityClass.BEST_EFFORT:
            value_fn = best_effort_value(release_time=now)
        else:
            if deadline is None:
                raise ServiceError("SLO jobs need a 'deadline'")
            value_fn = StepValue(float(spec.get("value", 1000.0)), deadline)
        return self.submit(JobRequest(
            job_id=job_id, options=tuple(options), value_fn=value_fn,
            priority=priority, submit_time=now, deadline=deadline))

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; effective at the scheduler's next safe point.

        Never blocks on an in-flight cycle (see the module docstring): the
        request lands on the scheduler's atomic cancel set immediately, and
        the registry is reconciled either here (lock free right now) or by
        the cycle that drains the cancellation.
        """
        rec = self._jobs.get(job_id)
        if rec is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if rec.state in (COMPLETED, CANCELLED, CULLED):
            return rec
        rec.cancel_requested = True
        self.scheduler.cancel(job_id)
        if self._lock.acquire(blocking=False):
            try:
                self._finish_cancelled(self.scheduler._drain_cancellations())
            finally:
                self._lock.release()
        return rec

    def job(self, job_id: str) -> JobRecord:
        rec = self._jobs.get(job_id)
        if rec is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return rec

    def jobs(self) -> list[JobRecord]:
        return list(self._jobs.values())

    def complete(self, job_id: str) -> JobRecord:
        """Report that a running job actually finished (external executor)."""
        with self._lock:
            rec = self.job(job_id)
            if rec.state != RUNNING:
                raise ServiceError(
                    f"job {job_id!r} is {rec.state}, not running")
            self.scheduler.on_job_finished(job_id, self.now())
            rec.state = COMPLETED
            rec.finished_at = self.now()
            return rec

    # -- cluster events ------------------------------------------------------
    def cluster_event(self, action: str, node: str) -> dict[str, Any]:
        """Apply a node add/remove event to the scheduler's cluster view."""
        with self._lock:
            if action in ("remove", "drain"):
                self.scheduler.state.drain(node)
            elif action in ("add", "restore"):
                self.scheduler.state.restore(node)
            else:
                raise ServiceError(
                    f"unknown cluster event action {action!r}; expected "
                    f"add/restore or remove/drain")
            return {"node": node, "action": action,
                    "drained": sorted(self.scheduler.state.drained_nodes)}

    def drain_domain(self, domain: str) -> dict[str, Any]:
        """Drain (or restore) every node of one scheduling domain.

        Only meaningful when sharding is active; the domain keeps its
        running jobs but the coordinator stops assigning new work to it
        while any feasible alternative domain exists.  Prefix the name
        with ``~`` to restore instead (``"~dom2"``).
        """
        with self._lock:
            coord = self.scheduler._coordinator
            if coord is None:
                raise ServiceError(
                    "drain_domain requires sharding (shard_mode != 'off')")
            restore = domain.startswith("~")
            name = domain.lstrip("~")
            matches = [d for d in coord.domains if d.name == name]
            if not matches:
                known = ", ".join(d.name for d in coord.domains)
                raise ServiceError(
                    f"unknown domain {name!r}; known domains: {known}")
            state = self.scheduler.state
            for node in sorted(matches[0].nodes):
                (state.restore if restore else state.drain)(node)
            return {"domain": name,
                    "action": "restore" if restore else "drain",
                    "nodes": len(matches[0].nodes),
                    "drained": sorted(state.drained_nodes)}

    # -- cycles --------------------------------------------------------------
    def run_one_cycle(self) -> CycleResult:
        """Run one scheduling cycle at the current service time."""
        with self._lock:
            now = self.now()
            if self.auto_complete:
                for rec in self._jobs.values():
                    if (rec.state == RUNNING and rec.expected_end is not None
                            and rec.expected_end <= now + 1e-9):
                        self.scheduler.on_job_finished(rec.job_id, now)
                        rec.state = COMPLETED
                        rec.finished_at = now
            result = self.scheduler.run_cycle(now)
            for alloc in result.allocations:
                rec = self._jobs.get(alloc.job_id)
                if rec is not None:
                    rec.state = RUNNING
                    rec.started_at = alloc.start_time
                    rec.expected_end = alloc.expected_end
                    rec.nodes = tuple(sorted(alloc.nodes))
            for job_id in result.preempted:
                # Killed by the preemption extension and re-queued by the
                # scheduler: back to pending, nodes released.
                rec = self._jobs.get(job_id)
                if rec is not None and rec.state == RUNNING:
                    rec.state = PENDING
                    rec.started_at = None
                    rec.expected_end = None
                    rec.nodes = ()
            for job_id in result.culled:
                rec = self._jobs.get(job_id)
                if rec is not None and rec.state == PENDING:
                    rec.state = CULLED
                    rec.finished_at = now
            self._finish_cancelled(result.cancelled)
            self._cycles_run += 1
            return result

    def _finish_cancelled(self, job_ids: list[str]) -> None:
        for job_id in job_ids:
            rec = self._jobs.get(job_id)
            if rec is not None and rec.state in (PENDING, RUNNING):
                rec.state = CANCELLED
                rec.finished_at = self.now()

    # -- introspection -------------------------------------------------------
    def status(self) -> dict[str, Any]:
        sched = self.scheduler
        by_state: dict[str, int] = {}
        for rec in self._jobs.values():
            by_state[rec.state] = by_state.get(rec.state, 0) + 1
        out: dict[str, Any] = {
            "accepting": self._accepting,
            "now": self.now(),
            "cycles_run": self._cycles_run,
            "jobs": by_state,
            "pending": sched.pending_count,
            "utilization": sched.state.utilization(),
            "drained_nodes": sorted(sched.state.drained_nodes),
            "delta_mode": sched.config.delta_mode,
        }
        if sched._delta is not None:
            ds = sched._delta.stats
            out["delta"] = {
                "cycles": ds.cycles, "full_rebuilds": ds.full_rebuilds,
                "fragments_compiled": ds.fragments_compiled,
                "fragments_reused": ds.fragments_reused,
            }
        coord = sched._coordinator
        if coord is not None:
            latest = sched.cycle_history[-1] if sched.cycle_history else None
            out["shard"] = {
                "mode": sched.config.shard_mode,
                "domains": [{"domain": d.name, "nodes": len(d.nodes)}
                            for d in coord.domains],
                "last_cycle": {
                    "boundary_jobs": latest.shard_boundary_jobs,
                    "trimmed_jobs": latest.shard_trimmed_jobs,
                    "quality_bound": latest.shard_quality_bound,
                    "greedy_fallbacks": latest.shard_greedy_fallbacks,
                    "domain_stats": latest.domain_stats,
                } if latest is not None else None,
            }
            if coord.delta_stores is not None:
                ds = coord.delta_stores.aggregate_stats()
                out["delta"] = {
                    "cycles": ds.cycles, "full_rebuilds": ds.full_rebuilds,
                    "fragments_compiled": ds.fragments_compiled,
                    "fragments_reused": ds.fragments_reused,
                }
        return out

    def cycles(self, limit: int = 20) -> list[dict[str, Any]]:
        """The most recent cycles' stats records, oldest first."""
        history = self.scheduler.cycle_history[-max(0, limit):]
        return [dict(vars(stats)) for stats in history]

    # -- drain ---------------------------------------------------------------
    def drain(self) -> dict[str, Any]:
        """Graceful shutdown: stop accepting, settle, persist final stats.

        Leaves running jobs to their executors (this is a scheduler drain,
        not a cluster teardown) but verifies the allocation ledger has no
        orphans before declaring the shutdown clean.  Idempotent.
        """
        from repro.verify.audit import check_ledger_orphans

        with self._lock:
            if self._drained_stats is not None:
                return self._drained_stats
            self._accepting = False
            self._finish_cancelled(self.scheduler._drain_cancellations())
            orphans = check_ledger_orphans(self.scheduler.state,
                                           self.scheduler._launched)
            final = {
                "status": self.status(),
                "jobs": [rec.to_dict() for rec in self._jobs.values()],
                "cycles": self.cycles(limit=len(
                    self.scheduler.cycle_history)),
                "ledger_orphans": [str(v) for v in orphans],
                "clean": not orphans,
            }
            if self.stats_path is not None:
                self.stats_path.parent.mkdir(parents=True, exist_ok=True)
                self.stats_path.write_text(json.dumps(final, indent=2,
                                                      default=str))
            self._drained_stats = final
            self.api.close()
            return final


async def run_cycle_loop(service: SchedulerService,
                         stop: asyncio.Event,
                         cycle_s: float | None = None) -> int:
    """Fire scheduling cycles on the plan-ahead timer until ``stop`` is set.

    Cycles run in a worker thread (they hold the service lock and can
    solve MILPs for a while); the event loop stays free to serve HTTP and
    accept cancellations mid-solve.  Returns the number of cycles run.
    """
    period = (cycle_s if cycle_s is not None
              else service.scheduler.config.cycle_s)
    loop = asyncio.get_running_loop()
    ran = 0
    stopper = asyncio.ensure_future(stop.wait())
    try:
        while not stop.is_set():
            sleeper = asyncio.ensure_future(service.clock.sleep(period))
            await asyncio.wait({sleeper, stopper},
                               return_when=asyncio.FIRST_COMPLETED)
            if stop.is_set():
                sleeper.cancel()
                break
            await loop.run_in_executor(None, service.run_one_cycle)
            ran += 1
    finally:
        stopper.cancel()
    return ran


__all__ = ["CANCELLED", "COMPLETED", "CULLED", "JobRecord", "PENDING",
           "RUNNING", "SchedulerService", "run_cycle_loop"]
