"""Tests for STRL analyses: stats, simplify, deadline culling."""

import pytest
from hypothesis import given, settings

from repro.strl import (Barrier, Max, Min, NCk, Scale, Sum, cull_by_horizon,
                        simplify, stats)
from tests.strl.test_parser import _exprs

NODES = frozenset({"M1", "M2", "M3", "M4"})


def leaf(start=0, dur=2, v=4.0, nodes=NODES, k=2):
    return NCk(nodes=nodes, k=k, start=start, duration=dur, value=v)


class TestStats:
    def test_counts(self):
        e = Sum(Max(leaf(), leaf(start=1)), Scale(leaf(), 2.0))
        s = stats(e)
        assert s["size"] == 6
        assert s["leaves"] == 3
        assert s["max_ops"] == 1
        assert s["sum_ops"] == 1
        assert s["scale_ops"] == 1
        assert s["horizon"] == 3
        assert s["equivalence_sets"] == 1
        assert s["referenced_nodes"] == 4


class TestSimplify:
    def test_single_child_operators_collapse(self):
        assert simplify(Max(leaf())) == leaf()
        assert simplify(Min(leaf())) == leaf()
        assert simplify(Sum(leaf())) == leaf()

    def test_nested_max_flattens(self):
        e = Max(Max(leaf(), leaf(start=1)), leaf(start=2))
        s = simplify(e)
        assert isinstance(s, Max)
        assert len(s.subexprs) == 3

    def test_scale_one_disappears(self):
        assert simplify(Scale(leaf(), 1.0)) == leaf()

    def test_scale_of_scale_composes(self):
        s = simplify(Scale(Scale(leaf(v=2.0), 3.0), 2.0))
        # Folded into the leaf value: 2 * 3 * 2 = 12.
        assert isinstance(s, NCk)
        assert s.value == pytest.approx(12.0)

    def test_scale_folds_into_leaf(self):
        s = simplify(Scale(leaf(v=3.0), 2.0))
        assert isinstance(s, NCk) and s.value == 6.0

    def test_barrier_child_simplified(self):
        s = simplify(Barrier(Max(leaf()), 2.0))
        assert isinstance(s, Barrier)
        assert s.subexpr == leaf()

    @settings(max_examples=100, deadline=None)
    @given(_exprs())
    def test_simplify_preserves_max_value_and_shrinks(self, expr):
        s = simplify(expr)
        assert s.size <= expr.size
        assert s.max_value() == pytest.approx(expr.max_value())

    @settings(max_examples=50, deadline=None)
    @given(_exprs())
    def test_simplify_is_idempotent(self, expr):
        once = simplify(expr)
        assert simplify(once) == once


class TestCulling:
    def test_leaf_past_horizon_dies(self):
        assert cull_by_horizon(leaf(start=2, dur=2), horizon=3) is None

    def test_leaf_at_horizon_survives(self):
        assert cull_by_horizon(leaf(start=1, dur=2), horizon=3) is not None

    def test_max_keeps_survivors(self):
        e = Max(leaf(start=0, dur=2), leaf(start=5, dur=2))
        culled = cull_by_horizon(e, horizon=3)
        assert isinstance(culled, NCk)
        assert culled.start == 0

    def test_min_dies_if_any_child_dies(self):
        e = Min(leaf(start=0, dur=1), leaf(start=5, dur=2))
        assert cull_by_horizon(e, horizon=3) is None

    def test_sum_prunes_children(self):
        e = Sum(leaf(start=0, dur=1), leaf(start=9, dur=1))
        culled = cull_by_horizon(e, horizon=3)
        assert isinstance(culled, NCk)

    def test_scale_and_barrier_propagate(self):
        assert cull_by_horizon(Scale(leaf(start=9, dur=1), 2.0), 3) is None
        kept = cull_by_horizon(Barrier(leaf(start=0, dur=1), 2.0), 3)
        assert isinstance(kept, Barrier)

    @settings(max_examples=80, deadline=None)
    @given(_exprs())
    def test_culled_horizon_never_exceeds_limit(self, expr):
        culled = cull_by_horizon(expr, horizon=4)
        if culled is not None:
            assert culled.horizon() <= 4
