"""Rayon-style reservation system (admission control + capacity plan)."""

from repro.reservation.plan import ReservationPlan, ReservedWindow
from repro.reservation.rayon import RayonReservationSystem, ReservationDecision

__all__ = ["RayonReservationSystem", "ReservationDecision", "ReservationPlan",
           "ReservedWindow"]
