"""Fig. 8: synthetic unconstrained SLO + BE mix (GS MIX, scaled RC80).

Paper shapes asserted:

* the smaller testbed reproduces the Fig. 6 trends: TetriSched >= CS on SLO
  attainment (esp. under under-estimation) and lower BE latency on average
  (the paper notes one exception point at -50 % where TetriSched's lack of
  preemption can inflate BE latency — we therefore only assert the mean).
"""

from conftest import nanmean, save_and_print

from repro.experiments import fig8

TOL = 6.0


def test_fig8(benchmark, figure_cache):
    result = benchmark.pedantic(
        lambda: figure_cache("fig8", fig8), rounds=1, iterations=1)
    save_and_print("fig8", result.text)
    sweep = result.sweep

    ts_total = sweep.get("TetriSched", "slo_total_pct")
    cs_total = sweep.get("Rayon/CS", "slo_total_pct")
    assert nanmean(ts_total) >= nanmean(cs_total)
    assert ts_total[0] >= cs_total[0] - TOL  # -50% point

    ts_lat = sweep.get("TetriSched", "mean_be_latency_s")
    cs_lat = sweep.get("Rayon/CS", "mean_be_latency_s")
    assert nanmean(ts_lat) < nanmean(cs_lat)
