"""Ablation: MILP backend choice ("translatable to any MILP backend").

Solves the same scheduling-cycle MILP with all available backends,
asserting identical objectives and benchmarking the pure-Python
branch-and-bound against scipy/HiGHS.
"""

import pytest
from conftest import save_and_print

from repro.cluster import Cluster, ClusterState
from repro.core import StrlCompiler
from repro.experiments import format_table
from repro.solver import make_backend, scipy_available
from repro.strl import Max, NCk


@pytest.fixture(scope="module")
def compiled():
    cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
    gpu = cluster.nodes_with_attr("gpu")
    state = ClusterState(cluster.node_names)
    batch = []
    for j in range(5):
        leaves = [NCk(gpu, 2, s, 2, 4.0) for s in range(4)]
        leaves += [NCk(cluster.node_names, 2, s, 3, 3.0) for s in range(4)]
        batch.append((f"j{j}", Max(*leaves)))
    return StrlCompiler(state, 10).compile(batch)


@pytest.mark.parametrize("backend", ["pure", "scipy", "pure-scipy-lp"])
def test_backend_solves_cycle_milp(benchmark, compiled, backend):
    if backend != "pure" and not scipy_available():
        pytest.skip("scipy not installed")
    solver = make_backend(backend)

    res = benchmark.pedantic(lambda: solver.solve(compiled.model),
                             rounds=3, iterations=1)
    assert res.status.has_solution
    reference = make_backend("pure").solve(compiled.model)
    assert res.objective == pytest.approx(reference.objective, rel=1e-6)

    text = (f"Ablation: solver backend '{backend}' on one cycle MILP "
            f"({compiled.stats['variables']} vars, "
            f"{compiled.stats['constraints']} cons) -> objective "
            f"{res.objective:.2f}, nodes {res.nodes}")
    save_and_print(f"ablation_solver_{backend.replace('-', '_')}", text)
