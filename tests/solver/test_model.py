"""Unit tests for the MILP model container."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.solver import EQ, GE, LE, MAXIMIZE, MINIMIZE, Model


@pytest.fixture()
def model():
    return Model("t")


class TestConstraints:
    def test_rhs_normalization(self, model):
        x = model.add_continuous("x")
        con = model.add_constraint(x + 3, LE, 10)
        assert con.rhs == 7.0
        assert con.expr.constant == 0.0

    def test_variables_on_both_sides(self, model):
        x, y = model.add_continuous("x"), model.add_continuous("y")
        con = model.add_constraint(x, LE, y + 1)
        assert con.expr.coefficient(x) == 1.0
        assert con.expr.coefficient(y) == -1.0
        assert con.rhs == 1.0

    def test_constant_true_constraint_allowed(self, model):
        model.add_constraint(3, LE, 5)  # no variables, trivially true

    def test_constant_false_constraint_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_constraint(5, LE, 3)

    def test_bad_sense(self, model):
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            model.add_constraint(x, "<", 3)

    def test_violation(self, model):
        x = model.add_continuous("x")
        con_le = model.add_constraint(x, LE, 5)
        con_ge = model.add_constraint(x, GE, 2)
        con_eq = model.add_constraint(x, EQ, 3)
        pt = np.array([7.0])
        assert con_le.violation(pt) == pytest.approx(2.0)
        assert con_ge.violation(pt) == 0.0
        assert con_eq.violation(pt) == pytest.approx(4.0)


class TestStandardArrays:
    def test_maximize_negates_costs(self, model):
        x = model.add_continuous("x")
        model.set_objective(5 * x, sense=MAXIMIZE)
        sa = model.to_standard_arrays()
        assert sa.c[x.index] == -5.0
        assert sa.obj_sign == -1.0

    def test_ge_rows_become_le(self, model):
        x = model.add_continuous("x")
        model.add_constraint(x, GE, 2)
        sa = model.to_standard_arrays()
        assert sa.a_ub[0, x.index] == -1.0
        assert sa.b_ub[0] == -2.0

    def test_eq_rows_separate(self, model):
        x = model.add_continuous("x")
        model.add_constraint(x, EQ, 4)
        sa = model.to_standard_arrays()
        assert sa.a_eq.shape == (1, 1)
        assert sa.a_ub.shape == (0, 1)

    def test_integrality_mask(self, model):
        model.add_continuous("x")
        model.add_integer("n")
        model.add_binary("b")
        sa = model.to_standard_arrays()
        assert sa.integrality.tolist() == [False, True, True]

    def test_objective_value_includes_constant(self, model):
        x = model.add_continuous("x")
        model.set_objective(2 * x + 7, sense=MINIMIZE)
        assert model.objective_value(np.array([3.0])) == pytest.approx(13.0)


class TestFeasibilityCheck:
    def test_bounds_and_integrality(self, model):
        n = model.add_integer("n", lb=0, ub=5)
        model.add_constraint(n, LE, 4)
        assert model.check_feasible(np.array([3.0]))
        assert not model.check_feasible(np.array([3.5]))   # fractional
        assert not model.check_feasible(np.array([6.0]))   # above ub
        assert not model.check_feasible(np.array([4.5]))   # violates row

    def test_stats(self, model):
        x = model.add_binary("x")
        y = model.add_integer("y")
        model.add_constraint(x + y, LE, 3)
        s = model.stats()
        assert s["variables"] == 2
        assert s["binary_variables"] == 1
        assert s["integer_variables"] == 2
        assert s["constraints"] == 1
        assert s["nonzeros"] == 2
