"""Space-Time Request Language (STRL): AST, parser, generator, analyses."""

from repro.strl.analysis import cull_by_horizon, simplify, stats
from repro.strl.ast import (Barrier, ElasticNCk, LnCk, Max, Min, NCk, Scale,
                            StrlNode, Sum)
from repro.strl.generator import (SpaceOption, generate_batch_strl,
                                  generate_elastic_strl, generate_job_strl,
                                  quantize_duration)
from repro.strl.parser import parse
from repro.strl.printer import to_text
from repro.strl.rdl import Atom, Window, rdl_to_strl
from repro.strl.visualize import ascii_tree, spacetime_grid

__all__ = [
    "Atom", "Barrier", "ElasticNCk", "LnCk", "ascii_tree", "Max", "Min", "NCk", "Scale", "SpaceOption",
    "StrlNode", "Sum", "Window", "cull_by_horizon", "generate_batch_strl",
    "generate_elastic_strl", "generate_job_strl", "parse",
    "quantize_duration", "rdl_to_strl",
    "simplify", "spacetime_grid", "stats", "to_text",
]
