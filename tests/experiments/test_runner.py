"""Tests for the experiment runner and scheduler factory."""

import pytest

from repro.errors import ReproError
from repro.experiments import (RC80_SCALED, RC256_SCALED, ClusterSpec,
                               RunSpec, build_scheduler, run_experiment)
from repro.reservation import RayonReservationSystem
from repro.workloads import GR_MIX, GS_HET


def tiny_spec(**overrides):
    defaults = dict(scheduler="TetriSched", composition=GR_MIX,
                    cluster=ClusterSpec(racks=2, nodes_per_rack=4,
                                        gpu_racks=1),
                    num_jobs=10, backend="auto", target_utilization=1.2)
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestClusterSpec:
    def test_scaled_testbeds(self):
        assert RC256_SCALED.size == 64
        assert RC80_SCALED.size == 32
        assert RC80_SCALED.gpu_racks == 2

    def test_build(self):
        c = ClusterSpec(2, 3, 1).build()
        assert len(c) == 6
        assert len(c.nodes_with_attr("gpu")) == 3


class TestBuildScheduler:
    @pytest.mark.parametrize("name,expected_cls_name", [
        ("Rayon/CS", "CapacityScheduler"),
        ("TetriSched", "TetriSchedAdapter"),
        ("TetriSched-NH", "TetriSchedAdapter"),
        ("TetriSched-NG", "TetriSchedAdapter"),
        ("TetriSched-NP", "TetriSchedAdapter"),
    ])
    def test_known_names(self, name, expected_cls_name):
        spec = tiny_spec(scheduler=name)
        cluster = spec.cluster.build()
        rayon = RayonReservationSystem(len(cluster))
        sched = build_scheduler(spec, cluster, rayon)
        assert type(sched).__name__ == expected_cls_name
        assert sched.name == name

    def test_unknown_name_rejected(self):
        spec = tiny_spec(scheduler="FancySched")
        cluster = spec.cluster.build()
        with pytest.raises(ReproError):
            build_scheduler(spec, cluster, RayonReservationSystem(8))

    def test_variant_flags_applied(self):
        cluster = tiny_spec().cluster.build()
        rayon = RayonReservationSystem(len(cluster))
        nh = build_scheduler(tiny_spec(scheduler="TetriSched-NH"), cluster,
                             rayon)
        assert not nh.scheduler.config.heterogeneity_aware
        np_ = build_scheduler(tiny_spec(scheduler="TetriSched-NP"), cluster,
                              RayonReservationSystem(len(cluster)))
        assert np_.scheduler.config.plan_ahead_s == 0.0
        ng = build_scheduler(tiny_spec(scheduler="TetriSched-NG"), cluster,
                             RayonReservationSystem(len(cluster)))
        assert not ng.scheduler.config.global_scheduling


class TestRunExperiment:
    def test_deterministic(self):
        a = run_experiment(tiny_spec(seed=3))
        b = run_experiment(tiny_spec(seed=3))
        assert a.metrics.as_dict() == b.metrics.as_dict()

    def test_all_jobs_accounted_for(self):
        res = run_experiment(tiny_spec())
        assert res.metrics.jobs_total == 10

    def test_cs_stack_runs(self):
        res = run_experiment(tiny_spec(scheduler="Rayon/CS"))
        assert res.scheduler_name == "Rayon/CS"
        assert res.metrics.jobs_total == 10

    def test_het_composition_runs(self):
        res = run_experiment(tiny_spec(composition=GS_HET, num_jobs=8))
        assert res.metrics.jobs_total == 8

    def test_with_override(self):
        spec = tiny_spec()
        spec2 = spec.with_(estimate_error=0.5)
        assert spec2.estimate_error == 0.5
        assert spec.estimate_error == 0.0
