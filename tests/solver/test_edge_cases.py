"""Edge-case coverage for the solver substrate."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver import (BranchBoundOptions, BranchBoundSolver, LinExpr,
                          Model, SolveStatus, make_backend, solve_lp)
from repro.solver.backend import BACKEND_NAMES
from repro.solver.simplex import solve_lp as simplex_lp


class TestSimplexEdges:
    def test_iteration_limit_raises(self):
        # Any nontrivial LP with max_iter=1 must hit the limit cleanly.
        with pytest.raises(SolverError):
            solve_lp([1, 1, 1],
                     a_ub=[[1, 2, 3], [3, 1, 2], [2, 3, 1]],
                     b_ub=[10, 10, 10],
                     a_eq=[[1, 1, 1]], b_eq=[5],
                     max_iter=1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            solve_lp([1, 1], a_ub=[[1, 1]], b_ub=[1, 2])

    def test_single_variable_equality(self):
        r = solve_lp([1], a_eq=[[2]], b_eq=[6])
        assert r.x[0] == pytest.approx(3.0)

    def test_zero_objective(self):
        r = solve_lp([0, 0], a_ub=[[1, 1]], b_ub=[4])
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(0.0)

    def test_tight_equality_at_bounds(self):
        # x + y == 8 with x,y <= 4 forces x = y = 4.
        r = solve_lp([1, 2], a_eq=[[1, 1]], b_eq=[8], ub=[4, 4])
        assert r.status == SolveStatus.OPTIMAL
        np.testing.assert_allclose(r.x, [4, 4], atol=1e-7)

    def test_equality_infeasible_beyond_bounds(self):
        r = solve_lp([1], a_eq=[[1]], b_eq=[9], ub=[4])
        assert r.status == SolveStatus.INFEASIBLE


class TestBackendRegistry:
    def test_all_documented_names_construct(self):
        for name in BACKEND_NAMES:
            make_backend(name)  # no raise (scipy present in test env)

    def test_unknown_name(self):
        with pytest.raises(SolverError):
            make_backend("cplex")

    def test_auto_resolves(self):
        backend = make_backend("auto")
        m = Model()
        x = m.add_binary("x")
        m.set_objective(x, sense="maximize")
        assert backend.solve(m).objective == pytest.approx(1.0)


class TestBranchBoundEdges:
    def test_model_without_constraints(self):
        m = Model()
        x = m.add_integer("x", ub=7)
        m.set_objective(x, sense="maximize")
        res = BranchBoundSolver().solve(m)
        assert res.objective == pytest.approx(7.0)

    def test_objective_constant_carried(self):
        m = Model()
        x = m.add_integer("x", ub=3)
        m.set_objective(x + 100, sense="maximize")
        res = BranchBoundSolver().solve(m)
        assert res.objective == pytest.approx(103.0)

    def test_all_fixed_variables(self):
        m = Model()
        x = m.add_integer("x", lb=2, ub=2)
        m.set_objective(x, sense="minimize")
        res = BranchBoundSolver().solve(m)
        assert res.objective == pytest.approx(2.0)

    def test_fractional_bounds_on_integer_var(self):
        m = Model()
        x = m.add_integer("x", lb=0.5, ub=3.7)
        m.set_objective(x, sense="maximize")
        res = BranchBoundSolver().solve(m)
        assert res.objective == pytest.approx(3.0)

    def test_negative_integer_domain(self):
        m = Model()
        x = m.add_integer("x", lb=-5, ub=5)
        m.add_constraint(2 * x, ">=", -7)  # x >= -3.5 -> -3
        m.set_objective(x, sense="minimize")
        res = BranchBoundSolver().solve(m)
        assert res.objective == pytest.approx(-3.0)

    def test_continuous_and_integer_mix(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_continuous("y", ub=10)
        m.add_constraint(x + y, "<=", 7.5)
        m.set_objective(2 * x + y, sense="maximize")
        res = BranchBoundSolver().solve(m)
        # x=7 (integer), y=0.5.
        assert res.objective == pytest.approx(14.5)


class TestLinExprEdges:
    def test_expr_plus_expr_cancellation_in_sum(self):
        m = Model()
        x = m.add_continuous("x")
        e = (x + 1) + (-1 * x - 1)
        assert e.is_constant and e.constant == 0.0

    def test_repr_forms(self):
        m = Model()
        x = m.add_continuous("x")
        assert "x0" in repr(2 * x)
        assert repr(LinExpr(constant=3.0)) == "LinExpr(3)"
