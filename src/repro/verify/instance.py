"""Serializable fuzz instances: tiny clusters + workloads, hypothesis-free.

The differential fuzz harness needs an instance representation that
(a) hypothesis strategies can generate, (b) a failing run can dump to a
JSON seed file, and (c) ``python -m repro fuzz --replay`` can rebuild
bit-identically without hypothesis installed.  :class:`FuzzInstance` is
that representation; :func:`build_instance` turns it into a cluster
state, STRL batch, and compiled model using the exact production paths
(:func:`~repro.strl.generator.generate_job_strl`,
:class:`~repro.core.compiler.StrlCompiler`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.compiler import CompiledBatch, StrlCompiler
from repro.strl.ast import StrlNode
from repro.strl.generator import (SpaceOption, generate_elastic_strl,
                                  generate_job_strl)
from repro.valuefn import StepValue


@dataclass(frozen=True)
class FuzzJob:
    """One pending job in a fuzz instance.

    ``rack`` picks the preferred equivalence set: an index into the
    cluster's racks, or ``None`` for the whole cluster.  ``fallback``
    additionally offers a slower whole-cluster option (one extra quantum),
    giving the compiler a Max-of-nCk choice to get wrong.  ``elastic``
    instead generates a malleable width ladder (1..k, work-conserving
    durations) compiled through :class:`~repro.strl.ast.ElasticNCk` —
    the fuzz matrix's coverage of the elastic shape family.
    """

    job_id: str
    k: int
    duration_q: int
    value: float
    rack: int | None = None
    deadline_q: int | None = None
    fallback: bool = False
    elastic: bool = False


@dataclass(frozen=True)
class FuzzInstance:
    """A complete, replayable differential-fuzz scenario."""

    racks: int
    nodes_per_rack: int
    quantum_s: float
    plan_ahead_quanta: int
    jobs: tuple[FuzzJob, ...] = ()
    #: Pre-existing load: ``(node_count, hold_quanta)`` blocks occupying
    #: the first free nodes, so fuzzing also covers non-empty clusters.
    busy: tuple[tuple[int, int], ...] = field(default=())

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzInstance":
        raw = json.loads(text)
        jobs = tuple(FuzzJob(**j) for j in raw.pop("jobs"))
        busy = tuple((int(n), int(q)) for n, q in raw.pop("busy"))
        return cls(jobs=jobs, busy=busy, **raw)

    @classmethod
    def load(cls, path: str | Path) -> "FuzzInstance":
        return cls.from_json(Path(path).read_text())


def build_instance(
    spec: FuzzInstance,
) -> tuple[ClusterState, list[tuple[str, StrlNode]], CompiledBatch | None]:
    """Materialize a spec into (state, STRL batch, compiled model).

    Returns ``compiled=None`` when every job was culled (e.g. deadlines
    unreachable within the plan-ahead window) — a trivially-passing
    instance for the differential harness.
    """
    cluster = Cluster.build(spec.racks, spec.nodes_per_rack)
    state = ClusterState(cluster.node_names)
    q = spec.quantum_s
    for i, (count, hold_q) in enumerate(spec.busy):
        free = sorted(state.free_nodes())
        take = free[: min(count, max(0, len(free) - 1))]
        if take:
            state.start(f"busy{i}", frozenset(take), 0.0, hold_q * q)

    all_nodes = cluster.node_names
    racks = sorted(cluster.rack_names)
    exprs: list[tuple[str, StrlNode]] = []
    for job in spec.jobs:
        if job.rack is not None:
            nodes = frozenset(cluster.rack_nodes(racks[job.rack % len(racks)]))
        else:
            nodes = all_nodes
        deadline = (job.deadline_q * q if job.deadline_q is not None
                    else spec.plan_ahead_quanta * q)
        if job.elastic:
            # Width ladder 1..k with work-conserving (rounded-up) quanta;
            # one option per width on the same node set so the generator
            # takes the ElasticNCk path rather than its rigid fallback.
            options = [
                SpaceOption(nodes=nodes, k=w,
                            duration_s=-(-job.duration_q * job.k // w) * q,
                            label=f"w{w}")
                for w in range(1, job.k + 1)]
            expr = generate_elastic_strl(
                options, StepValue(job.value, deadline), now=0.0,
                quantum_s=q, plan_ahead_quanta=spec.plan_ahead_quanta,
                deadline=deadline)
        else:
            options = [SpaceOption(nodes=nodes, k=job.k,
                                   duration_s=job.duration_q * q,
                                   label="pref")]
            if job.fallback and nodes != all_nodes:
                options.append(SpaceOption(nodes=all_nodes, k=job.k,
                                           duration_s=(job.duration_q + 1) * q,
                                           label="any"))
            expr = generate_job_strl(options, StepValue(job.value, deadline),
                                     now=0.0, quantum_s=q,
                                     plan_ahead_quanta=spec.plan_ahead_quanta,
                                     deadline=deadline)
        if expr is not None:
            exprs.append((job.job_id, expr))

    if not exprs:
        return state, [], None
    compiled = StrlCompiler(state, quantum_s=q, now=0.0).compile(exprs)
    return state, exprs, compiled


__all__ = ["FuzzInstance", "FuzzJob", "build_instance"]
