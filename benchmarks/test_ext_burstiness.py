"""Extension benchmark: arrival burstiness sweep (companion-TR claim).

The paper's companion TR reports TetriSched scaling "across varied cluster
loads, inter-arrival burstiness, slowdown, plan-ahead, and workload mixes".
This bench sweeps the coefficient of variation of arrival gaps (1.0 =
Poisson, 3.0 = heavy bursts) on the heterogeneous workload and asserts that
TetriSched's advantage *grows* with burstiness: bursts pile jobs into one
cycle, which is exactly where simultaneous global consideration beats
queue-order scheduling.
"""

from conftest import nanmean, save_and_print

from repro.experiments import RC80_SCALED, RunSpec, format_table, run_experiment
from repro.workloads import GS_HET

BURSTINESS = [1.0, 2.0, 3.0]


def run_all():
    out = {}
    for sched in ("Rayon/CS", "TetriSched"):
        for cv in BURSTINESS:
            out[(sched, cv)] = run_experiment(RunSpec(
                scheduler=sched, composition=GS_HET, cluster=RC80_SCALED,
                num_jobs=48, target_utilization=1.3, burstiness=cv))
    return out


def test_burstiness_sweep(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for sched in ("Rayon/CS", "TetriSched"):
        row = [sched]
        for cv in BURSTINESS:
            row.append(results[(sched, cv)].metrics.slo_total_pct)
        rows.append(row)
    text = ("Extension: SLO attainment vs arrival burstiness "
            "(GS HET, scaled RC80)\n"
            + format_table(["scheduler"] + [f"CV={c}" for c in BURSTINESS],
                           rows))
    save_and_print("ext_burstiness", text)

    ts = [results[("TetriSched", cv)].metrics.slo_total_pct
          for cv in BURSTINESS]
    cs = [results[("Rayon/CS", cv)].metrics.slo_total_pct
          for cv in BURSTINESS]
    # TetriSched stays robust across burstiness...
    assert min(ts) > 85.0
    # ...and beats CS at every burstiness level, with the gap at the
    # burstiest point at least as large as at Poisson arrivals.
    for t, c in zip(ts, cs):
        assert t > c
    assert (ts[-1] - cs[-1]) >= (ts[0] - cs[0]) - 6.0
