"""Soak tests: larger end-to-end runs with conservation invariants.

Every scheduler stack must satisfy, on a contended mixed workload:

1. **No double-booking** — a node never hosts two jobs at once (verified
   from the execution trace intervals).
2. **Conservation** — every job is finalized exactly once: completed,
   culled, or (CS has no culling) eventually completed.
3. **Gang integrity** — every launch allocated exactly the gang size the
   job asked for (elastic jobs: within [min_k, k]).
4. **Launch-after-submit** — no job starts before it arrived.
"""

import pytest

from repro.baselines import CapacityScheduler
from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.reservation import RayonReservationSystem
from repro.sim import ExecutionTrace, Simulation, TetriSchedAdapter
from repro.sim.jobs import ElasticType
from repro.sim.trace import CULL, LAUNCH
from repro.workloads import GS_HET, GridmixConfig, generate_workload


def build(scheduler_kind: str, estimate_error: float):
    cluster = Cluster.build(racks=4, nodes_per_rack=4, gpu_racks=2)
    jobs = generate_workload(GS_HET, cluster, GridmixConfig(
        num_jobs=40, target_utilization=1.4, estimate_error=estimate_error,
        seed=11))
    rayon = RayonReservationSystem(len(cluster), step_s=10.0)
    if scheduler_kind == "cs":
        scheduler = CapacityScheduler(cluster, rayon, cycle_s=10.0)
    else:
        cfg = TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=60,
            global_scheduling=(scheduler_kind != "greedy"),
            enable_preemption=(scheduler_kind == "preemption"))
        scheduler = TetriSchedAdapter(cluster, cfg)
    trace = ExecutionTrace()
    sim = Simulation(cluster, scheduler, jobs, rayon=rayon, trace=trace)
    return cluster, jobs, sim, trace


@pytest.mark.parametrize("kind,error", [
    ("global", -0.5),
    ("global", 0.5),
    ("greedy", 0.0),
    ("preemption", -0.3),
    ("cs", -0.5),
    ("cs", 0.5),
])
def test_soak_invariants(kind, error):
    cluster, jobs, sim, trace = build(kind, error)
    result = sim.run()

    # 1. No node ever double-booked.
    trace.check_no_double_booking()

    # 2. Conservation: completed + culled == all jobs (CS never culls, and
    #    TetriSched culls only hopeless SLO jobs).
    completed = {o.job_id for o in result.outcomes.values() if o.completed}
    culled = {e.job_id for e in trace.of_kind(CULL)}
    assert completed | culled == set(result.outcomes)
    assert not (completed & culled)

    # 3. Gang integrity on every (re-)launch.
    by_id = {j.job_id: j for j in jobs}
    for ev in trace.of_kind(LAUNCH):
        job = by_id[ev.job_id]
        if isinstance(job.job_type, ElasticType):
            assert job.job_type.min_k <= len(ev.nodes) <= job.k
        else:
            assert len(ev.nodes) == job.k

    # 4. Causality.
    for ev in trace.of_kind(LAUNCH):
        assert ev.time >= by_id[ev.job_id].submit_time - 1e-9

    # Sanity: the run actually exercised the system.
    assert result.cycles > 5
    assert len(completed) > 0
