"""Tests for elastic (malleable) jobs — the Sec. 4.1 space-time elasticity."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.errors import WorkloadError
from repro.sim import (ElasticType, ExecutionTrace, FaultModel, Job,
                       Simulation, TetriSchedAdapter, UnconstrainedType)
from repro.sim.faults import FaultDecision
from repro.sim.trace import LAUNCH, RESIZE
from repro.workloads.serialization import job_from_dict, job_to_dict
from tests.strategies import elastic_sim_workloads

UN = UnconstrainedType()


@pytest.fixture()
def cluster():
    return Cluster.build(racks=1, nodes_per_rack=8)


class TestElasticType:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ElasticType(min_k=0)
        with pytest.raises(WorkloadError):
            ElasticType(efficiency=0.0)
        with pytest.raises(WorkloadError):
            ElasticType(efficiency=1.5)

    def test_options_cover_width_range(self, cluster):
        opts = ElasticType(min_k=2).options(cluster, k=4, runtime_s=10.0)
        widths = [o.k for o in opts]
        assert widths == [4, 3, 2]  # widest (fastest) first

    def test_work_conservation_perfect_scaling(self, cluster):
        t = ElasticType(min_k=1, efficiency=1.0)
        opts = {o.k: o.duration_s for o in t.options(cluster, 4, 10.0)}
        # Work = 40 node-seconds at every width.
        for width, dur in opts.items():
            assert width * dur == pytest.approx(40.0)

    def test_efficiency_penalty_below_full_width(self, cluster):
        t = ElasticType(min_k=1, efficiency=0.8)
        opts = {o.k: o.duration_s for o in t.options(cluster, 4, 10.0)}
        assert opts[4] == pytest.approx(10.0)           # reference width
        assert opts[2] == pytest.approx(20.0 / 0.8)     # penalized

    def test_true_runtime_matches_options(self, cluster):
        t = ElasticType(min_k=1, efficiency=0.9)
        nodes3 = frozenset(sorted(cluster.node_names)[:3])
        opts = {o.k: o.duration_s for o in t.options(cluster, 4, 10.0)}
        assert t.true_runtime(cluster, nodes3, 10.0, 4) == pytest.approx(
            opts[3])

    def test_min_k_larger_than_k_collapses(self, cluster):
        opts = ElasticType(min_k=9).options(cluster, k=4, runtime_s=10.0)
        assert [o.k for o in opts] == [4]

    def test_serialization_roundtrip(self):
        job = Job("e", ElasticType(min_k=2, efficiency=0.75), k=6,
                  base_runtime_s=10.0, submit_time=0.0)
        back = job_from_dict(job_to_dict(job))
        assert back.job_type == ElasticType(min_k=2, efficiency=0.75)


class TestElasticScheduling:
    def adapter(self, cluster):
        return TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=60))

    def test_idle_cluster_gives_full_width(self, cluster):
        job = Job("e", ElasticType(min_k=1), k=8, base_runtime_s=20,
                  submit_time=0.0, deadline=200.0)
        res = Simulation(cluster, self.adapter(cluster), [job]).run()
        o = res.outcomes["e"]
        assert len(o.nodes) == 8                       # full width
        assert o.finish_time == pytest.approx(20.0)

    def test_busy_cluster_shrinks_width(self, cluster):
        """Under contention the elastic job takes fewer nodes and runs
        longer instead of waiting for the full gang."""
        rigid = Job("rigid", UN, k=6, base_runtime_s=40, submit_time=0.0,
                    deadline=45.0)  # must start now
        elastic = Job("e", ElasticType(min_k=1), k=8, base_runtime_s=10,
                      submit_time=0.0, deadline=300.0)
        res = Simulation(cluster, self.adapter(cluster),
                         [rigid, elastic]).run()
        rigid_out = res.outcomes["rigid"]
        e = res.outcomes["e"]
        assert rigid_out.met_deadline
        assert e.start_time == 0.0                     # no waiting
        assert len(e.nodes) == 2                       # remaining capacity
        # Work conservation: 8*10 node-seconds on 2 nodes -> 40s.
        assert e.finish_time - e.start_time == pytest.approx(40.0)

    def test_elastic_meets_deadline_by_widening(self, cluster):
        """A tight deadline forces a wide allocation even if narrow ones
        exist in the option list."""
        elastic = Job("e", ElasticType(min_k=1), k=8, base_runtime_s=10,
                      submit_time=0.0, deadline=15.0)
        res = Simulation(cluster, self.adapter(cluster), [elastic]).run()
        o = res.outcomes["e"]
        assert o.met_deadline
        assert len(o.nodes) == 8


def elastic_adapter(cluster, **kw):
    cfg = dict(quantum_s=10, cycle_s=10, plan_ahead_s=40, elastic_mode=True,
               reconfig_penalty=0.1, audit_mode=True)
    cfg.update(kw)
    return TetriSchedAdapter(cluster, TetriSchedConfig(**cfg))


class TestResizeLifecycle:
    """Grow/shrink edge cases of per-cycle width re-planning."""

    def test_shrink_under_pressure_never_below_min_width(self):
        """An SLO arrival squeezes the running gang, but only down to its
        declared minimum width."""
        cluster = Cluster.build(racks=1, nodes_per_rack=8)
        elastic = Job("e", ElasticType(min_k=2), k=8, base_runtime_s=40,
                      submit_time=0.0)
        rigid = Job("r", UN, k=6, base_runtime_s=20, submit_time=5.0,
                    deadline=35.0)  # only start quantum 10 meets it
        trace = ExecutionTrace()
        res = Simulation(cluster, elastic_adapter(cluster),
                         [elastic, rigid], trace=trace).run()
        assert res.outcomes["r"].met_deadline
        widths = [len(ev.nodes) for ev in trace.of_kind(RESIZE)
                  if ev.job_id == "e"]
        assert widths, "the gang never shrank to admit the SLO job"
        # It shrank (below 8) but never below its declared minimum; a
        # later grow-back to full width is fine.
        assert min(widths) < 8
        assert all(w >= 2 for w in widths)
        assert res.outcomes["e"].completed
        trace.check_no_double_booking()

    def test_grow_denied_under_congestion(self):
        """Freed capacity is not handed back to a shrunk gang while the
        pending backlog's minimum demand oversubscribes it (DRESS guard)."""
        cluster = Cluster.build(racks=1, nodes_per_rack=8)
        jobs = [
            # Launches alone at full width, shrinks to 2 when "r" arrives.
            Job("e", ElasticType(min_k=2), k=8, base_runtime_s=30,
                submit_time=0.0),
            Job("r", UN, k=6, base_runtime_s=20, submit_time=5.0,
                deadline=35.0),
        ] + [
            # Full-cluster jobs pending when r's 6 nodes free up at t=30:
            # min-demand (32) > 4x free (24), so every later cycle is
            # congested and "e" must not grow back into the hole.
            Job(f"big{i}", UN, k=8, base_runtime_s=20, submit_time=25.0)
            for i in range(4)
        ]
        trace = ExecutionTrace()
        res = Simulation(cluster, elastic_adapter(cluster), jobs,
                         trace=trace).run()
        widths = [len(ev.nodes) for ev in trace.of_kind(RESIZE)
                  if ev.job_id == "e"]
        assert widths == [2]  # the shrink happened; a grow-back never did
        o = res.outcomes["e"]
        assert len(o.nodes) == 2
        # Work done at width 8 for 10 s (1/3), remainder at width 2:
        # 2/3 * (8*30/2) = 80 s from t=10.
        assert o.finish_time == pytest.approx(90.0)
        assert all(res.outcomes[f"big{i}"].completed for i in range(4))
        trace.check_no_double_booking()

    def test_grow_back_when_capacity_frees(self):
        """Without a pending backlog the guard stays open and the shrunk
        gang reclaims freed nodes — when the earlier finish is worth more
        than the reconfiguration penalty (hence the small penalty here;
        at the default the same gang rationally stays narrow)."""
        cluster = Cluster.build(racks=1, nodes_per_rack=8)
        jobs = [
            Job("e", ElasticType(min_k=2), k=8, base_runtime_s=30,
                submit_time=0.0),
            Job("r", UN, k=6, base_runtime_s=20, submit_time=5.0,
                deadline=35.0),
        ]
        trace = ExecutionTrace()
        res = Simulation(cluster,
                         elastic_adapter(cluster, reconfig_penalty=0.01),
                         jobs, trace=trace).run()
        widths = [len(ev.nodes) for ev in trace.of_kind(RESIZE)
                  if ev.job_id == "e"]
        assert widths and widths[-1] == 8  # grew back to full width
        o = res.outcomes["e"]
        assert o.resizes >= 2 and o.completed
        # Growing must beat staying narrow: staying at width 2 from t=10
        # would finish at t=90.
        assert o.finish_time < 90.0
        trace.check_no_double_booking()


class _FailFirstAttempt(FaultModel):
    """Fails a specific job's first attempt at a fixed work fraction."""

    def __init__(self, job_id: str, at_fraction: float):
        super().__init__(failure_prob=0.5, retry_limit=3, seed=0)
        self._job_id = job_id
        self._at = at_fraction

    def draw(self, job_id, attempt):
        if job_id == self._job_id and attempt == 0:
            return FaultDecision(fails=True, at_fraction=self._at)
        return FaultDecision(fails=False)


class TestFaultDuringResize:
    def test_failure_after_shrink_reenters_at_current_width(self):
        """Regression: a node failure striking after a resize must re-queue
        the gang at its *current* width, not the width it was submitted
        with — otherwise the retry demands nodes the job no longer holds
        and the truth model diverges from the scheduler's options."""
        cluster = Cluster.build(racks=1, nodes_per_rack=8)
        # e runs at 8 from t=0; r forces a shrink to 4 at t=10; the fault
        # strikes at 80% of e's work, well inside the resized segment.
        elastic = Job("e", ElasticType(min_k=2), k=8, base_runtime_s=20,
                      submit_time=0.0)
        rigid = Job("r", UN, k=4, base_runtime_s=20, submit_time=5.0,
                    deadline=35.0)
        trace = ExecutionTrace()
        sim = Simulation(cluster, elastic_adapter(cluster), [elastic, rigid],
                         trace=trace, faults=_FailFirstAttempt("e", 0.8))
        res = sim.run()
        o = res.outcomes["e"]
        assert o.failures == 1 and o.resizes >= 1 and o.completed
        # The engine rebased the job itself to the shrunk width...
        assert sim.jobs["e"].k == len(trace.of_kind(RESIZE)[-1].nodes)
        # ...and the retry launched at that width, not the submitted 8.
        retry = [ev for ev in trace.of_kind(LAUNCH) if ev.job_id == "e"][-1]
        assert len(retry.nodes) == sim.jobs["e"].k < 8
        trace.check_no_double_booking()


class TestElasticProperties:
    """Random mixed workloads: system invariants under width re-planning."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(jobs=elastic_sim_workloads())
    def test_replanning_never_violates_capacity(self, jobs):
        cluster = Cluster.build(racks=2, nodes_per_rack=3)
        trace = ExecutionTrace()
        res = Simulation(cluster, elastic_adapter(cluster), jobs,
                         trace=trace, max_time_s=50_000).run()
        # No node is ever double-booked, across launches AND resizes (the
        # audit oracle also ran every cycle: audit_mode=True above).
        trace.check_no_double_booking()
        by_id = {j.job_id: j for j in jobs}
        for ev in trace.of_kind(LAUNCH) + trace.of_kind(RESIZE):
            job = by_id[ev.job_id]
            if isinstance(job.job_type, ElasticType):
                lo = min(job.job_type.min_k, job.k, len(cluster))
                assert lo <= len(ev.nodes) <= job.k
            else:
                assert len(ev.nodes) == job.k
        for job in jobs:
            o = res.outcomes[job.job_id]
            if o.completed:
                assert o.finish_time > o.start_time >= job.submit_time - 1e-9

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(jobs=elastic_sim_workloads())
    def test_delta_verify_bit_equal_across_width_changes(self, jobs):
        """delta_mode='verify' rebuilds every cycle's incremental model
        from scratch and raises on any mismatch — resize fragments whose
        width ladders change between cycles must stay bit-equal too."""
        cluster = Cluster.build(racks=2, nodes_per_rack=3)
        res = Simulation(
            cluster, elastic_adapter(cluster, delta_mode="verify"),
            jobs, max_time_s=50_000).run()
        assert res.end_time < 50_000
