"""Basis factorizations for the revised simplex: sparse LU and dense LU.

The revised simplex engine never materializes ``B^-1``.  Every iteration
consumes the basis through two triangular-solve primitives on a *factor*
object:

* ``ftran(v)``  — solve ``B x = v``   (entering column, basic values),
* ``btran(v)``  — solve ``B^T y = v`` (duals, dual-simplex pivot row),

plus an in-place ``update`` applied after each basis exchange, and a full
``factorize`` when the update budget is exhausted or numerics degrade.

Two implementations share that contract:

:class:`SparseBasisFactor`
    A right-looking sparse LU with **Markowitz threshold pivoting**
    (pivots chosen to minimize ``(r_i - 1)(c_j - 1)`` fill among entries
    passing a relative-magnitude threshold; column/row singletons — the
    vast majority on slack-heavy scheduler bases — eliminate with zero
    arithmetic).  ``L`` is kept as a product of column elimination
    operators, ``U`` in *both* row-wise and column-wise adjacency so that
    FTRAN sweeps columns and BTRAN sweeps rows.  The triangular solves
    iterate only *active* pivot positions (off-diagonal entries or a
    non-unit diagonal); trivial positions — most of them, on scheduler
    bases — are gathered in one vectorized move.  The active lists are
    maintained *incrementally* across updates (entries reference the live
    adjacency objects and are re-ordered by a monotone pivot sequence
    number), so an update costs work proportional to what it touched,
    never O(m).

    Basis exchanges apply genuine **Forrest–Tomlin updates**: the spike
    ``s = L̄^-1 a_q`` replaces the leaving column of ``U``, a row eta
    ``R = I - e_p r^T`` (with ``U'^T r = u_p'``) annihilates the leaving
    row, and the permuted pair moves to the last pivot position.  Each
    update monitors spike growth and the new diagonal; instability or
    excessive fill reports ``False`` and the engine refactorizes —
    correctness never depends on the update succeeding.

:class:`DenseBasisFactor`
    LAPACK LU factor-solve (``scipy.linalg.lu_factor`` / ``lu_solve``,
    i.e. ``getrf``/``getrs``) with a product-form (PFI) eta file between
    refactorizations.  This replaces the old explicit
    ``np.linalg.inv(B)`` path: same O(m^3) factorization cost but one
    triangular pair instead of a full inverse, and markedly better
    conditioning on the near-degenerate bases branch-and-bound produces.
    When scipy is unavailable the factorization falls back to a one-off
    ``np.linalg.inv`` per refactorization (never per solve).

Both factors raise :class:`SingularBasisError` (a
``numpy.linalg.LinAlgError`` subclass, so existing cold-fallback paths
keep working) from ``factorize`` when the basis is numerically singular
— e.g. a stale inherited basis with duplicated columns.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left

import numpy as np

try:  # pragma: no cover - exercised implicitly everywhere scipy exists
    from scipy.linalg import lu_factor as _sp_lu_factor
    from scipy.linalg import lu_solve as _sp_lu_solve
except Exception:  # pragma: no cover - container image ships scipy
    _sp_lu_factor = None
    _sp_lu_solve = None

#: Entries smaller than this are dropped from the sparse factors.
_DROP_TOL = 1e-13
#: Absolute floor under which a pivot candidate is treated as zero.
_ABS_PIVOT_TOL = 1e-11
#: Forrest–Tomlin acceptance: |new diagonal| must exceed this fraction of
#: the spike's largest magnitude, else the update is refused.
_FT_STABILITY_TOL = 1e-7
#: Markowitz threshold: a pivot must reach this fraction of its column max.
_MARKOWITZ_TOL = 0.1
#: Columns examined per pivot before settling for the best seen so far.
_PIVOT_CANDIDATES = 8
#: An update whose fill pushes nnz(factor) past this multiple of the
#: fresh-factorization nnz forces a refactorization instead.
_FILL_REFACTOR_RATIO = 8.0


class SingularBasisError(np.linalg.LinAlgError):
    """The basis matrix is (numerically) singular; refactorization failed."""


class DenseBasisFactor:
    """LAPACK LU factor-solve with a product-form eta file.

    The factorization is ``P B0 = L U`` via ``getrf``; between
    refactorizations each basis exchange appends a PFI eta
    ``E = I - (w - e_r) e_r^T / w_r`` so that
    ``B_k^-1 = E_k ... E_1 B0^-1``.  FTRAN applies the base solve then
    the etas in order; BTRAN applies the transposed etas in reverse then
    the transposed base solve.
    """

    kind = "dense"

    def __init__(self, m: int) -> None:
        self.m = m
        self._lu = None          # (lu, piv) from scipy
        self._inv = None         # np fallback when scipy is absent
        self._etas: list[tuple[int, np.ndarray]] = []
        self.nnz_factor = 0
        self.fill_ratio = 1.0
        self.updates = 0

    def factorize(self, cols) -> None:
        m = self.m
        basis = np.zeros((m, m))
        nnz_in = 0
        for slot, (rows, vals) in enumerate(cols):
            basis[rows, slot] = vals
            nnz_in += len(rows)
        self._etas = []
        self.updates = 0
        if _sp_lu_factor is not None:
            with warnings.catch_warnings():
                # A singular basis raises SingularBasisError below; the
                # LinAlgWarning getrf emits first is just noise.
                warnings.simplefilter("ignore")
                lu, piv = _sp_lu_factor(basis, check_finite=False)
            diag = np.abs(np.diag(lu))
            scale = max(float(np.abs(basis).max(initial=0.0)), 1.0)
            if m and float(diag.min()) <= 1e-12 * scale:
                raise SingularBasisError("singular basis (zero U diagonal)")
            self._lu = (lu, piv)
            self._inv = None
        else:
            try:
                self._inv = np.linalg.inv(basis)
            except np.linalg.LinAlgError as exc:
                raise SingularBasisError(str(exc)) from exc
            self._lu = None
        self.nnz_factor = m * m
        self.fill_ratio = float(m * m) / max(1, nnz_in)

    def ftran(self, v: np.ndarray) -> np.ndarray:
        if self._lu is not None:
            x = _sp_lu_solve(self._lu, v, check_finite=False)
        else:
            x = self._inv @ v
        for r, u in self._etas:
            t = x[r]
            if t != 0.0:
                x -= u * t
        return x

    def btran(self, v: np.ndarray) -> np.ndarray:
        y = np.array(v, dtype=float, copy=True)
        for r, u in reversed(self._etas):
            y[r] -= u @ y
        if self._lu is not None:
            return _sp_lu_solve(self._lu, y, trans=1, check_finite=False)
        return self._inv.T @ y

    def update(self, leave_slot: int, w: np.ndarray,
               col_rows: np.ndarray, col_vals: np.ndarray) -> bool:
        """Append a PFI eta for replacing basis slot ``leave_slot`` by the
        column whose FTRAN is ``w``.  Always succeeds (the engine rejects
        tiny pivots before getting here)."""
        u = np.array(w, dtype=float, copy=True)
        u[leave_slot] -= 1.0
        u /= w[leave_slot]
        self._etas.append((leave_slot, u))
        self.updates += 1
        return True


class InverseBasisFactor:
    """Explicit ``B^-1`` maintained by product-form eta updates.

    This is the legacy PR-5 approach the sparse LU replaces: O(m^2)
    memory, an O(m^3) ``np.linalg.inv`` per refactorization and an
    O(m^2) matvec per solve.  It is kept only as the ``"inverse"``
    factor mode so the ``bench_lp`` ablation can measure the sparse
    factorization against the path it retired; production code uses
    :class:`DenseBasisFactor` or :class:`SparseBasisFactor`.
    """

    kind = "inverse"

    def __init__(self, m: int) -> None:
        self.m = m
        self._binv = np.eye(m)
        self.nnz_factor = m * m
        self.fill_ratio = 1.0
        self.updates = 0

    def factorize(self, cols) -> None:
        m = self.m
        basis = np.zeros((m, m))
        nnz_in = 0
        for slot, (rows, vals) in enumerate(cols):
            basis[rows, slot] = vals
            nnz_in += len(rows)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                self._binv = np.linalg.inv(basis)
        except np.linalg.LinAlgError as exc:
            raise SingularBasisError(str(exc)) from exc
        if not np.all(np.isfinite(self._binv)):
            raise SingularBasisError("non-finite basis inverse")
        self.updates = 0
        self.nnz_factor = m * m
        self.fill_ratio = float(m * m) / max(1, nnz_in)

    def ftran(self, v: np.ndarray) -> np.ndarray:
        return self._binv @ v

    def btran(self, v: np.ndarray) -> np.ndarray:
        return self._binv.T @ v

    def update(self, leave_slot: int, w: np.ndarray,
               col_rows: np.ndarray, col_vals: np.ndarray) -> bool:
        # Gauss-Jordan step on the explicit inverse: O(m^2) every pivot.
        binv = self._binv
        piv = w[leave_slot]
        row = binv[leave_slot] / piv
        binv -= np.outer(w, row)
        binv[leave_slot] = row
        self.updates += 1
        return True


class _UAdj:
    """Mutable adjacency for one row or column of ``U``.

    Labels + values as parallel lists, with the numpy-array view cached
    between mutations — the triangular solves hit ``arrays()`` on every
    active position, the update path mutates a handful of adjacencies.
    """

    __slots__ = ("idx", "val", "_arr")

    def __init__(self) -> None:
        self.idx: list[int] = []
        self.val: list[float] = []
        self._arr: tuple[np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.idx)

    def add(self, label: int, value: float) -> None:
        self.idx.append(label)
        self.val.append(value)
        self._arr = None

    def remove(self, label: int) -> None:
        try:
            k = self.idx.index(label)
        except ValueError:
            return
        self.idx.pop(k)
        self.val.pop(k)
        self._arr = None

    def clear(self) -> None:
        self.idx.clear()
        self.val.clear()
        self._arr = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        arr = self._arr
        if arr is None:
            arr = (np.asarray(self.idx, dtype=np.int64),
                   np.asarray(self.val, dtype=float))
            self._arr = arr
        return arr


def _plan_pop(plan: list, seq: int) -> bool:
    """Remove the entry with pivot-sequence ``seq`` from a sorted plan."""
    i = bisect_left(plan, seq, key=lambda e: e[0])
    if i < len(plan) and plan[i][0] == seq:
        del plan[i]
        return True
    return False


class SparseBasisFactor:
    """Markowitz-pivoted sparse LU with Forrest–Tomlin updates.

    Labels: *rows* are constraint-row indices of the basis matrix, *cols*
    are basis-slot indices (the position in the engine's ``basic`` array).
    ``ftran`` returns slot-indexed solutions, ``btran`` row-indexed duals
    — exactly the spaces the simplex iterations live in.

    Internal representation after ``factorize``/``update``:

    * ``_lops``   — column elimination operators of ``L^-1`` in pivot
      order: ``(pivot_row, rows, multipliers)`` meaning
      ``w[rows] -= multipliers * w[pivot_row]``.
    * ``_etas``   — Forrest–Tomlin row etas ``R = I - e_p r^T`` appended
      by updates, applied after the L ops in FTRAN.
    * ``_urow[r]`` / ``_ucol[c]`` — off-diagonal entries of ``U`` in both
      orientations; ``_diag[c]`` the diagonal, ``_order`` the pivot
      sequence as (row, col) pairs.
    * ``_fplan`` / ``_bplan`` — the active positions for the U solves, in
      pivot order, as ``(seq, row, col, adjacency)`` referencing the live
      ``_UAdj`` objects; trivial positions sit in the ``_ftriv``/
      ``_btriv`` index arrays and are solved in one vectorized gather.
    """

    kind = "sparse"

    def __init__(self, m: int, markowitz_tol: float = _MARKOWITZ_TOL,
                 ft_tol: float = _FT_STABILITY_TOL) -> None:
        self.m = m
        self.markowitz_tol = markowitz_tol
        self.ft_tol = ft_tol
        self._lops: list[tuple[int, np.ndarray, np.ndarray]] = []
        self._etas: list[tuple[int, np.ndarray, np.ndarray]] = []
        self._urow: list[_UAdj] = []
        self._ucol: list[_UAdj] = []
        self._diag = np.ones(m)
        self._order: list[tuple[int, int]] = []
        self._base_nnz = 1
        self.nnz_factor = 0
        self.fill_ratio = 1.0
        self.updates = 0
        self.spike_growth = 0.0

    # -- factorization -----------------------------------------------------
    def factorize(self, cols) -> None:
        m = self.m
        coldata = []
        nnz_in = 0
        for rows, vals in cols:
            d = dict(zip(rows.tolist(), vals.tolist()))
            nnz_in += len(d)
            coldata.append(d)
        rowpat: list[set[int]] = [set() for _ in range(m)]
        for j, d in enumerate(coldata):
            for i in d:
                rowpat[i].add(j)
        # Column-length buckets for cheap smallest-count-first scanning.
        buckets: list[set[int]] = [set() for _ in range(m + 1)]
        for j, d in enumerate(coldata):
            buckets[len(d)].add(j)

        lops: list[tuple[int, np.ndarray, np.ndarray]] = []
        order: list[tuple[int, int]] = []
        urow = [_UAdj() for _ in range(m)]
        ucol = [_UAdj() for _ in range(m)]
        diag = np.ones(m)
        tol = self.markowitz_tol

        def rebucket(j: int, old_len: int) -> None:
            buckets[old_len].discard(j)
            buckets[len(coldata[j])].add(j)

        for _ in range(m):
            # Pivot selection: scan shortest columns first, keep the entry
            # with the smallest Markowitz cost among magnitude-acceptable
            # candidates (ties: smaller column, then larger magnitude).
            best = None  # (cost, col_len, -|val|, row, col)
            examined = 0
            for length in range(1, m + 1):
                bucket = buckets[length]
                if not bucket:
                    continue
                if best is not None and best[0] <= (length - 1) ** 2 // 4:
                    break
                for j in sorted(bucket):
                    d = coldata[j]
                    colmax = max(abs(v) for v in d.values())
                    if colmax <= _ABS_PIVOT_TOL:
                        continue
                    for i, v in d.items():
                        if abs(v) < tol * colmax:
                            continue
                        cost = (len(rowpat[i]) - 1) * (length - 1)
                        key = (cost, length, -abs(v))
                        if best is None or key < best[:3]:
                            best = (cost, length, -abs(v), i, j)
                    examined += 1
                    if examined >= _PIVOT_CANDIDATES and best is not None:
                        break
                if examined >= _PIVOT_CANDIDATES and best is not None:
                    break
                if best is not None and best[0] == 0:
                    break
            if best is None:
                raise SingularBasisError("sparse LU: no acceptable pivot")
            prow, pcol = best[3], best[4]
            pdict = coldata[pcol]
            pval = pdict[prow]

            # Retire the pivot column.
            buckets[len(pdict)].discard(pcol)
            for i in pdict:
                rowpat[i].discard(pcol)
            lrows = [i for i in pdict if i != prow]
            if lrows:
                mults = np.array([pdict[i] / pval for i in lrows])
                lrows_arr = np.array(lrows, dtype=np.int64)
                lops.append((prow, lrows_arr, mults))
            order.append((prow, pcol))
            diag[pcol] = pval

            # Eliminate the pivot row from every remaining active column:
            # the popped entries *are* row ``prow`` of U, and the rank-1
            # update with the L multipliers generates the fill.
            touched = [k for k in rowpat[prow]]
            rowpat[prow].clear()
            for k in touched:
                dk = coldata[k]
                old_len = len(dk)
                uval = dk.pop(prow)
                urow[prow].add(k, uval)
                ucol[k].add(prow, uval)
                if lrows:
                    for i, mi in zip(lrows, mults):
                        newv = dk.get(i)
                        if newv is None:
                            f = -mi * uval
                            if abs(f) > _DROP_TOL:
                                dk[i] = f
                                rowpat[i].add(k)
                        else:
                            newv -= mi * uval
                            if abs(newv) <= _DROP_TOL:
                                del dk[i]
                                rowpat[i].discard(k)
                            else:
                                dk[i] = newv
                if len(dk) != old_len:
                    rebucket(k, old_len)

        self._lops = lops
        self._etas = []
        self._urow = urow
        self._ucol = ucol
        self._diag = diag
        self._order = order
        self._base_nnz = max(1, nnz_in)
        self.updates = 0
        self.spike_growth = 0.0
        self.nnz_factor = (m + sum(len(a) for a in urow)
                           + sum(len(r) for _, r, _ in lops))
        self.fill_ratio = float(self.nnz_factor) / self._base_nnz
        self._build_solve_plan()

    def _build_solve_plan(self) -> None:
        """Split pivot positions into active (Python sweep) and trivial
        (one vectorized gather) for each solve direction."""
        diag = self._diag
        self._col_row = {cl: rl for rl, cl in self._order}
        self._row_col = {rl: cl for rl, cl in self._order}
        self._seq_of = {cl: p for p, (_, cl) in enumerate(self._order)}
        self._next_seq = self.m
        fplan, bplan = [], []
        fset, bset = set(), set()
        ftriv_r, ftriv_c, btriv_r, btriv_c = [], [], [], []
        for p, (rl, cl) in enumerate(self._order):
            unit = diag[cl] == 1.0
            if self._ucol[cl].idx or not unit:
                fplan.append((p, rl, cl, self._ucol[cl]))
                fset.add(cl)
            else:
                ftriv_r.append(rl)
                ftriv_c.append(cl)
            if self._urow[rl].idx or not unit:
                bplan.append((p, rl, cl, self._urow[rl]))
                bset.add(rl)
            else:
                btriv_r.append(rl)
                btriv_c.append(cl)
        self._fplan, self._bplan = fplan, bplan
        self._fset, self._bset = fset, bset
        self._ftriv_r = np.array(ftriv_r, dtype=np.int64)
        self._ftriv_c = np.array(ftriv_c, dtype=np.int64)
        self._btriv_r = np.array(btriv_r, dtype=np.int64)
        self._btriv_c = np.array(btriv_c, dtype=np.int64)

    def _activate_b(self, rl: int) -> None:
        """Promote row ``rl``'s pivot position into the BTRAN sweep."""
        if rl in self._bset:
            return
        cl = self._row_col[rl]
        seq = self._seq_of[cl]
        entry = (seq, rl, cl, self._urow[rl])
        self._bplan.insert(
            bisect_left(self._bplan, seq, key=lambda e: e[0]), entry)
        self._bset.add(rl)
        keep = self._btriv_r != rl
        self._btriv_r = self._btriv_r[keep]
        self._btriv_c = self._btriv_c[keep]

    # -- solves ------------------------------------------------------------
    def _apply_l(self, w: np.ndarray) -> np.ndarray:
        """Apply ``R_k ... R_1 L^-1`` in place (the FTRAN prefix)."""
        for pr, rows, mults in self._lops:
            t = w[pr]
            if t != 0.0:
                w[rows] -= mults * t
        for pr, rows, vals in self._etas:
            w[pr] -= vals @ w[rows]
        return w

    def ftran(self, v: np.ndarray) -> np.ndarray:
        w = self._apply_l(np.array(v, dtype=float, copy=True))
        diag = self._diag
        x = np.empty(self.m)
        for _, rl, cl, adj in reversed(self._fplan):
            t = w[rl]
            if t != 0.0:
                t /= diag[cl]
                rows, vals = adj.arrays()
                if rows.size:
                    w[rows] -= vals * t
            x[cl] = t
        x[self._ftriv_c] = w[self._ftriv_r]
        return x

    def btran(self, v: np.ndarray) -> np.ndarray:
        diag = self._diag
        w = np.array(v, dtype=float, copy=True)
        y = np.empty(self.m)
        for _, rl, cl, adj in self._bplan:
            t = w[cl]
            if t != 0.0:
                t /= diag[cl]
                cols, vals = adj.arrays()
                if cols.size:
                    w[cols] -= vals * t
            y[rl] = t
        y[self._btriv_r] = w[self._btriv_c]
        for pr, rows, vals in reversed(self._etas):
            t = y[pr]
            if t != 0.0:
                y[rows] -= vals * t
        for pr, rows, mults in reversed(self._lops):
            y[pr] -= mults @ y[rows]
        return y

    # -- Forrest–Tomlin update --------------------------------------------
    def update(self, leave_slot: int, w: np.ndarray,
               col_rows: np.ndarray, col_vals: np.ndarray) -> bool:
        """Replace basis slot ``leave_slot`` by the column
        ``(col_rows, col_vals)``.  Returns ``False`` (leaving the factor
        untouched) when the new diagonal is unstable or fill has grown
        past the refactorization threshold — the engine then refactorizes.
        """
        m = self.m
        pos = None
        for p, (rl, cl) in enumerate(self._order):
            if cl == leave_slot:
                pos = p
                prow = rl
                break
        if pos is None:  # pragma: no cover - defensive
            return False

        # Spike: the entering column pushed through L̄^-1 (L ops + etas).
        s = np.zeros(m)
        s[col_rows] = col_vals
        self._apply_l(s)
        smax = float(np.abs(s).max(initial=0.0))

        # Row eta r solving U'^T r = u_p' over positions beyond ``pos``.
        r_rows: list[int] = []
        r_vals: list[float] = []
        u_p = self._urow[prow]
        if u_p.idx:
            work = np.zeros(m)
            cols0, vals0 = u_p.arrays()
            work[cols0] = vals0
            for rl2, cl2 in self._order[pos + 1:]:
                t2 = work[cl2]
                if t2 != 0.0:
                    t2 /= self._diag[cl2]
                    ur2 = self._urow[rl2]
                    if ur2.idx:
                        cols2, vals2 = ur2.arrays()
                        work[cols2] -= vals2 * t2
                    r_rows.append(rl2)
                    r_vals.append(t2)

        new_diag = s[prow]
        if r_rows:
            new_diag -= float(np.dot(r_vals, s[r_rows]))
        if abs(new_diag) <= self.ft_tol * max(smax, 1.0):
            return False
        spike_rows = np.nonzero(np.abs(s) > _DROP_TOL)[0]
        if self.nnz_factor + spike_rows.size \
                > _FILL_REFACTOR_RATIO * self._base_nnz + 4 * m:
            return False

        # Commit: drop the old column and the old row, splice in the spike
        # as the last pivot position, and record the row eta.  The solve
        # plans reference the adjacency objects, so mutations are applied
        # in place and only the moved pair changes plan membership.
        nnz_delta = 0
        old_col = self._ucol[leave_slot]
        for i in old_col.idx:
            self._urow[i].remove(leave_slot)
        nnz_delta -= len(old_col)
        old_col.clear()
        old_row = self._urow[prow]
        for cl in old_row.idx:
            self._ucol[cl].remove(prow)
        nnz_delta -= len(old_row)
        old_row.clear()

        for i in spike_rows:
            i = int(i)
            if i == prow:
                continue
            sv = float(s[i])
            old_col.add(i, sv)
            self._urow[i].add(leave_slot, sv)
            self._activate_b(i)
            nnz_delta += 1
        self._diag[leave_slot] = new_diag

        # Move the (prow, leave_slot) pair to the last pivot position.
        seq = self._seq_of[leave_slot]
        if not _plan_pop(self._fplan, seq):
            keep = self._ftriv_c != leave_slot
            self._ftriv_r = self._ftriv_r[keep]
            self._ftriv_c = self._ftriv_c[keep]
        else:
            self._fset.discard(leave_slot)
        if _plan_pop(self._bplan, seq):
            self._bset.discard(prow)
        else:
            keep = self._btriv_r != prow
            self._btriv_r = self._btriv_r[keep]
            self._btriv_c = self._btriv_c[keep]
        new_seq = self._next_seq
        self._next_seq += 1
        self._seq_of[leave_slot] = new_seq
        self._fplan.append((new_seq, prow, leave_slot, old_col))
        self._fset.add(leave_slot)
        self._bplan.append((new_seq, prow, leave_slot, self._urow[prow]))
        self._bset.add(prow)
        del self._order[pos]
        self._order.append((prow, leave_slot))

        if r_rows:
            self._etas.append((prow, np.array(r_rows, dtype=np.int64),
                               np.array(r_vals)))
            nnz_delta += len(r_rows)
        self.updates += 1
        self.spike_growth = max(self.spike_growth, smax)
        self.nnz_factor += nnz_delta
        self.fill_ratio = max(self.fill_ratio,
                              float(self.nnz_factor) / self._base_nnz)
        return True


def make_factor(m: int, mode: str, nnz: int,
                sparse_min_rows: int) -> "SparseBasisFactor | DenseBasisFactor":
    """Pick a factorization backend for an ``m``-row basis.

    ``mode`` is ``"dense"``, ``"sparse"`` or ``"auto"``; auto uses the
    sparse factor once the basis is large enough that O(m^3)
    refactorizations dominate (``sparse_min_rows``) *and* the matrix is
    actually sparse, so tiny or dense component LPs keep the BLAS path.
    """
    if mode == "sparse":
        return SparseBasisFactor(m)
    if mode == "dense":
        return DenseBasisFactor(m)
    if mode == "inverse":
        return InverseBasisFactor(m)
    density = nnz / max(1, m * m)
    if m >= sparse_min_rows and density < 0.5:
        return SparseBasisFactor(m)
    return DenseBasisFactor(m)


__all__ = ["DenseBasisFactor", "InverseBasisFactor", "SingularBasisError",
           "SparseBasisFactor", "make_factor"]
