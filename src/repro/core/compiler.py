"""STRL -> MILP compilation (Algorithm 1, Sec. 5).

The compiler walks the aggregated STRL expression with a single recursive
``gen(expr, I)`` function.  The three key ideas from the paper:

1. **Indicator variables** — every sub-expression gets a binary ``I`` saying
   whether the solver assigns resources to it.  ``max`` constrains the sum of
   child indicators by its own indicator (OR with at-most-one choice);
   ``min`` passes its *own* indicator to all children (AND).
2. **Objectives flow upward** — ``gen`` returns the sub-expression's
   objective contribution; the root's return becomes the MILP objective.
   ``min`` introduces a continuous ``V`` with ``V <= f_i`` for each child.
3. **Partition variables** — leaves create one integer variable per cluster
   partition (not per node!), with *demand* constraints tying them to the
   indicator and *supply* constraints capping total use per partition per
   time slice (added once at the end over the ``used(x, t)`` ledger).

Compilation is independent of any solver backend; the result carries enough
bookkeeping to map a MILP solution back to per-job space-time allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.partitions import Partition, Partitioning
from repro.cluster.state import ClusterState
from repro.errors import SchedulerError
from repro.solver.expr import LinExpr, Variable, linear_sum
from repro.solver.model import Model
from repro.strl.ast import Barrier, LnCk, Max, Min, NCk, Scale, StrlNode, Sum


@dataclass
class LeafRecord:
    """Bookkeeping for one compiled leaf primitive.

    Maps the leaf's decision variables back to scheduling semantics so a
    MILP solution can be decoded into allocations.
    """

    job_id: str
    leaf: NCk | LnCk
    indicator: Variable
    partition_vars: dict[int, Variable]  # pid -> P_x

    def chosen_counts(self, x: np.ndarray, tol: float = 1e-6) -> dict[int, int]:
        """Per-partition node counts selected by the solution (empty if none)."""
        counts = {}
        for pid, var in self.partition_vars.items():
            v = int(round(float(x[var.index])))
            if v > 0:
                counts[pid] = v
        if isinstance(self.leaf, NCk) and x[self.indicator.index] < 0.5:
            return {}
        return counts


@dataclass(frozen=True)
class ColumnMeta:
    """Model columns of one start-time alternative, tagged with semantics.

    One record per distinct leaf indicator: the indicator column plus every
    partition variable of the leaves sharing it (a Min/Barrier gang shares
    its parent's indicator, so its leaves fold into one record).  This is
    the compiler-side mapping from model columns back to
    job / start time / option that lazy column generation and relaxation
    repair price and round against.
    """

    job_id: str
    start: int            # earliest start quantum among the leaves
    duration: int         # longest duration among the leaves
    value: float          # best leaf value (seed-ordering heuristic)
    columns: tuple[int, ...]  # indicator index + partition var indices


@dataclass
class PlannedPlacement:
    """One active leaf in the solved schedule: a space-time allocation."""

    job_id: str
    start: int                 # quanta from "now"
    duration: int              # quanta
    node_counts: dict[int, int]  # pid -> count
    value: float

    @property
    def total_nodes(self) -> int:
        return sum(self.node_counts.values())


@dataclass(frozen=True)
class PreemptionCandidate:
    """A running job the solver may choose to kill for its nodes.

    Preemption inside TetriSched is explicitly future work in the paper
    (Sec. 7.2); this extension models it MILP-natively: a binary decision
    per candidate returns the victim's nodes to the supply from the current
    quantum onward, at a ``penalty`` subtracted from the objective (the
    victim's lost value plus re-execution cost).
    """

    job_id: str
    nodes: frozenset[str]
    penalty: float


@dataclass
class CompiledBatch:
    """A compiled scheduling-cycle MILP plus decode metadata."""

    model: Model
    partitioning: Partitioning
    horizon: int
    job_indicators: dict[str, Variable]
    leaf_records: list[LeafRecord]
    job_order: list[str]
    stats: dict[str, int] = field(default_factory=dict)
    preemption_vars: dict[str, Variable] = field(default_factory=dict)

    @property
    def column_meta(self) -> list[ColumnMeta]:
        """Per-start-time column metadata (see :class:`ColumnMeta`).

        Built lazily from the leaf records, grouping by indicator variable
        so gang leaves sharing one indicator land in one record.
        """
        by_indicator: dict[int, list[LeafRecord]] = {}
        for rec in self.leaf_records:
            by_indicator.setdefault(rec.indicator.index, []).append(rec)
        meta: list[ColumnMeta] = []
        for ind_index, recs in sorted(by_indicator.items()):
            cols = {ind_index}
            for rec in recs:
                cols.update(v.index for v in rec.partition_vars.values())
            meta.append(ColumnMeta(
                job_id=recs[0].job_id,
                start=min(rec.leaf.start for rec in recs),
                duration=max(rec.leaf.duration for rec in recs),
                value=max(rec.leaf.value for rec in recs),
                columns=tuple(sorted(cols))))
        return meta

    def lazy_column_groups(self):
        """Solver-layer :class:`~repro.solver.colgen.ColumnGroup` list.

        The translation is trivial (the solver layer does not know about
        leaves or durations) but keeps the dependency direction clean:
        the solver consumes opaque column groups, only the compiler knows
        how model columns map back to STRL semantics.
        """
        from repro.solver.colgen import ColumnGroup
        return [ColumnGroup(job_id=m.job_id, start=m.start,
                            columns=m.columns, value=m.value)
                for m in self.column_meta]

    def preempted_jobs(self, x: np.ndarray) -> list[str]:
        """Preemption candidates the solution chose to kill."""
        return [job_id for job_id, var in self.preemption_vars.items()
                if x[var.index] > 0.5]

    def decode(self, x: np.ndarray) -> list[PlannedPlacement]:
        """Decode a MILP solution into the set of active placements."""
        placements: list[PlannedPlacement] = []
        for rec in self.leaf_records:
            counts = rec.chosen_counts(x)
            if not counts:
                continue
            placements.append(PlannedPlacement(
                job_id=rec.job_id, start=rec.leaf.start,
                duration=rec.leaf.duration, node_counts=counts,
                value=rec.leaf.value))
        return placements

    def scheduled_jobs(self, x: np.ndarray) -> set[str]:
        """Jobs whose top-level indicator is on in the solution."""
        return {job_id for job_id, ind in self.job_indicators.items()
                if x[ind.index] > 0.5}

    def jobs_by_component(self, decomp) -> list[list[str]]:
        """Job ids whose indicator landed in each decomposition block.

        ``decomp`` is a :class:`repro.solver.decompose.Decomposition` of
        this batch's model.  Jobs in different blocks share no
        ``(partition, time-slice)`` supply constraint — they contend for
        disjoint capacity, which is why they solve independently.
        """
        owner = {var.index: job_id
                 for job_id, var in self.job_indicators.items()}
        return [[owner[int(gi)] for gi in comp.global_indices
                 if int(gi) in owner]
                for comp in decomp.components]


class StrlCompiler:
    """Compiles a batch of per-job STRL expressions into one MILP.

    Parameters
    ----------
    state:
        Current cluster availability view; drives the supply constraints'
        right-hand sides (``avail(x, t)``).
    quantum_s:
        Length of one time quantum in seconds.
    now:
        Absolute time of this scheduling cycle.
    """

    def __init__(self, state: ClusterState, quantum_s: float,
                 now: float = 0.0, minimal_partitioning: bool = True) -> None:
        self.state = state
        self.quantum_s = quantum_s
        self.now = now
        #: Ablation knob: when False, every node is its own partition,
        #: disabling the paper's dynamic-partitioning optimization (TR
        #: Appendix A).  Schedules are identical; MILPs are much larger.
        self.minimal_partitioning = minimal_partitioning

    def compile(self, batch: list[tuple[str, StrlNode]],
                preemptible: list[PreemptionCandidate] | None = None
                ) -> CompiledBatch:
        """Compile ``[(job_id, strl_expr), ...]`` into a :class:`CompiledBatch`.

        The batch is aggregated under the top-level SUM (global scheduling);
        supply constraints are added for every (partition, time slice) pair
        touched by any leaf.

        ``preemptible`` (extension, see :class:`PreemptionCandidate`) adds a
        binary kill-decision per running victim: choosing it returns the
        victim's still-held nodes to the supply of every affected time slice
        at a value penalty in the objective.
        """
        if not batch:
            raise SchedulerError("cannot compile an empty batch")
        preemptible = preemptible or []
        seen_ids = set()
        for job_id, _ in batch:
            if job_id in seen_ids:
                raise SchedulerError(f"duplicate job id {job_id!r} in batch")
            seen_ids.add(job_id)

        # Dynamic minimal partitioning over this batch's equivalence sets.
        eq_sets = []
        for _, expr in batch:
            for leaf in expr.leaves():
                eq_sets.append(leaf.nodes)
        if self.minimal_partitioning:
            partitioning = Partitioning(self.state.universe, eq_sets)
        else:
            # Ablation: singleton partitions (one integer variable per node
            # per leaf) — the naive formulation the paper optimizes away.
            singletons = [frozenset({n}) for n in self.state.universe]
            partitioning = Partitioning(self.state.universe,
                                        eq_sets + singletons)

        model = Model("tetrisched-cycle")
        self._model = model
        self._partitioning = partitioning
        self._used: dict[tuple[int, int], list[Variable]] = {}
        self._records: list[LeafRecord] = []
        self._counter = 0
        horizon = max(expr.horizon() for _, expr in batch)

        job_indicators: dict[str, Variable] = {}
        objective = LinExpr()
        for job_id, expr in batch:
            self._job_id = job_id
            ind = model.add_binary(f"I[{job_id}]")
            job_indicators[job_id] = ind
            objective = objective + self._gen(expr, ind)

        # Preemption extension: binary kill-decision per candidate.
        preemption_vars: dict[str, Variable] = {}
        victim_busy: dict[str, dict[str, int]] = {}
        if preemptible:
            busy = self.state.busy_quanta(self.now, self.quantum_s)
            for cand in preemptible:
                r = model.add_binary(f"R[{cand.job_id}]")
                preemption_vars[cand.job_id] = r
                victim_busy[cand.job_id] = {
                    n: busy.get(n, 0) for n in cand.nodes}
                objective = objective - cand.penalty * r

        # Supply constraints: sum of P in used(x, t) <= avail(x, t)
        # (+ nodes freed by any chosen preemptions).
        for part in partitioning.partitions:
            profile = self.state.availability_profile(
                part.nodes, horizon, self.now, self.quantum_s)
            for t in range(horizon):
                users = self._used.get((part.pid, t))
                if not users:
                    continue
                rhs = LinExpr(constant=profile[t])
                for cand in preemptible:
                    freed = sum(
                        1 for n in cand.nodes
                        if n in part.nodes
                        and victim_busy[cand.job_id][n] > t)
                    if freed:
                        rhs.add_term(preemption_vars[cand.job_id], freed)
                model.add_constraint(
                    linear_sum(users), "<=", rhs,
                    name=f"supply[p{part.pid},t{t}]")

        model.set_objective(objective, sense="maximize")
        compiled = CompiledBatch(
            model=model, partitioning=partitioning, horizon=horizon,
            job_indicators=job_indicators, leaf_records=self._records,
            job_order=[job_id for job_id, _ in batch],
            stats=model.stats(), preemption_vars=preemption_vars)
        # Release builder state.
        del self._model, self._partitioning, self._used, self._records
        return compiled

    # -- Algorithm 1's gen(expr, I) -----------------------------------------
    def _fresh(self, tag: str) -> str:
        self._counter += 1
        return f"{tag}#{self._counter}"

    def _gen(self, expr: StrlNode, indicator: Variable) -> LinExpr:
        if isinstance(expr, NCk):
            return self._gen_nck(expr, indicator)
        if isinstance(expr, LnCk):
            return self._gen_lnck(expr, indicator)
        if isinstance(expr, Max):
            return self._gen_choice(expr, indicator, at_most=1)
        if isinstance(expr, Sum):
            return self._gen_choice(expr, indicator, at_most=len(expr.subexprs))
        if isinstance(expr, Min):
            return self._gen_min(expr, indicator)
        if isinstance(expr, Scale):
            return self._gen(expr.subexpr, indicator) * expr.factor
        if isinstance(expr, Barrier):
            return self._gen_barrier(expr, indicator)
        raise SchedulerError(f"cannot compile STRL node {expr!r}")

    def _leaf_partition_vars(self, leaf: NCk | LnCk,
                             tag: str) -> dict[int, Variable]:
        """Create partition variables and register them in the used ledger."""
        parts = self._partitioning.partitions_of(leaf.nodes)
        # When the availability provider knows about node-level fragmentation
        # (the greedy mode's PlanAccumulator), cap each partition variable by
        # the number of nodes free for the leaf's *whole* interval.  Per-slice
        # supply alone can overestimate capacity once tentative reservations
        # create non-prefix busy intervals.
        interval_cap = getattr(self.state, "interval_free_count", None)
        pvars: dict[int, Variable] = {}
        for part in parts:
            ub = min(leaf.k, part.capacity)
            if interval_cap is not None:
                ub = min(ub, interval_cap(part.nodes, leaf.start, leaf.duration))
            p = self._model.add_integer(
                f"P[{tag},p{part.pid}]", lb=0, ub=ub)
            pvars[part.pid] = p
            for t in range(leaf.start, leaf.start + leaf.duration):
                self._used.setdefault((part.pid, t), []).append(p)
        return pvars

    def _gen_nck(self, leaf: NCk, indicator: Variable) -> LinExpr:
        tag = self._fresh("nCk")
        pvars = self._leaf_partition_vars(leaf, tag)
        # Demand: sum_x P_x == k * I.
        self._model.add_constraint(
            linear_sum(pvars.values()), "==", leaf.k * indicator,
            name=f"demand[{tag}]")
        self._records.append(LeafRecord(self._job_id, leaf, indicator, pvars))
        return LinExpr({indicator.index: leaf.value})

    def _gen_lnck(self, leaf: LnCk, indicator: Variable) -> LinExpr:
        tag = self._fresh("LnCk")
        pvars = self._leaf_partition_vars(leaf, tag)
        # Demand: sum_x P_x <= k * I (any count up to k).
        self._model.add_constraint(
            linear_sum(pvars.values()), "<=", leaf.k * indicator,
            name=f"demand[{tag}]")
        self._records.append(LeafRecord(self._job_id, leaf, indicator, pvars))
        # Value is linear in the count: v * sum_x P_x / k.
        return linear_sum(pvars.values()) * (leaf.value / leaf.k)

    def _gen_choice(self, expr: Max | Sum, indicator: Variable,
                    at_most: int) -> LinExpr:
        objective = LinExpr()
        child_inds = []
        for child in expr.subexprs:
            ci = self._model.add_binary(self._fresh("I"))
            child_inds.append(ci)
            objective = objective + self._gen(child, ci)
        # max: sum I_i <= I; sum: sum I_i <= n * I.
        self._model.add_constraint(
            linear_sum(child_inds), "<=", at_most * indicator,
            name=self._fresh("choice"))
        return objective

    def _gen_min(self, expr: Min, indicator: Variable) -> LinExpr:
        v = self._model.add_continuous(self._fresh("V"), lb=0.0)
        for child in expr.subexprs:
            f_i = self._gen(child, indicator)  # children share parent's I
            self._model.add_constraint(v, "<=", f_i, name=self._fresh("min"))
        return LinExpr({v.index: 1.0})

    def _gen_barrier(self, expr: Barrier, indicator: Variable) -> LinExpr:
        f = self._gen(expr.subexpr, indicator)
        # v * I <= f: only yield the threshold if the child reaches it.
        self._model.add_constraint(
            expr.threshold * indicator, "<=", f, name=self._fresh("barrier"))
        return LinExpr({indicator.index: expr.threshold})
