"""Tests for STRL text visualizations."""

import pytest
from hypothesis import given, settings

from repro.strl import Barrier, LnCk, Max, Min, NCk, Scale, Sum
from repro.strl.visualize import ascii_tree, spacetime_grid
from tests.strl.test_parser import _exprs

NODES = frozenset({"M1", "M2", "M3", "M4"})


def leaf(start=0, dur=2, v=4.0, k=2, nodes=NODES):
    return NCk(nodes=nodes, k=k, start=start, duration=dur, value=v)


class TestAsciiTree:
    def test_single_leaf(self):
        text = ascii_tree(leaf())
        assert "nCk k=2" in text
        assert "v=4" in text

    def test_operator_tree_structure(self):
        e = Max(leaf(), Min(leaf(start=1), leaf(start=2)))
        text = ascii_tree(e)
        lines = text.splitlines()
        assert lines[0].startswith("max")
        assert sum(1 for l in lines if "├─" in l or "└─" in l) == 4
        assert "min (all of 2)" in text

    def test_scale_and_barrier_labels(self):
        text = ascii_tree(Barrier(Scale(leaf(), 2.5), 3.0))
        assert "barrier ≥3" in text
        assert "scale ×2.5" in text

    def test_large_sets_truncated(self):
        big = frozenset(f"n{i}" for i in range(20))
        text = ascii_tree(NCk(big, 5, 0, 1, 1.0))
        assert "…" in text

    def test_lnck_label(self):
        text = ascii_tree(LnCk(NODES, 3, 0, 1, 2.0))
        assert text.startswith("LnCk")

    @settings(max_examples=40, deadline=None)
    @given(_exprs())
    def test_one_line_per_node(self, expr):
        assert len(ascii_tree(expr).splitlines()) == expr.size


class TestSpacetimeGrid:
    def test_footprint_cells(self):
        e = Max(leaf(start=0, dur=2), leaf(start=2, dur=1))
        grid = spacetime_grid(e)
        lines = grid.splitlines()
        assert lines[0].strip().startswith("t:")
        assert lines[1].endswith("##.")
        assert lines[2].endswith("..#")

    def test_one_row_per_leaf(self):
        e = Sum(leaf(), leaf(start=1), leaf(start=2))
        grid = spacetime_grid(e)
        assert len(grid.splitlines()) == 4  # header + 3 leaves

    def test_explicit_horizon_pads(self):
        grid = spacetime_grid(leaf(start=0, dur=1), horizon=5)
        assert grid.splitlines()[1].endswith("#....")

    @settings(max_examples=40, deadline=None)
    @given(_exprs())
    def test_grid_width_consistent(self, expr):
        grid = spacetime_grid(expr)
        rows = grid.splitlines()[1:]
        hashes_per_leaf = [row.count("#") for row in rows]
        durations = [l.duration for l in expr.leaves()]
        assert hashes_per_leaf == durations
