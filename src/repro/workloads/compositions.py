"""Workload compositions (Table 1).

============  =====  ====  =============  ====  ====
Workload      SLO    BE    Unconstrained  GPU   MPI
============  =====  ====  =============  ====  ====
GR SLO        100 %  0 %   100 %          0 %   0 %
GR MIX        52 %   48 %  100 %          0 %   0 %
GS MIX        70 %   30 %  100 %          0 %   0 %
GS HET        75 %   25 %  0 %            50 %  50 %
============  =====  ====  =============  ====  ====

GR workloads are gridmix-style, trace-derived (fb2009_2 SLO + yahoo_1 BE);
GS workloads are synthetic.  In GS HET the GPU/MPI split applies to the SLO
jobs; best-effort jobs are always unconstrained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.workloads.swim import FB2009_2, GS_SYNTHETIC, YAHOO_1, JobClassSpec


@dataclass(frozen=True)
class WorkloadComposition:
    """One Table 1 row plus the job-class specs that realize it."""

    name: str
    slo_fraction: float
    #: Placement-preference mix over SLO jobs: type name -> fraction.
    slo_type_mix: dict[str, float]
    slo_class: JobClassSpec
    be_class: JobClassSpec

    def __post_init__(self) -> None:
        if not 0.0 <= self.slo_fraction <= 1.0:
            raise WorkloadError("slo_fraction must be within [0, 1]")
        total = sum(self.slo_type_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"type mix fractions must sum to 1, got {total}")

    @property
    def be_fraction(self) -> float:
        return 1.0 - self.slo_fraction

    def table_row(self) -> dict[str, float]:
        """The Table 1 row in percent, for the reproduction harness."""
        return {
            "Workload": self.name,
            "SLO": round(100 * self.slo_fraction),
            "BE": round(100 * self.be_fraction),
            "Unconstrained": round(
                100 * self.slo_type_mix.get("unconstrained", 0.0)),
            "GPU": round(100 * self.slo_type_mix.get("gpu", 0.0)),
            "MPI": round(100 * self.slo_type_mix.get("mpi", 0.0)),
        }


GR_SLO = WorkloadComposition(
    name="GR SLO", slo_fraction=1.0,
    slo_type_mix={"unconstrained": 1.0},
    slo_class=FB2009_2, be_class=YAHOO_1)

GR_MIX = WorkloadComposition(
    name="GR MIX", slo_fraction=0.52,
    slo_type_mix={"unconstrained": 1.0},
    slo_class=FB2009_2, be_class=YAHOO_1)

GS_MIX = WorkloadComposition(
    name="GS MIX", slo_fraction=0.70,
    slo_type_mix={"unconstrained": 1.0},
    slo_class=GS_SYNTHETIC, be_class=GS_SYNTHETIC)

GS_HET = WorkloadComposition(
    name="GS HET", slo_fraction=0.75,
    slo_type_mix={"gpu": 0.5, "mpi": 0.5},
    slo_class=GS_SYNTHETIC, be_class=GS_SYNTHETIC)

#: Table 1, in paper order.
TABLE1 = (GR_SLO, GR_MIX, GS_MIX, GS_HET)

COMPOSITIONS = {c.name: c for c in TABLE1}
