"""Extension benchmark: MILP-native preemption (paper future work, Sec. 7.2).

The paper attributes part of Rayon/CS's robustness for accepted SLO jobs to
preemption, and lists preemption in a TetriSched-like scheduler as future
work.  Our extension adds kill-decisions to the cycle MILP.  This bench runs
an adversarial scenario — long best-effort jobs flood the cluster just
before urgent SLO jobs arrive — and asserts preemption rescues the SLOs
without starving best-effort work.
"""

from conftest import save_and_print

from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.experiments import format_table
from repro.sim import Job, Simulation, TetriSchedAdapter, UnconstrainedType

UN = UnconstrainedType()


def adversarial_workload():
    jobs = []
    # Wave 1: best-effort jobs that grab the whole cluster for a long time.
    # They all arrive before the first cycle, so the scheduler launches
    # them with no SLO pressure in sight.
    for i in range(4):
        jobs.append(Job(f"be{i}", UN, k=4, base_runtime_s=120,
                        submit_time=0.0))
    # Wave 2: urgent SLO jobs with deadlines inside the BE occupancy.
    for i in range(4):
        t = 10.0 + 10 * i
        jobs.append(Job(f"slo{i}", UN, k=4, base_runtime_s=15,
                        submit_time=t, deadline=t + 40.0))
    return jobs


def run(enable_preemption: bool):
    cluster = Cluster.build(racks=2, nodes_per_rack=8)
    adapter = TetriSchedAdapter(cluster, TetriSchedConfig(
        quantum_s=10, cycle_s=10, plan_ahead_s=60,
        enable_preemption=enable_preemption))
    return Simulation(cluster, adapter, adversarial_workload()).run()


def test_preemption_rescues_urgent_slos(benchmark):
    with_p = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without_p = run(False)

    rows = []
    for label, r in (("preemption on", with_p), ("preemption off", without_p)):
        m = r.metrics
        rows.append([label, m.slo_total_pct, m.mean_be_latency_s,
                     m.preemptions, m.be_completed])
    text = ("Extension: MILP-native preemption under a best-effort flood\n"
            + format_table(["config", "SLO total %", "BE latency (s)",
                            "preemptions", "BE completed"], rows))
    save_and_print("ext_preemption", text)

    # Preemption must rescue SLOs that are otherwise lost...
    assert with_p.metrics.slo_total_pct > without_p.metrics.slo_total_pct
    assert with_p.metrics.preemptions > 0
    # ...without starving best-effort work (all BE jobs still finish).
    assert with_p.metrics.be_completed == 4
