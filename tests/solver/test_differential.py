"""Differential property tests: independent solve paths must agree.

Two families:

* the pure dense-tableau simplex vs scipy's HiGHS ``linprog`` wrapper, on
  random always-feasible bounded LPs (same array interface, shared-nothing
  implementations);
* the decomposed solve (union-find components, recombination) vs the
  monolithic branch-and-bound, on random multi-component MILPs — plus the
  certificate checker as a third, solve-free referee.
"""

import pytest
from hypothesis import given, settings

from repro.solver import (BranchBoundSolver, SolveOptions, SolveStatus,
                          scipy_available)
from repro.solver.decompose import decompose, solve_decomposed
from repro.solver.simplex import solve_lp
from repro.verify import check_certificate
from tests.strategies import (lp_problems, mixed_bound_lps,
                              multi_component_models)

needs_scipy = pytest.mark.skipif(not scipy_available(),
                                 reason="scipy required")


class TestLpBackendsAgree:
    @needs_scipy
    @settings(max_examples=40, deadline=None)
    @given(lp=lp_problems())
    def test_pure_simplex_matches_scipy(self, lp):
        from repro.solver.scipy_backend import solve_lp_scipy
        ours = solve_lp(**lp)
        ref = solve_lp_scipy(**lp)
        # lb=0 with nonnegative rhs keeps the origin feasible, finite ub
        # keeps the optimum finite: both must prove optimality.
        assert ours.status == SolveStatus.OPTIMAL
        assert ref.status == SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)

    @needs_scipy
    def test_both_detect_infeasible(self):
        import numpy as np

        from repro.solver.scipy_backend import solve_lp_scipy
        lp = dict(c=np.array([1.0]), a_ub=np.array([[-1.0]]),
                  b_ub=np.array([-5.0]), lb=np.zeros(1), ub=np.array([2.0]))
        assert solve_lp(**lp).status == SolveStatus.INFEASIBLE
        assert solve_lp_scipy(**lp).status == SolveStatus.INFEASIBLE


class TestDecomposedMatchesMonolithic:
    @settings(max_examples=25, deadline=None)
    @given(mk=multi_component_models())
    def test_objective_and_certificate(self, mk):
        model, expected_components = mk
        mono = BranchBoundSolver().solve(model)
        d = decompose(model)
        assert d.num_components == expected_components
        res = solve_decomposed(d, BranchBoundSolver(), SolveOptions())
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(mono.objective, abs=1e-9)
        # The recombined point must replay cleanly against the monolithic
        # model's CSR export — the oracle the fuzz harness also uses.
        assert check_certificate(model, res).ok
        assert check_certificate(model, mono).ok

    @needs_scipy
    @settings(max_examples=15, deadline=None)
    @given(mk=multi_component_models())
    def test_scipy_decomposed_matches_pure_monolithic(self, mk):
        from repro.solver.scipy_backend import ScipyMILPSolver
        model, _ = mk
        mono = BranchBoundSolver().solve(model)
        res = solve_decomposed(decompose(model), ScipyMILPSolver(),
                               SolveOptions())
        assert res.objective == pytest.approx(mono.objective, abs=1e-6)


def _dual_objective(lp, res):
    """Strong-duality lower bound implied by ``duals``/``reduced_costs``.

    Minimization orientation, ``[a_ub; a_eq]`` row order, bound-row duals
    folded into the reduced costs: ``y @ b`` plus each nonbasic variable's
    reduced cost times the bound it sits at.  Comparing this to the primal
    optimum certifies the whole dual vector at once without assuming dual
    uniqueness (degenerate LPs admit many optimal dual solutions).
    """
    import numpy as np

    def _rhs(v):
        return np.zeros(0) if v is None \
            else np.atleast_1d(np.asarray(v, dtype=float))

    y, d = res.duals, res.reduced_costs
    b = np.concatenate([_rhs(lp.get("b_ub")), _rhs(lp.get("b_eq"))])
    obj = float(y @ b) if y.size else 0.0
    pos, neg = d > 1e-9, d < -1e-9
    return obj + float(d[pos] @ lp["lb"][pos]) + float(d[neg] @ lp["ub"][neg])


class TestDualsCertifyOptimality:
    """Every LP engine's duals must prove its own primal optimum."""

    def _engines(self):
        from repro.solver.revised_simplex import solve_lp_revised
        yield "tableau", solve_lp
        yield "revised", solve_lp_revised
        if scipy_available():
            from repro.solver.scipy_backend import solve_lp_scipy
            yield "scipy", solve_lp_scipy

    @settings(max_examples=40, deadline=None)
    @given(lp=lp_problems())
    def test_strong_duality_on_bounded_lps(self, lp):
        import numpy as np

        for name, solve_fn in self._engines():
            res = solve_fn(**lp)
            assert res.status == SolveStatus.OPTIMAL, name
            assert res.duals is not None and res.reduced_costs is not None
            m_ub = lp["b_ub"].shape[0]
            # <=-row marginals are nonpositive in minimization (HiGHS's
            # sign convention, adopted by all three engines).
            assert np.all(res.duals[:m_ub] <= 1e-7), name
            assert _dual_objective(lp, res) == pytest.approx(
                res.objective, abs=1e-6), name

    @settings(max_examples=40, deadline=None)
    @given(lp=mixed_bound_lps())
    def test_engines_agree_through_their_duals(self, lp):
        from repro.solver.revised_simplex import solve_lp_revised
        ours = solve_lp(**lp)
        ref = solve_lp_revised(**lp)
        assert ours.status == ref.status
        if ours.status != SolveStatus.OPTIMAL:
            return
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
        for res in (ours, ref):
            assert _dual_objective(lp, res) == pytest.approx(
                res.objective, abs=1e-6)

    @needs_scipy
    @settings(max_examples=40, deadline=None)
    @given(lp=lp_problems())
    def test_reduced_costs_match_higgs_pricing(self, lp):
        """HiGHS and the pure engines agree on which columns price in.

        Elementwise dual equality is too strong under degeneracy, but the
        *certificates* must agree: each engine's duals bound the shared
        optimum, which is exactly what column generation consumes.
        """
        from repro.solver.scipy_backend import solve_lp_scipy
        ref = solve_lp_scipy(**lp)
        ours = solve_lp(**lp)
        assert ref.status == ours.status == SolveStatus.OPTIMAL
        assert _dual_objective(lp, ref) == pytest.approx(
            _dual_objective(lp, ours), abs=1e-6)
