"""Discrete-event cluster simulator (replaces the paper's physical testbed)."""

from repro.sim.adapters import (ServiceAdapter, TetriSchedAdapter,
                                request_from_job)
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.faults import FaultDecision, FaultModel
from repro.sim.interface import ClusterScheduler, CycleDecisions
from repro.sim.jobs import ElasticType, GpuType, Job, MpiType, UnconstrainedType
from repro.sim.metrics import (JobOutcome, LatencyTrace, MetricsCollector,
                               MetricsReport)
from repro.sim.trace import ExecutionTrace, TraceEvent

__all__ = [
    "ClusterScheduler", "CycleDecisions", "Event", "EventKind", "EventQueue",
    "ElasticType", "ExecutionTrace", "FaultDecision", "FaultModel",
    "GpuType", "Job", "JobOutcome", "LatencyTrace", "MetricsCollector",
    "MetricsReport", "MpiType", "ServiceAdapter", "Simulation",
    "SimulationResult", "TetriSchedAdapter", "TraceEvent",
    "UnconstrainedType", "request_from_job",
]
