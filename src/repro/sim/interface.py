"""The scheduler interface the simulator drives.

Both stacks implement this: Rayon/TetriSched (via
:class:`repro.sim.adapters.TetriSchedAdapter`) and Rayon/CapacityScheduler
(:class:`repro.baselines.capacity_scheduler.CapacityScheduler`).  It mirrors
the paper's YARN proxy-scheduler interface (Sec. 3.3): add jobs, emit
allocation decisions, signal completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.allocation import Allocation
from repro.core.scheduler import CycleStats
from repro.sim.jobs import Job


@dataclass
class CycleDecisions:
    """What one scheduling cycle decided, as seen by the simulator."""

    allocations: list[Allocation] = field(default_factory=list)
    #: Jobs permanently dropped this cycle (zero remaining value).
    culled: list[str] = field(default_factory=list)
    #: Running jobs killed to honor reservations (CapacityScheduler only).
    preempted: list[str] = field(default_factory=list)
    #: Running elastic jobs whose width changed this cycle
    #: (``elastic_mode``); their new node sets appear in ``allocations``.
    resized: list[str] = field(default_factory=list)
    stats: CycleStats | None = None


@runtime_checkable
class ClusterScheduler(Protocol):
    """Minimal contract between the simulator and a scheduler stack."""

    name: str
    cycle_s: float

    def submit(self, job: Job, accepted: bool, now: float) -> None:
        """A job arrived; ``accepted`` is Rayon's admission decision."""
        ...

    def cycle(self, now: float) -> CycleDecisions:
        """Run one scheduling cycle and return its decisions."""
        ...

    def job_finished(self, job_id: str, now: float) -> None:
        """A running job completed; its nodes are free again."""
        ...

    @property
    def active_jobs(self) -> int:
        """Jobs currently queued or running inside the scheduler."""
        ...
