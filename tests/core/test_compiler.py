"""Tests for the STRL->MILP compiler (Algorithm 1), anchored on the paper's
worked examples (Sec. 5.1 / Fig. 4 and Fig. 1/3)."""

import numpy as np
import pytest

from repro.cluster import ClusterState
from repro.core import StrlCompiler
from repro.errors import SchedulerError
from repro.solver import SolveStatus, make_backend
from repro.strl import Barrier, LnCk, Max, Min, NCk, Scale

M3 = frozenset({"M1", "M2", "M3"})


def solve(compiled, backend="pure"):
    res = make_backend(backend).solve(compiled.model)
    assert res.status.has_solution
    return res


@pytest.fixture()
def state3():
    return ClusterState(M3)


class TestPaperMilpExample:
    """Sec. 5.1: 3 jobs on 3 machines; only global + plan-ahead meets all."""

    def batch(self):
        # Job 1: 2 machines, 10s, deadline 10s -> must start at 0.
        j1 = NCk(M3, k=2, start=0, duration=1, value=1.0)
        # Job 2: 1 machine, 20s, deadline 40s -> start 0, 10, or 20.
        j2 = Max(NCk(M3, 1, 0, 2, 1.0), NCk(M3, 1, 1, 2, 1.0),
                 NCk(M3, 1, 2, 2, 1.0))
        # Job 3: 3 machines, 10s, deadline 20s -> start 0 or 10.
        j3 = Max(NCk(M3, 3, 0, 1, 1.0), NCk(M3, 3, 1, 1, 1.0))
        return [("j1", j1), ("j2", j2), ("j3", j3)]

    @pytest.mark.parametrize("backend", ["pure", "scipy"])
    def test_all_three_jobs_scheduled(self, state3, backend):
        compiled = StrlCompiler(state3, quantum_s=10).compile(self.batch())
        res = solve(compiled, backend)
        assert res.objective == pytest.approx(3.0)
        assert compiled.scheduled_jobs(res.x) == {"j1", "j2", "j3"}

    @pytest.mark.parametrize("backend", ["pure", "scipy"])
    def test_paper_optimal_order(self, state3, backend):
        """Fig. 4: job 1 at t=0, job 3 at t=10, job 2 at t=20."""
        compiled = StrlCompiler(state3, quantum_s=10).compile(self.batch())
        res = solve(compiled, backend)
        starts = {pl.job_id: pl.start for pl in compiled.decode(res.x)}
        assert starts == {"j1": 0, "j3": 1, "j2": 2}

    def test_without_planahead_cannot_schedule_all(self, state3):
        """Restricting every job to start=0 forces at least one SLO miss."""
        batch = [("j1", NCk(M3, 2, 0, 1, 1.0)),
                 ("j2", NCk(M3, 1, 0, 2, 1.0)),
                 ("j3", NCk(M3, 3, 0, 1, 1.0))]
        compiled = StrlCompiler(state3, quantum_s=10).compile(batch)
        res = solve(compiled)
        assert res.objective == pytest.approx(2.0)  # j1 + j2 only (2+1 <= 3)

    def test_supply_constraint_spans_duration(self, state3):
        """Job 2 starting at 0 holds its machine through slice 1 (Sec. 5.1)."""
        batch = [("a", NCk(M3, 3, 0, 2, 1.0)),   # all machines, 2 quanta
                 ("b", NCk(M3, 1, 1, 1, 1.0))]   # 1 machine at slice 1
        compiled = StrlCompiler(state3, quantum_s=10).compile(batch)
        res = solve(compiled)
        # Conflict: only one can win; 'a' and 'b' both value 1 -> obj 1.
        assert res.objective == pytest.approx(1.0)


class TestSoftConstraints:
    """Fig. 3: GPU preference expressed as max of two nCk options."""

    def test_prefers_higher_value_option(self):
        cluster = frozenset({"M1", "M2", "M3", "M4"})
        gpu = frozenset({"M1", "M2"})
        state = ClusterState(cluster)
        expr = Max(NCk(gpu, 2, 0, 2, 4.0), NCk(cluster, 2, 0, 3, 3.0))
        compiled = StrlCompiler(state, 10).compile([("gpu-job", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(4.0)
        [pl] = compiled.decode(res.x)
        chosen_nodes = set()
        for pid, count in pl.node_counts.items():
            part = compiled.partitioning.partitions[pid]
            assert part.nodes <= gpu
            chosen_nodes |= part.nodes

    def test_falls_back_when_gpu_busy(self):
        cluster = frozenset({"M1", "M2", "M3", "M4"})
        gpu = frozenset({"M1", "M2"})
        state = ClusterState(cluster)
        state.start("running", gpu, 0.0, 100.0)  # GPUs held for a long time
        expr = Max(NCk(gpu, 2, 0, 2, 4.0), NCk(cluster, 2, 0, 3, 3.0))
        compiled = StrlCompiler(state, 10).compile([("gpu-job", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(3.0)


class TestMinGang:
    def test_anti_affinity_one_per_rack(self):
        """Fig. 1 Availability job: min over racks places 1 task per rack."""
        rack1 = frozenset({"M1", "M2"})
        rack2 = frozenset({"M3", "M4"})
        state = ClusterState(rack1 | rack2)
        expr = Min(NCk(rack1, 1, 0, 3, 2.0), NCk(rack2, 1, 0, 3, 2.0))
        compiled = StrlCompiler(state, 10).compile([("avail", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(2.0)
        placements = compiled.decode(res.x)
        assert len(placements) == 2
        assert {pl.total_nodes for pl in placements} == {1}

    def test_min_unsatisfiable_half_yields_nothing(self):
        rack1 = frozenset({"M1"})
        rack2 = frozenset({"M2"})
        state = ClusterState(rack1 | rack2)
        state.start("blocker", rack2, 0.0, 100.0)
        expr = Min(NCk(rack1, 1, 0, 1, 2.0), NCk(rack2, 1, 0, 1, 2.0))
        compiled = StrlCompiler(state, 10).compile([("avail", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(0.0)
        assert compiled.decode(res.x) == []


class TestOtherOperators:
    def test_scale_amplifies(self, state3):
        expr = Scale(NCk(M3, 1, 0, 1, 2.0), 3.0)
        compiled = StrlCompiler(state3, 10).compile([("s", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(6.0)

    def test_barrier_passes_when_reachable(self, state3):
        expr = Barrier(NCk(M3, 1, 0, 1, 5.0), 4.0)
        compiled = StrlCompiler(state3, 10).compile([("b", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(4.0)

    def test_barrier_blocks_when_unreachable(self, state3):
        expr = Barrier(NCk(M3, 1, 0, 1, 2.0), 4.0)
        compiled = StrlCompiler(state3, 10).compile([("b", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(0.0)

    def test_lnck_partial_value(self, state3):
        # 2 of 3 machines are busy; LnCk k=3 yields 1/3 value per machine.
        state3.start("busy", frozenset({"M1", "M2"}), 0.0, 100.0)
        expr = LnCk(M3, 3, 0, 1, 3.0)
        compiled = StrlCompiler(state3, 10).compile([("l", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(1.0)
        [pl] = compiled.decode(res.x)
        assert pl.total_nodes == 1

    def test_lnck_takes_all_when_free(self, state3):
        expr = LnCk(M3, 3, 0, 1, 3.0)
        compiled = StrlCompiler(state3, 10).compile([("l", expr)])
        res = solve(compiled)
        assert res.objective == pytest.approx(3.0)


class TestCompilerValidation:
    def test_empty_batch_rejected(self, state3):
        with pytest.raises(SchedulerError):
            StrlCompiler(state3, 10).compile([])

    def test_duplicate_job_ids_rejected(self, state3):
        e = NCk(M3, 1, 0, 1, 1.0)
        with pytest.raises(SchedulerError):
            StrlCompiler(state3, 10).compile([("j", e), ("j", e)])

    def test_stats_reported(self, state3):
        e = Max(NCk(M3, 1, 0, 1, 1.0), NCk(M3, 1, 1, 1, 1.0))
        compiled = StrlCompiler(state3, 10).compile([("j", e)])
        assert compiled.stats["variables"] > 0
        assert compiled.stats["constraints"] > 0
        assert compiled.horizon == 2

    def test_running_jobs_shrink_supply(self, state3):
        state3.start("r", frozenset({"M1", "M2"}), 0.0, 15.0)
        # 3-machine gang can only start after the running job releases:
        # with quantum 10, busy through slices 0..1 -> start >= 2 needed.
        batch = [("g", Max(NCk(M3, 3, 0, 1, 1.0), NCk(M3, 3, 2, 1, 1.0)))]
        compiled = StrlCompiler(state3, 10).compile(batch)
        res = solve(compiled)
        [pl] = compiled.decode(res.x)
        assert pl.start == 2
