"""End-to-end sharded cycles: parity, reconciliation, drain, fallback."""

import pytest

from repro.api import Scheduler
from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import JobRequest, TetriSchedConfig
from repro.solver.result import MILPResult, SolveStatus
from repro.strl.generator import SpaceOption
from repro.valuefn import StepValue


def open_api(racks=4, nodes_per_rack=4, shard=True, shard_count=2, seed=3,
             audit_mode=True, **kw):
    cfg_kw = dict(quantum_s=10, cycle_s=10, plan_ahead_s=40,
                  audit_mode=audit_mode, seed=seed, **kw)
    if shard:
        cfg_kw.update(shard_mode="racks", shard_count=shard_count)
    return Scheduler.open(
        Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack),
        TetriSchedConfig(**cfg_kw))


def submit_mixed(api, n=6, tag=""):
    rack_count = len(api.cluster.rack_names)
    for i in range(n):
        rack = f"r{i % rack_count}"
        api.submit(JobRequest(
            job_id=f"{tag}j{i}",
            options=(SpaceOption(api.cluster.rack_nodes(rack), k=3,
                                 duration_s=20, label="rack"),
                     SpaceOption(api.cluster.node_names, k=3,
                                 duration_s=30, label="any")),
            value_fn=StepValue(10.0 + 0.37 * i, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0))


def alloc_key(result):
    return sorted((a.job_id, tuple(sorted(a.nodes)), a.start_time,
                   a.expected_end) for a in result.allocations)


class TestShardCount1BitEquality:
    def test_sharded_equals_monolithic(self):
        runs = []
        for shard in (False, True):
            api = open_api(shard=shard, shard_count=1)
            submit_mixed(api)
            res = api.run_cycle(0.0)
            runs.append((alloc_key(res), api.stats().objective))
        assert runs[0] == runs[1]

    def test_multi_cycle_bit_equality(self):
        runs = []
        for shard in (False, True):
            api = open_api(shard=shard, shard_count=1)
            traj = []
            for c in range(3):
                submit_mixed(api, n=2, tag=f"c{c}-")
                res = api.run_cycle(c * 10.0)
                traj.append((alloc_key(res), api.stats().objective))
            runs.append(traj)
        assert runs[0] == runs[1]


def submit_elastic(api, n=3, tag=""):
    nodes = api.cluster.node_names
    for i in range(n):
        api.submit(JobRequest(
            job_id=f"{tag}e{i}",
            options=tuple(
                SpaceOption(nodes, k=w, duration_s=d, label=f"w{w}")
                for w, d in ((4, 20.0), (3, 30.0), (2, 40.0))),
            value_fn=StepValue(8.0 + 0.53 * i, 1e9),
            priority=PriorityClass.BEST_EFFORT, submit_time=0.0,
            elastic=True))


class TestElasticSharding:
    def test_shard1_pending_elastic_bit_equal(self):
        """Pending-side ElasticNCk ladders compile identically whether the
        cycle runs through the coordinator (shard_count=1) or the
        monolithic path."""
        runs = []
        for shard in (False, True):
            api = open_api(shard=shard, shard_count=1, elastic_mode=True)
            submit_mixed(api, n=4)
            submit_elastic(api, n=3)
            res = api.run_cycle(0.0)
            runs.append((alloc_key(res), api.stats().objective))
        assert runs[0] == runs[1]

    def test_resizes_disabled_when_sharded(self):
        """Sharded cycles solve per-domain MILPs that cannot see a gang's
        full width ladder, so running elastic jobs never re-enter there —
        while the monolithic control with the same workload offers them."""
        offered = {}
        for shard in (False, True):
            api = open_api(shard=shard, elastic_mode=True)
            submit_elastic(api, n=1)
            api.run_cycle(0.0)
            # Pressure next cycle so the monolithic path has a reason to
            # keep offering resize options.
            submit_mixed(api, n=4, tag="later-")
            api.run_cycle(10.0)
            offered[shard] = api.stats().elastic_offered
        assert offered[False] >= 1
        assert offered[True] == 0
    def test_gang_spanning_every_domain_reconciles(self):
        # shard_count = racks: every rack its own domain, so a gang that
        # needs more than one rack spans *all* domains.
        api = open_api(racks=4, shard_count=4)
        api.submit(JobRequest(
            job_id="gang",
            options=(SpaceOption(api.cluster.node_names, k=10,
                                 duration_s=20, label="span"),),
            value_fn=StepValue(50.0, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0))
        submit_mixed(api, n=4)
        res = api.run_cycle(0.0)
        st = api.stats()
        assert st.shard_boundary_jobs == 1
        assert st.shard_quality_bound >= 50.0
        # Reconciliation either launches the gang now or plans it for a
        # later quantum (allocations only hold launches at quantum 0).
        launched = {a.job_id for a in res.allocations}
        planned = {j for j, _ in api.core._prev_plan}
        assert "gang" in launched | planned

    def test_pure_boundary_cycle(self):
        # Every job is boundary: domain solve is skipped entirely and the
        # reconciliation pass alone builds the schedule.
        api = open_api(racks=2, shard_count=2)
        api.submit(JobRequest(
            job_id="wide",
            options=(SpaceOption(api.cluster.node_names, k=6,
                                 duration_s=20, label="span"),),
            value_fn=StepValue(30.0, 1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0))
        res = api.run_cycle(0.0)
        assert [a.job_id for a in res.allocations] == ["wide"]


class TestEmptyDomainAfterDrain:
    def test_drained_domain_receives_no_jobs(self):
        api = open_api(racks=4, shard_count=2)
        sched = api.core
        dom0 = sched._coordinator.domains[0]
        for node in dom0.nodes:
            sched.state.drain(node)
        submit_mixed(api, n=4)
        res = api.run_cycle(0.0)
        st = api.stats()
        # shard_domains counts domains that compiled a MILP this cycle:
        # the fully-drained one is skipped.
        assert st.shard_domains == 1
        # Only the live domain appears in the per-domain stats, and no
        # launch touches a drained node.
        assert all(d["domain"] != dom0.name for d in st.domain_stats)
        for a in res.allocations:
            assert not (a.nodes & dom0.nodes)

    def test_cycle_after_full_drain_is_clean(self):
        api = open_api(racks=2, shard_count=2)
        sched = api.core
        for node in api.cluster.node_names:
            sched.state.drain(node)
        submit_mixed(api, n=2)
        res = api.run_cycle(0.0)
        assert res.allocations == []


class TestDomainFallback:
    def test_failed_domain_falls_back_greedy_alone(self, monkeypatch):
        """One domain's MILP dies -> greedy for it, MILP for the rest."""
        from repro.shard import stages as shard_stages

        real = shard_stages.solve_many_decomposed
        sabotaged: dict = {}

        def sabotage(decomps, backend, options=None, dispatch_seed=None):
            results = real(decomps, backend, options, dispatch_seed)
            poisoned = MILPResult(
                status=SolveStatus.NO_SOLUTION, x=None, objective=0.0,
                bound=float("inf"), gap=float("inf"), nodes=0,
                solve_time=0.0)
            sabotaged["hit"] = True
            return [poisoned] + results[1:]

        monkeypatch.setattr(shard_stages, "solve_many_decomposed", sabotage)
        api = open_api(racks=4, shard_count=2, audit_mode=False)
        submit_mixed(api, n=6)
        res = api.run_cycle(0.0)
        st = api.stats()
        assert sabotaged.get("hit")
        assert st.shard_greedy_fallbacks == 1
        fallback = [d for d in st.domain_stats if d["fallback"]]
        healthy = [d for d in st.domain_stats if not d["fallback"]]
        assert len(fallback) == 1 and len(healthy) == 1
        # The greedy fallback still launches what fits at quantum 0; it
        # has no plan-ahead, so overflow jobs simply stay pending.
        launched = {a.job_id for a in res.allocations}
        fb_name = fallback[0]["domain"]
        fb_nodes = next(d.nodes for d in api.core._coordinator.domains
                        if d.name == fb_name)
        assert any(a.nodes <= fb_nodes for a in res.allocations)
        assert launched and len(launched) + api.pending_count == 6


class TestServiceIntegration:
    def test_status_reports_shard_section(self):
        from repro.service.service import SchedulerService

        cluster = Cluster.build(racks=4, nodes_per_rack=4)
        svc = SchedulerService(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40,
            shard_mode="racks", shard_count=2, delta_mode="on"),
            auto_complete=False)
        svc.submit_spec({"job_id": "s1",
                         "options": [{"k": 2, "duration_s": 20}],
                         "value": 10.0, "deadline": 1000.0})
        svc.run_one_cycle()
        out = svc.status()
        assert out["shard"]["mode"] == "racks"
        assert len(out["shard"]["domains"]) == 2
        assert out["shard"]["last_cycle"]["domain_stats"]
        assert "delta" in out  # per-domain stores aggregate

    def test_drain_domain(self):
        from repro.errors import ServiceError
        from repro.service.service import SchedulerService

        cluster = Cluster.build(racks=4, nodes_per_rack=4)
        svc = SchedulerService(cluster, TetriSchedConfig(
            shard_mode="racks", shard_count=2), auto_complete=False)
        out = svc.drain_domain("dom1")
        dom1 = svc.scheduler._coordinator.domains[1]
        assert set(out["drained"]) == set(dom1.nodes)
        out = svc.drain_domain("~dom1")
        assert out["drained"] == []
        with pytest.raises(ServiceError):
            svc.drain_domain("nope")

    def test_drain_domain_requires_sharding(self):
        from repro.errors import ServiceError
        from repro.service.service import SchedulerService

        svc = SchedulerService(Cluster.build(racks=2, nodes_per_rack=2),
                               TetriSchedConfig(), auto_complete=False)
        with pytest.raises(ServiceError):
            svc.drain_domain("dom0")
