"""Space-time cluster availability tracking.

TetriSched "makes allocation decisions based on ... its own view of cluster
node availability it maintains" (Sec. 3.3).  :class:`ClusterState` is that
view: which nodes are held by which running job and until when the job is
*expected* to hold them.  Expected release times come from runtime estimates
and may be wrong — the scheduler adjusts them upward when a job overruns
(Sec. 7.1), which is exactly how TetriSched tolerates under-estimation.

The per-quantum availability profile produced by :meth:`availability_profile`
feeds the MILP supply constraints ``sum(P in used(x,t)) <= avail(x, t)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ClusterError, SchedulerError


@dataclass
class RunningAllocation:
    """Nodes held by a launched job and its expected release time."""

    job_id: str
    nodes: frozenset[str]
    start_time: float
    expected_end: float


class ClusterState:
    """Tracks running allocations over the node universe.

    Example
    -------
    >>> cs = ClusterState(frozenset({"a", "b", "c"}))
    >>> cs.start("j1", frozenset({"a"}), start_time=0.0, expected_end=25.0)
    >>> sorted(cs.free_nodes())
    ['b', 'c']
    """

    def __init__(self, universe: frozenset[str]) -> None:
        if not universe:
            raise ClusterError("universe must not be empty")
        self.universe = universe
        self._allocations: dict[str, RunningAllocation] = {}
        self._node_owner: dict[str, str] = {}
        self._drained: set[str] = set()

    # -- lifecycle ----------------------------------------------------------
    def start(self, job_id: str, nodes: frozenset[str], start_time: float,
              expected_end: float) -> None:
        """Record a launched job occupying ``nodes`` until ``expected_end``."""
        if job_id in self._allocations:
            raise SchedulerError(f"job {job_id!r} already running")
        unknown = nodes - self.universe
        if unknown:
            raise ClusterError(f"unknown nodes: {sorted(unknown)}")
        busy = {n for n in nodes if n in self._node_owner}
        if busy:
            owners = {self._node_owner[n] for n in busy}
            raise SchedulerError(
                f"nodes {sorted(busy)} already held by {sorted(owners)}")
        if expected_end <= start_time:
            raise SchedulerError("expected_end must be after start_time")
        self._allocations[job_id] = RunningAllocation(
            job_id, nodes, start_time, expected_end)
        for n in nodes:
            self._node_owner[n] = job_id

    def finish(self, job_id: str) -> frozenset[str]:
        """Release a job's nodes; returns the freed node set."""
        alloc = self._allocations.pop(job_id, None)
        if alloc is None:
            raise SchedulerError(f"job {job_id!r} is not running")
        for n in alloc.nodes:
            del self._node_owner[n]
        return alloc.nodes

    def extend_expectation(self, job_id: str, new_expected_end: float) -> None:
        """Bump a running job's expected release time upward.

        Called when a job overruns its estimate (adaptive re-planning,
        Sec. 7.1: "adjusting runtime under-estimates upward when observed to
        be too low").  Downward adjustments are ignored — releases happen via
        :meth:`finish`.
        """
        alloc = self._allocations.get(job_id)
        if alloc is None:
            raise SchedulerError(f"job {job_id!r} is not running")
        if new_expected_end > alloc.expected_end:
            alloc.expected_end = new_expected_end

    # -- node lifecycle ------------------------------------------------------
    def drain(self, node: str) -> None:
        """Take a node out of service (cluster event: node removal).

        The node universe is fixed — drained nodes stay known (partition
        membership, MILP column layout and existing allocations are
        unaffected) but offer zero supply to future cycles: they drop out
        of :meth:`free_nodes` and hold their availability-profile slot for
        the whole horizon.  A running job keeps a drained node until it
        finishes; the scheduler just never places on it again.
        """
        if node not in self.universe:
            raise ClusterError(f"unknown node {node!r}")
        self._drained.add(node)

    def restore(self, node: str) -> None:
        """Return a drained node to service (cluster event: node add)."""
        if node not in self.universe:
            raise ClusterError(f"unknown node {node!r}")
        self._drained.discard(node)

    @property
    def drained_nodes(self) -> frozenset[str]:
        """Nodes currently out of service."""
        return frozenset(self._drained)

    # -- queries -------------------------------------------------------------
    def is_running(self, job_id: str) -> bool:
        return job_id in self._allocations

    @property
    def running_jobs(self) -> list[RunningAllocation]:
        return list(self._allocations.values())

    def allocation_of(self, job_id: str) -> RunningAllocation:
        try:
            return self._allocations[job_id]
        except KeyError:
            raise SchedulerError(f"job {job_id!r} is not running") from None

    def free_nodes(self) -> frozenset[str]:
        """Nodes not held by any running job (drained nodes excluded)."""
        return self.universe - self._node_owner.keys() - self._drained

    def busy_quanta(self, now: float, quantum_s: float) -> dict[str, int]:
        """Per busy node: how many whole quanta from ``now`` it stays held.

        A node expected to release at ``now + 25`` with a 10 s quantum is
        unavailable for slices 0..2 (3 quanta).  Overdue jobs (expected end
        in the past) still hold their nodes for at least one quantum — the
        scheduler cannot place on top of a job that has not actually exited.
        """
        out: dict[str, int] = {}
        for alloc in self._allocations.values():
            remaining = alloc.expected_end - now
            quanta = max(1, math.ceil(remaining / quantum_s - 1e-9))
            for n in alloc.nodes:
                out[n] = max(out.get(n, 0), quanta)
        return out

    def availability_profile(self, nodes: frozenset[str], horizon_quanta: int,
                             now: float, quantum_s: float) -> list[int]:
        """``avail(x, t)`` for a node group: free count per future quantum.

        Returns a list of length ``horizon_quanta`` where entry ``t`` is the
        number of nodes from ``nodes`` expected to be free during time slice
        ``[now + t*q, now + (t+1)*q)``.
        """
        if horizon_quanta <= 0:
            return []
        busy = self.busy_quanta(now, quantum_s)
        profile = [len(nodes)] * horizon_quanta
        for n in nodes:
            # A drained node offers no supply anywhere in the horizon —
            # whether or not a running job still holds it (never both
            # subtractions, so the profile cannot go negative).
            held = (horizon_quanta if n in self._drained
                    else busy.get(n, 0))
            for t in range(min(held, horizon_quanta)):
                profile[t] -= 1
        return profile

    def utilization(self) -> float:
        """Fraction of nodes currently held."""
        return len(self._node_owner) / len(self.universe)
