"""Tests for the observability registry: spans, counters, no-op mode."""

import pytest

from repro.obs import (Registry, RunProfile, get_registry, set_enabled,
                       snapshot_delta)
from repro.obs.registry import _NULL_SPAN


@pytest.fixture()
def registry():
    return Registry(enabled=True)


class TestSpans:
    def test_single_span_aggregates(self, registry):
        for _ in range(3):
            with registry.span("cycle"):
                pass
        stat = registry.snapshot()["timers"]["cycle"]
        assert stat["count"] == 3
        assert stat["total_s"] >= 0.0
        assert stat["max_s"] >= stat["mean_s"]

    def test_nesting_builds_paths(self, registry):
        with registry.span("cycle"):
            with registry.span("solve"):
                pass
            with registry.span("solve"):
                pass
        timers = registry.snapshot()["timers"]
        assert timers["cycle"]["count"] == 1
        assert timers["cycle/solve"]["count"] == 2
        assert "solve" not in timers  # only the nested path exists

    def test_stack_unwinds_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                with registry.span("inner"):
                    raise RuntimeError("boom")
        # A later span must not inherit the crashed path.
        with registry.span("after"):
            pass
        timers = registry.snapshot()["timers"]
        assert "after" in timers
        assert "outer/after" not in timers

    def test_inner_time_bounded_by_outer(self, registry):
        import time
        with registry.span("outer"):
            with registry.span("inner"):
                time.sleep(0.01)
        timers = registry.snapshot()["timers"]
        assert timers["outer"]["total_s"] >= timers["outer/inner"]["total_s"]


class TestCounters:
    def test_aggregation(self, registry):
        registry.count("solver.nodes", 5)
        registry.count("solver.nodes", 7)
        registry.count("other")
        snap = registry.snapshot()["counters"]
        assert snap["solver.nodes"] == 12
        assert snap["other"] == 1

    def test_counter_value_default(self, registry):
        assert registry.counter_value("missing") == 0.0


class TestDisabledMode:
    def test_span_is_shared_null_object(self):
        registry = Registry(enabled=False)
        assert registry.span("a") is _NULL_SPAN
        assert registry.span("b") is _NULL_SPAN

    def test_nothing_recorded(self):
        registry = Registry(enabled=False)
        with registry.span("cycle"):
            registry.count("n", 3)
            registry.emit("kind", x=1)
        snap = registry.snapshot()
        assert snap["timers"] == {}
        assert snap["counters"] == {}

    def test_global_registry_disabled_by_default(self):
        assert get_registry().enabled is False

    def test_set_enabled_round_trip(self):
        reg = set_enabled(True)
        try:
            assert reg is get_registry()
            reg.count("x")
            assert reg.counter_value("x") == 1
        finally:
            set_enabled(False)
        assert get_registry().enabled is False


class TestSnapshotDelta:
    def test_delta_isolates_window(self, registry):
        registry.count("a", 2)
        with registry.span("s"):
            pass
        before = registry.snapshot()
        registry.count("a", 3)
        registry.count("b", 1)
        with registry.span("s"):
            pass
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"] == {"a": 3, "b": 1}
        assert delta["timers"]["s"]["count"] == 1

    def test_profile_merge(self, registry):
        before = registry.snapshot()
        registry.count("a", 2)
        with registry.span("s"):
            pass
        profile = RunProfile()
        profile.bump("a", 1)
        profile.merge_delta(snapshot_delta(before, registry.snapshot()))
        assert profile.counter("a") == 3
        assert profile.timers["s"]["count"] == 1


class TestRunProfile:
    def test_warm_start_hit_rate(self):
        profile = RunProfile()
        assert profile.warm_start_hit_rate != profile.warm_start_hit_rate  # nan
        profile.bump("scheduler.warm_start.attempts", 4)
        profile.bump("scheduler.warm_start.hits", 3)
        assert profile.warm_start_hit_rate == 0.75

    def test_nodes_per_solve(self):
        profile = RunProfile()
        assert profile.nodes_per_solve == 0.0
        profile.bump("solver.solves", 4)
        profile.bump("solver.bnb.nodes", 10)
        assert profile.nodes_per_solve == 2.5
