"""Earliest-Deadline-First baseline (beyond the paper's comparison).

A classic deadline-aware greedy scheduler to complement Rayon/CS: each
cycle it launches pending SLO jobs in deadline order, then best-effort jobs
FIFO, onto arbitrary free nodes.  Unlike Rayon/CS it *is* deadline-aware
(no blind best-effort mixing), but it shares the other limitations the
paper attributes to greedy schedulers: no placement preferences, no
plan-ahead, no global packing, no preemption.

Useful as a second reference point: the gap EDF—CS isolates "knowing the
deadlines", while TetriSched—EDF isolates heterogeneity awareness +
plan-ahead + global MILP packing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.allocation import Allocation
from repro.errors import SchedulerError
from repro.sim.interface import CycleDecisions
from repro.sim.jobs import Job


@dataclass
class _Pending:
    job: Job

    @property
    def deadline(self) -> float:
        return self.job.deadline if self.job.deadline is not None else float("inf")


class EdfScheduler:
    """Deadline-ordered greedy gang scheduler."""

    def __init__(self, cluster: Cluster, cycle_s: float = 4.0,
                 drop_hopeless: bool = True, name: str = "EDF") -> None:
        self.name = name
        self.cluster = cluster
        self.cycle_s = cycle_s
        #: Skip (and permanently cull) SLO jobs whose estimated runtime no
        #: longer fits before the deadline — EDF's version of TetriSched's
        #: culling; disable to run them blindly like Rayon/CS.
        self.drop_hopeless = drop_hopeless
        self.state = ClusterState(cluster.node_names)
        self._slo: OrderedDict[str, Job] = OrderedDict()
        self._best_effort: OrderedDict[str, Job] = OrderedDict()
        self._running: set[str] = set()

    # -- ClusterScheduler interface -----------------------------------------
    def submit(self, job: Job, accepted: bool, now: float) -> None:
        if job.k > len(self.cluster):
            raise SchedulerError(
                f"job {job.job_id!r} wants {job.k} nodes; cluster has "
                f"{len(self.cluster)}")
        if job.is_slo:
            self._slo[job.job_id] = job
        else:
            self._best_effort[job.job_id] = job

    def job_finished(self, job_id: str, now: float) -> None:
        if job_id not in self._running:
            raise SchedulerError(f"job {job_id!r} is not running")
        self._running.discard(job_id)
        self.state.finish(job_id)

    @property
    def active_jobs(self) -> int:
        return len(self._slo) + len(self._best_effort) + len(self._running)

    # -- scheduling cycle -------------------------------------------------------
    def cycle(self, now: float) -> CycleDecisions:
        decisions = CycleDecisions()
        # SLO jobs by earliest deadline; FIFO breaks ties.
        slo_order = sorted(self._slo.values(),
                           key=lambda j: (j.deadline, j.submit_time))
        for job in slo_order:
            if self.drop_hopeless and \
                    now + job.estimated_runtime_s > job.deadline + 1e-9:
                del self._slo[job.job_id]
                decisions.culled.append(job.job_id)
                continue
            self._try_launch(job, now, decisions, self._slo)
        for job in list(self._best_effort.values()):
            self._try_launch(job, now, decisions, self._best_effort)
        return decisions

    def _try_launch(self, job: Job, now: float, decisions: CycleDecisions,
                    queue: OrderedDict) -> None:
        free = self.state.free_nodes()
        if len(free) < job.k:
            return
        nodes = frozenset(sorted(free)[:job.k])
        expected_end = now + job.estimated_runtime_s
        self.state.start(job.job_id, nodes, now, expected_end)
        self._running.add(job.job_id)
        del queue[job.job_id]
        decisions.allocations.append(
            Allocation(job.job_id, nodes, now, expected_end))
