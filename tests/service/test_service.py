"""Scheduler-service core: lifecycle registry, fake-clock timer, drain."""

import asyncio

import pytest

from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.errors import ServiceError
from repro.service import (CANCELLED, COMPLETED, CULLED, PENDING, RUNNING,
                           FakeClock, SchedulerService, run_cycle_loop)


def build(clock=None, **kw):
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    defaults = dict(quantum_s=10.0, cycle_s=10.0, plan_ahead_s=40.0,
                    backend="pure", rel_gap=1e-6, delta_mode="verify")
    defaults.update(kw)
    return SchedulerService(cluster, TetriSchedConfig(**defaults),
                            clock=clock or FakeClock())


SPEC = {"options": [{"k": 1, "duration_s": 20}],
        "value": 1000.0, "deadline": 500.0}


class TestSubmit:
    def test_submit_spec_lifecycle(self):
        svc = build()
        rec = svc.submit_spec(dict(SPEC, job_id="a"))
        assert rec.state == PENDING
        result = svc.run_one_cycle()
        assert [a.job_id for a in result.allocations] == ["a"]
        assert svc.job("a").state == RUNNING
        assert svc.job("a").nodes

    def test_generated_ids_are_unique(self):
        svc = build()
        ids = {svc.submit_spec(dict(SPEC)).job_id for _ in range(3)}
        assert len(ids) == 3

    def test_duplicate_id_rejected(self):
        svc = build()
        svc.submit_spec(dict(SPEC, job_id="a"))
        with pytest.raises(ServiceError):
            svc.submit_spec(dict(SPEC, job_id="a"))

    @pytest.mark.parametrize("bad", [
        {"options": []},
        {"options": [{"duration_s": 5}], "deadline": 50},
        {"options": [{"k": 1, "duration_s": 5}]},  # SLO without deadline
        {"options": [{"k": 1, "duration_s": 5}], "deadline": 50,
         "priority": "urgent"},
        {"options": [{"k": 1, "duration_s": 5, "nodes": ["mars"]}],
         "deadline": 50},
        {"options": [{"k": 1, "duration_s": 5, "attr": "quantum"}],
         "deadline": 50},
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ServiceError):
            build().submit_spec(bad)

    def test_best_effort_needs_no_deadline(self):
        svc = build()
        rec = svc.submit_spec({"priority": "best_effort",
                               "options": [{"k": 1, "duration_s": 20}]})
        assert rec.state == PENDING

    def test_attr_option_restricts_nodes(self):
        svc = build()
        gpu = svc.cluster.nodes_with_attr("gpu")
        rec = svc.submit_spec({"options": [{"k": 1, "duration_s": 20,
                                            "attr": "gpu"}],
                               "deadline": 500.0})
        assert rec.request.options[0].nodes == gpu


class TestLifecycle:
    def test_auto_complete_frees_nodes(self):
        clock = FakeClock()
        svc = build(clock)
        svc.submit_spec(dict(SPEC, job_id="a"))
        svc.run_one_cycle()
        assert svc.job("a").state == RUNNING
        clock.advance(30.0)
        svc.run_one_cycle()
        assert svc.job("a").state == COMPLETED
        assert svc.scheduler.state.utilization() == 0.0

    def test_manual_complete(self):
        clock = FakeClock()
        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        svc = SchedulerService(
            cluster, TetriSchedConfig(quantum_s=10.0, backend="pure",
                                      plan_ahead_s=40.0, rel_gap=1e-6),
            clock=clock, auto_complete=False)
        svc.submit_spec(dict(SPEC, job_id="a"))
        svc.run_one_cycle()
        clock.advance(100.0)
        svc.run_one_cycle()  # auto_complete off: still running
        assert svc.job("a").state == RUNNING
        svc.complete("a")
        assert svc.job("a").state == COMPLETED
        with pytest.raises(ServiceError):
            svc.complete("a")

    def test_cancel_pending_and_running(self):
        clock = FakeClock()
        svc = build(clock)
        svc.submit_spec(dict(SPEC, job_id="a"))
        svc.submit_spec(dict(SPEC, job_id="b"))
        assert svc.cancel("a").state == CANCELLED  # drained inline
        svc.run_one_cycle()
        assert svc.job("b").state == RUNNING
        svc.cancel("b")
        assert svc.job("b").state == CANCELLED
        assert not svc.scheduler.state.is_running("b")

    def test_cancel_terminal_job_is_noop(self):
        clock = FakeClock()
        svc = build(clock)
        svc.submit_spec(dict(SPEC, job_id="a"))
        svc.run_one_cycle()
        clock.advance(30.0)
        svc.run_one_cycle()
        assert svc.job("a").state == COMPLETED
        assert svc.cancel("a").state == COMPLETED

    def test_culled_job_marked(self):
        clock = FakeClock()
        svc = build(clock)
        # Deadline already unmeetable: culled in the generation stage.
        svc.submit_spec({"options": [{"k": 1, "duration_s": 100}],
                         "deadline": 5.0, "job_id": "late"})
        svc.run_one_cycle()
        assert svc.job("late").state == CULLED

    def test_cluster_events(self):
        svc = build()
        node = sorted(svc.cluster.node_names)[0]
        out = svc.cluster_event("remove", node)
        assert out["drained"] == [node]
        assert node in svc.status()["drained_nodes"]
        svc.cluster_event("add", node)
        assert svc.status()["drained_nodes"] == []
        with pytest.raises(ServiceError):
            svc.cluster_event("explode", node)

    def test_status_reports_delta(self):
        svc = build()
        svc.submit_spec(dict(SPEC, job_id="a"))
        svc.run_one_cycle()
        status = svc.status()
        assert status["delta_mode"] == "verify"
        assert status["delta"]["cycles"] == 1
        assert status["cycles_run"] == 1


class TestDrain:
    def test_drain_rejects_new_work_and_persists(self, tmp_path):
        clock = FakeClock()
        cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
        svc = SchedulerService(
            cluster,
            TetriSchedConfig(quantum_s=10.0, backend="pure",
                             plan_ahead_s=40.0, rel_gap=1e-6,
                             delta_mode="verify"),
            clock=clock, stats_path=tmp_path / "final.json")
        svc.submit_spec(dict(SPEC, job_id="a"))
        svc.run_one_cycle()
        final = svc.drain()
        assert final["clean"] is True
        assert (tmp_path / "final.json").exists()
        with pytest.raises(ServiceError):
            svc.submit_spec(dict(SPEC, job_id="b"))
        # Idempotent: a second drain returns the same record.
        assert svc.drain() is final


class TestTimerLoop:
    def test_cycles_fire_on_fake_clock(self):
        async def main():
            clock = FakeClock()
            svc = build(clock)
            svc.submit_spec(dict(SPEC, job_id="a"))
            stop = asyncio.Event()
            task = asyncio.create_task(run_cycle_loop(svc, stop))
            for expected in (1, 2, 3):
                # Let the loop park on clock.sleep, then release it.
                while clock.sleepers == 0:
                    await asyncio.sleep(0.005)
                clock.advance(10.0)
                while svc._cycles_run < expected:
                    await asyncio.sleep(0.005)
            stop.set()
            assert await task == 3
            assert svc.job("a").state in (RUNNING, COMPLETED)
        asyncio.run(main())

    def test_stop_wakes_immediately(self):
        async def main():
            clock = FakeClock()
            svc = build(clock)
            stop = asyncio.Event()
            task = asyncio.create_task(run_cycle_loop(svc, stop))
            while clock.sleepers == 0:
                await asyncio.sleep(0.005)
            stop.set()  # no clock.advance needed
            assert await asyncio.wait_for(task, timeout=5.0) == 0
        asyncio.run(main())


class TestFakeClock:
    def test_advance_releases_in_deadline_order(self):
        async def main():
            clock = FakeClock()
            order = []

            async def sleeper(tag, dt):
                await clock.sleep(dt)
                order.append(tag)

            tasks = [asyncio.create_task(sleeper("b", 20.0)),
                     asyncio.create_task(sleeper("a", 10.0))]
            await asyncio.sleep(0)
            assert clock.sleepers == 2
            clock.advance(15.0)
            await asyncio.sleep(0)
            assert order == ["a"]
            clock.advance(10.0)
            await asyncio.gather(*tasks)
            assert order == ["a", "b"]
        asyncio.run(main())

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)
