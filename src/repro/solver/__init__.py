"""MILP solver substrate (replaces the paper's CPLEX dependency).

Public surface:

* :class:`Model`, :class:`Variable`, :class:`LinExpr`, :func:`linear_sum` —
  model construction;
* :class:`BranchBoundSolver` / :func:`make_backend` — solving;
* :class:`MILPResult`, :class:`SolveStatus` — results;
* :func:`solve_lp` — the standalone two-phase simplex LP solver.
"""

from repro.solver.backend import BACKEND_NAMES, MILPBackend, make_backend
from repro.solver.branch_bound import BranchBoundOptions, BranchBoundSolver
from repro.solver.expr import BINARY, CONTINUOUS, INTEGER, LinExpr, Variable, linear_sum
from repro.solver.model import EQ, GE, LE, MAXIMIZE, MINIMIZE, Constraint, Model
from repro.solver.presolve import PresolveResult, presolve
from repro.solver.result import LPResult, MILPResult, SolveStatus
from repro.solver.scipy_backend import ScipyMILPSolver, scipy_available
from repro.solver.simplex import solve_lp

__all__ = [
    "BACKEND_NAMES", "BINARY", "BranchBoundOptions", "BranchBoundSolver",
    "CONTINUOUS", "Constraint", "EQ", "GE", "INTEGER", "LE", "LPResult",
    "LinExpr", "MAXIMIZE", "MILPBackend", "MILPResult", "MINIMIZE", "Model", "PresolveResult",
    "ScipyMILPSolver", "SolveStatus", "Variable", "linear_sum",
    "make_backend", "presolve", "scipy_available", "solve_lp",
]
