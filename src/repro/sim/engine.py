"""Discrete-event cluster simulator.

Replaces the paper's 256/80-node physical testbed (Sec. 6.1): job arrivals,
Rayon admission control, periodic scheduler cycles, placement-dependent true
runtimes, completions, and (for the CapacityScheduler baseline) preemption.
The event loop is deterministic: same workload + same scheduler = same
result, which the tests rely on.

Flow per job:

1. **Arrival** — SLO jobs run Rayon admission (with the *estimated* runtime,
   so mis-estimation distorts acceptance exactly as in Sec. 7.1); the job is
   handed to the scheduler with its accepted/rejected status.
2. **Cycles** — every ``scheduler.cycle_s`` seconds the scheduler is asked
   for decisions.  Launched jobs get a completion event at
   ``now + true_runtime(placement)`` — the ground truth the scheduler never
   sees directly.  Culled jobs are finalized as never-run (missed SLOs).
3. **Completion** — frees nodes, releases the reservation tail, records
   metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.cluster.cluster import Cluster
from repro.errors import SimulationError
from repro.obs.profile import RunProfile
from repro.reservation.rayon import RayonReservationSystem
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.faults import FaultModel
from repro.sim.interface import ClusterScheduler
from repro.sim.jobs import ElasticType, Job
from repro.sim.metrics import (JobOutcome, LatencyTrace, MetricsCollector,
                               MetricsReport)
from repro.sim.trace import (ARRIVAL, COMPLETION, CULL, FAILURE, LAUNCH,
                             PREEMPTION, RESIZE, ExecutionTrace)


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one run."""

    metrics: MetricsReport
    outcomes: dict[str, JobOutcome]
    latency: LatencyTrace
    end_time: float
    cycles: int
    scheduler_name: str
    #: Per-run observability profile: always carries the cheap counters
    #: (solver work, warm-start hit/miss, event counts); phase timers are
    #: filled in when the obs registry is enabled for the run.
    profile: RunProfile = field(default_factory=RunProfile)

    def __str__(self) -> str:
        m = self.metrics
        return (f"[{self.scheduler_name}] SLO total {m.slo_total_pct:.1f}% | "
                f"accepted {m.slo_accepted_pct:.1f}% | "
                f"w/o res {m.slo_no_reservation_pct:.1f}% | "
                f"BE latency {m.mean_be_latency_s:.1f}s | "
                f"preemptions {m.preemptions}")


class Simulation:
    """One simulated experiment run.

    Parameters
    ----------
    cluster:
        The simulated cluster.
    scheduler:
        A :class:`~repro.sim.interface.ClusterScheduler` (TetriSched adapter
        or CapacityScheduler baseline).
    jobs:
        The workload; arrival times come from each job's ``submit_time``.
    rayon:
        The shared admission-control frontend.  Created automatically when
        omitted (capacity = cluster size).
    max_time_s:
        Hard stop; unfinished jobs count as missed.  Defaults to generous.
    trace:
        Optional :class:`~repro.sim.trace.ExecutionTrace` to record every
        arrival/launch/completion/preemption/cull into.
    faults:
        Optional :class:`~repro.sim.faults.FaultModel`: launches may fail
        mid-run; failed jobs free their nodes and are resubmitted until the
        retry limit, then finalized as never-completed.
    """

    def __init__(self, cluster: Cluster, scheduler: ClusterScheduler,
                 jobs: list[Job],
                 rayon: RayonReservationSystem | None = None,
                 max_time_s: float = 1e7,
                 trace: ExecutionTrace | None = None,
                 faults: FaultModel | None = None) -> None:
        if not jobs:
            raise SimulationError("workload must contain at least one job")
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate job ids in workload")
        self.cluster = cluster
        self.scheduler = scheduler
        self.jobs = {j.job_id: j for j in jobs}
        self.rayon = rayon or RayonReservationSystem(
            capacity=len(cluster), step_s=scheduler.cycle_s)
        self.max_time_s = max_time_s
        self.trace = trace
        self.faults = faults
        self.metrics = MetricsCollector()
        self._attempts: dict[str, int] = {}
        self.latency = LatencyTrace()
        self.profile = RunProfile()
        self._events = EventQueue()
        self._completion_events: dict[str, Event] = {}
        #: Work-conservation model for running elastic jobs: fraction of
        #: total work finished before the current width segment, and the
        #: segment's (start_time, full_runtime_at_this_width).  A resize
        #: closes the segment, accrues its work, and reschedules the
        #: remaining fraction at the new width's speed.
        self._work_done: dict[str, float] = {}
        self._segments: dict[str, tuple[float, float]] = {}
        self._unfinalized = 0
        self._future_arrivals = 0
        self._cycles = 0
        self._now = 0.0

    # -- main loop -------------------------------------------------------------
    def run(self) -> SimulationResult:
        registry = obs.get_registry()
        obs_before = registry.snapshot() if registry.enabled else None

        for job in self.jobs.values():
            self._events.push(job.submit_time, EventKind.JOB_ARRIVAL, job)
            self._future_arrivals += 1
            self._unfinalized += 1
        self._events.push(0.0, EventKind.SCHEDULER_CYCLE)

        while self._events:
            ev = self._events.pop()
            if ev is None:
                break
            if ev.time > self.max_time_s:
                break
            self._now = ev.time
            self.profile.bump(f"sim.events.{ev.kind.name.lower()}")
            if ev.kind == EventKind.JOB_ARRIVAL:
                self._on_arrival(ev.payload)
            elif ev.kind == EventKind.JOB_COMPLETION:
                self._on_completion(ev.payload)
            elif ev.kind == EventKind.JOB_FAILURE:
                self._on_failure(ev.payload)
            else:
                self._on_cycle()

        if obs_before is not None:
            self.profile.merge_delta(
                obs.snapshot_delta(obs_before, registry.snapshot()))
        return SimulationResult(
            metrics=self.metrics.report(),
            outcomes=self.metrics.outcomes,
            latency=self.latency,
            end_time=self._now, cycles=self._cycles,
            scheduler_name=self.scheduler.name,
            profile=self.profile)

    # -- event handlers -----------------------------------------------------------
    def _on_arrival(self, job: Job) -> None:
        self._future_arrivals -= 1
        accepted = False
        if job.is_slo:
            decision = self.rayon.submit(
                job.job_id, k=job.k, duration_s=job.estimated_runtime_s,
                arrival_s=job.submit_time, deadline_s=job.deadline)
            accepted = decision.accepted
        self.metrics.register(JobOutcome(
            job_id=job.job_id, is_slo=job.is_slo, accepted=accepted,
            submit_time=job.submit_time, deadline=job.deadline))
        if self.trace is not None:
            self.trace.record(self._now, ARRIVAL, job.job_id,
                              detail="accepted" if accepted else
                              ("rejected" if job.is_slo else "best-effort"))
        self.scheduler.submit(job, accepted, self._now)

    def _on_completion(self, job_id: str) -> None:
        self._completion_events.pop(job_id, None)
        self._work_done.pop(job_id, None)
        self._segments.pop(job_id, None)
        self.scheduler.job_finished(job_id, self._now)
        self.rayon.on_job_complete(job_id, self._now)
        self.metrics.of(job_id).finish_time = self._now
        if self.trace is not None:
            self.trace.record(self._now, COMPLETION, job_id)
        self._unfinalized -= 1

    def _on_failure(self, job_id: str) -> None:
        """A running attempt died; free nodes, retry or abandon."""
        self._completion_events.pop(job_id, None)
        self._work_done.pop(job_id, None)
        self._segments.pop(job_id, None)
        self.scheduler.job_finished(job_id, self._now)
        self._attempts[job_id] = self._attempts.get(job_id, 0) + 1
        outcome = self.metrics.of(job_id)
        failed_nodes = outcome.nodes
        outcome.failures += 1
        outcome.start_time = None
        outcome.nodes = frozenset()
        if self.trace is not None:
            self.trace.record(self._now, FAILURE, job_id,
                              detail=f"attempt={self._attempts[job_id]}")
        if self.faults is not None and self.faults.gave_up(outcome.failures):
            # Abandoned: finalize as never-completed.
            self.rayon.on_job_complete(job_id, self._now)
            self._unfinalized -= 1
            return
        job = self.jobs[job_id]
        width = len(failed_nodes)
        if (isinstance(job.job_type, ElasticType)
                and 0 < width != job.k):
            # An elastic job that resized before dying re-enters at its
            # *current* width, not its submitted one: the width re-plan is
            # a durable reconfiguration, so the retry's ladder tops out at
            # the width the attempt was actually running.  Rebasing keeps
            # total work honest — the runtime at the failed width under
            # the old reference becomes the new base.
            job = replace(
                job, k=width,
                base_runtime_s=job.true_runtime_on(self.cluster,
                                                   failed_nodes))
            self.jobs[job_id] = job
        self.scheduler.submit(job, self.rayon.is_accepted(job_id), self._now)

    def _on_cycle(self) -> None:
        self._cycles += 1
        decisions = self.scheduler.cycle(self._now)

        for job_id in decisions.preempted:
            ev = self._completion_events.pop(job_id, None)
            if ev is None:
                raise SimulationError(
                    f"preempted job {job_id!r} has no completion event")
            self._events.cancel(ev)
            outcome = self.metrics.of(job_id)
            outcome.preemptions += 1
            outcome.start_time = None
            outcome.nodes = frozenset()
            self.rayon.on_job_complete(job_id, self._now)
            self._work_done.pop(job_id, None)
            self._segments.pop(job_id, None)
            if self.trace is not None:
                self.trace.record(self._now, PREEMPTION, job_id)

        # A resize closes the running width segment: cancel the in-flight
        # completion/failure event and bank the work done so far.  The new
        # node set arrives in ``allocations`` below and reschedules the
        # remaining fraction at the new width's speed.
        resized = set(decisions.resized)
        for job_id in decisions.resized:
            ev = self._completion_events.pop(job_id, None)
            if ev is None:
                raise SimulationError(
                    f"resized job {job_id!r} has no completion event")
            self._events.cancel(ev)
            seg_start, seg_full = self._segments.pop(job_id)
            self._work_done[job_id] = min(
                1.0, self._work_done.get(job_id, 0.0)
                + (self._now - seg_start) / seg_full)

        for alloc in decisions.allocations:
            job = self.jobs[alloc.job_id]
            actual = job.true_runtime_on(self.cluster, alloc.nodes)
            is_resize = alloc.job_id in resized
            if not is_resize:
                self._work_done[alloc.job_id] = 0.0
            done = self._work_done[alloc.job_id]
            attempt = self._attempts.get(alloc.job_id, 0)
            decision = (self.faults.draw(alloc.job_id, attempt)
                        if self.faults is not None else None)
            if (decision is not None and decision.fails
                    and decision.at_fraction > done):
                # Faults strike at a fixed *work* fraction of the attempt,
                # so the same draw stays consistent across resizes.
                ev = self._events.push(
                    self._now + actual * (decision.at_fraction - done),
                    EventKind.JOB_FAILURE, alloc.job_id)
            else:
                ev = self._events.push(self._now + actual * (1.0 - done),
                                       EventKind.JOB_COMPLETION,
                                       alloc.job_id)
            self._completion_events[alloc.job_id] = ev
            self._segments[alloc.job_id] = (self._now, actual)
            outcome = self.metrics.of(alloc.job_id)
            if is_resize:
                outcome.resizes += 1
            else:
                outcome.start_time = self._now
            outcome.nodes = alloc.nodes
            outcome.preferred_placement = (
                actual <= job.base_runtime_s + 1e-9)
            if self.trace is not None:
                self.trace.record(self._now, RESIZE if is_resize else LAUNCH,
                                  alloc.job_id,
                                  nodes=tuple(sorted(alloc.nodes)),
                                  detail=f"true_runtime={actual:.1f}")

        for job_id in decisions.culled:
            self._unfinalized -= 1
            if self.trace is not None:
                self.trace.record(self._now, CULL, job_id)

        self._profile_cycle(decisions)
        if decisions.stats is not None:
            self.latency.record(decisions.stats.cycle_latency_s,
                                decisions.stats.solver_latency_s)

        # Keep cycling while any job is still in flight.
        if self._unfinalized > 0 and self._now < self.max_time_s:
            self._events.push(self._now + self.scheduler.cycle_s,
                              EventKind.SCHEDULER_CYCLE)

    def _profile_cycle(self, decisions) -> None:
        """Fold one cycle's decisions into the run profile (cheap, always on)."""
        profile = self.profile
        profile.bump("cycles")
        stats = decisions.stats
        if stats is not None:
            profile.bump("solver.solves", stats.solves)
            profile.bump("solver.bnb.nodes", stats.solver_nodes)
            profile.bump("solver.lp.iterations", stats.lp_iterations)
            profile.bump("solver.lp.dual_pivots", stats.lp_dual_pivots)
            profile.bump("solver.lp.refactorizations",
                         stats.lp_refactorizations)
            profile.bump("solver.lp.warm_restarts", stats.lp_warm_restarts)
            profile.bump("solver.lp.warm_hits", stats.lp_warm_hits)
            profile.bump("solver.lp.factorizations", stats.lp_factorizations)
            profile.bump("solver.lp.ft_updates", stats.lp_ft_updates)
            profile.bump("solver.lp.pricing_candidates",
                         stats.lp_pricing_candidates)
            profile.maximize("solver.lp.fill_ratio", stats.lp_fill_ratio)
            profile.bump("solver.milp_variables", stats.milp_variables)
            profile.bump("solver.milp_constraints", stats.milp_constraints)
            if stats.warm_start_attempted:
                profile.bump("scheduler.warm_start.attempts")
                profile.bump("scheduler.warm_start.hits",
                             1.0 if stats.warm_start_hit else 0.0)
            profile.bump("scheduler.components", stats.components)
            profile.bump("solver.milp_nonzeros", stats.milp_nonzeros)
            profile.bump("solver.cache.hits", stats.cache_hits)
            profile.bump("solver.cache.warm_hits", stats.cache_warm_hits)
            profile.bump("solver.cache.evictions", stats.cache_evictions)
            profile.bump("scheduler.cancelled", stats.cancelled)
            profile.bump("scheduler.delta.jobs_dirty", stats.jobs_dirty)
            profile.bump("scheduler.delta.jobs_clean", stats.jobs_clean)
            profile.bump("scheduler.delta.rows_patched", stats.rows_patched)
            profile.bump("scheduler.delta.cols_patched", stats.cols_patched)
            profile.bump("scheduler.delta.full_rebuilds",
                         1.0 if stats.delta_full_rebuild else 0.0)
            profile.bump("scheduler.elastic.offered", stats.elastic_offered)
            profile.bump("scheduler.elastic.resized", stats.elastic_resized)
            profile.bump("scheduler.elastic.grown", stats.elastic_grown)
            profile.bump("scheduler.elastic.shrunk", stats.elastic_shrunk)
            for stage, seconds in stats.stage_timings.items():
                profile.bump(f"scheduler.stage_s.{stage}", seconds)
        launched = len(decisions.allocations) - len(decisions.resized)
        profile.bump("scheduler.launched", launched)
        profile.bump("scheduler.resized", len(decisions.resized))
        profile.bump("scheduler.culled", len(decisions.culled))
        profile.bump("scheduler.preempted", len(decisions.preempted))
        obs.emit("sim.cycle", now=self._now, cycle=self._cycles,
                 launched=launched, resized=len(decisions.resized),
                 culled=len(decisions.culled),
                 queue_depth=len(self._events),
                 pending=getattr(self.scheduler, "active_jobs", None),
                 unfinalized=self._unfinalized)
