#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs the complete reproduction harness (Tables 1-2, Figures 6-12) at bench
scale and writes the rendered tables to ``results/``.  Pass ``--full`` for
larger workloads and seed averaging (slower), or a list of experiment ids
to run a subset.

Run:  python examples/reproduce_paper.py [--full] [fig6 fig9 ...]
"""

import argparse
import pathlib
import sys
import time

from repro.experiments import ALL_FIGURES

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", default=[],
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="larger workloads + seed averaging")
    args = parser.parse_args(argv)

    ids = args.ids or list(ALL_FIGURES)
    unknown = [i for i in ids if i not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; "
                     f"choose from {sorted(ALL_FIGURES)}")

    RESULTS.mkdir(exist_ok=True)
    scale = "full" if args.full else "bench"
    for figure_id in ids:
        fn = ALL_FIGURES[figure_id]
        t0 = time.monotonic()
        # Tables take no scale argument.
        result = fn(scale) if figure_id.startswith("fig") else fn()
        elapsed = time.monotonic() - t0
        out = RESULTS / f"{figure_id}.txt"
        out.write_text(result.text + "\n")
        print(result.text)
        print(f"[{figure_id}: {elapsed:.1f}s -> {out}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
