"""Parser/printer tests, including a hypothesis round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StrlParseError
from repro.strl import Barrier, LnCk, Max, Min, NCk, Scale, Sum, parse, to_text

NODES = frozenset({"M1", "M2", "M3", "M4"})


class TestParse:
    def test_parse_nck(self):
        e = parse("(nCk (set M1 M2) :k 2 :start 0 :dur 2 :v 4)")
        assert e == NCk(frozenset({"M1", "M2"}), 2, 0, 2, 4.0)

    def test_parse_keywords_any_order(self):
        e = parse("(nCk (set M1) :v 1.5 :dur 3 :k 1 :start 2)")
        assert e == NCk(frozenset({"M1"}), 1, 2, 3, 1.5)

    def test_parse_lnck(self):
        e = parse("(LnCk (set A B C) :k 2 :start 0 :dur 1 :v 2)")
        assert isinstance(e, LnCk)

    def test_parse_paper_soft_constraint_example(self):
        # Fig. 3: GPU job choice.
        text = """
        (max (nCk (set M1 M2) :k 2 :start 0 :dur 2 :v 4)
             (nCk (set M1 M2 M3 M4) :k 2 :start 0 :dur 3 :v 3))
        """
        e = parse(text)
        assert isinstance(e, Max)
        assert len(e.subexprs) == 2
        assert e.max_value() == 4.0

    def test_parse_min_scale_barrier(self):
        e = parse("(barrier 2 (scale 3 (min (nCk (set A) :k 1 :start 0 :dur 1 :v 1))))")
        assert isinstance(e, Barrier)
        assert isinstance(e.subexpr, Scale)
        assert isinstance(e.subexpr.subexpr, Min)

    @pytest.mark.parametrize("bad", [
        "",
        "(nCk (set) :k 1 :start 0 :dur 1 :v 1)",          # empty set
        "(nCk (set A) :k 1 :start 0 :dur 1)",             # missing :v
        "(nCk (set A) k 1 :start 0 :dur 1 :v 1)",         # bare keyword
        "(frob (set A))",                                  # unknown op
        "(max)",                                           # no children
        "(nCk (set A) :k 1.5 :start 0 :dur 1 :v 1)",      # fractional k
        "(nCk (set A) :k x :start 0 :dur 1 :v 1)",        # non-numeric
        "(nCk (set A) :k 1 :start 0 :dur 1 :v 1) extra",  # trailing tokens
        "(scale nope (nCk (set A) :k 1 :start 0 :dur 1 :v 1))",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(StrlParseError):
            parse(bad)


class TestPrinter:
    def test_flat_text(self):
        e = Max(NCk(frozenset({"M1"}), 1, 0, 1, 1.0),
                NCk(frozenset({"M2"}), 1, 0, 1, 2.0))
        text = to_text(e)
        assert text.startswith("(max (nCk")

    def test_pretty_text_parses(self):
        e = Sum(Max(NCk(NODES, 2, 0, 2, 4.0)),
                Scale(NCk(NODES, 1, 1, 1, 1.0), 2.0))
        pretty = to_text(e, indent=2)
        assert "\n" in pretty
        assert parse(pretty) == e

    def test_integral_values_printed_without_decimal(self):
        e = NCk(NODES, 2, 0, 2, 4.0)
        assert ":v 4" in to_text(e)


# -- hypothesis round-trip ---------------------------------------------------

_names = st.sampled_from(["M1", "M2", "M3", "M4", "N5", "N6"])
_sets = st.frozensets(_names, min_size=1, max_size=4)


@st.composite
def _leaves(draw):
    nodes = draw(_sets)
    k = draw(st.integers(1, len(nodes)))
    cls = draw(st.sampled_from([NCk, LnCk]))
    return cls(nodes=nodes, k=k,
               start=draw(st.integers(0, 5)),
               duration=draw(st.integers(1, 5)),
               value=float(draw(st.integers(0, 100))) / 4)


def _exprs():
    return st.recursive(
        _leaves(),
        lambda inner: st.one_of(
            st.builds(lambda cs: Max(*cs), st.lists(inner, min_size=1, max_size=3)),
            st.builds(lambda cs: Min(*cs), st.lists(inner, min_size=1, max_size=3)),
            st.builds(lambda cs: Sum(*cs), st.lists(inner, min_size=1, max_size=3)),
            st.builds(Scale, inner, st.integers(0, 5).map(float)),
            st.builds(Barrier, inner, st.integers(0, 5).map(float)),
        ),
        max_leaves=8)


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(_exprs())
    def test_parse_inverts_print(self, expr):
        assert parse(to_text(expr)) == expr

    @settings(max_examples=60, deadline=None)
    @given(_exprs())
    def test_pretty_parse_inverts_print(self, expr):
        assert parse(to_text(expr, indent=4)) == expr
