"""STRL Generator: job requests -> STRL expressions (Sec. 3.1, 4.3, 4.4).

The generator replicates each job's spatial placement options over every
possible start time in the plan-ahead window (time is quantized, so the
expression grows linearly with the window, Sec. 3.2.1), attaches the value of
the resulting completion time from the job's value function, and combines
everything under a ``max`` — the solver then picks the single most valuable
space-time shape.

Culling optimizations (Sec. 3.2.1, 7.3) are applied during generation:

* options whose completion would exceed the job's deadline are skipped;
* options with non-positive value are skipped;
* jobs that retain no options yield ``None`` (the scheduler drops them from
  this cycle's MILP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import StrlError
from repro.strl.ast import ElasticNCk, Max, NCk, StrlNode, Sum
from repro.valuefn import ValueFunction


@dataclass(frozen=True)
class SpaceOption:
    """One spatial placement alternative for a job.

    A job type with heterogeneity preferences produces several options with
    different equivalence sets and durations — e.g. a GPU job offers
    ("GPU nodes", fast duration) and ("whole cluster", slow duration); an
    MPI job offers one option per rack (fast) plus the whole cluster (slow).

    Attributes
    ----------
    nodes:
        Equivalence set: names of nodes this option may draw from.
    k:
        Gang size — number of nodes required simultaneously.
    duration_s:
        Estimated runtime in seconds when placed this way.
    label:
        Diagnostic tag ("gpu", "rack:r0", "fallback", ...).
    """

    nodes: frozenset[str]
    k: int
    duration_s: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise StrlError(f"SpaceOption: k must be positive, got {self.k}")
        if self.duration_s <= 0:
            raise StrlError(
                f"SpaceOption: duration must be positive, got {self.duration_s}")

    @property
    def feasible(self) -> bool:
        """Whether the equivalence set is large enough for the gang."""
        return self.k <= len(self.nodes)


def quantize_duration(duration_s: float, quantum_s: float) -> int:
    """Convert seconds to an integral number of quanta, rounding up.

    Rounding up is the safe direction: the scheduler never plans a slot
    shorter than the job's estimated runtime.
    """
    if quantum_s <= 0:
        raise StrlError("quantum must be positive")
    return max(1, math.ceil(duration_s / quantum_s - 1e-6))


#: Default per-quantum completion-time bias (see generate_job_strl).
DEFAULT_EARLINESS_BIAS = 1e-3


def generate_job_strl(options: list[SpaceOption], value_fn: ValueFunction,
                      now: float, quantum_s: float, plan_ahead_quanta: int,
                      deadline: float | None = None,
                      cull: bool = True,
                      earliness_bias: float = DEFAULT_EARLINESS_BIAS) -> StrlNode | None:
    """Build one job's STRL expression for the current scheduling cycle.

    Parameters
    ----------
    options:
        Spatial alternatives from the job's framework plugin.  Options whose
        equivalence set is smaller than ``k`` are ignored.
    value_fn:
        Maps absolute completion time to value (see :mod:`repro.valuefn`).
    now:
        Absolute current time in seconds (cycle start).
    quantum_s:
        Time quantum; leaf ``start``/``duration`` are in these units.
    plan_ahead_quanta:
        Number of *future* start quanta to consider.  ``0`` disables
        plan-ahead (TetriSched-NP / alsched): the job may only start now.
    deadline:
        Absolute deadline; used for culling when ``cull`` is true.
    cull:
        Apply deadline/zero-value culling.  Disabled only by the culling
        ablation benchmark.
    earliness_bias:
        Deterministic tie-breaker: each leaf's value is scaled by
        ``max(0.1, 1 - bias * completion_quanta)``.  The paper's SLO value
        function is *constant* up to the deadline (Fig. 5), which leaves the
        MILP indifferent between starting a job now or deferring it, and
        between fast and slow placements that both meet the deadline.  The
        tiny bias makes the solver strictly prefer earlier completion
        without perturbing the 1000x/25x/1x priority ordering.  Set to 0 to
        recover the paper's raw value functions exactly.

    Returns
    -------
    The job's ``max`` expression, a single leaf, or ``None`` when every
    option was culled.
    """
    if plan_ahead_quanta < 0:
        raise StrlError("plan_ahead_quanta must be >= 0")
    leaves: list[NCk] = []
    for opt in options:
        if not opt.feasible:
            continue
        dur_q = quantize_duration(opt.duration_s, quantum_s)
        for start_q in range(plan_ahead_quanta + 1):
            completion = now + (start_q + dur_q) * quantum_s
            if cull and deadline is not None and completion > deadline + 1e-9:
                break  # later starts only finish later; stop this option
            value = value_fn(completion)
            if cull and value <= 0.0:
                continue
            if earliness_bias and value > 0.0:
                value *= max(0.1, 1.0 - earliness_bias * (start_q + dur_q))
            leaves.append(NCk(nodes=opt.nodes, k=opt.k, start=start_q,
                              duration=dur_q, value=value))
    if not leaves:
        return None
    if len(leaves) == 1:
        return leaves[0]
    return Max(*leaves)


def generate_elastic_strl(options: list[SpaceOption],
                          value_fn: ValueFunction,
                          now: float, quantum_s: float,
                          plan_ahead_quanta: int,
                          deadline: float | None = None,
                          cull: bool = True,
                          earliness_bias: float = DEFAULT_EARLINESS_BIAS,
                          width_cap: int | None = None) -> StrlNode | None:
    """Build a malleable job's STRL expression from its width family.

    ``options`` is one option per admissible gang width (``opt.k`` is the
    width; narrower widths carry longer durations — work conservation).
    Each start quantum becomes one :class:`ElasticNCk` covering every
    width that still meets the deadline with positive value at that start;
    the per-start nodes are combined under ``max`` exactly like rigid
    placement options.  ``width_cap`` implements the DRESS-style
    congestion guard: widths above the cap are dropped before generation,
    shrinking the job's claim when the ledger is oversubscribed.

    Falls back to :func:`generate_job_strl` when the option family is not
    a clean width ladder (mixed node sets or non-contiguous widths), so
    callers may pass any option list.
    """
    if plan_ahead_quanta < 0:
        raise StrlError("plan_ahead_quanta must be >= 0")
    family = sorted((opt for opt in options if opt.feasible),
                    key=lambda o: o.k)
    if width_cap is not None:
        capped = [opt for opt in family if opt.k <= width_cap]
        # Never cap below the narrowest admissible width: the guard
        # shrinks a job's claim, it must not evict the job entirely.
        family = capped or family[:1]
    if not family:
        return None
    widths = [opt.k for opt in family]
    is_ladder = (len(set(widths)) == len(widths)
                 and widths == list(range(widths[0], widths[-1] + 1))
                 and all(opt.nodes == family[0].nodes for opt in family)
                 and all(a.duration_s >= b.duration_s
                         for a, b in zip(family, family[1:])))
    if not is_ladder:
        return generate_job_strl(family, value_fn, now, quantum_s,
                                 plan_ahead_quanta, deadline, cull,
                                 earliness_bias)
    nodes = family[0].nodes
    per_start: list[StrlNode] = []
    for start_q in range(plan_ahead_quanta + 1):
        durs: list[int] = []
        vals: list[float] = []
        kept: list[int] = []
        for opt in family:
            dur_q = quantize_duration(opt.duration_s, quantum_s)
            completion = now + (start_q + dur_q) * quantum_s
            if cull and deadline is not None and completion > deadline + 1e-9:
                # Narrower widths finish even later — the surviving band
                # stays contiguous at the top of the width range.
                durs.clear(); vals.clear(); kept.clear()
                continue
            value = value_fn(completion)
            if cull and value <= 0.0:
                durs.clear(); vals.clear(); kept.clear()
                continue
            if earliness_bias and value > 0.0:
                value *= max(0.1, 1.0 - earliness_bias * (start_q + dur_q))
            durs.append(dur_q)
            vals.append(value)
            kept.append(opt.k)
        if not kept:
            continue
        if len(kept) == 1:
            per_start.append(NCk(nodes=nodes, k=kept[0], start=start_q,
                                 duration=durs[0], value=vals[0]))
        else:
            per_start.append(ElasticNCk(
                nodes=nodes, min_width=kept[0], max_width=kept[-1],
                start=start_q, durations=tuple(durs),
                value_per_width=tuple(vals)))
    if not per_start:
        return None
    if len(per_start) == 1:
        return per_start[0]
    return Max(*per_start)


def generate_batch_strl(job_exprs: list[StrlNode]) -> StrlNode | None:
    """Aggregate per-job expressions with the top-level ``sum`` (Sec. 3.2)."""
    if not job_exprs:
        return None
    if len(job_exprs) == 1:
        return Sum(job_exprs[0])
    return Sum(*job_exprs)
