"""Tests for the sparse LU / Forrest–Tomlin basis factorization.

Four families:

* unit tests on the factor objects themselves — FTRAN/BTRAN against a
  dense reference across chains of Forrest–Tomlin (resp. product-form)
  updates, singularity detection, fill accounting, mode selection;
* differential property tests: the sparse-LU engine must reproduce the
  dense-LU engine's terminal objective *and* terminal basis on random
  bounded-variable LPs, including degenerate/duplicate-column instances
  built to stall pricing and force the Bland anti-cycling fallback;
* pricing tests: Devex reference weights are reset ("exact recompute")
  at every refactorization, so forcing a refactorization every pivot
  must not change the terminal result;
* warm-restart regression: a stale or singular inherited basis must
  fall back to a cold factorization, never crash or mis-solve.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.solver import BranchBoundOptions, BranchBoundSolver, SolveStatus
from repro.solver.revised_simplex import BasisState, RevisedSimplexEngine
from repro.solver.sparse_lu import (DenseBasisFactor, InverseBasisFactor,
                                    SingularBasisError, SparseBasisFactor,
                                    make_factor)
from tests.strategies import degenerate_lps, lp_problems, mixed_bound_lps

ALL_FACTORS = (SparseBasisFactor, DenseBasisFactor, InverseBasisFactor)


def _random_basis(rng, m, max_col_nnz=4):
    """A random sparse well-conditioned basis as (dense, column list).

    A unit diagonal plus a few off-diagonal entries per column keeps the
    matrix nonsingular at any size (raw sparse random matrices are
    singular more often than not as ``m`` grows).
    """
    while True:
        basis = np.eye(m)
        for j in range(m):
            k = rng.integers(0, min(m, max_col_nnz))
            rows = rng.choice(m, size=k, replace=False)
            basis[rows, j] += rng.normal(size=k)
        if np.linalg.cond(basis) < 1e6:
            cols = [(np.nonzero(basis[:, j])[0],
                     basis[np.nonzero(basis[:, j])[0], j])
                    for j in range(m)]
            return basis, cols


def _cols_of(basis):
    return [(np.nonzero(basis[:, j])[0],
             basis[np.nonzero(basis[:, j])[0], j])
            for j in range(basis.shape[1])]


class TestFactorSolves:
    @pytest.mark.parametrize("factor_cls", ALL_FACTORS)
    def test_ftran_btran_match_dense_reference(self, factor_cls):
        rng = np.random.default_rng(3)
        for m in (1, 2, 5, 17, 40):
            basis, cols = _random_basis(rng, m)
            f = factor_cls(m)
            f.factorize(cols)
            for _ in range(3):
                v = rng.normal(size=m)
                np.testing.assert_allclose(basis @ f.ftran(v), v, atol=1e-8)
                np.testing.assert_allclose(basis.T @ f.btran(v), v, atol=1e-8)

    @pytest.mark.parametrize("factor_cls", ALL_FACTORS)
    def test_update_chain_tracks_column_replacements(self, factor_cls):
        """Ten successive basis exchanges stay consistent with a dense
        reference rebuilt from scratch at every step."""
        rng = np.random.default_rng(11)
        m = 14
        basis, cols = _random_basis(rng, m)
        f = factor_cls(m)
        f.factorize(cols)
        for _ in range(10):
            slot = int(rng.integers(m))
            k = int(rng.integers(1, 5))
            rows = rng.choice(m, size=k, replace=False)
            vals = rng.normal(size=k)
            new_basis = basis.copy()
            new_basis[:, slot] = 0.0
            new_basis[rows, slot] = vals
            if abs(np.linalg.det(new_basis)) < 1e-6:
                continue
            col = np.zeros(m)
            col[rows] = vals
            ok = f.update(slot, f.ftran(col), rows, vals)
            if not ok:  # refused update => engine would refactorize
                f.factorize(_cols_of(new_basis))
            basis = new_basis
            v = rng.normal(size=m)
            np.testing.assert_allclose(basis @ f.ftran(v), v, atol=1e-7)
            np.testing.assert_allclose(basis.T @ f.btran(v), v, atol=1e-7)

    @pytest.mark.parametrize("factor_cls", ALL_FACTORS)
    def test_singular_basis_raises(self, factor_cls):
        m = 5
        basis = np.eye(m)
        basis[:, 3] = basis[:, 2]  # duplicate column => singular
        f = factor_cls(m)
        with pytest.raises(SingularBasisError):
            f.factorize(_cols_of(basis))

    def test_singular_error_is_linalgerror(self):
        # Warm-restart cold-fallback paths catch np.linalg.LinAlgError;
        # the factor's singularity signal must stay a subclass of it.
        assert issubclass(SingularBasisError, np.linalg.LinAlgError)

    def test_sparse_fill_ratio_stays_small_on_sparse_basis(self):
        rng = np.random.default_rng(5)
        _, cols = _random_basis(rng, 60, max_col_nnz=3)
        f = SparseBasisFactor(60)
        f.factorize(cols)
        assert 1.0 <= f.fill_ratio < 5.0
        dense = DenseBasisFactor(60)
        dense.factorize(cols)
        assert dense.fill_ratio > f.fill_ratio

    def test_forrest_tomlin_refuses_unstable_pivot(self):
        # Replacing a column so the new diagonal is ~0 must be refused
        # (returns False), leaving the old factor untouched.
        m = 3
        basis = np.eye(m)
        f = SparseBasisFactor(m)
        f.factorize(_cols_of(basis))
        rows = np.array([0, 1])  # new column with no support on row 2
        vals = np.array([1.0, 1.0])
        col = np.zeros(m)
        col[rows] = vals
        assert f.update(2, f.ftran(col), rows, vals) is False
        v = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(f.ftran(v), v)  # still the identity

    def test_make_factor_mode_selection(self):
        assert make_factor(4, "sparse", 16, 128).kind == "sparse"
        assert make_factor(600, "dense", 10, 128).kind == "dense"
        assert make_factor(600, "inverse", 10, 128).kind == "inverse"
        # auto: small basis stays dense, big sparse basis goes sparse,
        # big *dense* basis stays dense.
        assert make_factor(16, "auto", 40, 128).kind == "dense"
        assert make_factor(600, "auto", 3000, 128).kind == "sparse"
        assert make_factor(600, "auto", 600 * 600, 128).kind == "dense"


def _engines(lp, factors=("sparse", "dense")):
    return [RevisedSimplexEngine(lp["c"], lp["a_ub"], lp["b_ub"],
                                 lp["a_eq"], lp["b_eq"], factor=mode)
            for mode in factors]


class TestEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(lp=lp_problems())
    def test_sparse_lu_matches_dense_objective_and_basis(self, lp):
        sparse_eng, dense_eng = _engines(lp)
        rs = sparse_eng.solve(lp["lb"], lp["ub"])
        rd = dense_eng.solve(lp["lb"], lp["ub"])
        assert rs.status == rd.status
        if rs.status == SolveStatus.OPTIMAL:
            # Objectives agree to ULP noise regardless of pivot path; when
            # no ratio-test tie was broken differently (same iteration
            # count), the engines must have walked the same pivots and so
            # land on the identical terminal basis.
            assert rs.objective == pytest.approx(rd.objective,
                                                 rel=1e-12, abs=1e-12)
            if rs.iterations == rd.iterations:
                np.testing.assert_array_equal(rs.basis.basic, rd.basis.basic)
                np.testing.assert_array_equal(rs.basis.vstat, rd.basis.vstat)

    @settings(max_examples=60, deadline=None)
    @given(lp=degenerate_lps())
    def test_degenerate_duplicate_column_instances_agree(self, lp):
        """Duplicate columns/rows + zero RHS: ties stall Devex pricing
        into the Bland fallback and hand the factorization dependent
        candidate bases.  A one-ULP difference in the ftran'd pivot
        column can flip which of two *identical* columns wins a tied
        ratio test, so pivot paths may diverge — but both engines must
        terminate OPTIMAL at the same objective."""
        sparse_eng, dense_eng = _engines(lp)
        rs = sparse_eng.solve(lp["lb"], lp["ub"])
        rd = dense_eng.solve(lp["lb"], lp["ub"])
        assert rs.status == rd.status == SolveStatus.OPTIMAL
        assert rs.objective == pytest.approx(rd.objective,
                                             rel=1e-9, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(lp=mixed_bound_lps())
    def test_sparse_lu_matches_dense_on_mixed_bounds(self, lp):
        sparse_eng, dense_eng = _engines(lp)
        rs = sparse_eng.solve(lp["lb"], lp["ub"])
        rd = dense_eng.solve(lp["lb"], lp["ub"])
        assert rs.status == rd.status
        if rs.status == SolveStatus.OPTIMAL:
            assert rs.objective == pytest.approx(rd.objective, abs=1e-9)

    def test_engine_reports_factor_stats(self):
        c = np.array([-1.0, -2.0, -1.0])
        a_ub = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
        b_ub = np.array([4.0, 5.0])
        eng = RevisedSimplexEngine(c, a_ub, b_ub, None, None, factor="sparse")
        res = eng.solve(np.zeros(3), np.full(3, 9.0))
        assert res.status == SolveStatus.OPTIMAL
        assert res.stats["factorizations"] >= 1
        assert res.stats["fill_ratio"] >= 1.0
        assert eng.counters["pricing_candidates"] > 0


class TestDevexRecompute:
    @settings(max_examples=30, deadline=None)
    @given(lp=lp_problems())
    def test_refactorize_every_pivot_is_equivalent(self, lp):
        """refactor_every=1 resets the Devex reference framework (weights
        back to 1) after *every* pivot — the "exact recompute" limit.  A
        run with the default update budget must land on the same terminal
        objective and basis, or the reference-weight bookkeeping between
        refactorizations is drifting from the recompute."""
        budget = RevisedSimplexEngine(lp["c"], lp["a_ub"], lp["b_ub"],
                                      lp["a_eq"], lp["b_eq"],
                                      factor="sparse")
        fresh = RevisedSimplexEngine(lp["c"], lp["a_ub"], lp["b_ub"],
                                     lp["a_eq"], lp["b_eq"],
                                     factor="sparse", refactor_every=1)
        rb = budget.solve(lp["lb"], lp["ub"])
        rf = fresh.solve(lp["lb"], lp["ub"])
        assert rb.status == rf.status
        if rb.status == SolveStatus.OPTIMAL:
            assert rb.objective == pytest.approx(rf.objective, abs=1e-9)
        # The per-pivot variant must actually have refactorized more.
        assert (fresh.counters["factorizations"]
                >= budget.counters["factorizations"])

    def test_devex_weights_reset_on_refactorization(self):
        rng = np.random.default_rng(0)
        n, m = 12, 8
        a_ub = rng.normal(size=(m, n))
        eng = RevisedSimplexEngine(rng.normal(size=n), a_ub,
                                   np.abs(rng.normal(size=m)) + 1.0,
                                   None, None, factor="sparse")
        res = eng.solve(np.zeros(n), np.full(n, 10.0))
        assert res.status == SolveStatus.OPTIMAL
        epoch = eng._devex_epoch
        eng._refactorize()
        assert eng._devex_epoch == epoch + 1
        np.testing.assert_array_equal(eng._devex, np.ones(n + m))


class TestWarmRestartRegressions:
    def _engine(self):
        c = np.array([-3.0, -5.0, -4.0, -1.0])
        a_ub = np.array([[2.0, 3.0, 0.0, 1.0],
                         [0.0, 2.0, 5.0, 0.0],
                         [3.0, 2.0, 4.0, 1.0]])
        b_ub = np.array([8.0, 10.0, 15.0])
        return RevisedSimplexEngine(c, a_ub, b_ub, None, None,
                                    factor="sparse")

    def test_singular_inherited_basis_falls_back_cold(self):
        """A basis that is shape-valid but singular (the same structural
        column basic in two rows) must be detected at install time and
        fall back to a cold solve with the right answer."""
        eng = self._engine()
        lb, ub = np.zeros(4), np.full(4, 6.0)
        ref = eng.solve(lb, ub)
        assert ref.status == SolveStatus.OPTIMAL
        vstat = np.zeros(4 + 3, dtype=np.int8)
        vstat[[0, 6]] = 2
        singular = BasisState(basic=np.array([0, 0, 6]), vstat=vstat)
        before = eng.counters["cold_fallbacks"]
        res = eng.solve(lb, ub, start=singular)
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == ref.objective
        assert eng.counters["cold_fallbacks"] == before + 1

    def test_stale_shape_mismatched_basis_falls_back_cold(self):
        eng = self._engine()
        lb, ub = np.zeros(4), np.full(4, 6.0)
        junk = BasisState(basic=np.array([0]),
                          vstat=np.array([2], dtype=np.int8))
        res = eng.solve(lb, ub, start=junk)
        assert res.status == SolveStatus.OPTIMAL
        assert eng.counters["cold_fallbacks"] == 1


class TestBackendIntegration:
    def test_pure_sparse_lu_backend_matches_pure(self):
        from repro.solver import make_backend
        from repro.solver.model import Model
        m = Model()
        xs = [m.add_integer(f"x{i}", ub=6) for i in range(5)]
        m.add_constraint(sum(2 * x for x in xs), "<=", 13)
        m.add_constraint(3 * xs[0] + xs[2] + 4 * xs[4], "<=", 11)
        m.set_objective(sum((i + 1) * x for i, x in enumerate(xs)),
                        sense="maximize")
        sparse_lu = make_backend("pure-sparse-lu")
        assert sparse_lu.options.lp_engine == "sparse-lu"
        a = sparse_lu.solve(m)
        b = make_backend("pure").solve(m)
        assert a.status == b.status == SolveStatus.OPTIMAL
        assert a.objective == b.objective

    def test_search_stats_carry_factorization_counters(self):
        from repro.solver.model import Model
        m = Model()
        xs = [m.add_integer(f"x{i}", ub=7) for i in range(4)]
        m.add_constraint(sum(3 * x for x in xs), "<=", 17)
        m.add_constraint(2 * xs[0] + 5 * xs[1] + xs[2], "<=", 11)
        m.set_objective(2 * xs[0] + 3 * xs[1] + 5 * xs[2] + 7 * xs[3],
                        sense="maximize")
        res = BranchBoundSolver(BranchBoundOptions(
            lp_engine="sparse-lu", presolve=False)).solve(m)
        assert res.status == SolveStatus.OPTIMAL
        assert res.stats["lp_factorizations"] >= 1
        assert res.stats["lp_fill_ratio"] >= 1.0
        assert res.stats["lp_pricing_candidates"] > 0
        assert "lp_ft_updates" in res.stats

    def test_inverse_engine_kept_for_bench_ablation(self):
        from repro.solver.model import Model
        m = Model()
        x = m.add_integer("x", ub=9)
        y = m.add_integer("y", ub=9)
        m.add_constraint(2 * x + 3 * y, "<=", 12)
        m.set_objective(3 * x + 4 * y, sense="maximize")
        inv = BranchBoundSolver(BranchBoundOptions(
            lp_engine="revised-inverse")).solve(m)
        ref = BranchBoundSolver(BranchBoundOptions()).solve(m)
        assert inv.status == ref.status == SolveStatus.OPTIMAL
        assert inv.objective == ref.objective
