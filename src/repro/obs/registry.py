"""Hierarchical timers and counters with a zero-cost disabled mode.

The registry is the aggregation point of the observability layer: code
anywhere in the stack opens :class:`Span`\\ s (hierarchical wall-clock
timers) and bumps :class:`Counter`\\ s, and an experiment harness reads an
aggregate :meth:`Registry.snapshot` (or a delta between two snapshots) at
run boundaries.

Instrumentation is *off by default*.  The two hot-path entry points —
:meth:`Registry.span` and :meth:`Registry.count` — reduce to one attribute
check plus returning a shared no-op object when disabled, so instrumented
code pays essentially nothing in production runs (the Fig. 12 latency
benchmarks run with observability disabled and must not regress).

Spans nest: entering ``span("cycle")`` then ``span("solve")`` aggregates
the inner timer under the path ``"cycle/solve"``.  Aggregation is by path,
so repeated entries (one per scheduling cycle, say) accumulate ``count``,
``total_s`` and ``max_s`` instead of growing a trace.  The simulator and
scheduler are single-threaded, and so is the registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class TimerStat:
    """Aggregate of all closed spans sharing one path."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"count": self.count, "total_s": self.total_s,
                "mean_s": self.mean_s, "max_s": self.max_s}


@dataclass
class Counter:
    """A named monotonically accumulated value."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class _NullSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One active timer; closing it folds the elapsed time into the registry.

    Created via :meth:`Registry.span`; use as a context manager so the
    nesting stack stays balanced even when the timed code raises.
    """

    __slots__ = ("_registry", "name", "path", "_t0")

    def __init__(self, registry: "Registry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.path = ""
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        reg = self._registry
        reg._stack.append(self.name)
        self.path = "/".join(reg._stack)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.monotonic() - self._t0
        reg = self._registry
        reg._stack.pop()
        stat = reg._timers.get(self.path)
        if stat is None:
            stat = reg._timers[self.path] = TimerStat()
        stat.add(elapsed)
        return False


class Registry:
    """Process-wide (or scoped) sink for spans, counters and events.

    Parameters
    ----------
    enabled:
        When ``False`` (the default for the global registry), ``span`` and
        ``count`` are no-ops and nothing is recorded.
    sink:
        Optional event sink (e.g. :class:`repro.obs.events.JsonlSink`);
        :meth:`emit` forwards structured events to it.
    """

    def __init__(self, enabled: bool = False, sink=None) -> None:
        self.enabled = enabled
        self.sink = sink
        self._timers: dict[str, TimerStat] = {}
        self._counters: dict[str, Counter] = {}
        self._stack: list[str] = []
        self._seq = 0
        self._origin = time.monotonic()

    # -- hot-path API --------------------------------------------------------
    def span(self, name: str):
        """A context manager timing ``name`` under the current span path."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.add(amount)

    def emit(self, kind: str, **fields) -> None:
        """Send one structured event to the sink (no-op without one)."""
        if not self.enabled or self.sink is None:
            return
        self._seq += 1
        record = {"kind": kind, "seq": self._seq,
                  "t": round(time.monotonic() - self._origin, 6)}
        record.update(fields)
        self.sink.write(record)

    # -- reading back --------------------------------------------------------
    def counter_value(self, name: str) -> float:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def snapshot(self) -> dict:
        """Plain-dict copy of all timers and counters (for deltas)."""
        return {
            "timers": {path: stat.as_dict()
                       for path, stat in self._timers.items()},
            "counters": {name: c.value for name, c in self._counters.items()},
        }

    def reset(self) -> None:
        self._timers.clear()
        self._counters.clear()
        self._stack.clear()
        self._seq = 0
        self._origin = time.monotonic()


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`Registry.snapshot` calls.

    Timer ``max_s`` is not differenceable, so the delta keeps the *after*
    maximum (an upper bound for the window).
    """
    timers: dict[str, dict[str, float]] = {}
    for path, stat in after["timers"].items():
        prev = before["timers"].get(path, {"count": 0, "total_s": 0.0})
        count = stat["count"] - prev["count"]
        if count <= 0:
            continue
        total = stat["total_s"] - prev["total_s"]
        timers[path] = {"count": count, "total_s": total,
                        "mean_s": total / count, "max_s": stat["max_s"]}
    counters: dict[str, float] = {}
    for name, value in after["counters"].items():
        diff = value - before["counters"].get(name, 0.0)
        if diff:
            counters[name] = diff
    return {"timers": timers, "counters": counters}


#: The process-global registry instrumented modules talk to.
_GLOBAL = Registry(enabled=False)


def get_registry() -> Registry:
    return _GLOBAL


def set_enabled(enabled: bool, sink=None) -> Registry:
    """Flip global instrumentation on or off; returns the registry.

    Enabling also resets accumulated state so a profiling session starts
    clean; disabling detaches the sink but keeps recorded data readable.
    """
    if enabled:
        _GLOBAL.reset()
        _GLOBAL.sink = sink
    else:
        _GLOBAL.sink = None
    _GLOBAL.enabled = enabled
    return _GLOBAL


# Module-level conveniences bound to the global registry (hot-path safe).
def span(name: str):
    return _GLOBAL.span(name)


def count(name: str, amount: float = 1.0) -> None:
    _GLOBAL.count(name, amount)


def emit(kind: str, **fields) -> None:
    _GLOBAL.emit(kind, **fields)


def enabled() -> bool:
    return _GLOBAL.enabled
