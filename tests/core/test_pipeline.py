"""The staged cycle pipeline: stage order, telemetry, and the key
schedule-preservation invariant (decomposed == monolithic objective)."""

import pytest

from repro.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import JobRequest, TetriSched, TetriSchedConfig
from repro.pipeline import (CycleContext, StageName, global_pipeline,
                            greedy_pipeline)
from repro.strl.generator import SpaceOption
from repro.valuefn import StepValue

GLOBAL_STAGES = ("generate", "compile", "model_build", "decompose",
                 "solve", "extract")


def rack_map(cluster):
    racks = {}
    for name in sorted(cluster.node_names):
        racks.setdefault(name.rsplit("n", 1)[0], []).append(name)
    return racks


def make_sched(racks=3, nodes_per_rack=4, **overrides):
    cluster = Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack)
    cfg = TetriSchedConfig(quantum_s=8.0, cycle_s=8.0, plan_ahead_s=32.0,
                           backend="pure", rel_gap=1e-6, **overrides)
    return TetriSched(cluster, cfg)


def submit_rack_pinned(sched, jobs_per_rack=2):
    racks = rack_map(sched.cluster)
    i = 0
    for rack, nodes in sorted(racks.items()):
        for j in range(jobs_per_rack):
            sched.submit(JobRequest(
                job_id=f"{rack}-j{j}",
                options=(SpaceOption(frozenset(nodes), k=2,
                                     duration_s=16.0),),
                value_fn=StepValue(value=10.0 + 0.31 * i, deadline=1e9),
                priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0))
            i += 1


def test_global_pipeline_stage_order():
    assert global_pipeline().stage_names == GLOBAL_STAGES


def test_greedy_pipeline_stage_order():
    assert greedy_pipeline().stage_names == ("generate", "greedy")


class TestStageName:
    """StageName is the documented, stable key set of stage_timings."""

    def test_members_cover_both_pipelines(self):
        values = {s.value for s in StageName}
        # "audit" is the opt-in verification stage (audit_mode=True);
        # "shard_assign"/"reconcile" belong to the sharded pipeline.
        assert set(GLOBAL_STAGES) | {"greedy", "audit", "shard_assign",
                                     "reconcile"} == values

    def test_members_interchangeable_with_plain_strings(self):
        # str mixin: hashing, equality and dict indexing all match the
        # plain value, so archived JSON (string keys) round-trips.
        assert StageName.SOLVE == "solve"
        assert hash(StageName.SOLVE) == hash("solve")
        timings = {StageName.SOLVE: 1.5}
        assert timings["solve"] == 1.5

    def test_string_formatting_is_the_value(self):
        # Guarded explicitly: str-enum __str__/__format__ differ across
        # Python 3.10-3.12; profile keys depend on the bare value.
        assert str(StageName.MODEL_BUILD) == "model_build"
        assert f"scheduler.stage_s.{StageName.MODEL_BUILD}" \
            == "scheduler.stage_s.model_build"

    def test_json_round_trip(self):
        import json
        payload = json.dumps({StageName.EXTRACT: 0.25})
        assert json.loads(payload) == {"extract": 0.25}

    def test_cycle_stage_timings_use_stage_names(self):
        sched = make_sched()
        submit_rack_pinned(sched)
        stats = sched.run_cycle(0.0).stats
        # Indexable by enum and by plain string alike.
        assert stats.stage_timings[StageName.SOLVE] \
            == stats.stage_timings["solve"]


def test_cycle_records_stage_timings_and_components():
    sched = make_sched()
    submit_rack_pinned(sched)
    stats = sched.run_cycle(0.0).stats
    assert set(stats.stage_timings) == set(GLOBAL_STAGES)
    assert all(t >= 0.0 for t in stats.stage_timings.values())
    assert stats.components == 3  # one block per rack
    assert stats.milp_nonzeros > 0
    assert stats.solves == 1  # a decomposed solve is one logical solve


def test_empty_queue_halts_after_generate():
    sched = make_sched()
    stats = sched.run_cycle(0.0).stats
    assert set(stats.stage_timings) == {"generate"}
    assert stats.components == 0
    assert stats.solves == 0


def test_decomposed_matches_monolithic_objective():
    results = {}
    for decomposition in (True, False):
        sched = make_sched(decomposition=decomposition)
        submit_rack_pinned(sched)
        launched = set()
        objectives = []
        for c in range(3):
            res = sched.run_cycle(c * 8.0)
            objectives.append(res.stats.objective)
            launched |= {a.job_id for a in res.allocations}
        results[decomposition] = (objectives, launched)
    obj_dec, launched_dec = results[True]
    obj_mono, launched_mono = results[False]
    assert obj_dec == pytest.approx(obj_mono, abs=1e-6)
    assert launched_dec == launched_mono


def test_monolithic_config_skips_decomposition():
    sched = make_sched(decomposition=False)
    submit_rack_pinned(sched)
    stats = sched.run_cycle(0.0).stats
    assert stats.components == 1
    assert stats.stage_timings["decompose"] >= 0.0


def test_greedy_mode_uses_greedy_pipeline():
    sched = make_sched(global_scheduling=False)
    submit_rack_pinned(sched)
    stats = sched.run_cycle(0.0).stats
    assert set(stats.stage_timings) == {"generate", "greedy"}
    assert stats.components == 0
    assert stats.solves >= 1


def test_context_halt_short_circuits():
    sched = make_sched()

    class Boom:
        name = "boom"

        def run(self, ctx):
            raise AssertionError("stage after halt must not run")

    from repro.core.scheduler import CycleResult, SolveTelemetry
    from repro.pipeline.driver import CyclePipeline
    from repro.pipeline.stages import StrlGeneration

    ctx = CycleContext(scheduler=sched, now=0.0, result=CycleResult(),
                       telemetry=SolveTelemetry())
    # Empty queue: StrlGeneration halts, Boom never runs.
    CyclePipeline([StrlGeneration(), Boom()]).run(ctx)
    assert ctx.halted


def test_parallel_workers_config_matches_sequential():
    """solver_workers routes component solves through the worker pool
    without changing any decision the cycle makes."""
    from repro.solver.parallel import shutdown_pools
    try:
        results = {}
        for workers in (0, 2):
            sched = make_sched(solver_workers=workers)
            submit_rack_pinned(sched)
            res = sched.run_cycle(0.0)
            results[workers] = (res.stats.objective,
                                sorted(a.job_id for a in res.allocations))
        assert results[2][0] == results[0][0]  # bit-equal objective
        assert results[2][1] == results[0][1]
    finally:
        shutdown_pools()


def test_whole_cluster_fallback_merges_components():
    """Jobs sharing a whole-cluster option contend everywhere -> 1 block."""
    sched = make_sched()
    all_nodes = frozenset(sched.cluster.node_names)
    racks = rack_map(sched.cluster)
    for i, (rack, nodes) in enumerate(sorted(racks.items())):
        sched.submit(JobRequest(
            job_id=f"{rack}-fallback",
            options=(SpaceOption(frozenset(nodes), k=2, duration_s=16.0),
                     SpaceOption(all_nodes, k=2, duration_s=32.0)),
            value_fn=StepValue(value=10.0 + i, deadline=1e9),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0))
    stats = sched.run_cycle(0.0).stats
    assert stats.components == 1
