"""Fig. 6: Rayon/TetriSched vs Rayon/CS on GR MIX (scaled RC256).

Paper shapes asserted:

* TetriSched meets at least as many SLOs as Rayon/CS at (almost) every
  estimate-error point, with the largest gap under under-estimation;
* TetriSched keeps accepted-SLO attainment >= 95 % even at -50 % error
  ("satisfying over 95% of the deadlines even when runtime estimates are
  half of their true value");
* TetriSched's mean best-effort latency is lower on average.
"""

from conftest import nanmean, save_and_print

from repro.experiments import fig6

TOL = 6.0  # single-seed noise allowance, percentage points


def test_fig6(benchmark, figure_cache):
    result = benchmark.pedantic(
        lambda: figure_cache("fig6", fig6), rounds=1, iterations=1)
    save_and_print("fig6", result.text)
    sweep = result.sweep

    ts_total = sweep.get("TetriSched", "slo_total_pct")
    cs_total = sweep.get("Rayon/CS", "slo_total_pct")
    for x, ts, cs in zip(sweep.x_values, ts_total, cs_total):
        assert ts >= cs - TOL, f"TetriSched below CS at err={x}%"
    assert nanmean(ts_total) >= nanmean(cs_total)

    # Largest benefit in the hardest regime: under-estimation.
    assert ts_total[0] > cs_total[0], "no win at -50% under-estimation"

    # Accepted SLO jobs stay >= 95% even at half-true estimates.
    ts_accepted = sweep.get("TetriSched", "slo_accepted_pct")
    assert ts_accepted[0] >= 95.0

    # Best-effort latency: lower on average.
    ts_lat = sweep.get("TetriSched", "mean_be_latency_s")
    cs_lat = sweep.get("Rayon/CS", "mean_be_latency_s")
    assert nanmean(ts_lat) < nanmean(cs_lat)
