"""Sharded multi-domain scheduling (``TetriSchedConfig.shard_mode``).

Partitions the cluster into rack-aligned scheduling domains
(:mod:`repro.shard.domains`), assigns jobs to domains with a sticky,
affinity-aware, seeded-deterministic coordinator
(:mod:`repro.shard.coordinator`), compiles and solves one MILP per domain
concurrently on the worker pool, and reconciles cross-domain gangs
through a small coupling model over the boundary jobs only
(:mod:`repro.shard.stages`).

Entry points: configure ``shard_mode="racks"|"auto"`` (plus
``shard_count``) on :class:`~repro.core.scheduler.TetriSchedConfig` and
schedule through :class:`repro.api.Scheduler` as usual — the scheduler
swaps its cycle pipeline for :func:`sharded_pipeline` when
:func:`sharding_active` says the (config, cluster) pair shards.
"""

from __future__ import annotations

from repro.pipeline.driver import CyclePipeline
from repro.pipeline.stages import StrlGeneration
from repro.shard.coordinator import DomainCoordinator, ShardCycle
from repro.shard.domains import (AUTO_NODE_THRESHOLD, DomainPartitioner,
                                 SchedulingDomain, partition_policies,
                                 racks_policy, register_policy,
                                 resolve_shard_count, sharding_active)
from repro.shard.stages import (DomainAssign, DomainCompile, DomainExtract,
                                DomainModelBuild, DomainReconcile,
                                DomainSolve, ShardAudit)


def sharded_pipeline(audit: bool = False) -> CyclePipeline:
    """The sharded scheduling cycle (domain level above decomposition).

    With ``audit=True`` (``TetriSchedConfig.audit_mode``) a final stage
    checks per-domain MILP certificates and the reconciled global
    schedule through :func:`repro.verify.audit_sharded`.
    """
    stages = [StrlGeneration(), DomainAssign(), DomainCompile(),
              DomainModelBuild(), DomainSolve(), DomainExtract(),
              DomainReconcile()]
    if audit:
        stages.append(ShardAudit())
    return CyclePipeline(stages)


__all__ = [
    "AUTO_NODE_THRESHOLD", "DomainAssign", "DomainCompile",
    "DomainCoordinator", "DomainExtract", "DomainModelBuild",
    "DomainPartitioner", "DomainReconcile", "DomainSolve",
    "SchedulingDomain", "ShardAudit", "ShardCycle", "partition_policies",
    "racks_policy", "register_policy", "resolve_shard_count",
    "sharded_pipeline", "sharding_active",
]
