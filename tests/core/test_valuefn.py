"""Tests for the Fig. 5 value functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.valuefn import (BASE_VALUE, SLO_ACCEPTED_MULTIPLIER,
                           SLO_NO_RESERVATION_MULTIPLIER, GraceStepValue,
                           LinearDecayValue, StepValue, best_effort_value,
                           scale_value, slo_value)


class TestStepValue:
    def test_constant_until_deadline(self):
        v = StepValue(1000.0, 50.0)
        assert v(0.0) == 1000.0
        assert v(50.0) == 1000.0
        assert v(50.001) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0, 1e6), st.floats(0, 1e6))
    def test_step_never_negative(self, deadline, t):
        assert StepValue(5.0, deadline)(t) >= 0.0


class TestLinearDecay:
    def test_decays_linearly(self):
        v = LinearDecayValue(1.0, release_time=0.0, decay_horizon=100.0)
        assert v(0.0) == pytest.approx(1.0)
        assert v(50.0) == pytest.approx(0.5)
        assert v(90.0) == pytest.approx(0.1)

    def test_floor_keeps_positive(self):
        v = LinearDecayValue(1.0, 0.0, 100.0, floor=0.01)
        assert v(100.0) == 0.01
        assert v(1e6) == 0.01

    def test_before_release_is_full_value(self):
        v = LinearDecayValue(1.0, release_time=50.0, decay_horizon=100.0)
        assert v(10.0) == pytest.approx(1.0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            LinearDecayValue(1.0, 0.0, 0.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0, 1e4), st.floats(0, 1e4))
    def test_monotone_nonincreasing(self, a, b):
        v = best_effort_value(0.0)
        lo, hi = sorted((a, b))
        assert v(lo) >= v(hi)


class TestPaperPriorities:
    """Sec. 6.2.2: 1000x for accepted SLO, 25x for SLO w/o reservation."""

    def test_accepted_multiplier(self):
        v = slo_value(deadline=100.0, accepted=True)
        assert v(50.0) == SLO_ACCEPTED_MULTIPLIER * BASE_VALUE

    def test_no_reservation_multiplier(self):
        v = slo_value(deadline=100.0, accepted=False)
        assert v(50.0) == SLO_NO_RESERVATION_MULTIPLIER * BASE_VALUE

    def test_priority_ordering(self):
        accepted = slo_value(100.0, True)(0.0)
        no_res = slo_value(100.0, False)(0.0)
        be = best_effort_value(0.0)(0.0)
        assert accepted > no_res > be
        assert accepted == 1000.0 * be
        assert no_res == 25.0 * be


class TestGraceStepValue:
    def test_three_regimes(self):
        v = GraceStepValue(1000.0, deadline=100.0, grace=10.0,
                           late_factor=0.25)
        assert v(100.0) == 1000.0
        assert v(105.0) == 250.0
        assert v(110.0) == 250.0
        assert v(110.1) == 0.0

    def test_on_time_strictly_dominates_grace(self):
        v = GraceStepValue(1000.0, 100.0, 10.0)
        assert v(99.0) > v(101.0) > v(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GraceStepValue(1.0, 10.0, grace=-1.0)
        with pytest.raises(ValueError):
            GraceStepValue(1.0, 10.0, grace=1.0, late_factor=2.0)

    def test_zero_grace_is_plain_step(self):
        v = GraceStepValue(7.0, 10.0, grace=0.0)
        assert v(10.0) == 7.0
        assert v(10.001) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0, 1e4), st.floats(0, 1e4))
    def test_monotone_nonincreasing(self, a, b):
        v = GraceStepValue(100.0, 50.0, 25.0)
        lo, hi = sorted((a, b))
        assert v(lo) >= v(hi)


class TestScale:
    def test_scale_value(self):
        v = scale_value(StepValue(10.0, 100.0), 3.0)
        assert v(50.0) == 30.0
        assert v(200.0) == 0.0
