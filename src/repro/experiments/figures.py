"""Per-table / per-figure reproduction drivers.

Every table and figure in the paper's evaluation (Sec. 6-7) has one function
here that regenerates it at laptop scale and renders the same rows/series
the paper reports.  The benchmark harness (``benchmarks/``) calls these and
asserts the paper's qualitative *shapes* (who wins, where crossovers fall);
EXPERIMENTS.md records paper-vs-measured values.

All drivers accept a ``scale`` knob:

* ``"bench"`` (default) — small but contended; seconds per figure;
* ``"full"`` — larger clusters/workloads and multiple seeds; minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.variants import TABLE2_CONFIGS
from repro.experiments.ascii_chart import chart_sweep_metric
from repro.experiments.report import (format_sweep, format_table,
                                      solver_work_table)
from repro.experiments.runner import (RC80_SCALED, RC256_SCALED, RunSpec,
                                      run_experiment)
from repro.experiments.sweeps import (SweepResult, estimate_error_sweep,
                                      plan_ahead_sweep)
from repro.workloads.compositions import TABLE1, GR_MIX, GR_SLO, GS_HET, GS_MIX


@dataclass
class FigureResult:
    """A reproduced table/figure: data plus its rendered text."""

    figure_id: str
    text: str
    sweep: SweepResult | None = None
    extras: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


def _with_chart(text: str, sweep: SweepResult, metric: str,
                chart_title: str) -> str:
    """Append an ASCII chart of the headline metric to a figure's tables."""
    return text + "\n\n" + chart_sweep_metric(sweep, metric, chart_title)


def _base(scale: str, composition, cluster) -> tuple[RunSpec, list[int]]:
    if scale == "full":
        spec = RunSpec(scheduler="TetriSched", composition=composition,
                       cluster=cluster, num_jobs=96,
                       target_utilization=1.3, backend="auto")
        seeds = [0, 1, 2]
    else:
        spec = RunSpec(scheduler="TetriSched", composition=composition,
                       cluster=cluster, num_jobs=48,
                       target_utilization=1.3, backend="auto")
        seeds = [0]
    return spec, seeds


# -- Tables ------------------------------------------------------------------

def table1() -> FigureResult:
    """Table 1: workload compositions used in the results section."""
    headers = ["Workload", "SLO", "BE", "Unconstrained", "GPU", "MPI"]
    rows = [[c.table_row()[h] for h in headers] for c in TABLE1]
    text = "Table 1: workload compositions (%)\n" + format_table(headers, rows)
    return FigureResult("table1", text)


def table2() -> FigureResult:
    """Table 2: TetriSched configurations with individual features disabled."""
    headers = ["Configuration", "heterogeneity", "global", "plan-ahead"]
    rows = []
    for name, factory in TABLE2_CONFIGS.items():
        cfg = factory()
        rows.append([name,
                     "on" if cfg.heterogeneity_aware else "off",
                     "on" if cfg.global_scheduling else "off",
                     "on" if cfg.plan_ahead_s > 0 else "off"])
    text = "Table 2: TetriSched feature ablations\n" + format_table(headers,
                                                                    rows)
    return FigureResult("table2", text)


# -- Estimate-error figures ---------------------------------------------------

_FIG6_METRICS = ("slo_total_pct", "slo_accepted_pct",
                 "slo_no_reservation_pct", "mean_be_latency_s")


def fig6(scale: str = "bench") -> FigureResult:
    """Fig. 6: GR MIX on RC256 — attainment + BE latency vs estimate error."""
    spec, seeds = _base(scale, GR_MIX, RC256_SCALED)
    sweep = estimate_error_sweep(spec, ["Rayon/CS", "TetriSched"],
                                 [-50, -20, 0, 20, 50, 100], seeds)
    text = format_sweep(sweep, _FIG6_METRICS,
                        "Figure 6: Rayon/TetriSched vs Rayon/CS "
                        "(GR MIX, scaled RC256)")
    text = _with_chart(text, sweep, "slo_total_pct", "Fig 6(a) shape: total SLO attainment (%)")
    return FigureResult("fig6", text, sweep)


def fig7(scale: str = "bench") -> FigureResult:
    """Fig. 7: GR SLO (SLO-only) on RC256 — attainment vs estimate error."""
    spec, seeds = _base(scale, GR_SLO, RC256_SCALED)
    sweep = estimate_error_sweep(spec, ["Rayon/CS", "TetriSched"],
                                 [-20, -10, 0, 10, 20], seeds)
    text = format_sweep(
        sweep, ("slo_total_pct", "slo_accepted_pct",
                "slo_no_reservation_pct"),
        "Figure 7: production-derived SLO-only workload (GR SLO, scaled RC256)")
    text = _with_chart(text, sweep, "slo_total_pct", "Fig 7(a) shape: total SLO attainment (%)")
    return FigureResult("fig7", text, sweep)


def fig8(scale: str = "bench") -> FigureResult:
    """Fig. 8: GS MIX on RC80 — attainment + latency vs estimate error."""
    spec, seeds = _base(scale, GS_MIX, RC80_SCALED)
    sweep = estimate_error_sweep(spec, ["Rayon/CS", "TetriSched"],
                                 [-50, -20, 0, 20, 50, 100], seeds)
    text = format_sweep(
        sweep, ("slo_total_pct", "slo_accepted_pct", "mean_be_latency_s"),
        "Figure 8: synthetic unconstrained SLO+BE mix (GS MIX, scaled RC80)")
    text = _with_chart(text, sweep, "slo_total_pct", "Fig 8(a) shape: total SLO attainment (%)")
    return FigureResult("fig8", text, sweep)


def fig9(scale: str = "bench") -> FigureResult:
    """Fig. 9: soft-constraint ablation (TetriSched vs -NH vs Rayon/CS)."""
    spec, seeds = _base(scale, GS_HET, RC80_SCALED)
    sweep = estimate_error_sweep(
        spec, ["Rayon/CS", "TetriSched", "TetriSched-NH"],
        [-50, -20, 0, 20, 50], seeds)
    text = format_sweep(sweep, _FIG6_METRICS,
                        "Figure 9: benefit of soft constraint awareness "
                        "(GS HET, scaled RC80)")
    text = _with_chart(text, sweep, "slo_total_pct", "Fig 9(a) shape: total SLO attainment (%)")
    return FigureResult("fig9", text, sweep)


def fig10(scale: str = "bench") -> FigureResult:
    """Fig. 10: global-scheduling ablation (TetriSched vs -NG vs Rayon/CS)."""
    spec, seeds = _base(scale, GS_HET, RC80_SCALED)
    sweep = estimate_error_sweep(
        spec, ["Rayon/CS", "TetriSched", "TetriSched-NG"],
        [-50, -20, 0, 20, 50], seeds)
    text = format_sweep(sweep, _FIG6_METRICS,
                        "Figure 10: benefit of global scheduling "
                        "(GS HET, scaled RC80)")
    text = _with_chart(text, sweep, "slo_total_pct", "Fig 10(a) shape: total SLO attainment (%)")
    return FigureResult("fig10", text, sweep)


# -- Plan-ahead figures -----------------------------------------------------------

PLAN_AHEADS_S = [0, 44, 96, 120, 144]


def fig11(scale: str = "bench") -> FigureResult:
    """Fig. 11: SLO attainment / latency vs plan-ahead window (0 == -NP)."""
    spec, seeds = _base(scale, GS_HET, RC80_SCALED)
    sweep = plan_ahead_sweep(spec, ["Rayon/CS", "TetriSched", "TetriSched-NG"],
                             PLAN_AHEADS_S, seeds)
    text = format_sweep(sweep, _FIG6_METRICS,
                        "Figure 11: benefit of plan-ahead "
                        "(GS HET, scaled RC80; plan-ahead 0 emulates "
                        "TetriSched-NP / alsched)")
    text = _with_chart(text, sweep, "slo_total_pct", "Fig 11(a) shape: total SLO attainment (%)")
    return FigureResult("fig11", text, sweep)


def fig12(scale: str = "bench") -> FigureResult:
    """Fig. 12: scalability — solver/cycle latency vs plan-ahead + CDFs."""
    spec, seeds = _base(scale, GS_HET, RC80_SCALED)
    schedulers = ["TetriSched", "TetriSched-NG"]
    sweep = plan_ahead_sweep(spec, schedulers, PLAN_AHEADS_S, seeds)

    # Extract solver/cycle latency series from the raw runs.
    solver_rows, cycle_rows = [], []
    cdfs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for sched in schedulers:
        solver_row, cycle_row = [sched], [sched]
        for pa in PLAN_AHEADS_S:
            runs = sweep.raw[(sched, pa)]
            solver = [s for r in runs for s in r.latency.solver_latencies_s]
            cycle = [c for r in runs for c in r.latency.cycle_latencies_s]
            solver_row.append(1000 * float(np.mean(solver)) if solver else 0.0)
            cycle_row.append(1000 * float(np.mean(cycle)) if cycle else 0.0)
        solver_rows.append(solver_row)
        cycle_rows.append(cycle_row)
        # CDF at the largest plan-ahead (Fig. 12(c)).
        runs = sweep.raw[(sched, PLAN_AHEADS_S[-1])]
        all_cycle = np.sort(np.concatenate(
            [np.asarray(r.latency.cycle_latencies_s) for r in runs]))
        fracs = (np.arange(1, all_cycle.size + 1) / all_cycle.size
                 if all_cycle.size else np.array([]))
        cdfs[sched] = (all_cycle, fracs)

    headers = ["Plan-ahead(s)"] + [str(p) for p in PLAN_AHEADS_S]
    blocks = [
        "Figure 12(a): mean solver latency (ms)",
        format_table(headers, solver_rows),
        "",
        "Figure 12(b): mean cycle latency (ms)",
        format_table(headers, cycle_rows),
        "",
        f"Figure 12(c): cycle-latency CDF at plan-ahead={PLAN_AHEADS_S[-1]}s "
        "(p50/p90/p99, ms)",
    ]
    cdf_rows = []
    for sched, (xs, _) in cdfs.items():
        if xs.size:
            cdf_rows.append([sched] + [1000 * float(np.percentile(xs, q))
                                       for q in (50, 90, 99)])
        else:
            cdf_rows.append([sched, 0.0, 0.0, 0.0])
    blocks.append(format_table(["Scheduler", "p50", "p90", "p99"], cdf_rows))

    # (d): solver *work* from the per-run profiles — machine-independent
    # counters explaining the latency curves above (repro.obs).
    blocks += [
        "",
        "Figure 12(d): solver work — MILP variables per cycle",
        solver_work_table(sweep, PLAN_AHEADS_S, "solver.milp_variables"),
        "",
        "Figure 12(e): solver work — B&B nodes per solve",
        solver_work_table(sweep, PLAN_AHEADS_S, "solver.bnb.nodes",
                          per="solver.solves"),
        "",
        "Figure 12(f): independent MILP components per cycle "
        "(decomposed solve; repro extension)",
        solver_work_table(sweep, PLAN_AHEADS_S, "scheduler.components"),
        "",
        "Figure 12(g): LP core — legacy tableau vs revised simplex "
        "(bench-cycle, plan-ahead 96s; repro extension)",
        _lp_engine_table(),
    ]
    text = "\n".join(blocks)
    return FigureResult("fig12", text, sweep, extras={"cdfs": cdfs})


def _lp_engine_table() -> str:
    """Tableau-vs-revised solver-work table from a fixed-seed bench run."""
    from repro.experiments.bench import bench_cycle
    report = bench_cycle()
    rows = []
    for name in ("monolithic-tableau", "monolithic-dense"):
        mode = report["modes"][name]
        lp = mode["lp"]
        rows.append([
            lp["engine"], 1000.0 * mode["stage_timings_s"].get("solve", 0.0),
            mode["lp_iterations"], lp["dual_pivots"],
            lp["refactorizations"],
            f"{lp['warm_hits']}/{lp['warm_restarts']}"])
    speedup = report["speedup"]["revised_vs_tableau"]
    table = format_table(
        ["LP engine", "solve ms", "iterations", "dual pivots",
         "refactorizations", "warm restarts"], rows)
    return (table + f"\nrevised-vs-tableau solve-stage speedup: "
            f"{speedup:.2f}x (objectives bit-equal: "
            f"{report['modes']['monolithic-tableau']['objectives'] == report['modes']['monolithic-dense']['objectives']})")


#: Every reproduced experiment, by id.
ALL_FIGURES = {
    "table1": table1,
    "table2": table2,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}
