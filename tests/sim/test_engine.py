"""Integration tests: simulator + TetriSched adapter end to end."""

import pytest

from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.errors import SimulationError
from repro.reservation import RayonReservationSystem
from repro.sim import (GpuType, Job, Simulation, TetriSchedAdapter,
                       UnconstrainedType)

UN = UnconstrainedType()


def make_cluster():
    return Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)


def make_adapter(cluster, **overrides):
    cfg = dict(quantum_s=10.0, cycle_s=10.0, plan_ahead_s=60.0,
               backend="pure", rel_gap=1e-6)
    cfg.update(overrides)
    return TetriSchedAdapter(cluster, TetriSchedConfig(**cfg))


class TestSimulationBasics:
    def test_empty_workload_rejected(self):
        cluster = make_cluster()
        with pytest.raises(SimulationError):
            Simulation(cluster, make_adapter(cluster), [])

    def test_duplicate_job_ids_rejected(self):
        cluster = make_cluster()
        jobs = [Job("x", UN, 1, 10, 0.0), Job("x", UN, 1, 10, 5.0)]
        with pytest.raises(SimulationError):
            Simulation(cluster, make_adapter(cluster), jobs)

    def test_single_slo_job_runs_and_meets_deadline(self):
        cluster = make_cluster()
        jobs = [Job("j", UN, k=2, base_runtime_s=30, submit_time=0.0,
                    deadline=100.0)]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        o = res.outcomes["j"]
        assert o.accepted
        assert o.start_time == 0.0
        assert o.finish_time == pytest.approx(30.0)
        assert res.metrics.slo_total_pct == 100.0

    def test_best_effort_latency_recorded(self):
        cluster = make_cluster()
        jobs = [Job("b", UN, k=1, base_runtime_s=20, submit_time=5.0)]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        # Arrives at 5, first cycle that sees it is t=10, runs 20s.
        assert res.metrics.mean_be_latency_s == pytest.approx(25.0)

    def test_simulation_terminates(self):
        cluster = make_cluster()
        jobs = [Job(f"j{i}", UN, k=2, base_runtime_s=20,
                    submit_time=5.0 * i, deadline=5.0 * i + 200)
                for i in range(8)]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        assert all(o.completed for o in res.outcomes.values())
        assert res.cycles > 0

    def test_impossible_deadline_culled_and_missed(self):
        cluster = make_cluster()
        jobs = [Job("dead", UN, k=2, base_runtime_s=50, submit_time=0.0,
                    deadline=10.0)]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        o = res.outcomes["dead"]
        assert not o.completed
        assert not o.accepted  # Rayon cannot fit 50s before t=10 either
        assert res.metrics.slo_total_pct == 0.0

    def test_max_time_stops_simulation(self):
        cluster = make_cluster()
        jobs = [Job("late", UN, k=1, base_runtime_s=10, submit_time=1000.0)]
        res = Simulation(cluster, make_adapter(cluster), jobs,
                         max_time_s=100.0).run()
        assert not res.outcomes  # arrival never fired


class TestMisEstimation:
    def test_underestimated_job_still_completes(self):
        cluster = make_cluster()
        # True runtime 40s, scheduler believes 20s.
        jobs = [Job("u", UN, k=2, base_runtime_s=40, submit_time=0.0,
                    deadline=200.0, estimate_error=-0.5)]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        o = res.outcomes["u"]
        assert o.finish_time == pytest.approx(40.0)

    def test_underestimate_does_not_double_book_nodes(self):
        """The scheduler must not hand an overdue job's nodes to another."""
        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        jobs = [
            Job("u", UN, k=2, base_runtime_s=60, submit_time=0.0,
                deadline=300.0, estimate_error=-0.66),  # believed ~20s
            Job("v", UN, k=2, base_runtime_s=20, submit_time=5.0,
                deadline=300.0),
        ]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        u, v = res.outcomes["u"], res.outcomes["v"]
        assert u.completed and v.completed
        # v can only start once u actually finished at t=60.
        assert v.start_time >= 60.0

    def test_overestimated_job_frees_capacity_early(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        jobs = [
            Job("o", UN, k=2, base_runtime_s=20, submit_time=0.0,
                deadline=300.0, estimate_error=1.0),   # believed 40s
            Job("w", UN, k=2, base_runtime_s=20, submit_time=5.0,
                deadline=300.0),
        ]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        w = res.outcomes["w"]
        # o actually ends at 20; w starts at the next cycle, not at 40.
        assert w.start_time == pytest.approx(20.0)


class TestHeterogeneousPlacement:
    def test_gpu_job_records_preferred_placement(self):
        cluster = make_cluster()
        gpu = GpuType(slowdown=2.0)
        jobs = [Job("g", gpu, k=2, base_runtime_s=20, submit_time=0.0,
                    deadline=200.0)]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        o = res.outcomes["g"]
        assert o.preferred_placement is True
        assert o.finish_time == pytest.approx(20.0)
        assert o.nodes <= cluster.nodes_with_attr("gpu")

    def test_slow_placement_runs_slower(self):
        cluster = make_cluster()
        gpu = GpuType(slowdown=2.0)
        # Hold the GPU rack so the job must fall back (deadline too tight
        # to wait for GPUs but loose enough for the slow option).
        adapter = make_adapter(cluster)
        adapter.scheduler.state.start(
            "holder", cluster.nodes_with_attr("gpu"), 0.0, 1000.0)
        jobs = [Job("g", gpu, k=2, base_runtime_s=20, submit_time=0.0,
                    deadline=60.0)]

        class _Holder:
            pass
        sim = Simulation(cluster, adapter, jobs)
        res = sim.run()
        o = res.outcomes["g"]
        assert o.preferred_placement is False
        assert o.finish_time - o.start_time == pytest.approx(40.0)


class TestRayonIntegration:
    def test_rejected_reservation_flagged(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        jobs = [
            Job("a", UN, k=2, base_runtime_s=50, submit_time=0.0,
                deadline=60.0),
            Job("b", UN, k=2, base_runtime_s=50, submit_time=0.0,
                deadline=60.0),  # cannot also fit before t=60
        ]
        res = Simulation(cluster, make_adapter(cluster), jobs).run()
        accepted = [o for o in res.outcomes.values() if o.accepted]
        assert len(accepted) == 1

    def test_shared_rayon_instance_used(self):
        cluster = make_cluster()
        rayon = RayonReservationSystem(capacity=len(cluster), step_s=10)
        jobs = [Job("j", UN, k=2, base_runtime_s=20, submit_time=0.0,
                    deadline=100.0)]
        sim = Simulation(cluster, make_adapter(cluster), jobs, rayon=rayon)
        sim.run()
        assert rayon.is_accepted("j")
