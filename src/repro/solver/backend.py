"""Backend registry: pick a MILP solver by name.

The scheduler core only depends on the tiny :class:`MILPBackend` protocol,
mirroring the paper's pluggable-solver design (CPLEX there; pure-Python
branch-and-bound or scipy/HiGHS here).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import SolverError
from repro.solver.branch_bound import BranchBoundOptions, BranchBoundSolver
from repro.solver.model import Model
from repro.solver.result import MILPResult
from repro.solver.scipy_backend import ScipyMILPSolver, scipy_available, solve_lp_scipy


class MILPBackend(Protocol):
    """Anything with a ``solve(model, warm_start=None) -> MILPResult``."""

    def solve(self, model: Model,
              warm_start: np.ndarray | None = None) -> MILPResult: ...


#: Names accepted by :func:`make_backend`.
BACKEND_NAMES = ("pure", "pure-scipy-lp", "scipy", "auto")


def make_backend(name: str = "auto", rel_gap: float = 1e-6,
                 time_limit: float | None = None,
                 node_limit: int | None = 200_000) -> MILPBackend:
    """Construct a MILP backend.

    Parameters
    ----------
    name:
        * ``"pure"`` — from-scratch branch-and-bound over the pure simplex;
        * ``"pure-scipy-lp"`` — our branch-and-bound over HiGHS LP relaxations;
        * ``"scipy"`` — HiGHS branch-and-cut via ``scipy.optimize.milp``;
        * ``"auto"`` — ``"scipy"`` when available, else ``"pure"``.
    rel_gap:
        Relative optimality gap at which the search may stop (the paper
        configures its solver for solutions within 10 % of optimal).
    time_limit, node_limit:
        Optional search budgets; the best incumbent found is returned.
    """
    if name == "auto":
        name = "scipy" if scipy_available() else "pure"
    if name == "scipy":
        if not scipy_available():
            raise SolverError("scipy backend requested but scipy is missing")
        return ScipyMILPSolver(rel_gap=rel_gap, time_limit=time_limit)
    if name == "pure":
        return BranchBoundSolver(BranchBoundOptions(
            rel_gap=rel_gap, time_limit=time_limit, node_limit=node_limit))
    if name == "pure-scipy-lp":
        if not scipy_available():
            raise SolverError("pure-scipy-lp backend requested but scipy is missing")
        return BranchBoundSolver(BranchBoundOptions(
            rel_gap=rel_gap, time_limit=time_limit, node_limit=node_limit,
            lp_solver=solve_lp_scipy))
    raise SolverError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
