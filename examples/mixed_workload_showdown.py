#!/usr/bin/env python3
"""Full-system showdown: Rayon/TetriSched vs Rayon/CapacityScheduler.

Simulates the paper's GR MIX workload (52 % SLO jobs from the Facebook
trace-derived class, 48 % best-effort from the Yahoo class; Table 1) on a
scaled RC256 testbed with runtime estimates that are 50 % *under*-estimated
— the regime where the paper shows the biggest TetriSched advantage
(Sec. 7.1): Rayon/CS demotes overrunning SLO jobs to the best-effort queue
and churns on preemption, while TetriSched simply re-plans every cycle.

Run:  python examples/mixed_workload_showdown.py
"""

from repro import RayonReservationSystem, Simulation, TetriSchedAdapter
from repro.baselines import CapacityScheduler
from repro.core import TetriSchedConfig
from repro.experiments import RC256_SCALED
from repro.workloads import GR_MIX, GridmixConfig, generate_workload


def simulate(scheduler_name: str, estimate_error: float):
    cluster = RC256_SCALED.build()
    workload = generate_workload(GR_MIX, cluster, GridmixConfig(
        num_jobs=48, target_utilization=1.3, estimate_error=estimate_error,
        seed=0))
    rayon = RayonReservationSystem(capacity=len(cluster), step_s=10.0)
    if scheduler_name == "TetriSched":
        scheduler = TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=96, backend="auto"))
    else:
        scheduler = CapacityScheduler(cluster, rayon, cycle_s=10.0)
    return Simulation(cluster, scheduler, workload, rayon=rayon).run()


def main() -> None:
    error = -0.5
    print(f"GR MIX on scaled RC256 (64 nodes), estimate error "
          f"{error:+.0%}, load ~130% of capacity\n")
    header = (f"{'stack':<16s} {'SLO total':>10s} {'accepted':>9s} "
              f"{'BE latency':>11s} {'preemptions':>12s}")
    print(header)
    print("-" * len(header))
    for name in ("TetriSched", "Rayon/CS"):
        r = simulate(name, error)
        m = r.metrics
        print(f"{name:<16s} {m.slo_total_pct:>9.1f}% "
              f"{m.slo_accepted_pct:>8.1f}% "
              f"{m.mean_be_latency_s:>10.1f}s {m.preemptions:>12d}")
    print("\nTetriSched meets more deadlines with lower best-effort latency "
          "and zero preemption —\nadaptive re-planning absorbs the bad "
          "estimates that send Rayon/CS into preemption churn.")


if __name__ == "__main__":
    main()
