"""SWIM-derived job classes (Sec. 6.4).

The paper derives runtime parameter distributions from the SWIM project's
workload characterizations of Cloudera, Facebook, and Yahoo production
clusters, selecting the ``fb2009_2`` and ``yahoo_1`` job classes sized to
fit RC256.  The original traces are not redistributable, so we parameterize
the same *shape* — heavy-tailed (lognormal) job sizes and durations, with
``fb2009_2`` (the SLO class) larger and longer-running than ``yahoo_1``
(the best-effort class) — with magnitudes scaled down so a simulated
experiment completes in seconds instead of hours (documented in DESIGN.md).
All downstream behaviour depends on the *relative* load, which the gridmix
generator pins to ~100 % of cluster capacity exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.distributions import (BoundedLogNormal, UniformFloat,
                                           UniformInt)


@dataclass(frozen=True)
class JobClassSpec:
    """Distributional description of one trace-derived job class.

    Attributes
    ----------
    name:
        Trace label ("fb2009_2", "yahoo_1", ...).
    gang_size:
        Distribution of the number of nodes a job's task gang needs.
    runtime_s:
        Distribution of the *true* preferred-placement runtime.
    deadline_slack:
        For SLO jobs: deadline = submit + slack * true runtime.  Slack > 1
        leaves queueing/deferral room, as production SLOs do.
    """

    name: str
    gang_size: UniformInt
    runtime_s: BoundedLogNormal
    deadline_slack: UniformFloat


#: Facebook 2009 trace, class 2 — the paper's SLO (production) job class.
FB2009_2 = JobClassSpec(
    name="fb2009_2",
    gang_size=UniformInt(2, 8),
    runtime_s=BoundedLogNormal(median=40.0, sigma=0.6, lo=10.0, hi=240.0),
    deadline_slack=UniformFloat(2.2, 3.5),
)

#: Yahoo trace, class 1 — the paper's best-effort (ad hoc) job class.
YAHOO_1 = JobClassSpec(
    name="yahoo_1",
    gang_size=UniformInt(1, 4),
    runtime_s=BoundedLogNormal(median=20.0, sigma=0.5, lo=5.0, hi=120.0),
    deadline_slack=UniformFloat(2.2, 3.5),
)

#: Synthetic class for the GS workloads (Sec. 6.4): narrower distributions
#: to isolate scheduling effects from workload variance.
GS_SYNTHETIC = JobClassSpec(
    name="gs_synthetic",
    gang_size=UniformInt(2, 6),
    runtime_s=BoundedLogNormal(median=30.0, sigma=0.4, lo=10.0, hi=120.0),
    deadline_slack=UniformFloat(2.2, 3.5),
)

JOB_CLASSES = {spec.name: spec for spec in (FB2009_2, YAHOO_1, GS_SYNTHETIC)}
