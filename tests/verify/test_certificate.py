"""Certificate checker: valid solves pass, corrupted claims are rejected."""

import dataclasses
import math

import numpy as np
import pytest

from repro.solver import BranchBoundSolver, Model, SolveStatus
from repro.solver.result import MILPResult
from repro.verify import AuditViolation, check_certificate


def knapsack():
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(3)]
    m.add_constraint(3 * xs[0] + 4 * xs[1] + 2 * xs[2], "<=", 5)
    m.set_objective(10 * xs[0] + 13 * xs[1] + 7 * xs[2], sense="maximize")
    return m


def solved():
    m = knapsack()
    return m, BranchBoundSolver().solve(m)


class TestValidCertificates:
    def test_clean_solve_passes(self):
        m, res = solved()
        report = check_certificate(m, res)
        assert report.ok
        assert report.objective_recomputed == pytest.approx(res.objective)
        report.raise_if_failed()  # no-op when clean

    def test_statuses_without_solution_pass_vacuously(self):
        m = knapsack()
        res = MILPResult(SolveStatus.INFEASIBLE, None, math.nan)
        assert check_certificate(m, res).ok

    def test_mixed_constraint_senses(self):
        m = Model()
        x = m.add_integer("x", ub=9)
        y = m.add_continuous("y", ub=4.0)
        m.add_constraint(1 * x + 1 * y, "<=", 8)
        m.add_constraint(1 * x - 1 * y, ">=", 1)
        m.add_constraint(1 * y, "==", 2)
        m.set_objective(2 * x + 1 * y, sense="maximize")
        res = BranchBoundSolver().solve(m)
        assert check_certificate(m, res).ok


class TestCorruptionDetected:
    def test_mutated_assignment_bit_rejected(self):
        # The ISSUE acceptance case: flip one binary in a valid solution.
        m, res = solved()
        res.x[1] = 1.0 - res.x[1]
        report = check_certificate(m, res)
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        # Either a constraint row or the objective claim must break.
        assert kinds & {"certificate.row-ub", "certificate.objective"}
        with pytest.raises(AuditViolation):
            report.raise_if_failed()

    def test_objective_lie_rejected(self):
        m, res = solved()
        lied = dataclasses.replace(res, objective=res.objective + 1.0)
        report = check_certificate(m, lied)
        assert any(v.kind == "certificate.objective"
                   for v in report.violations)

    def test_fractional_integer_rejected(self):
        m, res = solved()
        res.x[0] = 0.5
        report = check_certificate(m, res)
        assert any(v.kind == "certificate.integrality"
                   for v in report.violations)

    def test_out_of_bounds_rejected(self):
        m, res = solved()
        res.x[2] = 2.0  # binary ub is 1
        report = check_certificate(m, res)
        assert any(v.kind == "certificate.bounds"
                   for v in report.violations)
        assert report.max_bound_violation == pytest.approx(1.0)

    def test_wrong_shape_rejected(self):
        m, res = solved()
        bad = dataclasses.replace(res, x=np.zeros(7))
        report = check_certificate(m, bad)
        assert [v.kind for v in report.violations] == ["certificate.shape"]

    def test_non_finite_rejected(self):
        m, res = solved()
        res.x[0] = np.nan
        report = check_certificate(m, res)
        assert any(v.kind == "certificate.non-finite"
                   for v in report.violations)

    def test_missing_point_rejected(self):
        m, _ = solved()
        res = MILPResult(SolveStatus.OPTIMAL, None, 17.0)
        report = check_certificate(m, res)
        assert [v.kind for v in report.violations] == [
            "certificate.missing-point"]

    def test_incumbent_beating_bound_rejected(self):
        # A maximization incumbent above the reported dual bound means the
        # bound proof cannot be valid.
        m, res = solved()
        bad = dataclasses.replace(res, bound=res.objective - 2.0)
        report = check_certificate(m, bad)
        assert any(v.kind == "certificate.bound" for v in report.violations)

    def test_solver_bound_is_certified(self):
        # Regression guard for the pruned-bound inversion: the solver's own
        # reported bound must never be beaten by its incumbent.
        m, res = solved()
        assert res.bound >= res.objective - 1e-9
        assert check_certificate(m, res).ok
