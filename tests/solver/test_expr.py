"""Unit tests for linear expressions and variables."""

import pytest

from repro.errors import ModelError
from repro.solver import LinExpr, Model, linear_sum
from repro.solver.expr import as_expr


@pytest.fixture()
def model():
    return Model("t")


class TestVariable:
    def test_binary_bounds_forced(self, model):
        b = model.add_binary("b")
        assert (b.lb, b.ub) == (0.0, 1.0)
        assert b.is_integral

    def test_integer_requires_lower_bound(self, model):
        with pytest.raises(ModelError):
            model._add_var("z", None, 5, "integer")

    def test_bad_bounds_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_continuous("x", lb=3, ub=1)

    def test_duplicate_name_rejected(self, model):
        model.add_continuous("x")
        with pytest.raises(ModelError):
            model.add_continuous("x")

    def test_negation(self, model):
        x = model.add_continuous("x")
        e = -x
        assert e.coefficient(x) == -1.0


class TestLinExpr:
    def test_addition_of_vars(self, model):
        x, y = model.add_continuous("x"), model.add_continuous("y")
        e = x + y + 2
        assert e.coefficient(x) == 1.0
        assert e.coefficient(y) == 1.0
        assert e.constant == 2.0

    def test_scalar_multiplication(self, model):
        x = model.add_continuous("x")
        e = 3 * (2 * x + 1)
        assert e.coefficient(x) == 6.0
        assert e.constant == 3.0

    def test_subtraction_cancels_terms(self, model):
        x = model.add_continuous("x")
        e = (2 * x + 5) - (2 * x)
        assert e.is_constant
        assert e.constant == 5.0

    def test_rsub(self, model):
        x = model.add_continuous("x")
        e = 10 - x
        assert e.coefficient(x) == -1.0
        assert e.constant == 10.0

    def test_mul_by_zero_empties(self, model):
        x = model.add_continuous("x")
        e = (x + 3) * 0
        assert e.is_constant and e.constant == 0.0

    def test_add_term_inplace(self, model):
        x = model.add_continuous("x")
        e = LinExpr()
        e.add_term(x, 2).add_term(x, -2)
        assert x.index not in e.coeffs

    def test_linear_sum_matches_operator_sum(self, model):
        xs = [model.add_continuous(f"x{i}") for i in range(5)]
        via_helper = linear_sum(2 * x for x in xs)
        via_ops = sum((2 * x for x in xs), LinExpr())
        assert via_helper.coeffs == via_ops.coeffs

    def test_linear_sum_with_numbers_and_vars(self, model):
        x = model.add_continuous("x")
        e = linear_sum([x, 1, 2.5, 2 * x])
        assert e.coefficient(x) == 3.0
        assert e.constant == 3.5

    def test_linear_sum_rejects_garbage(self):
        with pytest.raises(ModelError):
            linear_sum(["nope"])

    def test_as_expr_coercions(self, model):
        x = model.add_continuous("x")
        assert as_expr(x).coefficient(x) == 1.0
        assert as_expr(4.0).constant == 4.0
        with pytest.raises(ModelError):
            as_expr(object())
