"""Scalability with cluster size (companion-TR claim, Sec. 7.3).

The paper's companion TR scales TetriSched to 1000- and 10000-node
simulated clusters "with insignificant degradation in scheduling quality".
The enabler is the equivalence-set formulation: MILP size depends on the
number of *partitions* (distinct equivalence-set signatures), not nodes.

This bench compiles and solves one scheduling-cycle MILP for the same
heterogeneous 12-job batch on clusters from 64 to 1024 nodes and asserts:

* the variable/constraint counts are *identical* at every cluster size;
* the solve stays well under the paper's 4 s cycle budget.
"""

import pytest
from conftest import save_and_print

from repro.cluster import Cluster, ClusterState
from repro.core import StrlCompiler
from repro.experiments import format_table
from repro.solver import make_backend
from repro.strl import Max, NCk

SIZES = [(8, 8), (16, 16), (32, 32)]  # 64, 256, 1024 nodes


def make_batch(cluster, jobs=12, starts=8):
    gpu = cluster.nodes_with_attr("gpu")
    whole = cluster.node_names
    batch = []
    for j in range(jobs):
        leaves = []
        for s in range(starts):
            leaves.append(NCk(gpu, 4, s, 2, 4.0))
            leaves.append(NCk(whole, 4, s, 3, 3.0))
        batch.append((f"job{j}", Max(*leaves)))
    return batch


def compile_and_solve(racks, per_rack):
    cluster = Cluster.build(racks=racks, nodes_per_rack=per_rack,
                            gpu_racks=racks // 2)
    state = ClusterState(cluster.node_names)
    compiled = StrlCompiler(state, quantum_s=10).compile(make_batch(cluster))
    res = make_backend("auto").solve(compiled.model)
    return cluster, compiled, res


def test_milp_size_independent_of_cluster_size(benchmark):
    rows = []
    stats_by_size = {}
    for racks, per in SIZES:
        cluster, compiled, res = compile_and_solve(racks, per)
        stats_by_size[len(cluster)] = compiled.stats
        rows.append([len(cluster), compiled.partitioning.num_partitions,
                     compiled.stats["variables"],
                     compiled.stats["constraints"],
                     res.solve_time * 1000])

    # Benchmark the largest size.
    racks, per = SIZES[-1]
    result = benchmark.pedantic(lambda: compile_and_solve(racks, per),
                                rounds=3, iterations=1)
    _, _, res = result

    text = ("Scalability: one cycle MILP vs cluster size "
            "(12 heterogeneous jobs, 8 start options)\n"
            + format_table(["nodes", "partitions", "variables",
                            "constraints", "solve (ms)"], rows))
    save_and_print("scale_cluster", text)

    sizes = sorted(stats_by_size)
    smallest, largest = stats_by_size[sizes[0]], stats_by_size[sizes[-1]]
    # Equivalence sets: identical MILPs regardless of node count.
    assert smallest["variables"] == largest["variables"]
    assert smallest["constraints"] == largest["constraints"]
    # Well under the paper's 4 s cycle budget even at 1024 nodes.
    assert res.solve_time < 4.0
    assert res.status.has_solution
