"""Experiment metrics (Sec. 6.3).

The paper's four success metrics:

(a) **accepted SLO attainment** — % of accepted-reservation SLO jobs that
    completed before their deadline;
(b) **total SLO attainment** — % of all SLO jobs completed before deadline;
(c) **SLO attainment w/o reservation** — % of rejected-reservation SLO jobs
    completed before deadline;
(d) **mean best-effort latency** — mean completion (sojourn) time of
    best-effort jobs.

Jobs that never ran (culled, or still pending at simulation end) count as
missed SLOs; unfinished best-effort jobs are excluded from mean latency but
reported separately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class JobOutcome:
    """Everything the metrics need to know about one job's fate."""

    job_id: str
    is_slo: bool
    accepted: bool                 # accepted reservation (SLO only)
    submit_time: float
    deadline: float | None
    start_time: float | None = None
    finish_time: float | None = None
    nodes: frozenset[str] = frozenset()
    preferred_placement: bool | None = None
    preemptions: int = 0
    failures: int = 0
    #: Width re-plans applied while running (elastic jobs only).
    resizes: int = 0

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def met_deadline(self) -> bool:
        """SLO attainment for this job (False when it never completed).

        An SLO job without a deadline cannot *meet* one: it counts as a
        miss rather than crashing the aggregation.  (Such jobs only arise
        from hand-built workloads — the generators always stamp SLO
        deadlines — so the conservative reading keeps attainment
        percentages honest instead of inflating them.)
        """
        return (self.is_slo and self.completed
                and self.deadline is not None
                and self.finish_time <= self.deadline + 1e-9)

    @property
    def latency(self) -> float | None:
        """Sojourn time (completion - submission), or None if unfinished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


def _percentage(hits: int, total: int) -> float:
    return 100.0 * hits / total if total else math.nan


@dataclass
class MetricsReport:
    """Aggregated metrics for one simulation run."""

    slo_total_pct: float
    slo_accepted_pct: float
    slo_no_reservation_pct: float
    mean_be_latency_s: float
    jobs_total: int
    jobs_slo: int
    jobs_accepted: int
    jobs_best_effort: int
    be_completed: int
    preemptions: int
    failures: int
    preferred_placements_pct: float

    def as_dict(self) -> dict[str, float]:
        return dict(self.__dict__)


class MetricsCollector:
    """Accumulates per-job outcomes and produces a :class:`MetricsReport`."""

    def __init__(self) -> None:
        self.outcomes: dict[str, JobOutcome] = {}

    def register(self, outcome: JobOutcome) -> None:
        if outcome.job_id in self.outcomes:
            raise ValueError(f"job {outcome.job_id!r} already registered")
        self.outcomes[outcome.job_id] = outcome

    def of(self, job_id: str) -> JobOutcome:
        return self.outcomes[job_id]

    # -- aggregation ---------------------------------------------------------
    def report(self) -> MetricsReport:
        all_jobs = list(self.outcomes.values())
        slo = [o for o in all_jobs if o.is_slo]
        accepted = [o for o in slo if o.accepted]
        no_res = [o for o in slo if not o.accepted]
        be = [o for o in all_jobs if not o.is_slo]
        be_latencies = [o.latency for o in be if o.latency is not None]
        placed = [o for o in all_jobs if o.preferred_placement is not None]
        return MetricsReport(
            slo_total_pct=_percentage(
                sum(o.met_deadline for o in slo), len(slo)),
            slo_accepted_pct=_percentage(
                sum(o.met_deadline for o in accepted), len(accepted)),
            slo_no_reservation_pct=_percentage(
                sum(o.met_deadline for o in no_res), len(no_res)),
            mean_be_latency_s=(float(np.mean(be_latencies))
                               if be_latencies else math.nan),
            jobs_total=len(all_jobs),
            jobs_slo=len(slo),
            jobs_accepted=len(accepted),
            jobs_best_effort=len(be),
            be_completed=len(be_latencies),
            preemptions=sum(o.preemptions for o in all_jobs),
            failures=sum(o.failures for o in all_jobs),
            preferred_placements_pct=_percentage(
                sum(bool(o.preferred_placement) for o in placed), len(placed)),
        )


@dataclass
class LatencyTrace:
    """Per-cycle scheduler latencies for the scalability study (Fig. 12)."""

    cycle_latencies_s: list[float] = field(default_factory=list)
    solver_latencies_s: list[float] = field(default_factory=list)

    def record(self, cycle_s: float, solver_s: float) -> None:
        self.cycle_latencies_s.append(cycle_s)
        self.solver_latencies_s.append(solver_s)

    def summary(self) -> dict[str, float]:
        def stats(xs: list[float], prefix: str) -> dict[str, float]:
            if not xs:
                return {f"{prefix}_mean": math.nan, f"{prefix}_p50": math.nan,
                        f"{prefix}_p99": math.nan, f"{prefix}_max": math.nan}
            arr = np.asarray(xs)
            return {f"{prefix}_mean": float(arr.mean()),
                    f"{prefix}_p50": float(np.percentile(arr, 50)),
                    f"{prefix}_p99": float(np.percentile(arr, 99)),
                    f"{prefix}_max": float(arr.max())}
        out = stats(self.cycle_latencies_s, "cycle")
        out.update(stats(self.solver_latencies_s, "solver"))
        return out

    def cdf(self, which: str = "cycle") -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF points (sorted latencies, cumulative fractions).

        ``which`` selects the series: ``"cycle"`` or ``"solver"``; anything
        else raises ``ValueError`` (historically it silently fell back to
        the solver series, which masked typos in figure code).
        """
        if which not in ("cycle", "solver"):
            raise ValueError(
                f"unknown latency series {which!r}; expected 'cycle' or "
                f"'solver'")
        xs = (self.cycle_latencies_s if which == "cycle"
              else self.solver_latencies_s)
        arr = np.sort(np.asarray(xs))
        if arr.size == 0:
            return arr, arr
        fracs = np.arange(1, arr.size + 1) / arr.size
        return arr, fracs
