"""MILP solver substrate (replaces the paper's CPLEX dependency).

Public surface:

* :class:`Model`, :class:`Variable`, :class:`LinExpr`, :func:`linear_sum` —
  model construction;
* :class:`SolveOptions` — every solve tunable in one value object;
* :class:`BranchBoundSolver` / :func:`make_backend` — solving;
* :func:`solve_decomposed` + :class:`ComponentCache` — independent-component
  solving with the persistent worker pool and cross-cycle memoization
  (:mod:`repro.solver.parallel`);
* :class:`MILPResult`, :class:`SolveStatus` — results;
* :func:`solve_lp` — the standalone two-phase tableau LP solver (oracle);
* :func:`solve_lp_revised` / :class:`RevisedSimplexEngine` — the
  bounded-variable revised simplex (production LP core);
* :class:`ColumnGroup` / :func:`colgen_root` / :class:`RepairSolver` — the
  lazy column-generation + relaxation-repair fast path
  (``solve_mode="repair"`` / ``"auto"``).
"""

from repro.solver.backend import (BACKEND_NAMES, MILPBackend,
                                  backend_time_limit, make_backend)
from repro.solver.branch_bound import BranchBoundOptions, BranchBoundSolver
from repro.solver.colgen import ColgenRoot, ColumnGroup, colgen_root
from repro.solver.decompose import Decomposition, decompose, solve_decomposed
from repro.solver.expr import BINARY, CONTINUOUS, INTEGER, LinExpr, Variable, linear_sum
from repro.solver.model import EQ, GE, LE, MAXIMIZE, MINIMIZE, Constraint, Model
from repro.solver.options import DEFAULT_OPTIONS, UNSET, SolveOptions
from repro.solver.parallel import (CacheStats, ComponentCache, WorkerPool,
                                   component_fingerprint, shutdown_pools)
from repro.solver.presolve import PresolveResult, presolve
from repro.solver.repair import RepairSolver
from repro.solver.result import LPResult, MILPResult, SolveStatus
from repro.solver.revised_simplex import (BasisState, RevisedSimplexEngine,
                                          solve_lp_revised)
from repro.solver.scipy_backend import ScipyMILPSolver, scipy_available
from repro.solver.simplex import solve_lp

__all__ = [
    "BACKEND_NAMES", "BINARY", "BasisState", "BranchBoundOptions",
    "BranchBoundSolver", "CONTINUOUS", "CacheStats", "ColgenRoot",
    "ColumnGroup", "ComponentCache",
    "Constraint", "DEFAULT_OPTIONS", "Decomposition", "EQ", "GE", "INTEGER",
    "LE", "LPResult", "LinExpr", "MAXIMIZE", "MILPBackend", "MILPResult",
    "MINIMIZE", "Model", "PresolveResult", "RepairSolver",
    "RevisedSimplexEngine",
    "ScipyMILPSolver", "SolveOptions", "SolveStatus", "UNSET", "Variable",
    "WorkerPool", "backend_time_limit", "colgen_root",
    "component_fingerprint", "decompose",
    "linear_sum", "make_backend", "presolve", "scipy_available",
    "shutdown_pools", "solve_decomposed", "solve_lp", "solve_lp_revised",
]
