"""Capacity ledger over discretized future time (the reservation plan).

Rayon maintains a plan of promised capacity over time; admission control
checks a new reservation against it and the cluster's total capacity.  We
model capacity as node count (the paper's workloads request gangs of
equal-sized containers, one per node).

The ledger is sparse: only steps with nonzero reservation are stored, so the
plan scales to long horizons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReservationError


@dataclass(frozen=True)
class ReservedWindow:
    """A committed reservation: ``k`` nodes over ``[start_s, end_s)``."""

    job_id: str
    k: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class ReservationPlan:
    """Tracks reserved capacity per time step against a fixed total.

    Parameters
    ----------
    capacity:
        Total cluster capacity in nodes.
    step_s:
        Ledger granularity in seconds.  Reservations snap outward to step
        boundaries (start rounded down, end rounded up) so the plan never
        under-counts.
    """

    def __init__(self, capacity: int, step_s: float = 4.0) -> None:
        if capacity <= 0:
            raise ReservationError("capacity must be positive")
        if step_s <= 0:
            raise ReservationError("step must be positive")
        self.capacity = capacity
        self.step_s = step_s
        self._reserved: dict[int, int] = {}
        self._windows: dict[str, ReservedWindow] = {}

    # -- step helpers ---------------------------------------------------------
    def _step_of(self, t: float) -> int:
        return int(math.floor(t / self.step_s + 1e-9))

    def _step_range(self, start_s: float, end_s: float) -> range:
        first = self._step_of(start_s)
        last = int(math.ceil(end_s / self.step_s - 1e-9))
        return range(first, max(last, first + 1))

    # -- queries ----------------------------------------------------------------
    def reserved_at(self, t: float) -> int:
        """Capacity promised to reservations at absolute time ``t``."""
        return self._reserved.get(self._step_of(t), 0)

    def headroom(self, start_s: float, end_s: float) -> int:
        """Minimum free capacity across ``[start_s, end_s)``."""
        return min((self.capacity - self._reserved.get(s, 0)
                    for s in self._step_range(start_s, end_s)),
                   default=self.capacity)

    def fits(self, k: int, start_s: float, end_s: float) -> bool:
        return k <= self.headroom(start_s, end_s)

    def window_of(self, job_id: str) -> ReservedWindow:
        try:
            return self._windows[job_id]
        except KeyError:
            raise ReservationError(f"no reservation for job {job_id!r}") from None

    def has_reservation(self, job_id: str) -> bool:
        return job_id in self._windows

    @property
    def windows(self) -> list[ReservedWindow]:
        return list(self._windows.values())

    # -- placement search ----------------------------------------------------------
    def find_earliest_start(self, k: int, duration_s: float,
                            earliest_s: float, deadline_s: float) -> float | None:
        """Earliest step-aligned start fitting ``k`` nodes for the duration.

        Scans step boundaries in ``[earliest_s, deadline_s - duration_s]``;
        returns ``None`` when no slot exists (the reservation is rejected).
        """
        if k > self.capacity or duration_s <= 0:
            return None
        latest_start = deadline_s - duration_s
        if latest_start < earliest_s - 1e-9:
            return None
        step = self._step_of(earliest_s)
        start = max(earliest_s, step * self.step_s)
        if start < earliest_s - 1e-9:
            start += self.step_s
        while start <= latest_start + 1e-9:
            if self.fits(k, start, start + duration_s):
                return start
            start += self.step_s
        return None

    # -- mutation ------------------------------------------------------------------
    def reserve(self, job_id: str, k: int, start_s: float,
                duration_s: float) -> ReservedWindow:
        """Commit a reservation; raises if it does not fit."""
        if job_id in self._windows:
            raise ReservationError(f"job {job_id!r} already has a reservation")
        if k <= 0:
            raise ReservationError("k must be positive")
        end_s = start_s + duration_s
        if not self.fits(k, start_s, end_s):
            raise ReservationError(
                f"reservation for {job_id!r} does not fit the plan")
        for s in self._step_range(start_s, end_s):
            self._reserved[s] = self._reserved.get(s, 0) + k
        window = ReservedWindow(job_id, k, start_s, end_s)
        self._windows[job_id] = window
        return window

    def release(self, job_id: str, at_s: float | None = None) -> None:
        """Drop a reservation's remaining capacity from the ledger.

        ``at_s`` trims only the part of the window at or after that time
        (early completion frees the tail); ``None`` drops the whole window.
        """
        window = self.window_of(job_id)
        cut = window.start_s if at_s is None else max(at_s, window.start_s)
        if cut < window.end_s:
            # Steps fully or partially covered from `cut` onward.  The step
            # containing `cut` stays reserved (it was promised and partially
            # used); release from the next boundary.
            first_kept = int(math.ceil(cut / self.step_s - 1e-9))
            for s in self._step_range(window.start_s, window.end_s):
                if s >= first_kept:
                    remaining = self._reserved.get(s, 0) - window.k
                    if remaining > 0:
                        self._reserved[s] = remaining
                    else:
                        self._reserved.pop(s, None)
        del self._windows[job_id]
