"""TetriSched scheduler core: compiler, scheduler, allocation, queues."""

from repro.core.allocation import Allocation, PlanAccumulator
from repro.core.compiler import (CompiledBatch, LeafRecord, PlannedPlacement,
                                 StrlCompiler)
from repro.core.delta import (CycleDelta, DeltaCompiler, DeltaDivergence,
                              DeltaStats)
from repro.core.queues import PriorityClass, PriorityQueues
from repro.core.scheduler import (CycleResult, CycleStats, JobRequest,
                                  TetriSched, TetriSchedConfig)

__all__ = [
    "Allocation", "CompiledBatch", "CycleDelta", "CycleResult", "CycleStats",
    "DeltaCompiler", "DeltaDivergence", "DeltaStats", "JobRequest",
    "LeafRecord", "PlanAccumulator", "PlannedPlacement", "PriorityClass",
    "PriorityQueues", "StrlCompiler", "TetriSched", "TetriSchedConfig",
]
