"""Tests for the STRL generator and RDL translation."""

import pytest

from repro.errors import StrlError
from repro.strl import (Atom, Max, NCk, SpaceOption, Window,
                        generate_batch_strl, generate_job_strl,
                        quantize_duration, rdl_to_strl)
from repro.strl.ast import Sum
from repro.valuefn import StepValue, best_effort_value, slo_value

GPU = frozenset({"M1", "M2"})
ALL = frozenset({"M1", "M2", "M3", "M4"})


class TestQuantize:
    @pytest.mark.parametrize("dur,quantum,expected", [
        (10, 10, 1), (11, 10, 2), (9.9, 10, 1), (0.1, 10, 1), (30, 10, 3),
        (20.0000001, 10, 2),  # tolerance absorbs float fuzz
    ])
    def test_rounding(self, dur, quantum, expected):
        assert quantize_duration(dur, quantum) == expected

    def test_bad_quantum(self):
        with pytest.raises(StrlError):
            quantize_duration(5, 0)


class TestGenerateJobStrl:
    def options(self):
        return [SpaceOption(GPU, k=2, duration_s=20, label="gpu"),
                SpaceOption(ALL, k=2, duration_s=30, label="any")]

    def test_paper_gpu_example_shape(self):
        """Sec. 4.4: deadline 3 quanta -> 2 GPU start options + 1 fallback."""
        vf = StepValue(value=1.0, deadline=30.0)
        expr = generate_job_strl(self.options(), vf, now=0.0, quantum_s=10,
                                 plan_ahead_quanta=4, deadline=30.0)
        assert isinstance(expr, Max)
        leaves = sorted(expr.leaves(), key=lambda l: (len(l.nodes), l.start))
        # GPU option (dur 2): starts 0 and 1 fit within deadline 3.
        gpu_leaves = [l for l in leaves if l.nodes == GPU]
        any_leaves = [l for l in leaves if l.nodes == ALL]
        assert [l.start for l in gpu_leaves] == [0, 1]
        assert [l.start for l in any_leaves] == [0]

    def test_plan_ahead_zero_only_now(self):
        vf = StepValue(value=1.0, deadline=1000.0)
        expr = generate_job_strl(self.options(), vf, now=0.0, quantum_s=10,
                                 plan_ahead_quanta=0)
        assert all(l.start == 0 for l in expr.leaves())

    def test_value_comes_from_value_function(self):
        vf = best_effort_value(release_time=0.0, decay_horizon=100.0)
        expr = generate_job_strl(self.options(), vf, now=0.0, quantum_s=10,
                                 plan_ahead_quanta=2, earliness_bias=0.0)
        by_key = {(l.nodes, l.start): l.value for l in expr.leaves()}
        # GPU completes at (start+2)*10s: value 1 - completion/100.
        assert by_key[(GPU, 0)] == pytest.approx(0.8)
        assert by_key[(GPU, 1)] == pytest.approx(0.7)
        assert by_key[(ALL, 0)] == pytest.approx(0.7)

    def test_everything_culled_returns_none(self):
        vf = StepValue(value=1.0, deadline=5.0)  # nothing completes by t=5
        expr = generate_job_strl(self.options(), vf, now=0.0, quantum_s=10,
                                 plan_ahead_quanta=4, deadline=5.0)
        assert expr is None

    def test_cull_disabled_keeps_zero_value_leaves(self):
        vf = StepValue(value=1.0, deadline=5.0)
        expr = generate_job_strl(self.options(), vf, now=0.0, quantum_s=10,
                                 plan_ahead_quanta=1, deadline=5.0, cull=False)
        assert expr is not None
        assert all(l.value == 0.0 for l in expr.leaves())

    def test_infeasible_option_skipped(self):
        opts = [SpaceOption(GPU, k=3, duration_s=10)]  # k > |GPU|
        vf = StepValue(1.0, 1000.0)
        assert generate_job_strl(opts, vf, 0.0, 10, 2) is None

    def test_single_leaf_not_wrapped(self):
        opts = [SpaceOption(GPU, k=2, duration_s=10)]
        vf = StepValue(1.0, 1000.0)
        expr = generate_job_strl(opts, vf, 0.0, 10, 0)
        assert isinstance(expr, NCk)

    def test_negative_plan_ahead_rejected(self):
        with pytest.raises(StrlError):
            generate_job_strl(self.options(), StepValue(1.0, 10.0), 0.0, 10, -1)

    def test_now_offset_shifts_completion(self):
        vf = StepValue(value=1.0, deadline=115.0)
        expr = generate_job_strl([SpaceOption(ALL, 2, 20)], vf, now=100.0,
                                 quantum_s=10, plan_ahead_quanta=4,
                                 deadline=115.0)
        assert expr is None  # earliest completion is 120 > 115


class TestBatch:
    def test_batch_aggregates_with_sum(self):
        a = NCk(ALL, 1, 0, 1, 1.0)
        b = NCk(GPU, 1, 0, 1, 2.0)
        e = generate_batch_strl([a, b])
        assert isinstance(e, Sum)
        assert e.max_value() == 3.0

    def test_empty_batch(self):
        assert generate_batch_strl([]) is None


class TestRdl:
    def test_atom_requires_full_gang(self):
        with pytest.raises(StrlError):
            Atom("<16GB,8c>", k=2, gang=1, duration_s=30)

    def test_window_validation(self):
        with pytest.raises(StrlError):
            Window(10, 10, Atom("b", 1, 1, 5))

    def test_paper_window_example(self):
        """Window(s=0,f=3,Atom(k=2,gang=2,dur=3)) at quantum 1: one start."""
        w = Window(0, 3, Atom("<16GB,8c>", k=2, gang=2, duration_s=3))
        e = rdl_to_strl(w, ALL, quantum_s=1)
        assert isinstance(e, NCk)
        assert (e.k, e.start, e.duration) == (2, 0, 3)

    def test_wider_window_multiple_starts(self):
        w = Window(0, 50, Atom("b", k=2, gang=2, duration_s=20))
        e = rdl_to_strl(w, ALL, quantum_s=10)
        assert isinstance(e, Max)
        assert [l.start for l in e.leaves()] == [0, 1, 2, 3]

    def test_infeasible_window_returns_none(self):
        w = Window(0, 10, Atom("b", k=2, gang=2, duration_s=20))
        assert rdl_to_strl(w, ALL, quantum_s=10) is None

    def test_too_small_cluster_returns_none(self):
        w = Window(0, 100, Atom("b", k=9, gang=9, duration_s=10))
        assert rdl_to_strl(w, ALL, quantum_s=10) is None

    def test_window_start_offset(self):
        w = Window(20, 60, Atom("b", k=1, gang=1, duration_s=20))
        e = rdl_to_strl(w, ALL, quantum_s=10, now=0.0)
        starts = [l.start for l in e.leaves()]
        assert starts == [2, 3, 4]  # may not start before window opens

    def test_feasible_property(self):
        assert Window(0, 30, Atom("b", 1, 1, 30)).feasible
        assert not Window(0, 29, Atom("b", 1, 1, 30)).feasible
