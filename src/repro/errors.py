"""Exception hierarchy for the TetriSched reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """A MILP model was constructed or used incorrectly."""


class SolverError(ReproError):
    """The solver failed in an unexpected way (not mere infeasibility)."""


class InfeasibleError(SolverError):
    """The optimization problem has no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class StrlError(ReproError):
    """An STRL expression is malformed or used incorrectly."""


class StrlParseError(StrlError):
    """The STRL text parser rejected its input."""


class ClusterError(ReproError):
    """Cluster model misuse (unknown node, duplicate names, ...)."""


class SchedulerError(ReproError):
    """Scheduler-level invariant violation."""


class ReservationError(ReproError):
    """Reservation system misuse."""


class ServiceError(ReproError):
    """Raised by the long-lived scheduler service on invalid requests."""


class SimulationError(ReproError):
    """Discrete-event simulator invariant violation."""


class WorkloadError(ReproError):
    """Workload generator misconfiguration."""
