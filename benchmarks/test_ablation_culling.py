"""Ablation: deadline culling of STRL expression growth (Sec. 3.2.1, 7.3).

"The STRL Generator performs many possible optimizations, such as culling
the expression growth when the job's estimated runtime is expected to
exceed its deadline."

Compares generated STRL size and compiled MILP size for a deadline-bound
job batch with culling on vs off.
"""

from conftest import save_and_print

from repro.cluster import Cluster, ClusterState
from repro.core import StrlCompiler
from repro.experiments import format_table
from repro.strl import SpaceOption, generate_job_strl
from repro.valuefn import StepValue


def build_exprs(cull: bool):
    cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
    gpu = cluster.nodes_with_attr("gpu")
    exprs = []
    for i in range(6):
        deadline = 60.0 + 10 * i  # staggered, all well inside the window
        expr = generate_job_strl(
            [SpaceOption(gpu, k=2, duration_s=20, label="gpu"),
             SpaceOption(cluster.node_names, k=2, duration_s=30,
                         label="any")],
            StepValue(1000.0, deadline), now=0.0, quantum_s=10,
            plan_ahead_quanta=14, deadline=deadline, cull=cull)
        exprs.append((f"j{i}", expr))
    return cluster, exprs


def compile_size(cull: bool):
    cluster, exprs = build_exprs(cull)
    state = ClusterState(cluster.node_names)
    compiled = StrlCompiler(state, 10.0).compile(exprs)
    leaves = sum(e.size for _, e in exprs)
    return leaves, compiled.stats


def test_culling_shrinks_expressions(benchmark):
    culled_size, culled_stats = benchmark.pedantic(
        lambda: compile_size(True), rounds=3, iterations=1)
    full_size, full_stats = compile_size(False)

    rows = [["culled", culled_size, culled_stats["variables"],
             culled_stats["constraints"]],
            ["unculled", full_size, full_stats["variables"],
             full_stats["constraints"]]]
    text = ("Ablation: deadline culling of STRL/ MILP growth\n"
            + format_table(["mode", "AST nodes", "variables", "constraints"],
                           rows))
    save_and_print("ablation_culling", text)

    assert culled_size < full_size
    assert culled_stats["variables"] < full_stats["variables"]
    assert culled_stats["constraints"] < full_stats["constraints"]
