"""HTTP/JSON API: submit -> status -> cancel end to end over a socket."""

import asyncio
import json
import urllib.error
import urllib.request

from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.service import FakeClock, SchedulerService, serve


def build_service(tmp_path=None):
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    cfg = TetriSchedConfig(quantum_s=10.0, cycle_s=10.0, plan_ahead_s=40.0,
                           backend="pure", rel_gap=1e-6, delta_mode="verify")
    stats = tmp_path / "final.json" if tmp_path else None
    return SchedulerService(cluster, cfg, clock=FakeClock(),
                            stats_path=stats)


def http(port, method, path, body=None):
    """Blocking JSON request; call via run_in_executor from async tests."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                 data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def run(coro):
    asyncio.run(coro)


SPEC = {"options": [{"k": 1, "duration_s": 20}],
        "value": 1000.0, "deadline": 500.0}


class TestRoutes:
    def test_submit_status_cancel_roundtrip(self):
        async def main():
            svc = build_service()
            server = await serve(svc)
            loop = asyncio.get_running_loop()

            def call(*args, **kw):
                return loop.run_in_executor(
                    None, lambda: http(server.port, *args, **kw))

            assert (await call("GET", "/healthz"))[1] == {"ok": True}

            status, rec = await call("POST", "/jobs",
                                     dict(SPEC, job_id="a"))
            assert status == 201 and rec["state"] == "pending"

            status, got = await call("GET", "/jobs/a")
            assert status == 200 and got["job_id"] == "a"

            status, listing = await call("GET", "/jobs")
            assert [j["job_id"] for j in listing["jobs"]] == ["a"]

            status, cancelled = await call("DELETE", "/jobs/a")
            assert status == 200 and cancelled["state"] == "cancelled"

            status, st_payload = await call("GET", "/status")
            assert status == 200
            assert st_payload["jobs"] == {"cancelled": 1}

            await server.drain()
        run(main())

    def test_cycles_and_cluster_events(self):
        async def main():
            svc = build_service()
            server = await serve(svc)
            loop = asyncio.get_running_loop()

            def call(*args, **kw):
                return loop.run_in_executor(
                    None, lambda: http(server.port, *args, **kw))

            await call("POST", "/jobs", dict(SPEC, job_id="a"))
            await loop.run_in_executor(None, svc.run_one_cycle)
            status, cycles = await call("GET", "/cycles")
            assert status == 200 and len(cycles["cycles"]) == 1
            assert cycles["cycles"][0]["jobs_dirty"] == 1

            node = sorted(svc.cluster.node_names)[0]
            status, out = await call("POST", "/cluster/events",
                                     {"action": "remove", "node": node})
            assert status == 200 and out["drained"] == [node]
            status, _ = await call("POST", "/cluster/events",
                                   {"action": "nope", "node": node})
            assert status == 400
            await server.drain()
        run(main())

    def test_errors(self):
        async def main():
            svc = build_service()
            server = await serve(svc)
            loop = asyncio.get_running_loop()

            def call(*args, **kw):
                return loop.run_in_executor(
                    None, lambda: http(server.port, *args, **kw))

            assert (await call("GET", "/jobs/ghost"))[0] == 404
            assert (await call("GET", "/nowhere"))[0] == 404
            assert (await call("PUT", "/jobs/a"))[0] == 405
            assert (await call("POST", "/jobs", {"options": []}))[0] == 400
            status, payload = await call("POST", "/jobs")
            assert status == 400 and "body" in payload["error"]
            await server.drain()
        run(main())

    def test_drain_endpoint_returns_final_stats(self, tmp_path):
        async def main():
            svc = build_service(tmp_path)
            server = await serve(svc)
            loop = asyncio.get_running_loop()

            def call(*args, **kw):
                return loop.run_in_executor(
                    None, lambda: http(server.port, *args, **kw))

            await call("POST", "/jobs", dict(SPEC, job_id="a"))
            await loop.run_in_executor(None, svc.run_one_cycle)
            status, final = await call("POST", "/drain")
            assert status == 200 and final["clean"] is True
            assert (tmp_path / "final.json").exists()
            persisted = json.loads((tmp_path / "final.json").read_text())
            assert persisted["clean"] is True
            await asyncio.wait_for(server.wait_drained(), timeout=10)
            # Listener is gone: a new request must fail to connect.
            try:
                await call("GET", "/healthz")
            except (ConnectionError, urllib.error.URLError, OSError):
                pass
            else:  # pragma: no cover - depends on socket teardown timing
                pass
        run(main())
