"""Independent verification of scheduler and solver outputs.

The paper's central artifact is the STRL->MILP formulation (Algorithm 1);
everything the scheduler emits is only as trustworthy as that compilation
and the five interchangeable solve configurations built on top of it
(dense / sparse / decomposed / parallel / cached).  This package is the
oracle side of that bargain — three layers that recheck results without
reusing the code paths that produced them:

* :mod:`repro.verify.certificate` — replays a
  :class:`~repro.solver.result.MILPResult` against the model's canonical
  CSR export and confirms bounds, integrality, constraint satisfaction,
  and the claimed objective;
* :mod:`repro.verify.audit` — rechecks a cycle's schedule against the
  space-time invariants (no oversubscription in any quantum, no double
  placement, ``nCk``/``LnCk``/barrier shape conformance, objective
  reconciliation against the STRL values);
* :mod:`repro.verify.fuzz` — a seeded differential fuzz harness
  (``python -m repro fuzz``) asserting all solver configurations and
  backends agree on objective and auditor verdict.  Requires hypothesis,
  so it is *not* imported here; use ``from repro.verify import fuzz``.

The auditor runs per-cycle inside the scheduling pipeline when
``TetriSchedConfig(audit_mode=True)`` is set.
"""

from repro.verify.audit import (AuditReport, AuditViolation, Violation,
                                audit_cycle, audit_sharded,
                                check_ledger_orphans)
from repro.verify.certificate import (CertificateReport, GapCertificate,
                                      certify_gap, check_certificate)

__all__ = ["AuditReport", "AuditViolation", "CertificateReport",
           "GapCertificate", "Violation", "audit_cycle", "audit_sharded",
           "certify_gap", "check_certificate", "check_ledger_orphans"]
