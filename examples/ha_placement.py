#!/usr/bin/env python3
"""High-availability placement with combinatorial STRL constraints.

The paper (Sec. 4) motivates `MIN`, `LnCk`, `SCALE`, and `BARRIER` with
availability-sensitive services: place replicas across failure domains with
a tolerance threshold — e.g. "up to, but no more than, k0 borgmaster
servers in any given failure domain".

This script builds three requests against a 3-rack cluster and shows how
the solver places them:

1. **Anti-affinity** (`min` of per-rack `nCk`): one replica per rack.
2. **Spread with a floor** (`barrier` over a `sum` of per-rack `LnCk`):
   *at least* 4 replicas, at most 2 per rack, all-or-nothing.  (Barrier
   semantics guarantee the floor; on an idle cluster the solver may place
   up to the per-rack caps, since extra replicas cost it nothing.)
3. The same request when one rack is down — the barrier makes it
   unsatisfiable rather than degraded.

Run:  python examples/ha_placement.py
"""

from repro import Barrier, Cluster, ClusterState, LnCk, Min, NCk, StrlCompiler, Sum
from repro.solver import make_backend


def show(title, state, expr):
    compiled = StrlCompiler(state, quantum_s=10).compile([("svc", expr)])
    res = make_backend("auto").solve(compiled.model)
    print(f"{title}")
    print(f"  objective: {res.objective:g}")
    placements = compiled.decode(res.x) if res.status.has_solution else []
    if not placements or res.objective <= 0:
        print("  -> request not satisfied (no placement)")
    for pl in placements:
        for pid, count in sorted(pl.node_counts.items()):
            nodes = sorted(compiled.partitioning.partitions[pid].nodes)
            print(f"  -> {count} replica(s) from {nodes}")
    print()


def main() -> None:
    cluster = Cluster.build(racks=3, nodes_per_rack=3)
    racks = [cluster.rack_nodes(r) for r in cluster.rack_names]

    print("Cluster: 3 racks x 3 nodes\n")

    # 1. Anti-affinity: exactly one replica on each rack.
    anti_affinity = Min(*[NCk(r, k=1, start=0, duration=6, value=3.0)
                          for r in racks])
    state = ClusterState(cluster.node_names)
    show("1. Anti-affinity (min of per-rack nCk): 1 replica per rack",
         state, anti_affinity)

    # 2. 4 replicas, max 2 per failure domain, all-or-nothing.
    spread = Barrier(
        Sum(*[LnCk(r, k=2, start=0, duration=6, value=2.0) for r in racks]),
        threshold=4.0)
    show("2. Barrier(4) over per-rack LnCk(k=2): >=4 replicas, <=2 per rack",
         ClusterState(cluster.node_names), spread)

    # 3. Same request with two racks fully down: at most 2 replicas could
    #    be placed, the barrier cannot be reached -> nothing is placed.
    degraded = ClusterState(cluster.node_names)
    degraded.start("rack-outage-1", racks[0], 0.0, 1e6)
    degraded.start("rack-outage-2", racks[1], 0.0, 1e6)
    show("3. The same request with racks r0+r1 down (tolerance violated)",
         degraded, spread)


if __name__ == "__main__":
    main()
