"""Extension benchmark: malleable elastic gangs under bursts and faults.

Sec. 4.1 notes that "general space-time elasticity of jobs can be expressed
using MAX to select among possible 2D space-time shapes"; this extension
takes that further with *running* malleability: per-cycle width re-planning
of elastic gangs (shrink to admit SLO work, grow back when capacity frees).

The sweep reuses the companion-TR burstiness axis with fault injection on,
so elastic re-planning is exercised exactly where it must be robust: bursts
pile rigid SLO jobs into one cycle (forcing shrinks) and faults kill
resized attempts mid-run (exercising current-width re-entry).  The rigid
baseline runs the *same* sampled gangs as fixed max-width jobs — the
all-or-nothing shape malleability replaces.

Asserts that malleability never costs SLO attainment beyond single-job
noise, improves it on average across the sweep, keeps every best-effort
gang completing despite faults, and that width re-plans actually fire.
"""

from conftest import nanmean, save_and_print

from repro.experiments import RC80_SCALED, RunSpec, format_table, run_experiment
from repro.workloads import GS_HET

BURSTINESS = [1.0, 3.0]
SEEDS = [0, 1]


def run_all():
    out = {}
    for elastic_mode in (False, True):
        for seed in SEEDS:
            for cv in BURSTINESS:
                out[(elastic_mode, seed, cv)] = run_experiment(RunSpec(
                    scheduler="TetriSched", composition=GS_HET,
                    cluster=RC80_SCALED, num_jobs=48, seed=seed,
                    target_utilization=1.3, burstiness=cv,
                    elastic_fraction=0.75 if elastic_mode else 0.0,
                    elastic_mode=elastic_mode, reconfig_penalty=0.1,
                    failure_prob=0.15))
    return out


def test_elastic_sweep(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for elastic_mode in (False, True):
        label = "elastic" if elastic_mode else "rigid"
        for seed in SEEDS:
            slo = [results[(elastic_mode, seed, cv)].metrics.slo_total_pct
                   for cv in BURSTINESS]
            resizes = sum(
                o.resizes
                for cv in BURSTINESS
                for o in results[(elastic_mode, seed, cv)].outcomes.values())
            rows.append([f"{label} s{seed}"]
                        + [f"{v:.1f}" for v in slo] + [resizes])
    text = ("Extension: elastic width re-planning under bursts + faults "
            "(GS HET, scaled RC80, 15% failures)\n"
            + format_table(["arm"] + [f"SLO% CV={c}" for c in BURSTINESS]
                           + ["resizes"], rows))
    save_and_print("ext_elastic", text)

    rigid_pts, elastic_pts, total_resizes = [], [], 0
    for seed in SEEDS:
        for cv in BURSTINESS:
            rigid = results[(False, seed, cv)].metrics
            elastic = results[(True, seed, cv)].metrics
            rigid_pts.append(rigid.slo_total_pct)
            elastic_pts.append(elastic.slo_total_pct)
            # Malleability never costs SLO attainment beyond one
            # borderline job's worth of noise at any sweep point...
            assert elastic.slo_total_pct >= rigid.slo_total_pct - 3.0
            # ...and faults never strand a malleable gang: current-width
            # re-entry keeps every best-effort job completing.
            assert elastic.be_completed >= rigid.be_completed
            total_resizes += sum(
                o.resizes
                for o in results[(True, seed, cv)].outcomes.values())
    # On average across the sweep, flexibility pays (or at worst ties).
    assert nanmean(elastic_pts) >= nanmean(rigid_pts)
    # The machinery under test actually engaged: gangs re-planned widths.
    assert total_resizes > 0
