"""Fig. 11: plan-ahead sweep on GS HET (scaled RC80).

Paper shapes asserted:

* with plan-ahead disabled (0 s, i.e. TetriSched-NP / alsched), global
  TetriSched performs no better than it does with a generous window —
  attainment grows with plan-ahead and then saturates (paper: until ~100 s);
* TetriSched with plan-ahead beats Rayon/CS at every window size.
"""

from conftest import nanmean, save_and_print

from repro.experiments import fig11

TOL = 6.0


def test_fig11(benchmark, figure_cache):
    result = benchmark.pedantic(
        lambda: figure_cache("fig11", fig11), rounds=1, iterations=1)
    save_and_print("fig11", result.text)
    sweep = result.sweep

    ts = sweep.get("TetriSched", "slo_total_pct")
    cs = sweep.get("Rayon/CS", "slo_total_pct")

    # Attainment with a saturated window beats no plan-ahead.
    best_window = max(ts[1:])
    assert best_window >= ts[0], "plan-ahead should not hurt attainment"
    # Saturation: the last two windows perform comparably.
    assert abs(ts[-1] - ts[-2]) <= 2 * TOL

    # TetriSched beats Rayon/CS at every plan-ahead point.
    for x, t, c in zip(sweep.x_values, ts, cs):
        assert t >= c - TOL, f"TetriSched below CS at plan-ahead={x}s"
