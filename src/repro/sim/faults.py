"""Fault injection: probabilistic job failures with bounded retries.

Production clusters lose tasks to hardware faults, speculative kills, and
bad nodes; schedulers must tolerate work evaporating mid-run.  The fault
model decides, per launch, whether the run fails and after which fraction
of its true runtime.  Failed jobs release their nodes immediately and are
resubmitted (same Rayon admission status) until ``retry_limit`` attempts
are exhausted, after which they are finalized as never-completed.

Deterministic: decisions are a pure function of (seed, job id, attempt).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of the fault draw for one launch attempt."""

    fails: bool
    #: Fraction of the true runtime completed before the failure.
    at_fraction: float = 1.0


class FaultModel:
    """Per-launch failure decisions.

    Parameters
    ----------
    failure_prob:
        Probability that any given launch attempt fails mid-run.
    retry_limit:
        Maximum number of *failed* attempts before the job is abandoned
        (so a job may run up to ``retry_limit + 1`` times).
    seed:
        Fault-stream seed, independent of the workload seed.
    """

    def __init__(self, failure_prob: float, retry_limit: int = 3,
                 seed: int = 0) -> None:
        if not 0.0 <= failure_prob < 1.0:
            raise SimulationError("failure_prob must be in [0, 1)")
        if retry_limit < 0:
            raise SimulationError("retry_limit must be nonnegative")
        self.failure_prob = failure_prob
        self.retry_limit = retry_limit
        self.seed = seed

    def _rng_for(self, job_id: str, attempt: int) -> np.random.Generator:
        # zlib.crc32 is stable across processes (unlike hash(), which is
        # salted for strings), keeping fault streams reproducible.
        import zlib
        digest = zlib.crc32(f"{self.seed}:{job_id}:{attempt}".encode())
        return np.random.default_rng(digest)

    def draw(self, job_id: str, attempt: int) -> FaultDecision:
        """Decide the fate of launch ``attempt`` (0-based) of ``job_id``."""
        rng = self._rng_for(job_id, attempt)
        if rng.random() >= self.failure_prob:
            return FaultDecision(fails=False)
        # Fail somewhere in (0.1, 0.9) of the run: neither instant nor at
        # the finish line, so lost work is always meaningful.
        return FaultDecision(fails=True,
                             at_fraction=float(rng.uniform(0.1, 0.9)))

    def gave_up(self, failures: int) -> bool:
        return failures > self.retry_limit
