"""Branch-and-bound MILP solver over a pluggable LP-relaxation engine.

Together with :mod:`repro.solver.simplex` this forms the from-scratch MILP
backend replacing the paper's CPLEX (see DESIGN.md).  It supports the two
solver controls the paper relies on (Sec. 3.2.2):

* **bounded suboptimality** — stop when the relative optimality gap drops
  below ``rel_gap`` (the paper configures CPLEX to return solutions within
  10 % of optimal after a parametrizable time), or when ``time_limit`` /
  ``node_limit`` is hit, returning the best incumbent;
* **warm starting** — an initial feasible point (e.g., the previous
  scheduling cycle's solution shifted forward in time) seeds the incumbent,
  letting the search prune immediately.

The search is best-bound-first with most-fractional branching and a simple
rounding heuristic at every node to find incumbents early.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import SolverError
from repro.solver.model import Model
from repro.solver.options import SolveOptions, is_set
from repro.solver.result import LPResult, MILPResult, SolveStatus
from repro.solver.revised_simplex import RevisedSimplexEngine
from repro.solver.simplex import solve_lp as simplex_solve_lp

_INT_TOL = 1e-6

LPSolveFn = Callable[..., LPResult]


@dataclass
class BranchBoundOptions:
    """Tuning knobs for the branch-and-bound search."""

    rel_gap: float = 1e-6
    time_limit: float | None = None
    node_limit: int | None = 200_000
    lp_solver: LPSolveFn = simplex_solve_lp
    #: Round the LP relaxation at each node and test feasibility.
    rounding_heuristic: bool = True
    #: Apply bound-tightening / row-dropping reductions before the search.
    presolve: bool = True
    #: Model export to consume: ``"sparse"`` (CSR triplets, presolved
    #: sparsely, densified only at the LP-engine boundary) or ``"dense"``
    #: (the historical `to_standard_arrays` path, kept as a test oracle).
    arrays: str = "sparse"
    #: LP relaxation engine when ``lp_solver`` is the built-in simplex:
    #: ``"revised"`` (bounded-variable revised simplex, basis factorization
    #: picked automatically by size/density), ``"sparse-lu"`` (force the
    #: Markowitz sparse LU with Forrest–Tomlin updates),
    #: ``"revised-dense"`` (force the LAPACK dense LU fallback),
    #: ``"revised-inverse"`` (legacy explicit-inverse path, kept for the
    #: bench ablation) or ``"tableau"`` (the dense two-phase tableau, kept
    #: as the differential oracle).  Ignored for external ``lp_solver``
    #: callables such as scipy/HiGHS.
    lp_engine: str = "revised"


@dataclass(order=True)
class _Node:
    bound: float
    seq: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)
    #: Parent's optimal basis (:class:`repro.solver.revised_simplex.BasisState`)
    #: when the revised engine is active; seeds a dual-simplex warm restart.
    basis: object | None = field(compare=False, default=None)


class BranchBoundSolver:
    """Solve a :class:`~repro.solver.model.Model` by branch and bound.

    Example
    -------
    >>> from repro.solver.model import Model
    >>> m = Model()
    >>> x = m.add_integer("x", ub=10); y = m.add_integer("y", ub=10)
    >>> _ = m.add_constraint(3*x + 5*y, "<=", 15)
    >>> m.set_objective(2*x + 3*y, sense="maximize")
    >>> res = BranchBoundSolver().solve(m)
    >>> res.status.name, res.objective
    ('OPTIMAL', 10.0)
    """

    def __init__(self, options: BranchBoundOptions | None = None) -> None:
        self.options = options or BranchBoundOptions()

    def _effective_options(self, options: SolveOptions | None
                           ) -> BranchBoundOptions:
        """Constructor options with any per-call overrides applied."""
        if options is None:
            return self.options
        overrides = {name: getattr(options, name)
                     for name in ("rel_gap", "time_limit", "node_limit")
                     if is_set(getattr(options, name))}
        if not overrides:
            return self.options
        return dataclasses.replace(self.options, **overrides)

    def solve(self, model: Model,
              options: SolveOptions | None = None) -> MILPResult:
        warm_start = options.get("warm_start") if options is not None else None
        t0 = time.monotonic()
        opts = self._effective_options(options)
        presolve_stats: dict = {}
        sparse = opts.arrays == "sparse"
        arrays = (model.to_sparse_arrays() if sparse
                  else model.to_standard_arrays())
        if opts.presolve:
            from repro.solver.presolve import presolve, presolve_sparse
            reduction = (presolve_sparse if sparse else presolve)(arrays)
            presolve_stats = {
                "presolve_rows_dropped": reduction.rows_dropped,
                "presolve_bounds_tightened": reduction.bounds_tightened,
            }
            obs.count("solver.presolve.rows_dropped", reduction.rows_dropped)
            obs.count("solver.presolve.bounds_tightened",
                      reduction.bounds_tightened)
            if reduction.infeasible:
                return MILPResult(SolveStatus.INFEASIBLE, None, math.nan,
                                  solve_time=time.monotonic() - t0,
                                  stats=presolve_stats)
            arrays = reduction.arrays
        # The two-phase simplex underneath is a dense algorithm; on the
        # sparse path this densification (post-presolve, so after row
        # drops) is the only point where full matrices materialize.
        sa = arrays.to_standard() if sparse else arrays
        n = len(sa.c)
        int_idx = np.nonzero(sa.integrality)[0]

        incumbent: np.ndarray | None = None
        incumbent_obj = math.inf  # minimization orientation
        lp_iterations = 0
        nodes_pruned = 0
        incumbents = 0
        nodes_processed = 0

        def note_incumbent(source: str, gap: float | None = None) -> None:
            nonlocal incumbents
            incumbents += 1
            obs.emit("solver.incumbent", source=source,
                     objective=sa.obj_sign * incumbent_obj + sa.obj_constant,
                     gap=gap, nodes=nodes_processed)

        if warm_start is not None:
            ws = np.asarray(warm_start, dtype=float)
            if ws.shape[0] == n and model.check_feasible(ws):
                incumbent = ws.copy()
                incumbent_obj = float(sa.c @ ws)
                note_incumbent("warm-start")

        counter = itertools.count()
        root = _Node(-math.inf, next(counter), sa.lb.copy(), sa.ub.copy())
        heap: list[_Node] = [root]
        # Weakest bound among gap-pruned subtrees: their optimum may lie up
        # to rel_gap below the incumbent, so the proven global lower bound
        # is min(open-node bounds, pruned bounds, incumbent) — never more.
        pruned_bound = math.inf
        infeasible_everywhere = True

        engine: RevisedSimplexEngine | None = None
        if opts.lp_solver is simplex_solve_lp:
            factor_mode = {"revised": "auto", "sparse-lu": "sparse",
                           "revised-dense": "dense",
                           "revised-inverse": "inverse"}.get(opts.lp_engine)
            if factor_mode is not None:
                if sparse:
                    # Feed the CSR export straight into the engine's CSC
                    # build — the `sa` densification above stays only for
                    # the tableau oracle, rounding and warm-start checks.
                    engine = RevisedSimplexEngine.from_sparse(
                        arrays, factor=factor_mode)
                else:
                    engine = RevisedSimplexEngine(sa.c, sa.a_ub, sa.b_ub,
                                                  sa.a_eq, sa.b_eq,
                                                  factor=factor_mode)
            elif opts.lp_engine != "tableau":
                raise SolverError(
                    f"unknown lp_engine {opts.lp_engine!r}; expected "
                    "'revised', 'sparse-lu', 'revised-dense', "
                    "'revised-inverse' or 'tableau'")

        def lp_at(node: _Node) -> LPResult:
            if engine is not None:
                return engine.solve(node.lb, node.ub, start=node.basis)
            return opts.lp_solver(sa.c, a_ub=sa.a_ub, b_ub=sa.b_ub,
                                  a_eq=sa.a_eq, b_eq=sa.b_eq,
                                  lb=node.lb, ub=node.ub)

        def gap_now() -> float:
            if incumbent is None:
                return math.inf
            # heap[0] is the min of a (bound, seq)-ordered min-heap, so the
            # best open bound is O(1) — no full-heap scan per call.
            open_bound = heap[0].bound if heap else math.inf
            bound = min(open_bound, pruned_bound, incumbent_obj)
            return abs(incumbent_obj - bound) / max(1.0, abs(incumbent_obj))

        while heap:
            if opts.time_limit is not None and time.monotonic() - t0 > opts.time_limit:
                break
            if opts.node_limit is not None and nodes_processed >= opts.node_limit:
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - abs(incumbent_obj) * opts.rel_gap - 1e-12:
                # Cannot improve on the incumbent by more than the gap.
                pruned_bound = min(pruned_bound, node.bound)
                nodes_pruned += 1
                continue
            nodes_processed += 1

            lp = lp_at(node)
            lp_iterations += lp.iterations
            if lp.status == SolveStatus.INFEASIBLE:
                nodes_pruned += 1
                continue
            if lp.status == SolveStatus.UNBOUNDED:
                # With a finite incumbent the true MILP may still be bounded,
                # but our models always have bounded relaxations at the root;
                # treat as unbounded only when nothing is integral-restricted.
                if int_idx.size == 0:
                    return MILPResult(SolveStatus.UNBOUNDED, None,
                                      -sa.obj_sign * math.inf)
                continue
            infeasible_everywhere = False
            assert lp.x is not None
            if lp.objective >= incumbent_obj - 1e-12:
                nodes_pruned += 1
                continue  # bound dominated

            frac = np.abs(lp.x[int_idx] - np.round(lp.x[int_idx])) if int_idx.size else np.zeros(0)
            fractional = np.nonzero(frac > _INT_TOL)[0]
            if fractional.size == 0:
                # Integral LP optimum: new incumbent.
                if lp.objective < incumbent_obj:
                    incumbent = lp.x.copy()
                    incumbent[int_idx] = np.round(incumbent[int_idx])
                    incumbent_obj = float(sa.c @ incumbent)
                    note_incumbent("lp-integral", gap=gap_now())
                continue

            if opts.rounding_heuristic:
                cand = lp.x.copy()
                cand[int_idx] = np.round(cand[int_idx])
                cand = np.clip(cand, node.lb, node.ub)
                if float(sa.c @ cand) < incumbent_obj and model.check_feasible(
                        _to_model_space(cand)):
                    incumbent = cand.copy()
                    incumbent_obj = float(sa.c @ cand)
                    note_incumbent("rounding", gap=gap_now())

            # Most-fractional branching.
            pick = int(int_idx[fractional[np.argmax(frac[fractional])]])
            val = lp.x[pick]
            lo, hi = math.floor(val), math.ceil(val)

            # Children inherit this node's optimal basis: tightening one
            # bound keeps it dual-feasible, so the child re-optimizes in a
            # few dual pivots instead of a fresh phase-1/phase-2 solve.
            down = _Node(lp.objective, next(counter), node.lb.copy(),
                         node.ub.copy(), node.depth + 1, basis=lp.basis)
            down.ub[pick] = min(down.ub[pick], lo)
            up = _Node(lp.objective, next(counter), node.lb.copy(),
                       node.ub.copy(), node.depth + 1, basis=lp.basis)
            up.lb[pick] = max(up.lb[pick], hi)
            for child in (down, up):
                if child.lb[pick] <= child.ub[pick]:
                    heapq.heappush(heap, child)

            if incumbent is not None and gap_now() <= opts.rel_gap:
                break

        solve_time = time.monotonic() - t0
        search_stats = dict(presolve_stats)
        search_stats.update({"lp_iterations": lp_iterations,
                             "nodes_pruned": nodes_pruned,
                             "incumbents": incumbents})
        if engine is not None:
            search_stats.update({
                "lp_dual_pivots": engine.counters["dual_pivots"],
                "lp_refactorizations": engine.counters["refactorizations"],
                "lp_warm_restarts": engine.counters["warm_restarts"],
                "lp_warm_hits": engine.counters["warm_hits"],
                "lp_cold_fallbacks": engine.counters["cold_fallbacks"],
                "lp_factorizations": engine.counters["factorizations"],
                "lp_ft_updates": engine.counters["ft_updates"],
                "lp_pricing_candidates":
                    engine.counters["pricing_candidates"],
                "lp_fill_ratio": engine.fill_ratio,
            })
        obs.count("solver.bnb.pruned", nodes_pruned)
        obs.count("solver.bnb.incumbents", incumbents)
        if incumbent is None:
            if infeasible_everywhere and not heap:
                return MILPResult(SolveStatus.INFEASIBLE, None, math.nan,
                                  nodes=nodes_processed, solve_time=solve_time,
                                  stats=search_stats)
            return MILPResult(SolveStatus.NO_SOLUTION, None, math.nan,
                              nodes=nodes_processed, solve_time=solve_time,
                              stats=search_stats)

        open_bound = min(heap[0].bound if heap else math.inf,
                         pruned_bound, incumbent_obj)
        gap = abs(incumbent_obj - open_bound) / max(1.0, abs(incumbent_obj))
        proven = not heap or gap <= opts.rel_gap
        # Convert back to the model's objective sense.
        model_obj = sa.obj_sign * incumbent_obj + sa.obj_constant
        model_bound = sa.obj_sign * open_bound + sa.obj_constant
        obs.emit("solver.solve", status="optimal" if proven else "feasible",
                 objective=model_obj, gap=gap, nodes=nodes_processed,
                 lp_iterations=lp_iterations, time_ms=1000.0 * solve_time)
        return MILPResult(
            status=SolveStatus.OPTIMAL if proven else SolveStatus.FEASIBLE,
            x=incumbent, objective=model_obj, bound=model_bound, gap=gap,
            nodes=nodes_processed, solve_time=solve_time,
            stats=search_stats)


def _to_model_space(x: np.ndarray) -> np.ndarray:
    """Standard arrays keep model column order, so this is the identity.

    Kept as a named hook so a future sparse/permuted export only needs one
    change site.
    """
    return x
