"""Extension benchmark: an EDF baseline decomposes TetriSched's advantage.

EDF is deadline-aware but heterogeneity-blind and myopic.  Comparing the
three stacks on the heterogeneous workload isolates where the value comes
from:

* EDF >> Rayon/CS         — most of CS's losses come from deadline
                             blindness in its best-effort queue;
* TetriSched vs EDF       — the remaining gap is soft constraints +
                             plan-ahead + global packing, visible mainly in
                             best-effort latency and preferred placements.
"""

from conftest import nanmean, save_and_print

from repro.experiments import RC80_SCALED, RunSpec, format_table, run_experiment
from repro.workloads import GS_HET

ERRORS = [-50, 0, 50]


def run_all():
    out = {}
    for sched in ("Rayon/CS", "EDF", "TetriSched"):
        for err in ERRORS:
            spec = RunSpec(scheduler=sched, composition=GS_HET,
                           cluster=RC80_SCALED, num_jobs=48,
                           target_utilization=1.3,
                           estimate_error=err / 100.0)
            out[(sched, err)] = run_experiment(spec)
    return out


def test_edf_decomposition(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for sched in ("Rayon/CS", "EDF", "TetriSched"):
        for err in ERRORS:
            m = results[(sched, err)].metrics
            rows.append([sched, err, m.slo_total_pct, m.mean_be_latency_s,
                         m.preferred_placements_pct])
    text = ("Extension: EDF baseline decomposition (GS HET, scaled RC80)\n"
            + format_table(["scheduler", "error %", "SLO total %",
                            "BE latency (s)", "preferred placement %"],
                           rows))
    save_and_print("ext_edf", text)

    def series(sched, metric):
        return [getattr(results[(sched, e)].metrics, metric) for e in ERRORS]

    # Deadline awareness buys EDF a large win over Rayon/CS.
    assert nanmean(series("EDF", "slo_total_pct")) > \
        nanmean(series("Rayon/CS", "slo_total_pct")) + 10
    # Heterogeneity awareness: TetriSched places far more jobs on their
    # preferred resources than the placement-blind EDF.
    assert nanmean(series("TetriSched", "preferred_placements_pct")) > \
        nanmean(series("EDF", "preferred_placements_pct")) + 15
    # ...which shows up as lower best-effort latency.
    assert nanmean(series("TetriSched", "mean_be_latency_s")) < \
        nanmean(series("EDF", "mean_be_latency_s"))
