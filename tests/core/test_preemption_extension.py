"""Tests for the MILP-native preemption extension (paper future work).

The paper notes TetriSched lacks preemption and flags it as future work
(Sec. 7.2).  The extension adds a binary kill-decision per running
best-effort job to the cycle MILP: preempting returns the victim's nodes to
the supply at a value penalty.
"""

import pytest

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.sim import Job, Simulation, TetriSchedAdapter, UnconstrainedType
from repro.strl import SpaceOption
from repro.valuefn import StepValue, best_effort_value

UN = UnconstrainedType()


def make_sched(preemption=True, **overrides):
    cluster = Cluster.build(racks=1, nodes_per_rack=4)
    cfg = dict(quantum_s=10, cycle_s=10, plan_ahead_s=40, backend="auto",
               rel_gap=1e-6, enable_preemption=preemption)
    cfg.update(overrides)
    return cluster, TetriSched(cluster, TetriSchedConfig(**cfg))


def be_request(cluster, job_id, k=4, dur=100):
    return JobRequest(job_id, (SpaceOption(cluster.node_names, k, dur),),
                      best_effort_value(0.0), PriorityClass.BEST_EFFORT, 0.0)


def slo_request(cluster, job_id, k=4, dur=20, deadline=40.0, now=0.0):
    return JobRequest(job_id, (SpaceOption(cluster.node_names, k, dur),),
                      StepValue(1000.0, deadline),
                      PriorityClass.SLO_ACCEPTED, now, deadline=deadline)


class TestPreemptionDecision:
    def test_slo_job_preempts_long_best_effort(self):
        cluster, sched = make_sched(preemption=True)
        sched.submit(be_request(cluster, "be"))
        r0 = sched.run_cycle(0.0)
        assert [a.job_id for a in r0.allocations] == ["be"]
        # An urgent SLO job arrives; the BE job holds the cluster for 100s.
        sched.submit(slo_request(cluster, "slo", deadline=40.0, now=10.0))
        r1 = sched.run_cycle(10.0)
        assert r1.preempted == ["be"]
        assert [a.job_id for a in r1.allocations] == ["slo"]
        # The BE job is re-queued, not lost.
        assert "be" in sched.queues

    def test_no_preemption_when_disabled(self):
        cluster, sched = make_sched(preemption=False)
        sched.submit(be_request(cluster, "be"))
        sched.run_cycle(0.0)
        sched.submit(slo_request(cluster, "slo", deadline=40.0, now=10.0))
        r1 = sched.run_cycle(10.0)
        assert r1.preempted == []
        assert r1.allocations == []  # nothing fits before the deadline

    def test_no_pointless_preemption(self):
        """A deferrable SLO job must not trigger a kill: waiting is free,
        preempting costs the penalty."""
        cluster, sched = make_sched(preemption=True)
        sched.submit(be_request(cluster, "be", dur=20))  # releases at t=20
        sched.run_cycle(0.0)
        # Plenty of slack: can start at t=20 and still meet t=100.
        sched.submit(slo_request(cluster, "slo", deadline=100.0, now=10.0))
        r1 = sched.run_cycle(10.0)
        assert r1.preempted == []

    def test_slo_jobs_never_preempted(self):
        cluster, sched = make_sched(preemption=True)
        sched.submit(slo_request(cluster, "long-slo", dur=100,
                                 deadline=200.0))
        sched.run_cycle(0.0)
        sched.submit(slo_request(cluster, "urgent", deadline=40.0, now=10.0))
        r1 = sched.run_cycle(10.0)
        # Running SLO jobs are not preemption candidates.
        assert r1.preempted == []

    def test_penalty_discourages_low_value_kills(self):
        """With a penalty above the waiting cost, a best-effort job must
        not preempt another best-effort job."""
        cluster, sched = make_sched(preemption=True, preemption_penalty=5.0)
        sched.submit(be_request(cluster, "be1", dur=30))
        sched.run_cycle(0.0)
        sched.submit(be_request(cluster, "be2", dur=30))
        r1 = sched.run_cycle(10.0)
        assert r1.preempted == []


class TestPreemptionInSimulation:
    def test_preempted_job_reruns_and_finishes(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=4)
        adapter = TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40,
            enable_preemption=True))
        jobs = [
            Job("be", UN, k=4, base_runtime_s=100, submit_time=0.0),
            Job("slo", UN, k=4, base_runtime_s=20, submit_time=10.0,
                deadline=50.0),
        ]
        res = Simulation(cluster, adapter, jobs).run()
        slo, be = res.outcomes["slo"], res.outcomes["be"]
        assert slo.met_deadline
        assert be.preemptions == 1
        assert be.completed
        assert res.metrics.preemptions == 1
