"""Tests for nodes and the cluster container."""

import pytest

from repro.cluster import Cluster, Node
from repro.errors import ClusterError


class TestNode:
    def test_valid(self):
        n = Node("r0n0", "r0", frozenset({"gpu"}))
        assert n.has_attr("gpu") and not n.has_attr("ssd")

    def test_empty_name_rejected(self):
        with pytest.raises(ClusterError):
            Node("", "r0")

    def test_empty_rack_rejected(self):
        with pytest.raises(ClusterError):
            Node("a", "")

    def test_attrs_must_be_frozenset(self):
        with pytest.raises(ClusterError):
            Node("a", "r0", {"gpu"})


class TestClusterBuild:
    def test_topology(self):
        c = Cluster.build(racks=8, nodes_per_rack=32)
        assert len(c) == 256
        assert len(c.rack_names) == 8
        assert len(c.rack_nodes("r3")) == 32

    def test_gpu_racks(self):
        c = Cluster.build(racks=4, nodes_per_rack=2, gpu_racks=2)
        gpus = c.nodes_with_attr("gpu")
        assert len(gpus) == 4
        assert c.racks_of(gpus) == {"r0", "r1"}

    def test_extra_attrs(self):
        c = Cluster.build(racks=1, nodes_per_rack=2,
                          extra_attrs={"r0n1": ["ssd"]})
        assert c.nodes_with_attr("ssd") == frozenset({"r0n1"})

    def test_bad_topology(self):
        with pytest.raises(ClusterError):
            Cluster.build(racks=0, nodes_per_rack=4)
        with pytest.raises(ClusterError):
            Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=3)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Node("a", "r0"), Node("a", "r1")])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([])


class TestClusterQueries:
    @pytest.fixture()
    def cluster(self):
        return Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)

    def test_membership_and_lookup(self, cluster):
        assert "r0n0" in cluster
        assert cluster.node("r0n0").rack == "r0"
        with pytest.raises(ClusterError):
            cluster.node("nope")

    def test_node_names_frozenset(self, cluster):
        assert cluster.node_names == frozenset({"r0n0", "r0n1", "r1n0", "r1n1"})

    def test_unknown_rack(self, cluster):
        with pytest.raises(ClusterError):
            cluster.rack_nodes("r9")

    def test_validate_names(self, cluster):
        cluster.validate_names(["r0n0"])
        with pytest.raises(ClusterError):
            cluster.validate_names(["r0n0", "bogus"])

    def test_iteration_yields_nodes(self, cluster):
        names = {n.name for n in cluster}
        assert names == cluster.node_names
