#!/usr/bin/env python3
"""Soft constraints + plan-ahead: when is waiting for a GPU worth it?

A GPU job (Fig. 1/3 of the paper) runs 10 s on GPU nodes and 40 s anywhere
else, with a 45 s deadline.  The GPU rack is busy for the next 10 s.  With
plan-ahead, TetriSched *defers* the job, grabs the GPUs at t=10 and finishes
at t=20.  Without plan-ahead (TetriSched-NP, i.e. alsched) the only start
time considered is "now", so the scheduler settles for the slow fallback and
finishes at t=40 — twice as late, and it burns non-GPU capacity for 4x
longer.

This demonstrates the paper's core claim: plan-ahead lets the scheduler
make informed deferral decisions instead of hoarding or settling.

Run:  python examples/gpu_soft_constraints.py
"""

from repro import (Cluster, JobRequest, PriorityClass, SpaceOption,
                   TetriSched, TetriSchedConfig)
from repro.valuefn import StepValue


def drive(plan_ahead_s: float) -> str:
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    gpu_nodes = cluster.nodes_with_attr("gpu")
    sched = TetriSched(cluster, TetriSchedConfig(
        quantum_s=10, cycle_s=10, plan_ahead_s=plan_ahead_s,
        backend="auto", rel_gap=1e-6))

    # Something else holds the GPU rack until t=10.
    sched.state.start("gpu-holder", gpu_nodes, 0.0, 10.0)

    sched.submit(JobRequest(
        job_id="gpu-job",
        options=(SpaceOption(gpu_nodes, k=2, duration_s=10, label="gpu"),
                 SpaceOption(cluster.node_names, k=2, duration_s=40,
                             label="anywhere")),
        value_fn=StepValue(1000.0, 45.0),
        priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0, deadline=45.0))

    log = []
    for now in (0.0, 10.0, 20.0, 30.0):
        if now == 10.0:
            sched.on_job_finished("gpu-holder", now)
        result = sched.run_cycle(now)
        for alloc in result.allocations:
            placement = ("GPU rack" if alloc.nodes <= gpu_nodes
                         else "non-GPU fallback")
            log.append(f"t={now:.0f}s: launched on {placement}, "
                       f"finishes t={alloc.expected_end:.0f}s "
                       f"({'MET' if alloc.expected_end <= 45 else 'MISSED'})")
        for culled in result.culled:
            log.append(f"t={now:.0f}s: {culled} culled "
                       "(deadline unreachable)")
        if not sched.pending_count:
            break
    if sched.pending_count:
        log.append("job never launched")
    return "\n    ".join(log) if log else "nothing happened"


def main() -> None:
    print("GPU job: 10s on GPUs / 40s anywhere, deadline 45s;"
          " GPU rack busy until t=10s\n")
    print(f"  With plan-ahead (96s window):\n    {drive(96.0)}\n")
    print(f"  Without plan-ahead (TetriSched-NP / alsched):\n    {drive(0.0)}")


if __name__ == "__main__":
    main()
