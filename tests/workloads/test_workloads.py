"""Tests for workload generation: distributions, compositions, gridmix."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.strategies import seeds

from repro.cluster import Cluster
from repro.errors import WorkloadError
from repro.sim import GpuType, MpiType, UnconstrainedType
from repro.workloads import (COMPOSITIONS, GR_MIX, GR_SLO, GS_HET, GS_MIX,
                             TABLE1, BoundedLogNormal, GridmixConfig, Rng,
                             UniformFloat, UniformInt, generate_workload,
                             offered_load)


class TestDistributions:
    def test_rng_deterministic(self):
        a = [Rng(7).uniform(0, 1) for _ in range(3)]
        b = [Rng(7).uniform(0, 1) for _ in range(3)]
        # Same seed, fresh generators -> same first draw.
        assert a[0] == b[0]

    def test_bounded_lognormal_respects_bounds(self):
        d = BoundedLogNormal(median=30, sigma=2.0, lo=10, hi=60)
        rng = Rng(1)
        for _ in range(200):
            v = d.sample(rng)
            assert 10 <= v <= 60

    def test_bounded_lognormal_validation(self):
        with pytest.raises(WorkloadError):
            BoundedLogNormal(median=5, sigma=1, lo=10, hi=60)
        with pytest.raises(WorkloadError):
            BoundedLogNormal(median=30, sigma=-1, lo=10, hi=60)

    def test_uniform_int_inclusive(self):
        d = UniformInt(2, 3)
        rng = Rng(3)
        values = {d.sample(rng) for _ in range(100)}
        assert values == {2, 3}

    def test_uniform_int_validation(self):
        with pytest.raises(WorkloadError):
            UniformInt(3, 2)
        with pytest.raises(WorkloadError):
            UniformInt(0, 2)

    def test_uniform_float_validation(self):
        with pytest.raises(WorkloadError):
            UniformFloat(3.0, 2.0)


class TestCompositions:
    def test_table1_rows_match_paper(self):
        rows = {c.name: c.table_row() for c in TABLE1}
        assert rows["GR SLO"]["SLO"] == 100 and rows["GR SLO"]["BE"] == 0
        assert rows["GR MIX"]["SLO"] == 52 and rows["GR MIX"]["BE"] == 48
        assert rows["GS MIX"]["SLO"] == 70 and rows["GS MIX"]["BE"] == 30
        assert rows["GS HET"]["SLO"] == 75 and rows["GS HET"]["BE"] == 25
        assert rows["GS HET"]["GPU"] == 50 and rows["GS HET"]["MPI"] == 50
        assert rows["GR MIX"]["Unconstrained"] == 100

    def test_compositions_registry(self):
        assert set(COMPOSITIONS) == {"GR SLO", "GR MIX", "GS MIX", "GS HET"}

    def test_bad_type_mix_rejected(self):
        from repro.workloads import WorkloadComposition
        from repro.workloads.swim import FB2009_2, YAHOO_1
        with pytest.raises(WorkloadError):
            WorkloadComposition("bad", 0.5, {"gpu": 0.7}, FB2009_2, YAHOO_1)


class TestGridmix:
    @pytest.fixture()
    def cluster(self):
        return Cluster.build(racks=4, nodes_per_rack=8, gpu_racks=2)

    def test_deterministic(self, cluster):
        cfg = GridmixConfig(num_jobs=30, seed=5)
        a = generate_workload(GR_MIX, cluster, cfg)
        b = generate_workload(GR_MIX, cluster, cfg)
        assert [(j.job_id, j.submit_time, j.k, j.base_runtime_s)
                for j in a] == [(j.job_id, j.submit_time, j.k,
                                 j.base_runtime_s) for j in b]

    def test_slo_fraction_respected(self, cluster):
        jobs = generate_workload(GR_MIX, cluster,
                                 GridmixConfig(num_jobs=100, seed=1))
        slo = sum(1 for j in jobs if j.is_slo)
        assert slo == pytest.approx(52, abs=2)

    def test_pure_slo_workload(self, cluster):
        jobs = generate_workload(GR_SLO, cluster,
                                 GridmixConfig(num_jobs=40, seed=2))
        assert all(j.is_slo for j in jobs)

    def test_het_type_mix(self, cluster):
        jobs = generate_workload(GS_HET, cluster,
                                 GridmixConfig(num_jobs=200, seed=3))
        slo_types = [type(j.job_type) for j in jobs if j.is_slo]
        be_types = [type(j.job_type) for j in jobs if not j.is_slo]
        assert all(t is UnconstrainedType for t in be_types)
        gpu_frac = sum(1 for t in slo_types if t is GpuType) / len(slo_types)
        assert 0.3 < gpu_frac < 0.7
        assert any(t is MpiType for t in slo_types)

    def test_mpi_gang_fits_a_rack(self, cluster):
        jobs = generate_workload(GS_HET, cluster,
                                 GridmixConfig(num_jobs=200, seed=4))
        rack_size = 8
        for j in jobs:
            if isinstance(j.job_type, MpiType):
                assert j.k <= rack_size

    def test_estimate_error_propagates(self, cluster):
        jobs = generate_workload(GS_MIX, cluster,
                                 GridmixConfig(num_jobs=10, seed=1,
                                               estimate_error=0.5))
        for j in jobs:
            assert j.estimated_runtime_s == pytest.approx(
                1.5 * j.base_runtime_s)

    def test_deadlines_have_slack(self, cluster):
        jobs = generate_workload(GR_SLO, cluster,
                                 GridmixConfig(num_jobs=50, seed=6))
        for j in jobs:
            assert j.deadline >= j.submit_time + 1.5 * j.base_runtime_s

    def test_offered_load_near_target(self, cluster):
        jobs = generate_workload(GR_MIX, cluster,
                                 GridmixConfig(num_jobs=300, seed=7,
                                               target_utilization=1.0))
        load = offered_load(jobs, cluster)
        assert 0.6 < load < 1.6  # Poisson noise, but the right ballpark

    def test_slowdown_propagates_to_job_types(self, cluster):
        jobs = generate_workload(GS_HET, cluster,
                                 GridmixConfig(num_jobs=60, seed=2,
                                               slowdown=2.5))
        slowdowns = {j.job_type.slowdown for j in jobs
                     if hasattr(j.job_type, "slowdown")}
        assert slowdowns == {2.5}

    def test_burstiness_changes_arrival_pattern(self, cluster):
        smooth = generate_workload(GS_MIX, cluster,
                                   GridmixConfig(num_jobs=80, seed=3,
                                                 burstiness=1.0))
        bursty = generate_workload(GS_MIX, cluster,
                                   GridmixConfig(num_jobs=80, seed=3,
                                                 burstiness=4.0))
        import numpy as np

        def cv(jobs):
            gaps = np.diff([j.submit_time for j in jobs])
            return gaps.std() / gaps.mean()
        assert cv(bursty) > cv(smooth)

    def test_bad_config(self):
        with pytest.raises(WorkloadError):
            GridmixConfig(num_jobs=0)
        with pytest.raises(WorkloadError):
            GridmixConfig(target_utilization=0)
        with pytest.raises(WorkloadError):
            GridmixConfig(estimate_error=-1.0)
        with pytest.raises(WorkloadError):
            GridmixConfig(burstiness=0.0)
        with pytest.raises(WorkloadError):
            GridmixConfig(slowdown=0.5)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n=st.integers(1, 60))
    def test_generated_jobs_always_valid(self, seed, n):
        cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
        jobs = generate_workload(GS_HET, cluster,
                                 GridmixConfig(num_jobs=n, seed=seed))
        assert len(jobs) == n
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        for j in jobs:
            assert 1 <= j.k <= len(cluster)
            assert j.base_runtime_s > 0
