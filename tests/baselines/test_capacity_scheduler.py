"""Tests for the Rayon/CapacityScheduler baseline."""

import pytest

from repro.baselines import CapacityScheduler
from repro.cluster import Cluster
from repro.errors import SchedulerError
from repro.reservation import RayonReservationSystem
from repro.sim import Job, Simulation, UnconstrainedType

UN = UnconstrainedType()


def make_stack(nodes=4, cycle_s=10.0, preemption=True):
    cluster = Cluster.build(racks=1, nodes_per_rack=nodes)
    rayon = RayonReservationSystem(capacity=nodes, step_s=cycle_s)
    cs = CapacityScheduler(cluster, rayon, cycle_s=cycle_s,
                           preemption=preemption)
    return cluster, rayon, cs


class TestQueueing:
    def test_accepted_job_launches_in_window(self):
        cluster, rayon, cs = make_stack()
        job = Job("s", UN, k=2, base_runtime_s=20, submit_time=0.0,
                  deadline=100.0)
        rayon.submit("s", 2, 20, 0.0, 100.0)
        cs.submit(job, accepted=True, now=0.0)
        decisions = cs.cycle(0.0)
        assert [a.job_id for a in decisions.allocations] == ["s"]

    def test_best_effort_fifo_with_skip(self):
        cluster, rayon, cs = make_stack(nodes=4)
        wide = Job("wide", UN, k=4, base_runtime_s=20, submit_time=0.0)
        narrow = Job("narrow", UN, k=1, base_runtime_s=20, submit_time=0.0)
        blocker = Job("blocker", UN, k=2, base_runtime_s=20, submit_time=0.0)
        cs.submit(blocker, accepted=False, now=0.0)
        cs.cycle(0.0)
        cs.submit(wide, accepted=False, now=0.0)
        cs.submit(narrow, accepted=False, now=0.0)
        decisions = cs.cycle(10.0)
        # wide (4 nodes) cannot fit behind blocker (2 busy); narrow can.
        assert [a.job_id for a in decisions.allocations] == ["narrow"]

    def test_too_big_job_rejected(self):
        cluster, rayon, cs = make_stack(nodes=2)
        job = Job("huge", UN, k=5, base_runtime_s=10, submit_time=0.0)
        with pytest.raises(SchedulerError):
            cs.submit(job, accepted=False, now=0.0)

    def test_finish_unknown_job_raises(self):
        cluster, rayon, cs = make_stack()
        with pytest.raises(SchedulerError):
            cs.job_finished("ghost", 0.0)

    def test_active_jobs_counts(self):
        cluster, rayon, cs = make_stack()
        cs.submit(Job("b", UN, k=1, base_runtime_s=10, submit_time=0.0),
                  accepted=False, now=0.0)
        assert cs.active_jobs == 1
        cs.cycle(0.0)
        assert cs.active_jobs == 1  # now running
        cs.job_finished("b", 10.0)
        assert cs.active_jobs == 0


class TestPreemption:
    def test_reserved_job_preempts_best_effort(self):
        cluster, rayon, cs = make_stack(nodes=4)
        # BE job takes the whole cluster at t=0.
        be = Job("be", UN, k=4, base_runtime_s=100, submit_time=0.0)
        cs.submit(be, accepted=False, now=0.0)
        cs.cycle(0.0)
        # Reserved job's window starts at t=10.
        rayon.submit("slo", 4, 20, 10.0, 100.0)
        cs.submit(Job("slo", UN, k=4, base_runtime_s=20, submit_time=10.0,
                      deadline=100.0), accepted=True, now=10.0)
        decisions = cs.cycle(10.0)
        assert decisions.preempted == ["be"]
        assert [a.job_id for a in decisions.allocations] == ["slo"]
        assert cs.preemption_count == 1
        # The preempted BE job is back in the queue (lost all progress).
        assert cs.active_jobs == 2

    def test_no_preemption_when_disabled(self):
        cluster, rayon, cs = make_stack(nodes=4, preemption=False)
        cs.submit(Job("be", UN, k=4, base_runtime_s=100, submit_time=0.0),
                  accepted=False, now=0.0)
        cs.cycle(0.0)
        rayon.submit("slo", 4, 20, 10.0, 100.0)
        cs.submit(Job("slo", UN, k=4, base_runtime_s=20, submit_time=10.0,
                      deadline=100.0), accepted=True, now=10.0)
        decisions = cs.cycle(10.0)
        assert decisions.preempted == []
        assert decisions.allocations == []

    def test_reserved_jobs_are_not_preempted(self):
        cluster, rayon, cs = make_stack(nodes=4)
        rayon.submit("slo1", 4, 100, 0.0, 200.0)
        cs.submit(Job("slo1", UN, k=4, base_runtime_s=100, submit_time=0.0,
                      deadline=200.0), accepted=True, now=0.0)
        cs.cycle(0.0)
        rayon.submit("slo2", 4, 20, 0.0, 300.0)  # forced after slo1
        cs.submit(Job("slo2", UN, k=4, base_runtime_s=20, submit_time=0.0,
                      deadline=300.0), accepted=True, now=0.0)
        decisions = cs.cycle(10.0)
        # slo1 is within its window: protected.
        assert decisions.preempted == []

    def test_useless_preemption_avoided(self):
        cluster, rayon, cs = make_stack(nodes=4)
        cs.submit(Job("be", UN, k=1, base_runtime_s=100, submit_time=0.0),
                  accepted=False, now=0.0)
        # A within-window reserved job occupies 3 nodes forever.
        rayon.submit("hold", 3, 1000, 0.0, 2000.0)
        cs.submit(Job("hold", UN, k=3, base_runtime_s=1000, submit_time=0.0,
                      deadline=2000.0), accepted=True, now=0.0)
        cs.cycle(0.0)
        # New reserved job needs all 4; even killing 'be' leaves only 1.
        rayon.submit("slo", 4, 10, 10.0, 3000.0)
        cs.submit(Job("slo", UN, k=4, base_runtime_s=10, submit_time=10.0,
                      deadline=3000.0), accepted=True, now=10.0)
        decisions = cs.cycle(10.0)
        assert decisions.preempted == []  # don't kill in vain


class TestDemotion:
    def test_expired_window_demotes_waiting_job(self):
        cluster, rayon, cs = make_stack(nodes=4)
        rayon.submit("slo", 2, 20, 0.0, 100.0)
        job = Job("slo", UN, k=2, base_runtime_s=20, submit_time=0.0,
                  deadline=100.0)
        cs.submit(job, accepted=True, now=0.0)
        # Block the cluster so the job cannot launch inside its window.
        cs.state.start("external", cluster.node_names, 0.0, 500.0)
        cs.cycle(0.0)
        # Window [0, 20) long gone by t=30: job drops to the BE queue.
        cs.cycle(30.0)
        assert "slo" in cs._be_queue

    def test_underestimated_running_job_becomes_preemptible(self):
        cluster, rayon, cs = make_stack(nodes=4)
        # Reservation believes 20s; the job actually needs much longer.
        rayon.submit("under", 4, 20, 0.0, 200.0)
        cs.submit(Job("under", UN, k=4, base_runtime_s=80, submit_time=0.0,
                      deadline=200.0, estimate_error=-0.75),
                  accepted=True, now=0.0)
        cs.cycle(0.0)
        # At t=30 the reservation window [0,20) expired; job still running.
        rayon.submit("next", 4, 20, 30.0, 300.0)
        cs.submit(Job("next", UN, k=4, base_runtime_s=20, submit_time=30.0,
                      deadline=300.0), accepted=True, now=30.0)
        decisions = cs.cycle(30.0)
        assert decisions.preempted == ["under"]  # lost its guarantee


class TestEndToEnd:
    def test_cs_in_simulation(self):
        cluster, rayon, cs = make_stack(nodes=4)
        jobs = [
            Job("s1", UN, k=2, base_runtime_s=20, submit_time=0.0,
                deadline=100.0),
            Job("s2", UN, k=2, base_runtime_s=20, submit_time=0.0,
                deadline=100.0),
            Job("b1", UN, k=1, base_runtime_s=10, submit_time=5.0),
        ]
        res = Simulation(cluster, cs, jobs, rayon=rayon).run()
        assert res.metrics.slo_total_pct == 100.0
        assert res.metrics.jobs_best_effort == 1
        assert all(o.completed for o in res.outcomes.values())

    def test_preempted_job_eventually_finishes(self):
        cluster, rayon, cs = make_stack(nodes=4)
        jobs = [
            Job("be", UN, k=4, base_runtime_s=50, submit_time=0.0),
            Job("slo", UN, k=4, base_runtime_s=20, submit_time=10.0,
                deadline=60.0),
        ]
        res = Simulation(cluster, cs, jobs, rayon=rayon).run()
        be, slo = res.outcomes["be"], res.outcomes["slo"]
        assert slo.met_deadline
        assert be.preemptions == 1
        assert be.completed
        # Restarted after the SLO job: 50s of work re-done.
        assert be.finish_time >= 30.0 + 50.0
