"""Property-based end-to-end tests: random workloads, system invariants.

For any randomly generated small workload, on every scheduler stack:

* the simulation terminates;
* the trace shows no node double-booking;
* every job is finalized exactly once (completed or culled);
* completed jobs respect causality (start >= submit, finish > start);
* gang sizes are honored on every launch.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines import CapacityScheduler, EdfScheduler
from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.reservation import RayonReservationSystem
from repro.sim import ExecutionTrace, Simulation, TetriSchedAdapter
from repro.sim.trace import CULL, LAUNCH
from tests.strategies import sim_workloads


def _build(kind: str):
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    rayon = RayonReservationSystem(len(cluster), step_s=10.0)
    if kind == "tetrisched":
        sched = TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40))
    elif kind == "cs":
        sched = CapacityScheduler(cluster, rayon, cycle_s=10.0)
    else:
        sched = EdfScheduler(cluster, cycle_s=10.0)
    return cluster, rayon, sched


@pytest.mark.parametrize("kind", ["tetrisched", "cs", "edf"])
class TestEngineProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(jobs=sim_workloads())
    def test_invariants(self, kind, jobs):
        cluster, rayon, sched = _build(kind)
        trace = ExecutionTrace()
        result = Simulation(cluster, sched, jobs, rayon=rayon,
                            trace=trace, max_time_s=50_000).run()

        trace.check_no_double_booking()

        culled = {e.job_id for e in trace.of_kind(CULL)}
        for job in jobs:
            o = result.outcomes[job.job_id]
            if o.completed:
                assert job.job_id not in culled
                assert o.start_time is not None
                assert o.start_time >= job.submit_time - 1e-9
                assert o.finish_time > o.start_time
            else:
                # Never-completed jobs must have been culled (CS/EDF keep
                # everything, so with generous max_time they all finish —
                # except EDF's own hopeless-job culling).
                assert job.job_id in culled or kind == "tetrisched"

        by_id = {j.job_id: j for j in jobs}
        for ev in trace.of_kind(LAUNCH):
            assert len(ev.nodes) == by_id[ev.job_id].k
