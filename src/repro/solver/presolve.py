"""Presolve: cheap reductions applied before branch and bound.

Commercial solvers (the paper's CPLEX, HiGHS) lean heavily on presolve; our
pure-Python branch and bound benefits from the same classic, always-safe
reductions:

* **integral bound rounding** — integer variables get ``ceil(lb)`` /
  ``floor(ub)``;
* **singleton rows** — a row touching one variable is just a bound; fold it
  in and drop the row;
* **redundant rows** — a row whose maximum activity (given bounds) cannot
  exceed its right-hand side is always satisfied; drop it;
* **infeasibility detection** — a row whose *minimum* activity exceeds its
  right-hand side (or crossed bounds) proves the model infeasible without
  any search.

The reductions operate on :class:`~repro.solver.model.StandardArrays` in
variable-preserving form (bounds tighten, rows drop, columns stay), so
solutions need no post-processing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.solver.model import SparseArrays, StandardArrays

_TOL = 1e-9


@dataclass
class PresolveResult:
    """Outcome of a presolve pass."""

    arrays: StandardArrays
    infeasible: bool
    rows_dropped: int
    bounds_tightened: int
    passes: int


@dataclass
class SparsePresolveResult:
    """Outcome of a sparse presolve pass (mirrors :class:`PresolveResult`)."""

    arrays: SparseArrays
    infeasible: bool
    rows_dropped: int
    bounds_tightened: int
    passes: int


def _round_integer_bounds(lb, ub, integrality) -> int:
    changed = 0
    for j in np.nonzero(integrality)[0]:
        new_lb = math.ceil(lb[j] - _TOL) if np.isfinite(lb[j]) else lb[j]
        new_ub = math.floor(ub[j] + _TOL) if np.isfinite(ub[j]) else ub[j]
        if new_lb > lb[j] + _TOL:
            lb[j] = new_lb
            changed += 1
        if new_ub < ub[j] - _TOL:
            ub[j] = new_ub
            changed += 1
    return changed


def _row_activity_bounds(row, lb, ub) -> tuple[float, float]:
    """(min, max) of ``row @ x`` over the box [lb, ub]."""
    pos = row > 0
    neg = row < 0
    lo = float(row[pos] @ lb[pos] + row[neg] @ ub[neg]) \
        if (pos.any() or neg.any()) else 0.0
    hi = float(row[pos] @ ub[pos] + row[neg] @ lb[neg]) \
        if (pos.any() or neg.any()) else 0.0
    return lo, hi


def presolve(sa: StandardArrays, max_passes: int = 5) -> PresolveResult:
    """Tighten bounds and drop redundant inequality rows.

    Only ``a_ub`` rows are processed (the STRL compiler emits equalities
    solely as per-leaf demand rows, which presolve must keep so indicator
    semantics survive).  The input is not mutated.
    """
    lb = sa.lb.copy()
    ub = sa.ub.copy()
    a_ub = sa.a_ub.copy()
    b_ub = sa.b_ub.copy()
    tightened = 0
    dropped = 0
    infeasible = False
    passes = 0

    tightened += _round_integer_bounds(lb, ub, sa.integrality)
    if np.any(lb > ub + _TOL):
        infeasible = True

    while not infeasible and passes < max_passes:
        passes += 1
        changed = False
        keep = np.ones(a_ub.shape[0], dtype=bool)
        for r in range(a_ub.shape[0]):
            if not keep[r]:
                continue
            row = a_ub[r]
            nz = np.nonzero(row)[0]
            if nz.size == 0:
                if b_ub[r] < -_TOL:
                    infeasible = True
                    break
                keep[r] = False
                dropped += 1
                changed = True
                continue
            if nz.size == 1:
                j = int(nz[0])
                coef = row[j]
                bound = b_ub[r] / coef
                if coef > 0:  # x <= bound
                    if bound < ub[j] - _TOL:
                        ub[j] = bound
                        tightened += 1
                        changed = True
                else:  # x >= bound
                    if bound > lb[j] + _TOL:
                        lb[j] = bound
                        tightened += 1
                        changed = True
                keep[r] = False
                dropped += 1
                continue
            lo, hi = _row_activity_bounds(row, lb, ub)
            if lo > b_ub[r] + 1e-7:
                infeasible = True
                break
            if hi <= b_ub[r] + _TOL:
                keep[r] = False
                dropped += 1
                changed = True
        if infeasible:
            break
        if not keep.all():
            a_ub = a_ub[keep]
            b_ub = b_ub[keep]
        tightened += _round_integer_bounds(lb, ub, sa.integrality)
        if np.any(lb > ub + _TOL):
            infeasible = True
        if not changed:
            break

    out = StandardArrays(
        c=sa.c, obj_constant=sa.obj_constant, obj_sign=sa.obj_sign,
        a_ub=a_ub, b_ub=b_ub, a_eq=sa.a_eq, b_eq=sa.b_eq,
        lb=lb, ub=ub, integrality=sa.integrality)
    return PresolveResult(arrays=out, infeasible=infeasible,
                          rows_dropped=dropped, bounds_tightened=tightened,
                          passes=passes)


def presolve_sparse(sp: SparseArrays,
                    max_passes: int = 5) -> SparsePresolveResult:
    """The same reductions as :func:`presolve`, driven off the CSR export.

    Row scans touch only stored nonzeros, so a pass is ``O(nnz)`` instead of
    ``O(rows x columns)`` — on scheduling MILPs (density well under 1 %) this
    is the difference between presolve being free and presolve rivaling the
    search itself.  Applies identical reductions in identical order, so the
    differential test in ``tests/solver/test_sparse.py`` can assert the two
    implementations agree row for row.
    """
    lb = sp.lb.copy()
    ub = sp.ub.copy()
    a_ub = sp.a_ub
    b_ub = sp.b_ub.copy()
    tightened = 0
    dropped = 0
    infeasible = False
    passes = 0

    tightened += _round_integer_bounds(lb, ub, sp.integrality)
    if np.any(lb > ub + _TOL):
        infeasible = True

    while not infeasible and passes < max_passes:
        passes += 1
        changed = False
        keep = np.ones(a_ub.shape[0], dtype=bool)
        for r in range(a_ub.shape[0]):
            cols, coefs = a_ub.row(r)
            # Entries may hold explicit zeros after cancellation; treat the
            # row by its structural nonzeros only, like the dense pass does.
            nz = coefs != 0.0
            cols, coefs = cols[nz], coefs[nz]
            if cols.size == 0:
                if b_ub[r] < -_TOL:
                    infeasible = True
                    break
                keep[r] = False
                dropped += 1
                changed = True
                continue
            if cols.size == 1:
                j = int(cols[0])
                coef = float(coefs[0])
                bound = b_ub[r] / coef
                if coef > 0:  # x <= bound
                    if bound < ub[j] - _TOL:
                        ub[j] = bound
                        tightened += 1
                        changed = True
                else:  # x >= bound
                    if bound > lb[j] + _TOL:
                        lb[j] = bound
                        tightened += 1
                        changed = True
                keep[r] = False
                dropped += 1
                continue
            pos = coefs > 0
            lo = float(coefs[pos] @ lb[cols[pos]]
                       + coefs[~pos] @ ub[cols[~pos]])
            hi = float(coefs[pos] @ ub[cols[pos]]
                       + coefs[~pos] @ lb[cols[~pos]])
            if lo > b_ub[r] + 1e-7:
                infeasible = True
                break
            if hi <= b_ub[r] + _TOL:
                keep[r] = False
                dropped += 1
                changed = True
        if infeasible:
            break
        if not keep.all():
            a_ub = a_ub.select_rows(keep)
            b_ub = b_ub[keep]
        tightened += _round_integer_bounds(lb, ub, sp.integrality)
        if np.any(lb > ub + _TOL):
            infeasible = True
        if not changed:
            break

    out = SparseArrays(
        c=sp.c, obj_constant=sp.obj_constant, obj_sign=sp.obj_sign,
        a_ub=a_ub, b_ub=b_ub, a_eq=sp.a_eq, b_eq=sp.b_eq,
        lb=lb, ub=ub, integrality=sp.integrality)
    return SparsePresolveResult(arrays=out, infeasible=infeasible,
                                rows_dropped=dropped,
                                bounds_tightened=tightened, passes=passes)
