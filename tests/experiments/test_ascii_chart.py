"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.experiments.ascii_chart import (ChartConfig, chart_sweep_metric,
                                           render_series)
from repro.experiments.sweeps import SweepResult


class TestRenderSeries:
    def test_basic_structure(self):
        text = render_series([0, 1, 2], {"a": [0.0, 5.0, 10.0]},
                             title="T", y_label="val")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "10.0" in lines[1]          # y max label on top row
        assert "a" in text                  # legend
        assert "y: val" in text

    def test_markers_distinct_per_series(self):
        text = render_series([0, 1], {"one": [1, 2], "two": [2, 1]})
        assert "o=one" in text and "x=two" in text

    def test_nan_points_skipped(self):
        text = render_series([0, 1, 2], {"a": [1.0, math.nan, 3.0]})
        assert "(no data)" not in text

    def test_all_nan_yields_no_data(self):
        text = render_series([0, 1], {"a": [math.nan, math.nan]},
                             title="X")
        assert "(no data)" in text

    def test_flat_series_does_not_crash(self):
        text = render_series([0, 1, 2], {"a": [5.0, 5.0, 5.0]})
        assert "o" in text

    def test_single_x_value(self):
        text = render_series([3], {"a": [7.0]})
        assert "o" in text

    def test_fixed_y_range(self):
        cfg = ChartConfig(y_min=0, y_max=100)
        text = render_series([0, 1], {"a": [40, 60]}, config=cfg)
        assert "100.0" in text and "0.0" in text

    def test_extreme_values_stay_in_grid(self):
        cfg = ChartConfig(height=5, width=20)
        text = render_series([0, 100], {"a": [1e6, -1e6]}, config=cfg)
        for line in text.splitlines():
            assert len(line) < 120


class TestChartSweep:
    def test_chart_from_sweep(self):
        sweep = SweepResult(x_label="err", x_values=[0, 10],
                            schedulers=["A", "B"])
        sweep.series[("A", "slo_total_pct")] = [50.0, 60.0]
        sweep.series[("B", "slo_total_pct")] = [40.0, 30.0]
        text = chart_sweep_metric(sweep, "slo_total_pct", title="chart")
        assert "o=A" in text and "x=B" in text
        assert text.startswith("chart")
