"""Rayon/CapacityScheduler baseline (the paper's comparison stack, Sec. 6.1).

Models mainline YARN's CapacityScheduler as configured in the paper:

* the Rayon **reservation system is enabled** — accepted SLO jobs are
  guaranteed their reserved capacity during their reservation window;
* **container preemption is enabled** — when a reserved job's window opens
  and the cluster lacks free nodes, running best-effort (and
  expired-reservation) jobs are killed to honor the guarantee;
* the scheduler is **heterogeneity-unaware** (containers are placed on
  arbitrary free nodes, so GPU/MPI jobs usually land on slow placements)
  and **deadline-blind** for anything in the best-effort queue;
* when a reservation window expires before the job completes (runtime
  under-estimation), the job is *demoted*: if it is still waiting it drops
  into the best-effort queue, and if it is running it loses its guarantee
  and becomes preemptible (Sec. 7.1's "transfer of accepted SLO jobs into
  the best-effort queue").

Preempted jobs lose all progress and re-enter the best-effort queue; this
reproduces the paper's "preemption that consumes time and resources".

The best-effort queue is FIFO with skip-ahead (a waiting wide gang does not
block narrower jobs behind it); YARN's per-container allocation would
otherwise hoard, which flatters TetriSched unfairly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.allocation import Allocation
from repro.errors import SchedulerError
from repro.reservation.rayon import RayonReservationSystem
from repro.sim.interface import CycleDecisions
from repro.sim.jobs import Job


@dataclass
class _RunningJob:
    job: Job
    nodes: frozenset[str]
    start_time: float
    #: Lost its reservation guarantee (expired window) -> preemptible.
    demoted: bool = False


class CapacityScheduler:
    """The Rayon/CS stack as a simulator-drivable scheduler."""

    def __init__(self, cluster: Cluster, rayon: RayonReservationSystem,
                 cycle_s: float = 4.0, preemption: bool = True,
                 name: str = "Rayon/CS") -> None:
        self.name = name
        self.cluster = cluster
        self.rayon = rayon
        self.cycle_s = cycle_s
        self.preemption = preemption
        self.state = ClusterState(cluster.node_names)
        self._reserved_queue: OrderedDict[str, Job] = OrderedDict()
        self._be_queue: OrderedDict[str, Job] = OrderedDict()
        self._running: dict[str, _RunningJob] = {}
        self.preemption_count = 0

    # -- ClusterScheduler interface ------------------------------------------
    def submit(self, job: Job, accepted: bool, now: float) -> None:
        if job.k > len(self.cluster):
            raise SchedulerError(
                f"job {job.job_id!r} wants {job.k} nodes; cluster has "
                f"{len(self.cluster)}")
        if accepted:
            self._reserved_queue[job.job_id] = job
        else:
            # SLO jobs without reservations and best-effort jobs mix blindly
            # in the best-effort queue; deadline information is lost here.
            self._be_queue[job.job_id] = job

    def job_finished(self, job_id: str, now: float) -> None:
        if job_id not in self._running:
            raise SchedulerError(f"job {job_id!r} is not running")
        del self._running[job_id]
        self.state.finish(job_id)

    @property
    def active_jobs(self) -> int:
        return (len(self._reserved_queue) + len(self._be_queue)
                + len(self._running))

    # -- scheduling cycle -------------------------------------------------------
    def cycle(self, now: float) -> CycleDecisions:
        decisions = CycleDecisions()
        self._demote_expired(now)
        self._serve_reserved_queue(now, decisions)
        self._serve_best_effort_queue(now, decisions)
        return decisions

    # -- internals -----------------------------------------------------------------
    def _window_of(self, job_id: str):
        return self.rayon.decision_of(job_id).window

    def _demote_expired(self, now: float) -> None:
        """Reservation windows that ended take their guarantees with them."""
        for job_id in list(self._reserved_queue):
            window = self._window_of(job_id)
            if now >= window.end_s - 1e-9:
                self._be_queue[job_id] = self._reserved_queue.pop(job_id)
        for run in self._running.values():
            if run.demoted or not self.rayon.is_accepted(run.job.job_id):
                continue
            window = self._window_of(run.job.job_id)
            if now >= window.end_s - 1e-9:
                run.demoted = True

    def _serve_reserved_queue(self, now: float,
                              decisions: CycleDecisions) -> None:
        """Launch reserved jobs whose window is open, preempting if needed."""
        ready = sorted(
            (job_id for job_id in self._reserved_queue
             if self._window_of(job_id).start_s <= now + 1e-9),
            key=lambda j: self._window_of(j).start_s)
        for job_id in ready:
            job = self._reserved_queue[job_id]
            free = self.state.free_nodes()
            if len(free) < job.k and self.preemption:
                self._preempt_for(job.k - len(free), decisions)
                free = self.state.free_nodes()
            if len(free) < job.k:
                continue  # guarantee cannot be honored yet
            del self._reserved_queue[job_id]
            self._launch(job, free, now, decisions)

    def _preempt_for(self, needed: int, decisions: CycleDecisions) -> None:
        """Kill preemptible jobs (youngest first) to free ``needed`` nodes."""
        victims = sorted(
            (run for run in self._running.values()
             if run.demoted or not self.rayon.is_accepted(run.job.job_id)),
            key=lambda r: -r.start_time)
        reclaimable = sum(len(v.nodes) for v in victims)
        if reclaimable < needed:
            return  # not enough even with preemption; don't kill in vain
        freed = 0
        for victim in victims:
            if freed >= needed:
                break
            job_id = victim.job.job_id
            del self._running[job_id]
            self.state.finish(job_id)
            # All progress is lost; the job re-queues as best effort.
            self._be_queue[job_id] = victim.job
            decisions.preempted.append(job_id)
            self.preemption_count += 1
            freed += len(victim.nodes)

    def _serve_best_effort_queue(self, now: float,
                                 decisions: CycleDecisions) -> None:
        for job_id in list(self._be_queue):
            job = self._be_queue[job_id]
            free = self.state.free_nodes()
            if len(free) < job.k:
                continue  # skip-ahead: try the next (possibly narrower) job
            del self._be_queue[job_id]
            self._launch(job, free, now, decisions)

    def _launch(self, job: Job, free: frozenset[str], now: float,
                decisions: CycleDecisions) -> None:
        # Heterogeneity-unaware: arbitrary (deterministic) node choice.
        nodes = frozenset(sorted(free)[:job.k])
        expected_end = now + job.estimated_runtime_s
        self.state.start(job.job_id, nodes, now, expected_end)
        run = _RunningJob(job, nodes, now)
        if self.rayon.is_accepted(job.job_id):
            window = self._window_of(job.job_id)
            run.demoted = now >= window.end_s - 1e-9
        else:
            run.demoted = True  # never had a guarantee
        self._running[job.job_id] = run
        decisions.allocations.append(
            Allocation(job.job_id, nodes, now, expected_end))
