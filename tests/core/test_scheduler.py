"""End-to-end tests of the TetriSched scheduler core (no simulator)."""

import pytest

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.strl import SpaceOption
from repro.valuefn import StepValue, best_effort_value


def make_cluster():
    # 2 racks x 2 nodes; rack r0 GPU-enabled (Fig. 1 topology).
    return Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)


def config(**kw):
    defaults = dict(quantum_s=10.0, cycle_s=10.0, plan_ahead_s=40.0,
                    backend="pure", rel_gap=1e-6, warm_start=True)
    defaults.update(kw)
    return TetriSchedConfig(**defaults)


def slo_request(cluster, job_id, k=2, dur=20, deadline=100, now=0.0,
                priority=PriorityClass.SLO_ACCEPTED):
    return JobRequest(
        job_id=job_id,
        options=(SpaceOption(cluster.node_names, k=k, duration_s=dur),),
        value_fn=StepValue(1000.0, deadline),
        priority=priority, submit_time=now, deadline=deadline)


def gpu_request(cluster, job_id, deadline=100.0):
    gpu = cluster.nodes_with_attr("gpu")
    return JobRequest(
        job_id=job_id,
        options=(SpaceOption(gpu, k=2, duration_s=20, label="gpu"),
                 SpaceOption(cluster.node_names, k=2, duration_s=30,
                             label="any")),
        value_fn=StepValue(1000.0, deadline),
        priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
        deadline=deadline)


class TestBasicCycle:
    def test_empty_cycle(self):
        sched = TetriSched(make_cluster(), config())
        result = sched.run_cycle(0.0)
        assert result.allocations == [] and result.culled == []

    def test_single_job_launches_now(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config())
        sched.submit(slo_request(cluster, "j1"))
        result = sched.run_cycle(0.0)
        assert len(result.allocations) == 1
        alloc = result.allocations[0]
        assert alloc.job_id == "j1"
        assert len(alloc.nodes) == 2
        assert alloc.expected_end == pytest.approx(20.0)
        assert sched.pending_count == 0
        assert sched.state.is_running("j1")

    def test_finish_frees_nodes(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config())
        sched.submit(slo_request(cluster, "j1"))
        sched.run_cycle(0.0)
        freed = sched.on_job_finished("j1", 20.0)
        assert len(freed) == 2
        assert not sched.state.is_running("j1")

    def test_deferred_job_stays_pending(self):
        cluster = make_cluster()  # 4 nodes
        sched = TetriSched(cluster, config())
        sched.submit(slo_request(cluster, "big", k=4, dur=20, deadline=200))
        sched.submit(slo_request(cluster, "later", k=4, dur=20, deadline=200))
        result = sched.run_cycle(0.0)
        # Both want all 4 nodes; only one can start now.
        assert len(result.allocations) == 1
        assert sched.pending_count == 1

    def test_culled_job_reported(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config())
        # Deadline impossible: needs 20s but deadline at t=5.
        sched.submit(slo_request(cluster, "dead", dur=20, deadline=5))
        result = sched.run_cycle(0.0)
        assert result.culled == ["dead"]
        assert sched.pending_count == 0

    def test_cycle_stats_recorded(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config())
        sched.submit(slo_request(cluster, "j1"))
        result = sched.run_cycle(0.0)
        stats = result.stats
        assert stats.launched == 1
        assert stats.milp_variables > 0
        assert stats.cycle_latency_s >= stats.solver_latency_s >= 0
        assert sched.cycle_history == [stats]


class TestHeterogeneity:
    def test_gpu_job_gets_gpu_nodes(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config())
        sched.submit(gpu_request(cluster, "g1"))
        result = sched.run_cycle(0.0)
        [alloc] = result.allocations
        assert alloc.nodes == cluster.nodes_with_attr("gpu")
        assert alloc.expected_end == pytest.approx(20.0)  # fast duration

    def test_nh_mode_ignores_preferences(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config(heterogeneity_aware=False))
        sched.submit(gpu_request(cluster, "g1"))
        result = sched.run_cycle(0.0)
        [alloc] = result.allocations
        # Conservative (slow) estimate: 30s, and any 2 nodes can be used.
        assert alloc.expected_end == pytest.approx(30.0)

    def test_gpu_job_waits_for_gpu_with_planahead(self):
        """Plan-ahead defers the GPU job instead of degrading placement,
        when waiting still beats the slow fallback."""
        cluster = make_cluster()
        sched = TetriSched(cluster, config(plan_ahead_s=40))
        gpu = cluster.nodes_with_attr("gpu")
        sched.state.start("holder", gpu, 0.0, 10.0)  # GPUs free at t=10
        req = JobRequest(
            "g1",
            options=(SpaceOption(gpu, k=2, duration_s=10, label="gpu"),
                     SpaceOption(cluster.node_names, k=2, duration_s=40,
                                 label="any")),
            value_fn=StepValue(1000.0, 35.0),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
            deadline=35.0)
        sched.submit(req)
        result = sched.run_cycle(0.0)
        # Fallback cannot meet the deadline (40s > 35); GPU start at t=10
        # completes at 20 -> job is deferred, not launched or culled.
        assert result.allocations == [] and result.culled == []
        assert sched.pending_count == 1
        # Next cycle, GPUs are free: launch there.
        sched.state.finish("holder")
        result = sched.run_cycle(10.0)
        [alloc] = result.allocations
        assert alloc.nodes == gpu

    def test_np_mode_cannot_defer(self):
        """plan_ahead=0 (alsched): same scenario launches nothing and the
        SLO job is culled once its deadline can no longer be met."""
        cluster = make_cluster()
        sched = TetriSched(cluster, config(plan_ahead_s=0))
        gpu = cluster.nodes_with_attr("gpu")
        sched.state.start("holder", gpu, 0.0, 10.0)
        req = JobRequest(
            "g1",
            options=(SpaceOption(gpu, k=2, duration_s=10, label="gpu"),
                     SpaceOption(cluster.node_names, k=2, duration_s=40,
                                 label="any")),
            value_fn=StepValue(1000.0, 35.0),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
            deadline=35.0)
        sched.submit(req)
        result = sched.run_cycle(0.0)
        # Only start=0 exists; GPU option conflicts with the holder, and the
        # fallback misses the deadline -> nothing schedulable *now*.
        assert result.allocations == []


class TestGlobalVsGreedy:
    def setup_jobs(self, cluster):
        """Paper Sec. 5.1-style conflict: greedy order wastes capacity."""
        j1 = slo_request(cluster, "short-urgent", k=2, dur=10, deadline=10)
        j2 = slo_request(cluster, "long-small", k=1, dur=20, deadline=40)
        j3 = slo_request(cluster, "short-large", k=4, dur=10, deadline=20)
        return [j1, j2, j3]

    def test_global_meets_all_deadlines(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config(plan_ahead_s=40))
        for req in self.setup_jobs(cluster):
            sched.submit(req)
        result = sched.run_cycle(0.0)
        launched = {a.job_id for a in result.allocations}
        assert launched == {"short-urgent"}  # j3 deferred to t=10, j2 to t=20
        assert sched.pending_count == 2
        assert result.culled == []

    def test_greedy_mode_runs(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config(global_scheduling=False))
        for req in self.setup_jobs(cluster):
            sched.submit(req)
        result = sched.run_cycle(0.0)
        assert len(result.allocations) >= 1
        stats = result.stats
        assert stats.solves == 3  # one MILP per job

    def test_greedy_respects_priority_order(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config(global_scheduling=False))
        # BE job submitted first, SLO job second; SLO must win the nodes.
        be = JobRequest(
            "be", options=(SpaceOption(cluster.node_names, 4, 10.0),),
            value_fn=best_effort_value(0.0),
            priority=PriorityClass.BEST_EFFORT, submit_time=0.0)
        slo = slo_request(cluster, "slo", k=4, dur=10, deadline=15)
        sched.submit(be)
        sched.submit(slo)
        result = sched.run_cycle(0.0)
        launched = {a.job_id for a in result.allocations}
        assert "slo" in launched


class TestWarmStart:
    def test_second_cycle_with_warm_start_matches_cold(self):
        cluster = make_cluster()
        warm = TetriSched(cluster, config(warm_start=True))
        cold = TetriSched(cluster, config(warm_start=False))
        for sched in (warm, cold):
            sched.submit(slo_request(cluster, "a", k=4, dur=20, deadline=200))
            sched.submit(slo_request(cluster, "b", k=4, dur=20, deadline=200))
            r0 = sched.run_cycle(0.0)
            assert len(r0.allocations) == 1
            r1 = sched.run_cycle(10.0)
        assert warm.pending_count == cold.pending_count

    def test_warm_start_vector_is_feasible(self):
        cluster = make_cluster()
        sched = TetriSched(cluster, config(warm_start=True, plan_ahead_s=40))
        sched.submit(slo_request(cluster, "a", k=4, dur=20, deadline=200))
        sched.submit(slo_request(cluster, "b", k=4, dur=20, deadline=200))
        sched.run_cycle(0.0)
        # Build the next cycle's compilation by hand and ask for the seed.
        from repro.core.compiler import StrlCompiler
        exprs = []
        for job_id, req in sched.queues.items():
            expr = sched._generate(req, 10.0)
            exprs.append((job_id, expr))
        compiled = StrlCompiler(sched.state, 10.0, 10.0).compile(exprs)
        x = sched._build_warm_start(compiled, 10.0)
        assert x is not None
        assert compiled.model.check_feasible(x)
