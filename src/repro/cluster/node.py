"""Cluster node model: names, racks, and static attributes.

Static heterogeneity (Sec. 2.2) is modeled with attribute tags on nodes
("gpu", "ssd", ...).  Rack membership drives combinatorial constraints such
as MPI rack-locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClusterError


@dataclass(frozen=True)
class Node:
    """A single schedulable machine.

    Attributes
    ----------
    name:
        Unique identifier ("r0n3").
    rack:
        Name of the rack the node belongs to ("r0").
    attrs:
        Static attribute tags, e.g. ``frozenset({"gpu"})``.
    """

    name: str
    rack: str
    attrs: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterError("node name must be non-empty")
        if not self.rack:
            raise ClusterError(f"node {self.name!r}: rack must be non-empty")
        if not isinstance(self.attrs, frozenset):
            raise ClusterError(f"node {self.name!r}: attrs must be a frozenset")

    def has_attr(self, attr: str) -> bool:
        return attr in self.attrs
