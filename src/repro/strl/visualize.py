"""Visualization of STRL expressions as text.

Two views:

* :func:`ascii_tree` — the operator tree with one node per line
  (box-drawing connectors), annotated with values and shapes;
* :func:`spacetime_grid` — every leaf as a row of time slots, Fig. 1-style:
  which quanta each placement option would occupy, how many nodes it takes,
  and from which equivalence set.

Both are pure functions over the immutable AST; used by ``examples/`` and
handy in a REPL when debugging generated expressions.
"""

from __future__ import annotations

from repro.errors import StrlError
from repro.strl.ast import (Barrier, ElasticNCk, LnCk, Max, Min, NCk, Scale,
                            StrlNode, Sum)


def _leaf_label(leaf: NCk | LnCk) -> str:
    kind = "nCk" if isinstance(leaf, NCk) else "LnCk"
    names = sorted(leaf.nodes)
    shown = ",".join(names[:3]) + (",…" if len(names) > 3 else "")
    return (f"{kind} k={leaf.k} of {{{shown}}} "
            f"@t{leaf.start}+{leaf.duration} v={leaf.value:g}")


def _node_label(node: StrlNode) -> str:
    if isinstance(node, (NCk, LnCk)):
        return _leaf_label(node)
    if isinstance(node, ElasticNCk):
        return (f"elastic w∈[{node.min_width},{node.max_width}] "
                f"@t{node.start} v≤{node.max_value():g}")
    if isinstance(node, Max):
        return f"max (choose ≤1 of {len(node.subexprs)})"
    if isinstance(node, Min):
        return f"min (all of {len(node.subexprs)})"
    if isinstance(node, Sum):
        return f"sum ({len(node.subexprs)} jobs/parts)"
    if isinstance(node, Scale):
        return f"scale ×{node.factor:g}"
    if isinstance(node, Barrier):
        return f"barrier ≥{node.threshold:g}"
    raise StrlError(f"cannot visualize {node!r}")


def ascii_tree(expr: StrlNode) -> str:
    """Render the expression tree with box-drawing connectors."""
    lines: list[str] = []

    def walk(node: StrlNode, prefix: str, connector: str,
             child_prefix: str) -> None:
        lines.append(prefix + connector + _node_label(node))
        children = node.children()
        for i, child in enumerate(children):
            last = i == len(children) - 1
            walk(child,
                 child_prefix,
                 "└─ " if last else "├─ ",
                 child_prefix + ("   " if last else "│  "))

    walk(expr, "", "", "")
    return "\n".join(lines)


def spacetime_grid(expr: StrlNode, horizon: int | None = None) -> str:
    """Render every leaf's space-time footprint, one row per leaf.

    Columns are time quanta; a cell shows ``#`` while the option holds its
    nodes and ``.`` otherwise; the row label names the equivalence set and
    gang size.  This is the textual cousin of the paper's Fig. 1 grids.
    """
    leaves = list(expr.leaves())
    if not leaves:
        return "(no leaves)"
    h = horizon if horizon is not None else expr.horizon()
    h = max(h, 1)
    label_parts = []
    for leaf in leaves:
        names = sorted(leaf.nodes)
        shown = ",".join(names[:2]) + ("…" if len(names) > 2 else "")
        label_parts.append(f"k={leaf.k} of {{{shown}}} v={leaf.value:g}")
    width = max(len(p) for p in label_parts)
    lines = [f"{'':<{width}}  t: " + "".join(f"{t % 10}" for t in range(h))]
    for leaf, label in zip(leaves, label_parts):
        cells = ["#" if leaf.start <= t < leaf.start + leaf.duration else "."
                 for t in range(h)]
        lines.append(f"{label:<{width}}     " + "".join(cells))
    return "\n".join(lines)
