"""Priority-ordered FIFO queues for greedy scheduling (TetriSched-NG).

The greedy policy "organizes pending jobs in 3 FIFO queues in priority
order: top priority queue with accepted SLO jobs, medium-priority with SLO
jobs without a reservation, and low-priority with best-effort jobs"
(Sec. 6.3).  Each cycle it drains jobs one at a time in queue-priority order.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Iterator, TypeVar

from repro.errors import SchedulerError


class PriorityClass(enum.IntEnum):
    """Job priority classes, lowest value = highest priority."""

    SLO_ACCEPTED = 0
    SLO_NO_RESERVATION = 1
    BEST_EFFORT = 2


T = TypeVar("T")


class PriorityQueues:
    """Three FIFO queues keyed by :class:`PriorityClass`.

    Insertion order within a class is preserved (FIFO); iteration yields all
    entries in (priority, insertion) order.  Entries are keyed by job id for
    O(1) removal when a job launches or is culled.
    """

    def __init__(self) -> None:
        self._queues: dict[PriorityClass, OrderedDict[str, T]] = {
            pc: OrderedDict() for pc in PriorityClass}
        self._where: dict[str, PriorityClass] = {}

    def push(self, job_id: str, priority: PriorityClass, item: T) -> None:
        if job_id in self._where:
            raise SchedulerError(f"job {job_id!r} already queued")
        self._queues[priority][job_id] = item
        self._where[job_id] = priority

    def remove(self, job_id: str) -> T:
        priority = self._where.pop(job_id, None)
        if priority is None:
            raise SchedulerError(f"job {job_id!r} is not queued")
        return self._queues[priority].pop(job_id)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._where

    def __len__(self) -> int:
        return len(self._where)

    def items(self) -> Iterator[tuple[str, T]]:
        """All (job_id, item) pairs in priority-then-FIFO order."""
        for pc in PriorityClass:
            yield from self._queues[pc].items()

    def job_ids(self) -> list[str]:
        return [job_id for job_id, _ in self.items()]

    def counts(self) -> dict[PriorityClass, int]:
        return {pc: len(q) for pc, q in self._queues.items()}
