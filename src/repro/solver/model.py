"""MILP model container.

A :class:`Model` owns decision variables, linear constraints, and a single
linear objective.  It is solver-agnostic: backends (pure-Python simplex +
branch-and-bound, or scipy/HiGHS) consume the model through its sparse
CSR-triplet export, :meth:`Model.to_sparse_arrays`.  The dense export,
:meth:`Model.to_standard_arrays`, is retained as the *test oracle*: it is
built independently of the sparse path, and the equivalence suite
(``tests/solver/test_sparse.py``) asserts both describe the same constraint
system.

Scheduling MILPs are extremely sparse — a supply row touches only the
partition variables of leaves alive in one time slice — so the dense
``O(vars x constraints)`` materialization used to dominate cycle time as
the plan-ahead window grew (Fig. 12 regimes).  The CSR export is
``O(nonzeros)`` and is cached on the model (invalidated by any mutation),
so the pipeline's ModelBuild stage and the solver share one export.

This mirrors the paper's architecture where "the internal MILP model can be
translated to any MILP backend" (Sec. 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ModelError
from repro.solver.expr import (BINARY, CONTINUOUS, INTEGER, ExprLike, LinExpr,
                               Variable, as_expr)

#: Constraint senses.
LE = "<="
GE = ">="
EQ = "=="
_SENSES = (LE, GE, EQ)

#: Objective senses.
MAXIMIZE = "maximize"
MINIMIZE = "minimize"


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr (sense) rhs``.

    The stored ``expr`` has its constant folded into ``rhs`` so that
    ``expr.constant == 0`` always holds.
    """

    name: str
    expr: LinExpr
    sense: str
    rhs: float

    def violation(self, x: np.ndarray) -> float:
        """How far a point ``x`` (dense column vector) violates the constraint.

        Returns 0.0 when satisfied; positive magnitude otherwise.
        """
        lhs = sum(c * x[i] for i, c in self.expr.coeffs.items()) + self.expr.constant
        if self.sense == LE:
            return max(0.0, lhs - self.rhs)
        if self.sense == GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)


@dataclass
class StandardArrays:
    """Dense-array export of a model, in *minimization* orientation.

    Attributes
    ----------
    c:
        Objective coefficients (minimize ``c @ x``).
    obj_constant:
        Constant term dropped from the objective (add back to solver value).
    obj_sign:
        +1 if the model was already minimizing, -1 if it was maximizing
        (so ``model objective = obj_sign * (c @ x) + obj_constant`` ... see
        :meth:`Model.objective_value`).
    a_ub, b_ub:
        Inequality rows ``a_ub @ x <= b_ub`` (GE rows are negated into LE).
    a_eq, b_eq:
        Equality rows.
    lb, ub:
        Per-variable bounds, ``np.inf`` / ``-np.inf`` where unbounded.
    integrality:
        Boolean mask, True where the variable must be integral.
    """

    c: np.ndarray
    obj_constant: float
    obj_sign: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray


@dataclass(frozen=True)
class SparseMatrix:
    """A read-only CSR matrix: row ``r`` holds ``indices[indptr[r]:indptr[r+1]]``.

    Plain numpy triplets rather than ``scipy.sparse`` so the pure backend has
    no scipy dependency; :meth:`to_scipy` bridges when scipy is present.
    """

    shape: tuple[int, int]
    indptr: np.ndarray   # int64, len rows + 1
    indices: np.ndarray  # int64, len nnz (column ids)
    data: np.ndarray     # float64, len nnz

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def row(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, coefficients) of row ``r`` — views, not copies."""
        lo, hi = self.indptr[r], self.indptr[r + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.shape[0]),
                         np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def to_scipy(self):
        """As a ``scipy.sparse.csr_matrix`` (scipy backends only)."""
        from scipy.sparse import csr_matrix
        return csr_matrix((self.data, self.indices, self.indptr),
                          shape=self.shape)

    def select_rows(self, keep: np.ndarray) -> "SparseMatrix":
        """A new matrix with only the rows where ``keep`` is True."""
        counts = np.diff(self.indptr)
        mask = np.repeat(keep, counts)
        new_counts = counts[keep]
        indptr = np.concatenate([[0], np.cumsum(new_counts)])
        return SparseMatrix((int(keep.sum()), self.shape[1]),
                            indptr.astype(np.int64),
                            self.indices[mask], self.data[mask])

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Row activities ``A @ x`` without densifying (``O(nonzeros)``).

        Empty rows (possible: constant constraints keep a row with no
        stored coefficients) contribute an activity of exactly 0.0.
        """
        rows = self.shape[0]
        if self.nnz == 0:
            return np.zeros(rows)
        prod = self.data * x[self.indices]
        row_ids = np.repeat(np.arange(rows), np.diff(self.indptr))
        return np.bincount(row_ids, weights=prod, minlength=rows)


def _rows_to_csr(rows: list[tuple[dict, float]], n: int,
                 scale: list[float]) -> tuple[SparseMatrix, np.ndarray]:
    """Pack ``[(coeffs, rhs), ...]`` (with per-row sign) into CSR + rhs."""
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    idx: list[int] = []
    dat: list[float] = []
    b = np.zeros(len(rows))
    for r, ((coeffs, rhs), s) in enumerate(zip(rows, scale)):
        indptr[r + 1] = indptr[r] + len(coeffs)
        idx.extend(coeffs.keys())
        dat.extend(s * v for v in coeffs.values())
        b[r] = s * rhs
    indices = np.asarray(idx, dtype=np.int64) if idx else np.zeros(0, np.int64)
    data = np.asarray(dat, dtype=float) if dat else np.zeros(0)
    return SparseMatrix((len(rows), n), indptr, indices, data), b


@dataclass
class SparseArrays:
    """Sparse export of a model, minimization orientation (CSR constraints).

    Field semantics match :class:`StandardArrays` exactly; only the matrix
    representation differs.  :meth:`to_standard` densifies — backends use it
    at their dense-algorithm boundary (the pure simplex), tests use it to
    cross-check against the independent dense export.
    """

    c: np.ndarray
    obj_constant: float
    obj_sign: float
    a_ub: SparseMatrix
    b_ub: np.ndarray
    a_eq: SparseMatrix
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray

    @property
    def nnz(self) -> int:
        return self.a_ub.nnz + self.a_eq.nnz

    def to_standard(self) -> StandardArrays:
        """Densify into a :class:`StandardArrays` (same row/column order)."""
        return StandardArrays(
            c=self.c, obj_constant=self.obj_constant, obj_sign=self.obj_sign,
            a_ub=self.a_ub.to_dense(), b_ub=self.b_ub,
            a_eq=self.a_eq.to_dense(), b_eq=self.b_eq,
            lb=self.lb, ub=self.ub, integrality=self.integrality)


class Model:
    """A mixed integer linear program.

    Example
    -------
    >>> m = Model("knapsack")
    >>> x = [m.add_binary(f"x{i}") for i in range(3)]
    >>> _ = m.add_constraint(2*x[0] + 3*x[1] + 4*x[2], "<=", 5, name="cap")
    >>> m.set_objective(3*x[0] + 4*x[1] + 5*x[2], sense="maximize")
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.objective_sense: str = MAXIMIZE
        self._names: set[str] = set()
        self._sparse_cache: SparseArrays | None = None

    # -- variables ---------------------------------------------------------
    def _add_var(self, name: str, lb, ub, domain: str) -> Variable:
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        var = Variable(name, len(self.variables), lb, ub, domain)
        self.variables.append(var)
        self._names.add(name)
        self._sparse_cache = None
        return var

    def add_continuous(self, name: str, lb: float | None = 0.0,
                       ub: float | None = None) -> Variable:
        """Add a continuous variable (default domain ``[0, +inf)``)."""
        return self._add_var(name, lb, ub, CONTINUOUS)

    def add_integer(self, name: str, lb: float = 0.0,
                    ub: float | None = None) -> Variable:
        """Add a general integer variable (default domain ``{0,1,2,...}``)."""
        return self._add_var(name, lb, ub, INTEGER)

    def add_binary(self, name: str) -> Variable:
        """Add a 0/1 variable."""
        return self._add_var(name, 0.0, 1.0, BINARY)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self.variables if v.is_integral)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # -- constraints ---------------------------------------------------------
    def add_constraint(self, lhs: ExprLike, sense: str, rhs: ExprLike,
                       name: str | None = None) -> Constraint:
        """Add ``lhs (sense) rhs``; either side may contain variables.

        The constraint is normalized so all variables live on the left and
        the right-hand side is a plain number.
        """
        if sense not in _SENSES:
            raise ModelError(f"unknown constraint sense {sense!r}")
        expr = as_expr(lhs) - as_expr(rhs)
        rhs_value = -expr.constant
        expr = LinExpr(expr.coeffs, 0.0)
        if not expr.coeffs:
            # Constant constraint: check it immediately, keep models clean.
            ok = {LE: 0.0 <= rhs_value, GE: 0.0 >= rhs_value,
                  EQ: rhs_value == 0.0}[sense]
            if not ok:
                raise ModelError(
                    f"constraint {name or ''} is constant and unsatisfiable: "
                    f"0 {sense} {rhs_value}")
        if name is None:
            name = f"c{len(self.constraints)}"
        con = Constraint(name, expr, sense, float(rhs_value))
        self.constraints.append(con)
        self._sparse_cache = None
        return con

    def adopt_variables(self, variables: list[Variable]) -> None:
        """Append pre-built :class:`Variable` objects (delta assembly).

        The variables must already carry the dense indices they will occupy
        (``len(self.variables)``, ``+1``, ...) — the cross-cycle assembler
        materializes whole job fragments at a column offset and hands the
        finished objects over, skipping per-variable construction.
        """
        base = len(self.variables)
        for k, var in enumerate(variables):
            if var.index != base + k:
                raise ModelError(
                    f"adopted variable {var.name!r} carries index "
                    f"{var.index}, expected {base + k}")
            if var.name in self._names:
                raise ModelError(f"duplicate variable name {var.name!r}")
            self._names.add(var.name)
        self.variables.extend(variables)
        self._sparse_cache = None

    def adopt_constraints(self, constraints: list[Constraint]) -> None:
        """Append pre-normalized :class:`Constraint` objects (delta assembly).

        Bypasses :meth:`add_constraint`'s expression normalization; callers
        guarantee each constraint's ``expr.constant`` is 0 and its sense is
        valid, which holds for anything that came out of a compiled fragment
        or was built directly in normalized form.
        """
        self.constraints.extend(constraints)
        self._sparse_cache = None

    # -- objective -----------------------------------------------------------
    def set_objective(self, expr: ExprLike, sense: str = MAXIMIZE) -> None:
        if sense not in (MAXIMIZE, MINIMIZE):
            raise ModelError(f"unknown objective sense {sense!r}")
        self.objective = as_expr(expr).copy()
        self.objective_sense = sense
        self._sparse_cache = None

    def objective_value(self, x: np.ndarray) -> float:
        """Evaluate the model objective (in its own sense) at point ``x``."""
        return (sum(c * x[i] for i, c in self.objective.coeffs.items())
                + self.objective.constant)

    # -- export ----------------------------------------------------------------
    def to_sparse_arrays(self) -> SparseArrays:
        """Export CSR triplets in minimization orientation (``O(nonzeros)``).

        This is the export backends consume; row and column order matches
        :meth:`to_standard_arrays` exactly (inequality rows in constraint
        order with GE rows negated into LE, then equality rows).  The result
        is cached until the model is mutated, so the pipeline's ModelBuild
        stage and the solve share one export.
        """
        if self._sparse_cache is not None:
            return self._sparse_cache
        n = self.num_variables
        c = np.zeros(n)
        for i, coef in self.objective.coeffs.items():
            c[i] = coef
        obj_sign = 1.0
        if self.objective_sense == MAXIMIZE:
            c = -c
            obj_sign = -1.0

        ub_rows: list[tuple[dict, float]] = []
        ub_scale: list[float] = []
        eq_rows: list[tuple[dict, float]] = []
        for con in self.constraints:
            if con.sense == LE:
                ub_rows.append((con.expr.coeffs, con.rhs))
                ub_scale.append(1.0)
            elif con.sense == GE:
                ub_rows.append((con.expr.coeffs, con.rhs))
                ub_scale.append(-1.0)
            else:
                eq_rows.append((con.expr.coeffs, con.rhs))
        a_ub, b_ub = _rows_to_csr(ub_rows, n, ub_scale)
        a_eq, b_eq = _rows_to_csr(eq_rows, n, [1.0] * len(eq_rows))
        lb = np.array([v.lb if v.lb is not None else -np.inf
                       for v in self.variables])
        ub = np.array([v.ub if v.ub is not None else np.inf
                       for v in self.variables])
        integrality = np.array([v.is_integral for v in self.variables],
                               dtype=bool)
        self._sparse_cache = SparseArrays(
            c=c, obj_constant=self.objective.constant, obj_sign=obj_sign,
            a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            lb=lb, ub=ub, integrality=integrality)
        return self._sparse_cache

    def install_sparse_arrays(self, arrays: SparseArrays) -> None:
        """Install an externally assembled CSR export as the cached one.

        The cross-cycle delta assembler builds the export by offsetting and
        concatenating per-fragment CSR blocks — ``O(nonzeros)`` in numpy
        instead of re-walking every constraint dict.  The arrays must
        describe this model exactly (``delta_mode=verify`` recomputes the
        canonical export and asserts bit-equality); only cheap shape checks
        run here.
        """
        rows = arrays.a_ub.shape[0] + arrays.a_eq.shape[0]
        if arrays.c.shape[0] != self.num_variables:
            raise ModelError(
                f"installed arrays cover {arrays.c.shape[0]} columns, "
                f"model has {self.num_variables}")
        if rows != self.num_constraints:
            raise ModelError(
                f"installed arrays cover {rows} rows, "
                f"model has {self.num_constraints} constraints")
        self._sparse_cache = arrays

    def to_standard_arrays(self) -> StandardArrays:
        """Export dense arrays in minimization orientation.

        Deliberately independent of :meth:`to_sparse_arrays` so it can serve
        as the test oracle for the sparse path; production backends consume
        the sparse export.
        """
        n = self.num_variables
        c = np.zeros(n)
        for i, coef in self.objective.coeffs.items():
            c[i] = coef
        obj_sign = 1.0
        if self.objective_sense == MAXIMIZE:
            c = -c
            obj_sign = -1.0

        ub_rows: list[tuple[LinExpr, float]] = []
        eq_rows: list[tuple[LinExpr, float]] = []
        for con in self.constraints:
            if con.sense == LE:
                ub_rows.append((con.expr, con.rhs))
            elif con.sense == GE:
                ub_rows.append((con.expr * -1.0, -con.rhs))
            else:
                eq_rows.append((con.expr, con.rhs))

        def to_matrix(rows: list[tuple[LinExpr, float]]) -> tuple[np.ndarray, np.ndarray]:
            a = np.zeros((len(rows), n))
            b = np.zeros(len(rows))
            for r, (expr, rhs) in enumerate(rows):
                for i, coef in expr.coeffs.items():
                    a[r, i] = coef
                b[r] = rhs
            return a, b

        a_ub, b_ub = to_matrix(ub_rows)
        a_eq, b_eq = to_matrix(eq_rows)
        lb = np.array([v.lb if v.lb is not None else -np.inf for v in self.variables])
        ub = np.array([v.ub if v.ub is not None else np.inf for v in self.variables])
        integrality = np.array([v.is_integral for v in self.variables], dtype=bool)
        return StandardArrays(c=c, obj_constant=self.objective.constant,
                              obj_sign=obj_sign, a_ub=a_ub, b_ub=b_ub,
                              a_eq=a_eq, b_eq=b_eq, lb=lb, ub=ub,
                              integrality=integrality)

    # -- diagnostics -------------------------------------------------------------
    def check_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """True if ``x`` satisfies all constraints, bounds and integrality.

        When the sparse export is already cached (the common case inside a
        scheduling cycle: ModelBuild forces it before the warm-start check),
        the test is fully vectorized — two masked comparisons over the bound
        arrays and one :meth:`SparseMatrix.matvec` per constraint block —
        instead of a Python loop over every variable and constraint.
        """
        sa = self._sparse_cache
        if sa is not None:
            xv = np.asarray(x, dtype=float)
            lb_ok = np.all(xv >= sa.lb - tol)
            ub_ok = np.all(xv <= sa.ub + tol)
            if not (lb_ok and ub_ok):
                return False
            xi = xv[sa.integrality]
            if xi.size and np.max(np.abs(xi - np.round(xi))) > tol:
                return False
            # GE rows are negated into LE in the export, so one-sided and
            # two-sided checks below cover all three senses.
            if np.any(sa.a_ub.matvec(xv) > sa.b_ub + tol):
                return False
            return not np.any(np.abs(sa.a_eq.matvec(xv) - sa.b_eq) > tol)
        for v in self.variables:
            if v.lb is not None and x[v.index] < v.lb - tol:
                return False
            if v.ub is not None and x[v.index] > v.ub + tol:
                return False
            if v.is_integral and abs(x[v.index] - round(x[v.index])) > tol:
                return False
        return all(con.violation(x) <= tol for con in self.constraints)

    def iter_integral_indices(self) -> Iterator[int]:
        for v in self.variables:
            if v.is_integral:
                yield v.index

    def stats(self) -> dict[str, int]:
        """Size summary used by the scalability experiments (Fig. 12)."""
        return {
            "variables": self.num_variables,
            "integer_variables": self.num_integer_variables,
            "binary_variables": sum(1 for v in self.variables if v.domain == BINARY),
            "constraints": self.num_constraints,
            "nonzeros": sum(len(c.expr.coeffs) for c in self.constraints),
        }

    def to_lp_string(self) -> str:
        """Render the model in (a readable subset of) CPLEX LP format.

        For debugging and archiving; parseable by most LP tools.  Variable
        names are sanitized to alphanumerics/underscores.
        """
        def vname(i: int) -> str:
            raw = self.variables[i].name
            return "".join(ch if ch.isalnum() else "_" for ch in raw)

        def render(expr: LinExpr) -> str:
            parts = []
            for i, coef in sorted(expr.coeffs.items()):
                sign = "+" if coef >= 0 else "-"
                parts.append(f"{sign} {abs(coef):g} {vname(i)}")
            text = " ".join(parts) if parts else "0"
            return text.lstrip("+ ").strip() or "0"

        lines = [f"\\ Model: {self.name}"]
        lines.append("Maximize" if self.objective_sense == MAXIMIZE
                     else "Minimize")
        lines.append(f" obj: {render(self.objective)}")
        lines.append("Subject To")
        sense_map = {LE: "<=", GE: ">=", EQ: "="}
        for con in self.constraints:
            lines.append(f" {con.name}: {render(con.expr)} "
                         f"{sense_map[con.sense]} {con.rhs:g}")
        lines.append("Bounds")
        for v in self.variables:
            lo = "-inf" if v.lb is None else f"{v.lb:g}"
            hi = "+inf" if v.ub is None else f"{v.ub:g}"
            lines.append(f" {lo} <= {vname(v.index)} <= {hi}")
        integral = [vname(v.index) for v in self.variables
                    if v.domain == INTEGER]
        binary = [vname(v.index) for v in self.variables
                  if v.domain == BINARY]
        if integral:
            lines.append("Generals")
            lines.append(" " + " ".join(integral))
        if binary:
            lines.append("Binaries")
            lines.append(" " + " ".join(binary))
        lines.append("End")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Model({self.name!r}, vars={self.num_variables}, "
                f"cons={self.num_constraints}, sense={self.objective_sense})")
