"""Dynamic minimal partitioning of the cluster (Sec. 4.2, TR Appendix A).

Equivalence sets let jobs say "any k of these nodes" without enumerating the
``n choose k`` tuples.  The MILP only needs one integer *partition variable*
per (leaf, partition) pair, so the number of partitions directly controls
MILP size.  The paper's most important scalability optimization is
"dynamically partitioning cluster resources at the beginning of each cycle to
minimize the number of partition variables" (Sec. 7.3).

Given the set of equivalence sets referenced by the current batch, the
minimal partitioning groups nodes by their *membership signature* — which of
the equivalence sets each node belongs to.  Nodes with identical signatures
are interchangeable for every pending job and can share a partition.

Example: batch references {GPU nodes} and {rack r0}.  With GPUs on rack r0
only, the partitions are {gpu∩r0}, {r0 \\ gpu}, {rest}; every referenced
equivalence set is an exact union of partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ClusterError


@dataclass(frozen=True)
class Partition:
    """A maximal group of nodes indistinguishable to the current batch."""

    pid: int
    nodes: frozenset[str]

    @property
    def capacity(self) -> int:
        return len(self.nodes)


class Partitioning:
    """Minimal partitioning induced by a family of equivalence sets.

    Parameters
    ----------
    universe:
        All node names in the cluster.
    equivalence_sets:
        The distinct equivalence sets referenced by the batch.  Sets must be
        subsets of ``universe``.

    Notes
    -----
    Nodes not referenced by any equivalence set share one "unreferenced"
    partition, which no leaf can draw from this cycle; it still exists so
    that capacity accounting covers the whole cluster.
    """

    def __init__(self, universe: frozenset[str],
                 equivalence_sets: Iterable[frozenset[str]]) -> None:
        eq_sets = []
        seen: set[frozenset[str]] = set()
        for es in equivalence_sets:
            if not es <= universe:
                raise ClusterError(
                    f"equivalence set has nodes outside the cluster: "
                    f"{sorted(es - universe)[:5]}")
            if es not in seen:
                seen.add(es)
                eq_sets.append(es)
        self.universe = universe
        self.equivalence_sets = eq_sets

        # Group nodes by membership signature.
        signature_groups: dict[frozenset[int], set[str]] = {}
        for node in universe:
            sig = frozenset(i for i, es in enumerate(eq_sets) if node in es)
            signature_groups.setdefault(sig, set()).add(node)

        self.partitions: list[Partition] = []
        self._eqset_to_pids: dict[frozenset[str], tuple[int, ...]] = {
            es: () for es in eq_sets}
        sig_to_pid: dict[frozenset[int], int] = {}
        for sig, nodes in sorted(signature_groups.items(),
                                 key=lambda kv: sorted(kv[1])[0]):
            pid = len(self.partitions)
            self.partitions.append(Partition(pid, frozenset(nodes)))
            sig_to_pid[sig] = pid
        for sig, pid in sig_to_pid.items():
            for i in sig:
                es = eq_sets[i]
                self._eqset_to_pids[es] = self._eqset_to_pids[es] + (pid,)

    def partitions_of(self, equivalence_set: frozenset[str]) -> tuple[Partition, ...]:
        """Partitions whose union is exactly the given equivalence set.

        The set must have been passed at construction time — the partitioning
        is only minimal with respect to the declared family.
        """
        try:
            pids = self._eqset_to_pids[equivalence_set]
        except KeyError:
            raise ClusterError(
                "equivalence set was not declared when partitioning was built"
            ) from None
        return tuple(self.partitions[p] for p in pids)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_of_node(self, name: str) -> Partition:
        for p in self.partitions:
            if name in p.nodes:
                return p
        raise ClusterError(f"node {name!r} not in universe")

    def __repr__(self) -> str:
        return (f"Partitioning(sets={len(self.equivalence_sets)}, "
                f"partitions={self.num_partitions}, "
                f"universe={len(self.universe)})")
