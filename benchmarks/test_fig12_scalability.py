"""Fig. 12: scalability — solver/cycle latency vs plan-ahead, and CDFs.

Paper shapes asserted:

* the global policy's cycle latency grows with the plan-ahead window
  (larger MILPs) and the solver dominates it;
* the greedy policy (TetriSched-NG) has lower mean cycle latency than the
  global policy at large plan-ahead windows.
"""

import json

import numpy as np
from conftest import RESULTS_DIR, save_and_print

from repro.experiments import fig12
from repro.experiments.bench import bench_cycle, format_bench
from repro.experiments.figures import PLAN_AHEADS_S


def _mean_cycle_ms(sweep, sched, pa):
    runs = sweep.raw[(sched, pa)]
    xs = [c for r in runs for c in r.latency.cycle_latencies_s]
    return 1000 * float(np.mean(xs)) if xs else 0.0


def _counter_per(sweep, sched, pa, counter, per="cycles"):
    """Solver-work counter from the runs' obs profiles, normalized."""
    runs = sweep.raw[(sched, pa)]
    total = sum(r.profile.counter(counter) for r in runs)
    denom = sum(r.profile.counter(per) for r in runs)
    return total / denom if denom else 0.0


def test_fig12(benchmark, figure_cache):
    result = benchmark.pedantic(
        lambda: figure_cache("fig12", fig12), rounds=1, iterations=1)
    save_and_print("fig12", result.text)
    sweep = result.sweep

    # (a)/(b): global cycle latency grows with plan-ahead.
    global_first = _mean_cycle_ms(sweep, "TetriSched", PLAN_AHEADS_S[0])
    global_last = _mean_cycle_ms(sweep, "TetriSched", PLAN_AHEADS_S[-1])
    assert global_last > global_first, "latency should grow with plan-ahead"

    # Greedy stays cheaper than global at the largest window.
    greedy_last = _mean_cycle_ms(sweep, "TetriSched-NG", PLAN_AHEADS_S[-1])
    assert greedy_last < global_last

    # Solver *work* counters (repro.obs profiles) explain the latency
    # growth machine-independently: larger plan-ahead windows compile
    # strictly larger MILPs for the global policy.
    vars_first = _counter_per(sweep, "TetriSched", PLAN_AHEADS_S[0],
                              "solver.milp_variables")
    vars_last = _counter_per(sweep, "TetriSched", PLAN_AHEADS_S[-1],
                             "solver.milp_variables")
    assert vars_last > vars_first, "MILP size should grow with plan-ahead"

    # The greedy policy solves one (small) MILP per pending job, the global
    # policy at most one (large) MILP per cycle.
    greedy_solves = sum(
        r.profile.counter("solver.solves")
        for r in sweep.raw[("TetriSched-NG", PLAN_AHEADS_S[-1])])
    global_solves = sum(
        r.profile.counter("solver.solves")
        for r in sweep.raw[("TetriSched", PLAN_AHEADS_S[-1])])
    assert greedy_solves >= global_solves > 0

    # (c): CDFs exist and are monotone.
    cdfs = result.extras["cdfs"]
    for sched, (xs, fracs) in cdfs.items():
        assert xs.size > 0
        assert np.all(np.diff(xs) >= 0)
        assert fracs[-1] == 1.0


def test_bench_cycle(benchmark):
    """Dense/sparse/decomposed pipeline comparison -> BENCH_cycle.json.

    Fixed-seed, fig12-scale cycles at plan-ahead 96s.  The decomposed
    sparse pipeline must reproduce the monolithic dense oracle's objective
    exactly and split the rack-pinned workload into one block per rack.
    """
    report = benchmark.pedantic(
        lambda: bench_cycle(backend="pure", plan_ahead_s=96.0),
        rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cycle.json").write_text(
        json.dumps(report, indent=2) + "\n")
    print(format_bench(report))

    assert report["objective_match"], \
        f"objective mismatch: {report['max_objective_delta']}"
    decomposed = report["modes"]["decomposed-sparse"]
    assert all(c == report["meta"]["racks"] for c in decomposed["components"])
    # Per-stage timings cover the whole staged pipeline.
    assert {"generate", "compile", "model_build", "decompose", "solve",
            "extract"} <= set(decomposed["stage_timings_s"])
    # The headline claim: decomposition buys measurable cycle time at
    # plan-ahead >= 96s (generous bound; measured ~3-4x with pure B&B).
    assert report["speedup"]["decomposed_vs_dense"] > 1.2
