"""Analysis and rewriting passes over STRL expressions.

The STRL Generator "performs many possible optimizations, such as culling the
expression growth when the job's estimated runtime is expected to exceed its
deadline" (Sec. 3.2.1).  This module hosts those passes:

* :func:`stats` — size metrics feeding the scalability experiments (Fig. 12);
* :func:`simplify` — structural cleanups that shrink the MILP without
  changing the expression's value function;
* :func:`cull_by_horizon` — drop placement options that cannot finish by a
  deadline (deadline culling).
"""

from __future__ import annotations

from collections import Counter

from repro.strl.ast import (Barrier, ElasticNCk, LnCk, Max, Min, NCk, Scale,
                            StrlNode, Sum)


def stats(expr: StrlNode) -> dict[str, int]:
    """Structural statistics for an expression tree."""
    kinds = Counter(type(n).__name__ for n in expr.walk())
    eq_sets = {leaf.nodes for leaf in expr.leaves()}
    return {
        "size": expr.size,
        "leaves": kinds["NCk"] + kinds["LnCk"],
        "nck": kinds["NCk"],
        "lnck": kinds["LnCk"],
        "elastic_ops": kinds["ElasticNCk"],
        "max_ops": kinds["Max"],
        "min_ops": kinds["Min"],
        "sum_ops": kinds["Sum"],
        "scale_ops": kinds["Scale"],
        "barrier_ops": kinds["Barrier"],
        "horizon": expr.horizon(),
        "equivalence_sets": len(eq_sets),
        "referenced_nodes": len(expr.referenced_nodes()),
    }


def simplify(expr: StrlNode) -> StrlNode:
    """Return an equivalent but structurally smaller expression.

    Rewrites applied (bottom-up):

    * ``max``/``min``/``sum`` with a single child -> the child;
    * nested same-operator ``max``/``sum`` are flattened
      (``max(max(a,b),c) -> max(a,b,c)``); ``min`` is *not* flattened through
      ``min`` children because the value semantics already coincide — it is
      flattened too, which is safe: min of mins is the overall min;
    * ``scale`` with factor 1 -> the child;
    * ``scale`` of ``scale`` -> single ``scale`` with multiplied factor;
    * ``scale`` of an ``nCk``/``LnCk`` leaf -> leaf with scaled value.
    """
    if isinstance(expr, (NCk, LnCk, ElasticNCk)):
        return expr
    if isinstance(expr, Scale):
        child = simplify(expr.subexpr)
        if isinstance(child, Scale):
            return simplify(Scale(child.subexpr, expr.factor * child.factor))
        if expr.factor == 1.0:
            return child
        if isinstance(child, NCk):
            return NCk(child.nodes, child.k, child.start, child.duration,
                       child.value * expr.factor)
        if isinstance(child, LnCk):
            return LnCk(child.nodes, child.k, child.start, child.duration,
                        child.value * expr.factor)
        return Scale(child, expr.factor)
    if isinstance(expr, Barrier):
        return Barrier(simplify(expr.subexpr), expr.threshold)
    if isinstance(expr, (Max, Min, Sum)):
        cls = type(expr)
        flat: list[StrlNode] = []
        for child in expr.subexprs:
            child = simplify(child)
            if isinstance(child, cls):
                flat.extend(child.subexprs)
            else:
                flat.append(child)
        if len(flat) == 1:
            return flat[0]
        return cls(*flat)
    return expr


def cull_by_horizon(expr: StrlNode, horizon: int) -> StrlNode | None:
    """Remove leaves whose allocation would extend past ``horizon`` quanta.

    Implements the paper's deadline-culling optimization: a placement option
    that cannot complete before the deadline contributes no value, so its
    variables need not exist in the MILP.  Returns ``None`` when nothing
    useful remains.

    The rewrite is conservative under ``min``: if any child of a ``min``
    dies, the whole ``min`` is unsatisfiable and dies with it.
    """
    if isinstance(expr, (NCk, LnCk)):
        if expr.start + expr.duration > horizon:
            return None
        return expr
    if isinstance(expr, ElasticNCk):
        # Narrow widths run longest, so culling trims the range from the
        # bottom: the survivors stay a contiguous [w, max_width] band.
        kept = [w for w in expr.widths
                if expr.start + expr.durations[w - expr.min_width] <= horizon]
        if not kept:
            return None
        if kept == list(expr.widths):
            return expr
        new_min = min(kept)
        lo = new_min - expr.min_width
        if len(kept) == 1:
            return expr.option_for_width(new_min)
        return ElasticNCk(expr.nodes, new_min, expr.max_width, expr.start,
                          expr.durations[lo:], expr.value_per_width[lo:])
    if isinstance(expr, Scale):
        child = cull_by_horizon(expr.subexpr, horizon)
        if child is None:
            return None
        return Scale(child, expr.factor)
    if isinstance(expr, Barrier):
        child = cull_by_horizon(expr.subexpr, horizon)
        if child is None:
            return None
        return Barrier(child, expr.threshold)
    if isinstance(expr, Min):
        kept = [cull_by_horizon(c, horizon) for c in expr.subexprs]
        if any(c is None for c in kept):
            return None
        return Min(*kept)
    if isinstance(expr, (Max, Sum)):
        kept = [c for c in (cull_by_horizon(ch, horizon)
                            for ch in expr.subexprs) if c is not None]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        cls = type(expr)
        return cls(*kept)
    return expr
