"""Parser for the textual STRL syntax emitted by :mod:`repro.strl.printer`.

Grammar (s-expressions)::

    expr    := leaf | op
    leaf    := "(" ("nCk" | "LnCk") set kw* ")"
            | "(" "elastic" set ekw* ")"
    set     := "(" "set" NAME+ ")"
    kw      := ":k" INT | ":start" INT | ":dur" INT | ":v" NUMBER
    ekw     := ":min" INT | ":max" INT | ":start" INT
             | ":durs" "(" INT+ ")" | ":vs" "(" NUMBER+ ")"
    op      := "(" ("max" | "min" | "sum") expr+ ")"
             | "(" "scale" NUMBER expr ")"
             | "(" "barrier" NUMBER expr ")"

Keyword arguments may appear in any order; all four are required.  The parser
produces the same frozen AST the programmatic API builds, so parsed and
constructed expressions compare equal.
"""

from __future__ import annotations

import re

from repro.errors import StrlParseError
from repro.strl.ast import (Barrier, ElasticNCk, LnCk, Max, Min, NCk, Scale,
                            StrlNode, Sum)

_TOKEN_RE = re.compile(r"""\(|\)|[^\s()]+""")
_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")


def tokenize(text: str) -> list[str]:
    """Split STRL text into parentheses and atoms."""
    return _TOKEN_RE.findall(text)


class _TokenStream:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise StrlParseError("unexpected end of input")
        self._pos += 1
        return tok

    def expect(self, token: str) -> None:
        tok = self.next()
        if tok != token:
            raise StrlParseError(f"expected {token!r}, got {tok!r}")

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)


def parse(text: str) -> StrlNode:
    """Parse a single STRL expression from text."""
    stream = _TokenStream(tokenize(text))
    expr = _parse_expr(stream)
    if not stream.exhausted:
        raise StrlParseError(f"trailing input after expression: {stream.peek()!r}")
    return expr


def _parse_number(tok: str, what: str) -> float:
    if not _NUMBER_RE.match(tok):
        raise StrlParseError(f"expected a number for {what}, got {tok!r}")
    return float(tok)


def _parse_int(tok: str, what: str) -> int:
    value = _parse_number(tok, what)
    if not value.is_integer():
        raise StrlParseError(f"expected an integer for {what}, got {tok!r}")
    return int(value)


def _parse_set(stream: _TokenStream) -> frozenset[str]:
    stream.expect("(")
    stream.expect("set")
    names: list[str] = []
    while stream.peek() not in (")", None):
        names.append(stream.next())
    stream.expect(")")
    if not names:
        raise StrlParseError("empty (set ...) in leaf expression")
    return frozenset(names)


def _parse_leaf(stream: _TokenStream, tag: str) -> StrlNode:
    nodes = _parse_set(stream)
    kwargs: dict[str, float] = {}
    while stream.peek() != ")":
        key = stream.next()
        if not key.startswith(":"):
            raise StrlParseError(f"expected keyword like :k, got {key!r}")
        kwargs[key] = stream.next()
    stream.expect(")")
    missing = {":k", ":start", ":dur", ":v"} - set(kwargs)
    if missing:
        raise StrlParseError(f"{tag} leaf missing keywords: {sorted(missing)}")
    cls = NCk if tag == "nCk" else LnCk
    return cls(nodes=nodes,
               k=_parse_int(kwargs[":k"], ":k"),
               start=_parse_int(kwargs[":start"], ":start"),
               duration=_parse_int(kwargs[":dur"], ":dur"),
               value=_parse_number(kwargs[":v"], ":v"))


def _parse_value_list(stream: _TokenStream, what: str) -> list[str]:
    stream.expect("(")
    toks: list[str] = []
    while stream.peek() not in (")", None):
        toks.append(stream.next())
    stream.expect(")")
    if not toks:
        raise StrlParseError(f"empty list for {what}")
    return toks


def _parse_elastic(stream: _TokenStream) -> StrlNode:
    nodes = _parse_set(stream)
    kwargs: dict[str, object] = {}
    while stream.peek() != ")":
        key = stream.next()
        if not key.startswith(":"):
            raise StrlParseError(f"expected keyword like :min, got {key!r}")
        if key in (":durs", ":vs"):
            kwargs[key] = _parse_value_list(stream, key)
        else:
            kwargs[key] = stream.next()
    stream.expect(")")
    missing = {":min", ":max", ":start", ":durs", ":vs"} - set(kwargs)
    if missing:
        raise StrlParseError(
            f"elastic leaf missing keywords: {sorted(missing)}")
    return ElasticNCk(
        nodes=nodes,
        min_width=_parse_int(kwargs[":min"], ":min"),
        max_width=_parse_int(kwargs[":max"], ":max"),
        start=_parse_int(kwargs[":start"], ":start"),
        durations=tuple(_parse_int(t, ":durs") for t in kwargs[":durs"]),
        value_per_width=tuple(_parse_number(t, ":vs")
                              for t in kwargs[":vs"]))


def _parse_expr(stream: _TokenStream) -> StrlNode:
    stream.expect("(")
    tag = stream.next()
    if tag in ("nCk", "LnCk"):
        return _parse_leaf(stream, tag)
    if tag == "elastic":
        return _parse_elastic(stream)
    if tag in ("max", "min", "sum"):
        children: list[StrlNode] = []
        while stream.peek() == "(":
            children.append(_parse_expr(stream))
        stream.expect(")")
        if not children:
            raise StrlParseError(f"({tag} ...) needs at least one child")
        cls = {"max": Max, "min": Min, "sum": Sum}[tag]
        return cls(*children)
    if tag in ("scale", "barrier"):
        scalar = _parse_number(stream.next(), tag)
        child = _parse_expr(stream)
        stream.expect(")")
        if tag == "scale":
            return Scale(child, scalar)
        return Barrier(child, scalar)
    raise StrlParseError(f"unknown STRL operator {tag!r}")
