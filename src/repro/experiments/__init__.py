"""Experiment harness: runners, sweeps, and per-figure drivers."""

from repro.experiments.figures import (ALL_FIGURES, FigureResult, fig6, fig7,
                                       fig8, fig9, fig10, fig11, fig12,
                                       table1, table2)
from repro.experiments.report import (format_sweep, format_sweep_metric,
                                      format_table, shape_check)
from repro.experiments.runner import (RC80_SCALED, RC256_SCALED, SCHEDULER_NAMES,
                                      ClusterSpec, RunSpec, build_scheduler,
                                      run_experiment)
from repro.experiments.sweeps import (METRICS, SweepResult,
                                      estimate_error_sweep, plan_ahead_sweep)

__all__ = [
    "ALL_FIGURES", "ClusterSpec", "FigureResult", "METRICS", "RC256_SCALED",
    "RC80_SCALED", "RunSpec", "SCHEDULER_NAMES", "SweepResult",
    "build_scheduler", "estimate_error_sweep", "fig10", "fig11", "fig12",
    "fig6", "fig7", "fig8", "fig9", "format_sweep", "format_sweep_metric",
    "format_table", "plan_ahead_sweep", "run_experiment", "shape_check",
    "table1", "table2",
]
