"""Scheduling domains: partitioning the cluster for sharded cycles.

The monolithic cycle MILP is the paper's point, but one aggregate model
stops scaling long before 1k+ nodes.  The standard way out — the
packing-and-placement decomposition of Shafiee & Ghaderi, and the
decompose-then-coordinate structure CvxCluster exploits for granular
allocation — is to split the cluster into *scheduling domains* that
compile and solve their own (much smaller) MILPs concurrently, then
reconcile the few jobs whose placement options genuinely span domains.

This module owns the spatial half of that story: a
:class:`DomainPartitioner` turns a :class:`~repro.cluster.cluster.Cluster`
into a list of :class:`SchedulingDomain`, rack-aligned by default and
pluggable through :func:`register_policy` (the partitioning policy is a
pure function of the cluster topology, so domains are stable across
cycles — stability is what lets the per-domain delta-compilation fragment
stores stay warm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cluster.cluster import Cluster
from repro.errors import SchedulerError

#: Default racks per domain when ``shard_count`` is left at 0.
DEFAULT_RACKS_PER_DOMAIN = 4

#: Cluster size at which ``shard_mode="auto"`` switches sharding on: below
#: this the monolithic model (with component decomposition) wins; above it
#: the per-domain models are worth the reconciliation overhead.
AUTO_NODE_THRESHOLD = 64


@dataclass(frozen=True)
class SchedulingDomain:
    """One concurrently-scheduled slice of the cluster.

    Domains are node-disjoint and cover the whole cluster; each domain's
    cycle MILP draws supply exclusively from ``nodes``, which is what
    makes per-domain solves independent (and the union of their optima a
    feasible global schedule).
    """

    domain_id: int
    name: str
    nodes: frozenset[str]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SchedulerError(
                f"scheduling domain {self.name!r} has no nodes")

    def __len__(self) -> int:
        return len(self.nodes)


#: A partition policy: ``(cluster, count) -> node groups`` (disjoint,
#: covering, in deterministic order).
PartitionPolicy = Callable[[Cluster, int], "list[frozenset[str]]"]

_POLICIES: dict[str, PartitionPolicy] = {}


def register_policy(name: str) -> Callable[[PartitionPolicy],
                                           PartitionPolicy]:
    """Register a domain-partitioning policy under ``name`` (decorator)."""
    def deco(fn: PartitionPolicy) -> PartitionPolicy:
        if name in _POLICIES:
            raise SchedulerError(f"partition policy {name!r} already "
                                 f"registered")
        _POLICIES[name] = fn
        return fn
    return deco


def partition_policies() -> tuple[str, ...]:
    """Names of the registered partition policies."""
    return tuple(sorted(_POLICIES))


@register_policy("racks")
def racks_policy(cluster: Cluster, count: int) -> list[frozenset[str]]:
    """Contiguous rack groups — the rack-aligned default.

    Racks are dealt to ``count`` domains in contiguous runs (domain 0 gets
    the first ``ceil(R/count)`` racks, and so on), so a domain is exactly
    the failure/locality unit the paper's MPI jobs prefer: a job with a
    rack-affine placement option almost always has its whole option inside
    one domain.  With ``count >= racks``, each rack is its own domain.
    """
    racks = cluster.rack_names
    count = max(1, min(count, len(racks)))
    base, extra = divmod(len(racks), count)
    groups: list[frozenset[str]] = []
    at = 0
    for i in range(count):
        take = base + (1 if i < extra else 0)
        members = racks[at:at + take]
        at += take
        nodes: set[str] = set()
        for rack in members:
            nodes |= cluster.rack_nodes(rack)
        groups.append(frozenset(nodes))
    return groups


def resolve_shard_count(shard_count: int, cluster: Cluster) -> int:
    """Concrete domain count for a config's ``shard_count``.

    ``0`` (the default) picks about :data:`DEFAULT_RACKS_PER_DOMAIN` racks
    per domain; explicit values are clamped to the rack count by the
    policy.  ``1`` degenerates to a single whole-cluster domain (whose
    cycle is bit-equal to the monolithic pipeline).
    """
    if shard_count > 0:
        return shard_count
    racks = len(cluster.rack_names)
    return max(1, racks // DEFAULT_RACKS_PER_DOMAIN)


def sharding_active(config, cluster: Cluster) -> bool:
    """Whether this (config, cluster) pair actually shards.

    ``shard_mode="racks"`` always shards; ``"auto"`` shards once the
    cluster reaches :data:`AUTO_NODE_THRESHOLD` nodes (below that the
    monolithic model plus component decomposition is faster than paying
    per-domain assignment and reconciliation).
    """
    if config.shard_mode == "racks":
        return True
    if config.shard_mode == "auto":
        return len(cluster) >= AUTO_NODE_THRESHOLD
    return False


class DomainPartitioner:
    """Splits a cluster into scheduling domains under a named policy.

    Example
    -------
    >>> from repro.cluster import Cluster
    >>> cluster = Cluster.build(racks=8, nodes_per_rack=4)
    >>> doms = DomainPartitioner(cluster).partition(2)
    >>> [(d.name, len(d)) for d in doms]
    [('dom0', 16), ('dom1', 16)]
    """

    def __init__(self, cluster: Cluster, policy: str = "racks") -> None:
        if policy not in _POLICIES:
            raise SchedulerError(
                f"unknown partition policy {policy!r}; registered: "
                f"{sorted(_POLICIES)}")
        self.cluster = cluster
        self.policy = policy

    def partition(self, count: int) -> list[SchedulingDomain]:
        """``count`` disjoint, covering domains in deterministic order."""
        groups = _POLICIES[self.policy](self.cluster, count)
        _check_partition(groups, self.cluster)
        return [SchedulingDomain(domain_id=i, name=f"dom{i}", nodes=nodes)
                for i, nodes in enumerate(groups)]


def _check_partition(groups: Iterable[frozenset[str]],
                     cluster: Cluster) -> None:
    """A policy's output must be a true partition of the node universe."""
    seen: set[str] = set()
    for nodes in groups:
        overlap = seen & nodes
        if overlap:
            raise SchedulerError(
                f"partition policy produced overlapping domains: "
                f"{sorted(overlap)[:4]}")
        seen |= nodes
    missing = cluster.node_names - seen
    if missing:
        raise SchedulerError(
            f"partition policy left nodes uncovered: {sorted(missing)[:4]}")
