"""Tests for fault injection: job failures, retries, abandonment."""

import pytest

from repro.baselines import CapacityScheduler
from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.errors import SimulationError
from repro.reservation import RayonReservationSystem
from repro.sim import (ExecutionTrace, FaultModel, Job, Simulation,
                       TetriSchedAdapter, UnconstrainedType)
from repro.sim.trace import FAILURE

UN = UnconstrainedType()


class AlwaysFail(FaultModel):
    """Deterministic fault model: every attempt up to N fails at 50%."""

    def __init__(self, fail_attempts: int, retry_limit: int = 10):
        super().__init__(failure_prob=0.5, retry_limit=retry_limit, seed=0)
        self.fail_attempts = fail_attempts

    def draw(self, job_id, attempt):
        from repro.sim.faults import FaultDecision
        if attempt < self.fail_attempts:
            return FaultDecision(fails=True, at_fraction=0.5)
        return FaultDecision(fails=False)


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(SimulationError):
            FaultModel(failure_prob=1.0)
        with pytest.raises(SimulationError):
            FaultModel(failure_prob=0.1, retry_limit=-1)

    def test_deterministic_across_instances(self):
        a = FaultModel(0.5, seed=7).draw("job1", 0)
        b = FaultModel(0.5, seed=7).draw("job1", 0)
        assert a == b

    def test_different_attempts_differ_eventually(self):
        fm = FaultModel(0.5, seed=7)
        draws = {fm.draw("job1", i).fails for i in range(20)}
        assert draws == {True, False}

    def test_zero_probability_never_fails(self):
        fm = FaultModel(0.0)
        assert not any(fm.draw(f"j{i}", 0).fails for i in range(50))

    def test_failure_fraction_in_range(self):
        fm = FaultModel(0.9, seed=3)
        for i in range(50):
            d = fm.draw(f"j{i}", 0)
            if d.fails:
                assert 0.1 <= d.at_fraction <= 0.9


class TestRetries:
    def make_sim(self, faults, jobs=None):
        cluster = Cluster.build(racks=1, nodes_per_rack=4)
        adapter = TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40))
        jobs = jobs or [Job("j", UN, k=2, base_runtime_s=20,
                            submit_time=0.0, deadline=500.0)]
        trace = ExecutionTrace()
        return Simulation(cluster, adapter, jobs, trace=trace,
                          faults=faults), trace

    def test_failed_job_retries_and_completes(self):
        sim, trace = self.make_sim(AlwaysFail(fail_attempts=2))
        res = sim.run()
        o = res.outcomes["j"]
        assert o.failures == 2
        assert o.completed
        assert res.metrics.failures == 2
        # Failure events recorded; occupancy intervals stay closed.
        assert len(trace.of_kind(FAILURE)) == 2
        trace.check_no_double_booking()

    def test_retry_limit_abandons_job(self):
        sim, trace = self.make_sim(AlwaysFail(fail_attempts=99,
                                              retry_limit=2))
        res = sim.run()
        o = res.outcomes["j"]
        assert not o.completed
        assert o.failures == 3  # initial + 2 retries, all failed
        # Simulation terminates even though the job never finishes.
        assert res.end_time < 1000

    def test_no_faults_is_baseline(self):
        sim, _ = self.make_sim(None)
        res = sim.run()
        assert res.outcomes["j"].failures == 0
        assert res.outcomes["j"].finish_time == pytest.approx(20.0)

    def test_failed_work_is_lost(self):
        """A job that fails at 50% re-runs from scratch."""
        sim, trace = self.make_sim(AlwaysFail(fail_attempts=1))
        res = sim.run()
        o = res.outcomes["j"]
        # Attempt 1: 0..10 (fails at 50% of 20s). Retried at next cycle
        # (t=10), runs the full 20s -> finishes at 30.
        assert o.finish_time == pytest.approx(30.0)

    def test_faults_with_capacity_scheduler(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=4)
        rayon = RayonReservationSystem(4, step_s=10)
        cs = CapacityScheduler(cluster, rayon, cycle_s=10)
        jobs = [Job("j", UN, k=2, base_runtime_s=20, submit_time=0.0,
                    deadline=500.0)]
        trace = ExecutionTrace()
        res = Simulation(cluster, cs, jobs, rayon=rayon, trace=trace,
                         faults=AlwaysFail(fail_attempts=1)).run()
        o = res.outcomes["j"]
        assert o.failures == 1 and o.completed
        trace.check_no_double_booking()

    def test_mixed_workload_under_faults_terminates(self):
        jobs = [Job(f"j{i}", UN, k=1 + i % 3, base_runtime_s=15 + i,
                    submit_time=2.0 * i,
                    deadline=(400.0 if i % 2 else None) and 2.0 * i + 400)
                for i in range(10)]
        sim, trace = self.make_sim(FaultModel(0.3, retry_limit=2, seed=5),
                                   jobs=jobs)
        res = sim.run()
        trace.check_no_double_booking()
        # Everything either completed or was abandoned after retries.
        for o in res.outcomes.values():
            assert o.completed or o.failures == 3
