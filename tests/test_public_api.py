"""Public-API and documentation tests.

* every name in ``repro.__all__`` (and each subpackage's) actually resolves;
* module doctests run (the examples in docstrings must stay correct).
"""

import doctest
import importlib

import pytest

DOCTEST_MODULES = [
    "repro",
    "repro.solver.expr",
    "repro.solver.model",
    "repro.solver.branch_bound",
    "repro.cluster.cluster",
    "repro.cluster.state",
    "repro.reservation.rayon",
    "repro.core.scheduler",
]

PACKAGES = [
    "repro", "repro.solver", "repro.strl", "repro.cluster", "repro.core",
    "repro.reservation", "repro.baselines", "repro.sim", "repro.workloads",
    "repro.experiments",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__") or package == "repro.experiments"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_version(self):
        import repro
        assert repro.__version__


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_module_doctests(self, module_name):
        mod = importlib.import_module(module_name)
        results = doctest.testmod(mod, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures"


class TestPublicSurface:
    def test_quickstart_flow(self):
        """The README quickstart, executed."""
        from repro import (Cluster, JobRequest, PriorityClass, SpaceOption,
                           TetriSched, TetriSchedConfig)
        from repro.valuefn import StepValue

        cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
        sched = TetriSched(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=96))
        sched.submit(JobRequest(
            job_id="gpu-job",
            options=(SpaceOption(cluster.nodes_with_attr("gpu"), k=2,
                                 duration_s=20, label="gpu"),
                     SpaceOption(cluster.node_names, k=2, duration_s=30,
                                 label="anywhere")),
            value_fn=StepValue(1000.0, deadline=100.0),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
            deadline=100.0))
        result = sched.run_cycle(now=0.0)
        assert len(result.allocations) == 1
        assert result.allocations[0].nodes <= cluster.nodes_with_attr("gpu")
