"""Targeted coverage for smaller corners of the scheduler stack."""

import pytest

from repro.cluster import Cluster
from repro.core import (JobRequest, PriorityClass, TetriSched,
                        TetriSchedConfig)
from repro.core.compiler import PreemptionCandidate, StrlCompiler
from repro.cluster import ClusterState
from repro.solver import make_backend
from repro.strl import NCk, SpaceOption
from repro.valuefn import StepValue, best_effort_value

M3 = frozenset({"M1", "M2", "M3"})


class TestPreemptionCompiler:
    def test_preemption_variable_off_when_not_worth_it(self):
        state = ClusterState(M3)
        state.start("victim", M3, 0.0, 100.0)
        batch = [("cheap", NCk(M3, 1, 0, 1, 1.0))]  # value 1 < penalty 5
        compiled = StrlCompiler(state, 10).compile(
            batch, preemptible=[PreemptionCandidate("victim", M3, 5.0)])
        res = make_backend("auto").solve(compiled.model)
        assert compiled.preempted_jobs(res.x) == []
        assert res.objective == pytest.approx(0.0)

    def test_preemption_variable_on_when_value_dominates(self):
        state = ClusterState(M3)
        state.start("victim", M3, 0.0, 100.0)
        batch = [("slo", NCk(M3, 3, 0, 1, 1000.0))]
        compiled = StrlCompiler(state, 10).compile(
            batch, preemptible=[PreemptionCandidate("victim", M3, 5.0)])
        res = make_backend("auto").solve(compiled.model)
        assert compiled.preempted_jobs(res.x) == ["victim"]
        assert res.objective == pytest.approx(1000.0 - 5.0)

    def test_partial_victim_overlap(self):
        """A victim holding only part of a partition frees only that part."""
        state = ClusterState(M3)
        victim_nodes = frozenset({"M1"})
        state.start("victim", victim_nodes, 0.0, 100.0)
        batch = [("slo", NCk(M3, 3, 0, 1, 1000.0))]
        compiled = StrlCompiler(state, 10).compile(
            batch, preemptible=[PreemptionCandidate("victim", victim_nodes,
                                                    2.0)])
        res = make_backend("auto").solve(compiled.model)
        assert compiled.preempted_jobs(res.x) == ["victim"]
        assert res.objective == pytest.approx(998.0)


class TestGreedyWithPreemptionFlag:
    def test_greedy_mode_ignores_preemption_flag(self):
        """-NG doesn't implement preemption; the flag must be harmless."""
        cluster = Cluster.build(racks=1, nodes_per_rack=4)
        sched = TetriSched(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40,
            global_scheduling=False, enable_preemption=True))
        sched.submit(JobRequest(
            "be", (SpaceOption(cluster.node_names, 4, 100.0),),
            best_effort_value(0.0), PriorityClass.BEST_EFFORT, 0.0))
        sched.run_cycle(0.0)
        sched.submit(JobRequest(
            "slo", (SpaceOption(cluster.node_names, 4, 20.0),),
            StepValue(1000.0, 40.0), PriorityClass.SLO_ACCEPTED, 10.0,
            deadline=40.0))
        result = sched.run_cycle(10.0)
        assert result.preempted == []  # no kills in greedy mode


class TestConfigProperties:
    def test_plan_ahead_quanta_rounding(self):
        cfg = TetriSchedConfig(quantum_s=10, plan_ahead_s=96)
        assert cfg.plan_ahead_quanta == 10
        cfg = TetriSchedConfig(quantum_s=4, plan_ahead_s=96)
        assert cfg.plan_ahead_quanta == 24
        cfg = TetriSchedConfig(quantum_s=10, plan_ahead_s=0)
        assert cfg.plan_ahead_quanta == 0

    def test_empty_options_rejected(self):
        from repro.errors import SchedulerError
        with pytest.raises(SchedulerError):
            JobRequest("x", (), StepValue(1.0, 10.0),
                       PriorityClass.BEST_EFFORT, 0.0)


class TestCycleHistoryAccounting:
    def test_objective_and_counts_recorded(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=4)
        sched = TetriSched(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40, rel_gap=1e-6))
        sched.submit(JobRequest(
            "a", (SpaceOption(cluster.node_names, 2, 20.0),),
            StepValue(1000.0, 300.0), PriorityClass.SLO_ACCEPTED, 0.0,
            deadline=300.0))
        result = sched.run_cycle(0.0)
        stats = result.stats
        assert stats.objective > 900.0  # ~1000 minus the earliness bias
        assert stats.launched == 1 and stats.pending == 0
        assert stats.solves == 1
