"""Relaxation-repair MILP backend with an audited optimality gap.

The exact branch-and-bound path proves optimality but pays for it in
nodes; on the plan-ahead scheduling MILPs the LP relaxation is already
nearly integral (CvxCluster reports 100-1000x speedups from solving the
relaxation and repairing fractional allocations on the same problem
shape).  :class:`RepairSolver` takes that bet, with a certificate instead
of a hope:

1. **Root LP** — the relaxation is solved by lazy start-time column
   generation (:mod:`repro.solver.colgen`) when the compiler provided
   column groups, or a plain cold solve otherwise.  Either way the
   objective is a true full-relaxation bound.
2. **Dive repair** — one integer variable is fixed per round: the most
   fractional variable is rounded to its nearest integer and the LP
   re-solves with a dual-simplex warm restart (fixing is bound
   *tightening*, so the inherited basis stays dual-feasible).  An
   infeasible rounding flips to the other side, then falls through to
   the next-most-fractional candidates; only when no candidate rounds
   feasibly does the dive abort and escalate to exact branch and bound.
3. **Audited gap** — the incumbent is re-checked with
   ``model.check_feasible`` and reported with ``bound`` set to the root
   LP bound and ``stats["repair_bound_source"] = "lp"``, which is what
   lets :func:`repro.verify.certificate.certify_gap` recompute the bound
   with an independent engine and certify the claimed gap.
4. **Escalation** — in ``auto`` mode a gap above the configured threshold
   re-solves with the wrapped exact backend *under the caller's original
   options* (same warm start, no repair-derived seeding), so an escalated
   solve reproduces the exact path's objective bit for bit.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import obs
from repro.solver.colgen import ColgenRoot, colgen_root
from repro.solver.model import Model
from repro.solver.options import SolveOptions
from repro.solver.result import MILPResult, SolveStatus

_INT_TOL = 1e-6
#: Fractional variables tried per dive round before the dive gives up and
#: escalates; bounds the worst-case LP re-solves at 2x this per round.
_DIVE_CANDIDATES = 8


class RepairSolver:
    """Wrap an exact MILP backend with the relaxation-repair fast path.

    Parameters
    ----------
    exact:
        The escalation target (typically a
        :class:`~repro.solver.branch_bound.BranchBoundSolver` configured
        exactly like the ``solve_mode="exact"`` backend would be).
    mode:
        ``"repair"`` (never escalate on gap; still escalates when the dive
        cannot find a feasible integral point) or ``"auto"`` (escalate when
        the audited gap exceeds ``gap_threshold``).
    gap_threshold:
        Relative audited-gap ceiling for ``auto`` escalation.  The
        condition is strictly ``gap > gap_threshold``, so a negative
        threshold forces escalation deterministically (used by the bench
        and fuzz harnesses to exercise the exact-reproduction contract).
    rel_gap:
        Gap at or below which the repaired incumbent is reported OPTIMAL.
    seed_per_job:
        Start-time columns seeded per job before pricing begins.
    """

    def __init__(self, exact, mode: str = "repair",
                 gap_threshold: float = 0.05, rel_gap: float = 1e-6,
                 time_limit: float | None = None,
                 seed_per_job: int = 2) -> None:
        self.exact = exact
        self.mode = mode
        self.gap_threshold = gap_threshold
        self.rel_gap = rel_gap
        #: Exposed for :func:`repro.solver.backend.backend_time_limit`.
        self.time_limit = time_limit
        self.seed_per_job = seed_per_job

    def solve(self, model: Model,
              options: SolveOptions | None = None) -> MILPResult:
        t0 = time.monotonic()
        get = options.get if options is not None else \
            (lambda name, default=None: default)
        groups = get("column_groups") or ()
        mode = get("solve_mode", self.mode) or self.mode
        if mode == "exact":  # explicit per-call opt-out
            return self.exact.solve(model, options=options)
        threshold = get("repair_gap_threshold", self.gap_threshold)
        rel_gap = get("rel_gap", self.rel_gap)

        sa = model.to_standard_arrays()
        int_idx = np.nonzero(sa.integrality)[0]
        root = colgen_root(sa, groups, seed_per_job=self.seed_per_job)
        stats = dict(root.stats)
        stats["repair_escalations"] = 0
        res = root.result
        if res.status is SolveStatus.INFEASIBLE:
            return MILPResult(SolveStatus.INFEASIBLE, None, math.nan,
                              solve_time=time.monotonic() - t0, stats=stats)
        if res.status is not SolveStatus.OPTIMAL:
            # Unbounded relaxation or iteration trouble: let the exact
            # path deal with it rather than report an uncertified answer.
            return self._escalate(model, options, stats, t0)
        lp_min = res.objective
        bound_model = sa.obj_sign * lp_min + sa.obj_constant

        x = self._dive(root, sa, int_idx)
        if x is None or not model.check_feasible(x):
            return self._escalate(model, options, stats, t0)
        obj_min = float(sa.c @ x)
        obj_model = sa.obj_sign * obj_min + sa.obj_constant
        # Minimization orientation: obj_min >= lp_min by LP optimality.
        gap = abs(obj_min - lp_min) / max(1.0, abs(obj_min))
        if mode == "auto" and gap > threshold:
            return self._escalate(model, options, stats, t0,
                                  pre_escalation_gap=gap)
        stats["repair_gap"] = gap
        stats["repair_bound_source"] = "lp"
        stats["lp_iterations"] = root.lp_iterations + int(
            root.stats.get("dive_lp_iterations", 0))
        for key in ("pivots", "dual_pivots", "refactorizations",
                    "warm_restarts", "warm_hits", "cold_fallbacks",
                    "factorizations", "ft_updates", "pricing_candidates"):
            stats[f"lp_{key}"] = root.engine.counters[key]
        stats["lp_fill_ratio"] = root.engine.fill_ratio
        solve_time = time.monotonic() - t0
        status = SolveStatus.OPTIMAL if gap <= rel_gap \
            else SolveStatus.FEASIBLE
        obs.emit("solver.solve", status=status.value, objective=obj_model,
                 gap=gap, nodes=0, time_ms=1000.0 * solve_time)
        return MILPResult(status=status, x=x, objective=obj_model,
                          bound=bound_model, gap=gap, nodes=0,
                          solve_time=solve_time, stats=stats)

    # -- internals -----------------------------------------------------------
    def _dive(self, root: ColgenRoot, sa,
              int_idx: np.ndarray) -> np.ndarray | None:
        """LP-guided dive to an integral point; ``None`` when stuck.

        Inactive colgen columns stay pinned at their lower bounds
        (``root.ub_work``): any point with them at zero is feasible for
        the full model, so pinning cannot manufacture infeasibility —
        it only limits which alternatives the repair may use.
        """
        engine = root.engine
        lb, ub = root.lb.copy(), root.ub_work.copy()
        res = root.result
        x, basis = res.x, res.basis
        dive_iters = 0
        for _ in range(int_idx.size + 1):
            frac = np.abs(x[int_idx] - np.round(x[int_idx]))
            fractional = np.nonzero(frac > _INT_TOL)[0]
            if fractional.size == 0:
                out = np.asarray(x, dtype=float).copy()
                out[int_idx] = np.round(out[int_idx])
                root.stats["dive_lp_iterations"] = dive_iters
                return out
            # Fix exactly one variable per round — only ever the dived
            # one.  Blanket-fixing every already-integral integer looks
            # safe (the LP point witnesses joint feasibility) but under
            # contention it corners later roundings into infeasibility;
            # fixing one variable at a time keeps the rest of the LP free
            # to re-arrange around each decision.  Most-fractional first,
            # falling back to the next candidates when both roundings of
            # the first are infeasible against the fixes made so far.
            order = fractional[np.argsort(-frac[fractional])]
            accepted = None
            for cand in order[:_DIVE_CANDIDATES]:
                j = int(int_idx[cand])
                v = float(x[j])
                nearest = float(np.round(v))
                other = math.floor(v) if nearest > v else math.ceil(v)
                # Look-ahead: solve *both* roundings and keep the one the
                # LP objective prefers.  Nearest-only diving is cheaper
                # but under contention it greedily locks in fractional
                # winners and the incumbent pays for it in gap.
                for target in (nearest, float(other)):
                    if target < lb[j] - _INT_TOL or target > ub[j] + _INT_TOL:
                        continue
                    trial_lb, trial_ub = lb.copy(), ub.copy()
                    trial_lb[j] = trial_ub[j] = target
                    r = engine.solve(trial_lb, trial_ub, start=basis)
                    dive_iters += r.iterations
                    if r.status is SolveStatus.OPTIMAL and (
                            accepted is None
                            or r.objective < accepted[0].objective):
                        accepted = (r, trial_lb, trial_ub)
                if accepted is not None:
                    break
            if accepted is None:
                root.stats["dive_lp_iterations"] = dive_iters
                return None
            r, lb, ub = accepted
            x, basis = r.x, r.basis
        root.stats["dive_lp_iterations"] = dive_iters
        return None

    def _escalate(self, model: Model, options: SolveOptions | None,
                  stats: dict, t0: float,
                  pre_escalation_gap: float | None = None) -> MILPResult:
        """Hand the solve to the exact backend under the original options.

        The repair incumbent is deliberately *not* seeded into the exact
        search: an escalated solve must reproduce the exact path's result
        bit for bit, and an extra incumbent changes pruning order.
        """
        obs.count("solver.repair.escalations")
        result = self.exact.solve(model, options=options)
        merged = dict(result.stats)
        for key, value in stats.items():
            merged[key] = merged.get(key, 0) + value \
                if isinstance(value, (int, float)) else value
        merged["repair_escalations"] = \
            int(stats.get("repair_escalations", 0)) + 1
        if pre_escalation_gap is not None:
            merged["repair_pre_escalation_gap"] = pre_escalation_gap
        result.stats = merged
        result.solve_time = time.monotonic() - t0
        return result


__all__ = ["RepairSolver"]
