"""Fig. 9: soft-constraint awareness ablation on GS HET (scaled RC80).

Paper shapes asserted:

* the gap between TetriSched and TetriSched-NH is the soft-constraint
  benefit: TetriSched wins on mean SLO attainment;
* both TetriSched variants beat Rayon/CS on attainment on average, and
  TetriSched's BE latency is the lowest.
"""

from conftest import nanmean, save_and_print

from repro.experiments import fig9

TOL = 6.0


def test_fig9(benchmark, figure_cache):
    result = benchmark.pedantic(
        lambda: figure_cache("fig9", fig9), rounds=1, iterations=1)
    save_and_print("fig9", result.text)
    sweep = result.sweep

    ts = sweep.get("TetriSched", "slo_total_pct")
    nh = sweep.get("TetriSched-NH", "slo_total_pct")
    cs = sweep.get("Rayon/CS", "slo_total_pct")

    # Soft constraints pay off on average across the error sweep.
    assert nanmean(ts) > nanmean(nh), "no soft-constraint benefit"
    # Full TetriSched comfortably beats Rayon/CS.
    assert nanmean(ts) > nanmean(cs) + 10.0

    ts_lat = sweep.get("TetriSched", "mean_be_latency_s")
    nh_lat = sweep.get("TetriSched-NH", "mean_be_latency_s")
    cs_lat = sweep.get("Rayon/CS", "mean_be_latency_s")
    assert nanmean(ts_lat) < nanmean(cs_lat)
    assert nanmean(ts_lat) <= nanmean(nh_lat) + 5.0
