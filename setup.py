from setuptools import setup

# Thin shim so `pip install -e .` works offline without the wheel package
# (legacy editable install path). All metadata lives in pyproject.toml.
setup()
