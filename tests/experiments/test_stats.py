"""Tests for multi-seed statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.stats import (Aggregate, PairedComparison, aggregate,
                                     paired_compare)


class TestAggregate:
    def test_basic(self):
        a = aggregate([10.0, 20.0, 30.0])
        assert a.mean == pytest.approx(20.0)
        assert a.n == 3
        assert a.std == pytest.approx(10.0)
        assert a.lo < a.mean < a.hi

    def test_nan_dropped(self):
        a = aggregate([10.0, math.nan, 30.0])
        assert a.n == 2
        assert a.mean == pytest.approx(20.0)

    def test_empty(self):
        a = aggregate([math.nan])
        assert a.n == 0 and math.isnan(a.mean)

    def test_single_value(self):
        a = aggregate([5.0])
        assert a.n == 1 and a.std == 0.0 and math.isnan(a.ci95_half_width)

    def test_str_format(self):
        assert "±" in str(aggregate([1.0, 2.0, 3.0]))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=20))
    def test_ci_contains_mean(self, values):
        a = aggregate(values)
        assert a.lo <= a.mean <= a.hi


class TestPairedCompare:
    def test_clear_difference_significant(self):
        a = [90.0, 92.0, 91.0, 93.0]
        b = [70.0, 71.0, 69.0, 72.0]
        cmp = paired_compare(a, b)
        assert cmp.mean_diff == pytest.approx(21.0)
        assert cmp.significant

    def test_noise_not_significant(self):
        a = [50.0, 70.0, 60.0]
        b = [60.0, 50.0, 70.0]
        cmp = paired_compare(a, b)
        assert not cmp.significant

    def test_nan_pairs_dropped(self):
        cmp = paired_compare([1.0, math.nan, 3.0], [0.0, 5.0, 1.0])
        assert cmp.n == 2
        assert cmp.mean_diff == pytest.approx(1.5)

    def test_single_pair_never_significant(self):
        cmp = paired_compare([2.0], [1.0])
        assert cmp.n == 1 and not cmp.significant

    def test_empty(self):
        cmp = paired_compare([], [])
        assert cmp.n == 0 and not cmp.significant

    def test_str_marker(self):
        sig = paired_compare([90.0] * 4, [70.0, 71.0, 69.0, 72.0])
        assert str(sig).endswith("*")
