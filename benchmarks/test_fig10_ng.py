"""Fig. 10: global-scheduling ablation on GS HET (scaled RC80).

Paper shapes asserted:

* global scheduling beats greedy one-at-a-time on mean SLO attainment
  (the paper reports gaps up to 36 %, largest under over-estimation);
* even TetriSched-NG outperforms Rayon/CS in both SLO attainment and BE
  latency ("greedy policies using TetriSched's other features are viable").
"""

from conftest import nanmean, save_and_print

from repro.experiments import fig10

TOL = 6.0


def test_fig10(benchmark, figure_cache):
    result = benchmark.pedantic(
        lambda: figure_cache("fig10", fig10), rounds=1, iterations=1)
    save_and_print("fig10", result.text)
    sweep = result.sweep

    ts = sweep.get("TetriSched", "slo_total_pct")
    ng = sweep.get("TetriSched-NG", "slo_total_pct")
    cs = sweep.get("Rayon/CS", "slo_total_pct")

    assert nanmean(ts) >= nanmean(ng) - 1.0, "global scheduling should win"
    # Over-estimation half of the sweep shows the clearest global benefit.
    over = [v for x, v in zip(sweep.x_values, ts) if x >= 0]
    over_ng = [v for x, v in zip(sweep.x_values, ng) if x >= 0]
    assert nanmean(over) >= nanmean(over_ng)

    # Even greedy TetriSched beats Rayon/CS on both metrics.
    assert nanmean(ng) > nanmean(cs)
    ng_lat = sweep.get("TetriSched-NG", "mean_be_latency_s")
    cs_lat = sweep.get("Rayon/CS", "mean_be_latency_s")
    assert nanmean(ng_lat) < nanmean(cs_lat)
