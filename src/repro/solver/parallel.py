"""Parallel + incremental solving of decomposed MILP components.

Two orthogonal accelerations for the per-cycle decomposed solve
(:mod:`repro.solver.decompose`), both schedule-preserving:

* **Process-pool execution** — :class:`WorkerPool` keeps a persistent pool
  of worker processes (fork-or-spawn, created lazily, reused across
  scheduling cycles, shut down atexit) and farms independent components
  out to them.  Results are gathered *by component index*, so the
  recombination order — and therefore the assembled solution — is
  identical to a sequential solve regardless of completion order.  Any
  pool failure (pickling, broken worker) falls back to in-process solving
  rather than failing the cycle.

* **Component memoization** — :class:`ComponentCache` maps a canonical
  numeric fingerprint of a component (constraint rows, bounds, objective,
  integrality; variable *names* deliberately excluded) to its cached
  :class:`~repro.solver.result.MILPResult`.  The paper re-plans every
  cycle (Sec. 3.2), yet between 4-second cycles most components are
  numerically unchanged — an exact fingerprint hit replays the stored
  result bit-for-bit without invoking the solver.  A *near-miss* (same
  structure, different right-hand sides or bounds — e.g. supply changed
  because a job launched or finished mid-window) instead donates the
  cached solution as a warm-start candidate, which competes with the
  scheduler's time-shifted previous plan (Sec. 3.2.2) sliced down to the
  component; the better feasible seed wins.  Any supply change alters the
  rhs bytes, so the exact entry self-invalidates — there is no staleness
  window.

Per-component solver budgets are carved out of the cycle budget by
:func:`carve_time_budgets`: a component gets wall-clock proportional to
its share of the remaining variables, so one huge block cannot starve the
small ones, and the per-component relative gap stays the cycle gap (each
block within the gap implies the recombined union is too).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.solver.model import MAXIMIZE, Model
from repro.solver.options import SolveOptions
from repro.solver.result import MILPResult

# -- component fingerprints ---------------------------------------------------


@dataclass(frozen=True)
class ComponentFingerprint:
    """Canonical identity of a component MILP.

    ``exact`` covers every number that can influence the solve: sparsity
    pattern, coefficients, right-hand sides, objective, bounds and
    integrality.  ``structural`` excludes the right-hand sides and the
    variable bounds — two models sharing it are "the same problem with
    shifted supply", which is exactly the near-miss case where the old
    solution is a promising (and safely validated) warm start.
    """

    exact: str
    structural: str


def _digest(parts: list[bytes]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
        h.update(b"|")  # keep field boundaries unambiguous
    return h.hexdigest()


def component_fingerprint(model: Model) -> ComponentFingerprint:
    """Fingerprint a model from its (cached) sparse export.

    Uses :meth:`~repro.solver.model.Model.to_sparse_arrays`, which the
    backends consume anyway, so fingerprinting a component that is about
    to be solved costs one hash pass over arrays that already exist.
    """
    return fingerprint_arrays(model.to_sparse_arrays())


def fingerprint_arrays(sa) -> ComponentFingerprint:
    """Fingerprint a :class:`~repro.solver.model.SparseArrays` export.

    The machinery behind :func:`component_fingerprint`, exposed separately
    so the cross-cycle delta compiler can fingerprint per-job fragments
    (which keep their local CSR export but no scratch model) and diff them
    against the previous cycle — the same identity notion the component
    cache uses for replay, applied one level earlier in the pipeline.
    """
    structural_parts = [
        repr((sa.a_ub.shape, sa.a_eq.shape)).encode(),
        sa.a_ub.indptr.tobytes(), sa.a_ub.indices.tobytes(),
        sa.a_ub.data.tobytes(),
        sa.a_eq.indptr.tobytes(), sa.a_eq.indices.tobytes(),
        sa.a_eq.data.tobytes(),
        sa.c.tobytes(), repr((sa.obj_constant, sa.obj_sign)).encode(),
        sa.integrality.tobytes(),
    ]
    exact_parts = structural_parts + [
        sa.b_ub.tobytes(), sa.b_eq.tobytes(),
        sa.lb.tobytes(), sa.ub.tobytes(),
    ]
    return ComponentFingerprint(exact=_digest(exact_parts),
                                structural=_digest(structural_parts))


# -- the memoization cache ----------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss accounting (also mirrored into :mod:`repro.obs` counters)."""

    hits: int = 0
    misses: int = 0
    warm_hits: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "warm_hits": self.warm_hits, "evictions": self.evictions}


@dataclass
class CacheHit:
    """Outcome of a cache lookup: a full result, a warm seed, or neither."""

    result: MILPResult | None = None
    warm_start: np.ndarray | None = None
    fingerprint: ComponentFingerprint | None = None


class ComponentCache:
    """Cross-cycle memoization of solved components, LRU-bounded.

    Exact-fingerprint hits return a *copy* of the stored result: the same
    incumbent, objective bits, bound and gap the solver produced when the
    identical numeric model was first solved, at zero solver cost.
    Structural hits return the stored incumbent as a warm-start candidate
    only if it is feasible for the *new* model (checked here, so callers
    never seed a solver with garbage).
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._exact: OrderedDict[str, MILPResult] = OrderedDict()
        self._structural: dict[str, np.ndarray] = {}
        #: exact key -> structural key, for eviction bookkeeping.
        self._struct_of: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._exact)

    def lookup(self, model: Model) -> CacheHit:
        """Find a stored result (exact) or warm-start seed (near-miss)."""
        fp = component_fingerprint(model)
        cached = self._exact.get(fp.exact)
        if cached is not None:
            self._exact.move_to_end(fp.exact)
            self.stats.hits += 1
            obs.count("solver.cache.hits")
            return CacheHit(result=_copy_result(cached), fingerprint=fp)
        self.stats.misses += 1
        obs.count("solver.cache.misses")
        seed = self._structural.get(fp.structural)
        if seed is not None and model.check_feasible(seed):
            self.stats.warm_hits += 1
            obs.count("solver.cache.warm_hits")
            return CacheHit(warm_start=seed.copy(), fingerprint=fp)
        return CacheHit(fingerprint=fp)

    def store(self, model: Model, result: MILPResult,
              fingerprint: ComponentFingerprint | None = None) -> None:
        """Memoize a solved component (no-op for solutionless results)."""
        if not result.status.has_solution or result.x is None:
            return
        fp = fingerprint or component_fingerprint(model)
        self._exact[fp.exact] = _copy_result(result)
        self._exact.move_to_end(fp.exact)
        self._struct_of[fp.exact] = fp.structural
        self._structural[fp.structural] = result.x.copy()
        while len(self._exact) > self.max_entries:
            evicted_key, _ = self._exact.popitem(last=False)
            struct_key = self._struct_of.pop(evicted_key, None)
            # Drop the structural seed only when no surviving exact entry
            # still maps to it.
            if (struct_key is not None
                    and struct_key not in self._struct_of.values()):
                self._structural.pop(struct_key, None)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._exact.clear()
        self._structural.clear()
        self._struct_of.clear()


def _copy_result(res: MILPResult) -> MILPResult:
    """Deep-enough copy: callers may mutate ``x`` and ``stats`` freely."""
    return MILPResult(status=res.status,
                      x=None if res.x is None else res.x.copy(),
                      objective=res.objective, bound=res.bound, gap=res.gap,
                      nodes=res.nodes, solve_time=res.solve_time,
                      stats=dict(res.stats))


def best_warm_start(model: Model, *candidates: np.ndarray | None
                    ) -> np.ndarray | None:
    """The feasible candidate with the best objective in the model's sense.

    Used to arbitrate between the scheduler's time-shifted previous plan
    (sliced to the component) and a cache near-miss seed.
    """
    best: np.ndarray | None = None
    best_val = -np.inf
    sign = 1.0 if model.objective_sense == MAXIMIZE else -1.0
    for cand in candidates:
        if cand is None or not model.check_feasible(cand):
            continue
        val = sign * model.objective_value(cand)
        if val > best_val:
            best, best_val = cand, val
    return best


# -- per-component budgets ----------------------------------------------------

#: Never hand a component less than this share of a second: tiny budgets
#: buy nothing but still cost a solver invocation's setup.
MIN_COMPONENT_BUDGET_S = 0.05


def carve_time_budgets(total: float | None,
                       sizes: list[int]) -> list[float | None]:
    """Split a cycle wall-clock budget across components by variable count.

    ``None`` (unlimited) stays unlimited for everyone.  Shares are
    proportional to component size with a small floor, so a dominant block
    gets most of the budget without starving the rest.  The floor is paid
    for by renormalizing the above-floor shares, so the carved budgets
    never sum past ``total`` — with many tiny components a naive
    ``max(floor, share)`` oversubscribes the cycle budget and the broken-
    pool *sequential* fallback then blows the wall clock.
    """
    if total is None:
        return [None] * len(sizes)
    n = len(sizes)
    if not n:
        return []
    if total <= MIN_COMPONENT_BUDGET_S * n:
        # Floor unaffordable: fall back to an even split of what there is.
        return [total / n] * n
    weight = sum(sizes) or 1
    shares = [total * size / weight for size in sizes]
    # Water-fill: components below the floor get exactly the floor; the
    # rest share what remains, proportionally.  Renormalizing can push
    # more shares under the floor, so iterate (n rounds at most).
    floored = [s <= MIN_COMPONENT_BUDGET_S for s in shares]
    while True:
        above = [sizes[i] for i in range(n) if not floored[i]]
        remaining = total - MIN_COMPONENT_BUDGET_S * (n - len(above))
        above_weight = sum(above) or 1
        changed = False
        for i in range(n):
            if floored[i]:
                continue
            shares[i] = remaining * sizes[i] / above_weight
            if shares[i] <= MIN_COMPONENT_BUDGET_S:
                floored[i] = True
                changed = True
        if not changed:
            break
    return [MIN_COMPONENT_BUDGET_S if floored[i] else shares[i]
            for i in range(n)]


# -- the persistent worker pool -----------------------------------------------


def _solve_in_worker(payload):  # pragma: no cover - runs in a subprocess
    """Worker-side task: solve one component; report pid + wall time."""
    index, backend, model, options = payload
    t0 = time.monotonic()
    result = backend.solve(model, options=options)
    return index, result, os.getpid(), time.monotonic() - t0


@dataclass
class _TaskTiming:
    index: int
    worker_pid: int
    wall_s: float


class WorkerPool:
    """A persistent process pool solving components concurrently.

    Wraps :class:`concurrent.futures.ProcessPoolExecutor`; each task ships
    ``(backend, sub-model, per-call options)`` and returns the
    :class:`~repro.solver.result.MILPResult` plus worker identity and wall
    time (the parent re-emits those as :mod:`repro.obs` events, since each
    worker process has its own — disabled — obs registry).
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError("WorkerPool needs >= 2 workers; "
                             "use in-process solving below that")
        self.workers = workers
        self._executor = None
        self._broken = False

    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def solve_many(self, backend, tasks: list[tuple[int, Model, SolveOptions]]
                   ) -> dict[int, MILPResult] | None:
        """Solve ``(index, model, options)`` tasks; results keyed by index.

        Returns ``None`` when the pool is unusable (the caller then solves
        in-process) — a broken pool must degrade, never fail a cycle.
        """
        if self._broken or not tasks:
            return None if self._broken else {}
        try:
            executor = self._ensure_executor()
            futures = [executor.submit(_solve_in_worker,
                                       (idx, backend, model, options))
                       for idx, model, options in tasks]
            results: dict[int, MILPResult] = {}
            timings: list[_TaskTiming] = []
            for future in futures:
                index, result, pid, wall_s = future.result()
                results[index] = result
                timings.append(_TaskTiming(index, pid, wall_s))
        except Exception:
            # Pickling failure, broken worker, interpreter shutdown...:
            # mark the pool unusable and let the caller fall back.
            self._broken = True
            obs.count("solver.parallel.pool_failures")
            return None
        self._emit_timings(timings)
        return results

    def _emit_timings(self, timings: list[_TaskTiming]) -> None:
        obs.count("solver.parallel.tasks", len(timings))
        per_worker: dict[int, float] = {}
        for t in timings:
            per_worker[t.worker_pid] = per_worker.get(t.worker_pid, 0.0) \
                + t.wall_s
            obs.emit("solver.parallel.component", index=t.index,
                     worker=t.worker_pid, time_ms=1000.0 * t.wall_s)
        if timings:
            obs.emit("solver.parallel.workers",
                     workers={str(pid): round(s, 6)
                              for pid, s in sorted(per_worker.items())},
                     tasks=len(timings))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._broken = False


#: Process-global pool registry: one persistent pool per worker count,
#: created lazily and reused across scheduling cycles and schedulers.
_POOLS: dict[int, WorkerPool] = {}


def get_pool(workers: int) -> WorkerPool:
    """The shared persistent :class:`WorkerPool` for ``workers`` processes."""
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = WorkerPool(workers)
    return pool


def shutdown_pools() -> None:
    """Tear down every persistent pool (atexit, and tests)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


__all__ = [
    "CacheHit", "CacheStats", "ComponentCache", "ComponentFingerprint",
    "MIN_COMPONENT_BUDGET_S", "WorkerPool", "best_warm_start",
    "carve_time_budgets", "component_fingerprint", "fingerprint_arrays",
    "get_pool", "shutdown_pools",
]
