"""Tests for elastic (malleable) jobs — the Sec. 4.1 space-time elasticity."""

import pytest

from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.errors import WorkloadError
from repro.sim import (ElasticType, Job, Simulation, TetriSchedAdapter,
                       UnconstrainedType)
from repro.workloads.serialization import job_from_dict, job_to_dict

UN = UnconstrainedType()


@pytest.fixture()
def cluster():
    return Cluster.build(racks=1, nodes_per_rack=8)


class TestElasticType:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ElasticType(min_k=0)
        with pytest.raises(WorkloadError):
            ElasticType(efficiency=0.0)
        with pytest.raises(WorkloadError):
            ElasticType(efficiency=1.5)

    def test_options_cover_width_range(self, cluster):
        opts = ElasticType(min_k=2).options(cluster, k=4, runtime_s=10.0)
        widths = [o.k for o in opts]
        assert widths == [4, 3, 2]  # widest (fastest) first

    def test_work_conservation_perfect_scaling(self, cluster):
        t = ElasticType(min_k=1, efficiency=1.0)
        opts = {o.k: o.duration_s for o in t.options(cluster, 4, 10.0)}
        # Work = 40 node-seconds at every width.
        for width, dur in opts.items():
            assert width * dur == pytest.approx(40.0)

    def test_efficiency_penalty_below_full_width(self, cluster):
        t = ElasticType(min_k=1, efficiency=0.8)
        opts = {o.k: o.duration_s for o in t.options(cluster, 4, 10.0)}
        assert opts[4] == pytest.approx(10.0)           # reference width
        assert opts[2] == pytest.approx(20.0 / 0.8)     # penalized

    def test_true_runtime_matches_options(self, cluster):
        t = ElasticType(min_k=1, efficiency=0.9)
        nodes3 = frozenset(sorted(cluster.node_names)[:3])
        opts = {o.k: o.duration_s for o in t.options(cluster, 4, 10.0)}
        assert t.true_runtime(cluster, nodes3, 10.0, 4) == pytest.approx(
            opts[3])

    def test_min_k_larger_than_k_collapses(self, cluster):
        opts = ElasticType(min_k=9).options(cluster, k=4, runtime_s=10.0)
        assert [o.k for o in opts] == [4]

    def test_serialization_roundtrip(self):
        job = Job("e", ElasticType(min_k=2, efficiency=0.75), k=6,
                  base_runtime_s=10.0, submit_time=0.0)
        back = job_from_dict(job_to_dict(job))
        assert back.job_type == ElasticType(min_k=2, efficiency=0.75)


class TestElasticScheduling:
    def adapter(self, cluster):
        return TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=60))

    def test_idle_cluster_gives_full_width(self, cluster):
        job = Job("e", ElasticType(min_k=1), k=8, base_runtime_s=20,
                  submit_time=0.0, deadline=200.0)
        res = Simulation(cluster, self.adapter(cluster), [job]).run()
        o = res.outcomes["e"]
        assert len(o.nodes) == 8                       # full width
        assert o.finish_time == pytest.approx(20.0)

    def test_busy_cluster_shrinks_width(self, cluster):
        """Under contention the elastic job takes fewer nodes and runs
        longer instead of waiting for the full gang."""
        rigid = Job("rigid", UN, k=6, base_runtime_s=40, submit_time=0.0,
                    deadline=45.0)  # must start now
        elastic = Job("e", ElasticType(min_k=1), k=8, base_runtime_s=10,
                      submit_time=0.0, deadline=300.0)
        res = Simulation(cluster, self.adapter(cluster),
                         [rigid, elastic]).run()
        rigid_out = res.outcomes["rigid"]
        e = res.outcomes["e"]
        assert rigid_out.met_deadline
        assert e.start_time == 0.0                     # no waiting
        assert len(e.nodes) == 2                       # remaining capacity
        # Work conservation: 8*10 node-seconds on 2 nodes -> 40s.
        assert e.finish_time - e.start_time == pytest.approx(40.0)

    def test_elastic_meets_deadline_by_widening(self, cluster):
        """A tight deadline forces a wide allocation even if narrow ones
        exist in the option list."""
        elastic = Job("e", ElasticType(min_k=1), k=8, base_runtime_s=10,
                      submit_time=0.0, deadline=15.0)
        res = Simulation(cluster, self.adapter(cluster), [elastic]).run()
        o = res.outcomes["e"]
        assert o.met_deadline
        assert len(o.nodes) == 8
