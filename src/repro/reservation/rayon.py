"""Rayon-style reservation system: admission control over future capacity.

Rayon [Curino et al., SoCC'14] is the YARN reservation system TetriSched
runs in tandem with (Sec. 2.1).  Its role in the paper's evaluation:

* SLO jobs submit a reservation (RDL ``Window``/``Atom``) on arrival;
* Rayon *accepts* the reservation iff the requested gang fits into the
  remaining capacity plan before the deadline (using the job's *estimated*
  runtime — mis-estimation at this stage is exactly what Sec. 7.1 studies);
* accepted jobs are "accepted SLO jobs" (value 1000x); rejected ones become
  "SLO jobs without reservation" (25x) and compete as high-priority
  best-effort (Sec. 6.2.2);
* both the Rayon/CapacityScheduler stack and Rayon/TetriSched consume the
  *same* admission decisions, so the comparison isolates the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReservationError
from repro.reservation.plan import ReservationPlan, ReservedWindow
from repro.strl.rdl import Window


@dataclass(frozen=True)
class ReservationDecision:
    """Outcome of admission control for one job."""

    job_id: str
    accepted: bool
    window: ReservedWindow | None = None

    @property
    def start_s(self) -> float:
        if self.window is None:
            raise ReservationError(f"job {self.job_id!r} was not accepted")
        return self.window.start_s


class RayonReservationSystem:
    """Admission control frontend shared by both scheduler stacks.

    Example
    -------
    >>> rayon = RayonReservationSystem(capacity=4, step_s=10)
    >>> d = rayon.submit("j1", k=2, duration_s=20, arrival_s=0, deadline_s=60)
    >>> d.accepted
    True
    """

    def __init__(self, capacity: int, step_s: float = 4.0) -> None:
        self.plan = ReservationPlan(capacity, step_s)
        self.decisions: dict[str, ReservationDecision] = {}

    def submit(self, job_id: str, k: int, duration_s: float, arrival_s: float,
               deadline_s: float) -> ReservationDecision:
        """Run admission control for a job's reservation request.

        Finds the earliest slot where ``k`` nodes are free for the full
        (estimated) duration without violating prior guarantees; accepts and
        records it, or rejects.
        """
        if job_id in self.decisions:
            raise ReservationError(f"job {job_id!r} already submitted")
        start = self.plan.find_earliest_start(k, duration_s, arrival_s,
                                              deadline_s)
        if start is None:
            decision = ReservationDecision(job_id, accepted=False)
        else:
            window = self.plan.reserve(job_id, k, start, duration_s)
            decision = ReservationDecision(job_id, accepted=True,
                                           window=window)
        self.decisions[job_id] = decision
        return decision

    def submit_rdl(self, job_id: str, window: Window,
                   arrival_s: float) -> ReservationDecision:
        """Admission control from an RDL expression (Sec. 4.4 interface)."""
        atom = window.atom
        return self.submit(job_id, k=atom.k, duration_s=atom.duration_s,
                           arrival_s=max(arrival_s, window.start_s),
                           deadline_s=window.finish_s)

    def decision_of(self, job_id: str) -> ReservationDecision:
        try:
            return self.decisions[job_id]
        except KeyError:
            raise ReservationError(
                f"job {job_id!r} never submitted a reservation") from None

    def is_accepted(self, job_id: str) -> bool:
        """True iff the job holds an accepted reservation.

        Jobs that never submitted return False (best-effort jobs).
        """
        decision = self.decisions.get(job_id)
        return decision is not None and decision.accepted

    def on_job_complete(self, job_id: str, at_s: float) -> None:
        """Release the unused tail of a reservation on (early) completion."""
        if self.is_accepted(job_id) and self.plan.has_reservation(job_id):
            self.plan.release(job_id, at_s)

    def guaranteed_capacity_at(self, t: float) -> int:
        """Total capacity promised to reservations at time ``t``.

        The CapacityScheduler uses this to decide how much of the cluster
        must be protected (via preemption if needed) for reserved jobs.
        """
        return self.plan.reserved_at(t)
