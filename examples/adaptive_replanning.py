#!/usr/bin/env python3
"""Adaptive re-planning under runtime mis-estimation (Sec. 2.3.3, 7.1).

The same two-job scenario runs three times on a 4-node cluster with the
first job's runtime estimate at -50 %, exact, and +100 %.  The punchline is
that all three Gantt charts are *identical*: because TetriSched re-plans
every cycle from the latest observed state, the successor starts exactly
when the mis-estimated job truly finishes —

* under-estimation cannot double-book its nodes (the overdue job keeps
  occupying them one quantum at a time in the scheduler's view), and
* over-estimation cannot strand capacity (the completion event frees the
  nodes and the next cycle launches the successor immediately, instead of
  waiting for the believed 80 s finish a static plan would enforce).

A static reservation-shaped plan would diverge in both directions; adaptive
re-planning makes the outcome insensitive to the estimate.

Run:  python examples/adaptive_replanning.py
"""

from repro import Cluster, TetriSchedConfig
from repro.sim import (ExecutionTrace, Job, Simulation, TetriSchedAdapter,
                       UnconstrainedType)

UN = UnconstrainedType()


def scenario(title: str, estimate_error: float) -> None:
    cluster = Cluster.build(racks=1, nodes_per_rack=4)
    adapter = TetriSchedAdapter(cluster, TetriSchedConfig(
        quantum_s=10, cycle_s=10, plan_ahead_s=80))
    trace = ExecutionTrace()
    jobs = [
        Job("mis", UN, k=4, base_runtime_s=40, submit_time=0.0,
            deadline=300.0, estimate_error=estimate_error),
        Job("next", UN, k=4, base_runtime_s=20, submit_time=5.0,
            deadline=300.0),
    ]
    result = Simulation(cluster, adapter, jobs, trace=trace).run()
    believed = 40 * (1 + estimate_error)
    print(f"{title}")
    print(f"  job 'mis': believed {believed:.0f}s, actually 40s")
    for job_id in ("mis", "next"):
        o = result.outcomes[job_id]
        print(f"  {job_id:<5s} start={o.start_time:>5.0f}s "
              f"finish={o.finish_time:>5.0f}s")
    print(trace.gantt(sorted(cluster.node_names), quantum_s=10.0))
    print()


def main() -> None:
    scenario("Under-estimation (-50%)", estimate_error=-0.5)
    scenario("Accurate estimates (baseline)", estimate_error=0.0)
    scenario("Over-estimation (+100%)", estimate_error=1.0)
    print("All three schedules are identical: adaptive re-planning makes "
          "the outcome\ninsensitive to the runtime estimate.")


if __name__ == "__main__":
    main()
