"""Pipeline stages of one *sharded* scheduling cycle.

The sharded cycle mirrors the monolithic one (generate -> compile ->
model-build -> solve -> extract) but everything between generation and
extraction happens per scheduling domain, with a reconciliation pass for
cross-domain gangs at the end::

    StrlGeneration -> DomainAssign -> DomainCompile -> DomainModelBuild
        -> DomainSolve -> DomainExtract -> DomainReconcile [-> ShardAudit]

Two invariants the stages are written around:

* **shard_count=1 is bit-equal to the monolithic pipeline.**  A single
  whole-cluster domain restricts nothing (assignment preserves queue
  order, option intersection is the identity), compiles through the same
  :class:`~repro.core.delta.DeltaCompiler` / ``StrlCompiler`` path against
  the same state, warm-starts from the same shifted plan, and replicates
  the monolithic Solve stage's branch structure exactly — so the solved
  ``x``, the launch decisions, and the halting behavior coincide.
* **Domains are node-disjoint**, so per-domain models draw from disjoint
  supply and the union of their solutions is feasible globally; the
  shared :class:`~repro.core.allocation.PlanAccumulator` that all domains
  materialize into (and that the reconciliation model compiles against)
  enforces this at node granularity — a real conflict raises instead of
  double-booking.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro import obs
from repro.core.allocation import PlanAccumulator
from repro.core.compiler import StrlCompiler
from repro.errors import SchedulerError
from repro.pipeline.stages import StageName
from repro.solver.decompose import (decompose, solve_decomposed,
                                    solve_many_decomposed)
from repro.solver.options import SolveOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import CycleContext


class DomainAssign:
    """Assign each generated job to a scheduling domain (or to boundary)."""

    name = StageName.SHARD_ASSIGN

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        ctx.shard = sched._coordinator.assign(sched, ctx.exprs,
                                              ctx.requests, ctx.now)
        sh = ctx.shard
        obs.emit("scheduler.shard_assign",
                 domains=len(sh.active_domains()),
                 boundary=len(sh.boundary), trimmed=len(sh.trimmed),
                 quality_bound=sh.quality_bound)


class DomainCompile:
    """Compile one MILP per active domain (delta-compiled when enabled)."""

    name = StageName.COMPILE

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        sh = ctx.shard
        assert sh is not None
        stores = sched._coordinator.delta_stores
        deltas = []
        for did in sh.active_domains():
            batch = sh.batches[did]
            if stores is not None:
                compiled, delta = stores.compile_domain(
                    did, batch, now=ctx.now,
                    verify=ctx.config.delta_mode == "verify")
                deltas.append(delta)
            else:
                compiler = StrlCompiler(sched.state, ctx.config.quantum_s,
                                        ctx.now)
                compiled = compiler.compile(batch)
            sh.compiled[did] = compiled
            ctx.telemetry.milp_variables += compiled.stats["variables"]
            ctx.telemetry.milp_constraints += compiled.stats["constraints"]
        if deltas:
            from repro.core.delta import merge_cycle_deltas
            ctx.delta = merge_cycle_deltas(deltas)


class DomainModelBuild:
    """Force per-domain sparse exports and build per-domain warm starts."""

    name = StageName.MODEL_BUILD

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        sh = ctx.shard
        assert sh is not None
        for did in sh.active_domains():
            sp = sh.compiled[did].model.to_sparse_arrays()
            ctx.nnz += sp.nnz
        obs.emit("scheduler.model_build",
                 variables=ctx.telemetry.milp_variables,
                 constraints=ctx.telemetry.milp_constraints, nnz=ctx.nnz)
        if ctx.config.warm_start:
            ctx.telemetry.warm_start_attempted = True
            with obs.span("warm_start"):
                for did in sh.active_domains():
                    # The shifted previous plan slices cleanly per domain:
                    # entries for jobs outside this domain's batch have no
                    # indicator in its model and are skipped.
                    sh.warm[did] = sched._build_warm_start(sh.compiled[did],
                                                           ctx.now)
            ctx.telemetry.warm_start_hit = any(
                w is not None for w in sh.warm.values())


class DomainSolve:
    """Solve every domain MILP — all domains in one pooled dispatch.

    With a single active domain the monolithic Solve stage's branch
    structure is replicated exactly (including the halt on an unsolved
    cycle), which is the solve half of the ``shard_count=1`` bit-equality
    guarantee.  With several domains, each domain model is decomposed into
    its connected components and *all* components across *all* domains go
    to :func:`~repro.solver.decompose.solve_many_decomposed` as one
    worker-pool batch; a domain whose solve produces no solution (e.g. a
    timeout under a tight budget) is marked for the greedy per-job
    fallback instead of halting the whole cycle.
    """

    name = StageName.SOLVE

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        sh = ctx.shard
        assert sh is not None
        dids = sh.active_domains()
        if not dids:
            return  # pure-boundary cycle: reconciliation does the work
        if len(dids) == 1:
            self._solve_single(ctx, dids[0])
            return

        tel = ctx.telemetry
        if not ctx.config.decomposition:
            # Respect the ablation flag: one monolithic solve per domain.
            ctx.components = 0
            for did in dids:
                compiled = sh.compiled[did]
                groups = None
                if ctx.config.solve_mode != "exact":
                    groups = tuple(compiled.lazy_column_groups())
                t0 = time.monotonic()
                res = sched._backend.solve(
                    compiled.model,
                    options=SolveOptions(warm_start=sh.warm.get(did),
                                         column_groups=groups))
                self._record(ctx, did, res, time.monotonic() - t0)
                ctx.components += 1
            return

        decomps = [decompose(sh.compiled[did].model) for did in dids]
        opts = [SolveOptions(warm_start=sh.warm.get(did),
                             workers=ctx.config.solver_workers,
                             component_cache=sched._component_cache)
                for did in dids]
        ctx.components = sum(max(1, d.num_components) for d in decomps)
        t0 = time.monotonic()
        results = solve_many_decomposed(decomps, sched._backend, opts,
                                        dispatch_seed=ctx.config.seed)
        wall = time.monotonic() - t0
        tel.solver_latency_s += wall
        for did, res in zip(dids, results):
            self._record(ctx, did, res, res.solve_time, add_latency=False)
        obs.emit("scheduler.shard_solve", domains=len(dids),
                 components=ctx.components, wall_s=wall,
                 fallbacks=len(sh.fallback_domains))

    def _record(self, ctx: "CycleContext", did: int, res,
                solve_s: float, add_latency: bool = True) -> None:
        sh = ctx.shard
        tel = ctx.telemetry
        sh.solve_s[did] = solve_s
        if add_latency:
            tel.solver_latency_s += solve_s
        tel.absorb(res)
        if not res.status.has_solution or res.x is None:
            sh.fallback_domains.append(did)
            return
        tel.objective += res.objective
        sh.results[did] = res

    def _solve_single(self, ctx: "CycleContext", did: int) -> None:
        """The monolithic Solve branch, verbatim, on the one domain."""
        sched = ctx.scheduler
        sh = ctx.shard
        tel = ctx.telemetry
        compiled = sh.compiled[did]
        decomp = decompose(compiled.model) if ctx.config.decomposition \
            else None
        ctx.components = max(1, decomp.num_components) if decomp else 1
        t0 = time.monotonic()
        if decomp is not None and (decomp.num_components > 1
                                   or decomp.free_indices.size):
            res = solve_decomposed(
                decomp, sched._backend,
                options=SolveOptions(
                    warm_start=sh.warm.get(did),
                    workers=ctx.config.solver_workers,
                    component_cache=sched._component_cache))
        else:
            groups = None
            if ctx.config.solve_mode != "exact":
                groups = tuple(compiled.lazy_column_groups())
            res = sched._backend.solve(
                compiled.model,
                options=SolveOptions(warm_start=sh.warm.get(did),
                                     column_groups=groups))
        sh.solve_s[did] = time.monotonic() - t0
        tel.solver_latency_s += sh.solve_s[did]
        tel.absorb(res)
        if not res.status.has_solution:
            sched._prev_plan = []
            ctx.halt()
            return
        tel.objective = res.objective
        sh.results[did] = res


class DomainExtract:
    """Decode every solved domain into the shared space-time accumulator.

    Fallback domains (no MILP solution) are greedily re-scheduled job by
    job against the same accumulator — TetriSched-NG semantics scoped to
    just the failed domain, so one overloaded domain degrades alone
    instead of starving the cycle.
    """

    name = StageName.EXTRACT

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        sh = ctx.shard
        assert sh is not None
        acc = PlanAccumulator(sched.state, ctx.now, ctx.config.quantum_s)
        sh.acc = acc
        prev_plan = []
        for did in sh.active_domains():
            res = sh.results.get(did)
            if res is None:
                continue
            compiled = sh.compiled[did]
            with obs.span("decode"):
                placements = compiled.decode(res.x)
                prev_plan.extend(
                    (rec.job_id, rec.leaf)
                    for rec in compiled.leaf_records
                    if rec.chosen_counts(res.x))
            with obs.span("materialize"):
                allocs = sched._materialize(placements, compiled, acc,
                                            ctx.requests, ctx.now)
            ctx.result.allocations.extend(allocs)
        sched._prev_plan = prev_plan
        sched._prev_now = ctx.now
        for did in sh.fallback_domains:
            self._greedy_domain(ctx, did, acc)

    def _greedy_domain(self, ctx: "CycleContext", did: int,
                       acc: PlanAccumulator) -> None:
        """Per-job solo MILPs over the shared accumulator (one domain)."""
        sched = ctx.scheduler
        tel = ctx.telemetry
        obs.count("scheduler.shard.greedy_fallback")
        for job_id, expr in ctx.shard.batches[did]:
            compiler = StrlCompiler(acc, ctx.config.quantum_s, ctx.now)
            compiled = compiler.compile([(job_id, expr)])
            t0 = time.monotonic()
            res = sched._backend.solve(compiled.model)
            tel.solver_latency_s += time.monotonic() - t0
            tel.absorb(res)
            if not res.status.has_solution or res.x is None:
                continue
            tel.objective += res.objective
            placements = compiled.decode(res.x)
            _materialize_transactional(ctx, compiled, placements, acc)


def _materialize_transactional(ctx: "CycleContext", compiled, placements,
                               acc: PlanAccumulator) -> None:
    """Reserve decoded placements per job, rolling back on pick failure.

    Models compiled against the accumulator see interval-capped
    availability, which cannot fully protect multi-leaf ``min`` gangs
    from fragmentation — exactly the greedy path's hazard, handled the
    same way: a job whose picks cannot all be assigned reserves nothing
    and is re-planned next cycle.
    """
    sched = ctx.scheduler
    by_job: dict[str, list] = {}
    for pl in placements:
        by_job.setdefault(pl.job_id, []).append(pl)
    for job_id in sorted(by_job):
        picked: list[tuple[frozenset[str], int, int]] = []
        launches: list[tuple[frozenset[str], int]] = []
        failed = False
        for pl in sorted(by_job[job_id], key=lambda p: p.start):
            try:
                nodes = acc.pick(compiled.partitioning, pl.node_counts,
                                 pl.start, pl.duration)
            except SchedulerError:
                failed = True
                break
            picked.append((nodes, pl.start, pl.duration))
            if pl.start == 0:
                launches.append((nodes, pl.duration))
        if failed:
            for nodes, start, duration in picked:
                acc.unreserve(nodes, start, duration)
            obs.count("scheduler.shard.pick_rollbacks")
            continue
        for nodes, dur in launches:
            ctx.result.allocations = sched._merge_launch(
                ctx.result.allocations, job_id, nodes, ctx.now,
                ctx.now + dur * ctx.config.quantum_s)


class DomainReconcile:
    """Schedule the boundary jobs against the residual availability.

    Cross-domain gangs (no single domain can host any of their options)
    were excluded from every domain model; after extraction, the shared
    accumulator holds exactly the capacity the domain solutions left
    over.  Compiling the boundary jobs' *unrestricted* expressions against
    it yields a small coupling MILP whose placements are feasible jointly
    with every domain's — the packing-and-placement reconciliation,
    confined to the boundary jobs only.
    """

    name = StageName.RECONCILE

    def run(self, ctx: "CycleContext") -> None:
        sh = ctx.shard
        assert sh is not None
        if not sh.boundary:
            return
        sched = ctx.scheduler
        tel = ctx.telemetry
        acc = sh.acc
        if acc is None:  # pure-boundary cycle: Extract had nothing to do
            acc = PlanAccumulator(sched.state, ctx.now,
                                  ctx.config.quantum_s)
            sh.acc = acc
        compiler = StrlCompiler(acc, ctx.config.quantum_s, ctx.now)
        compiled = compiler.compile(list(sh.boundary))
        tel.milp_variables += compiled.stats["variables"]
        tel.milp_constraints += compiled.stats["constraints"]
        t0 = time.monotonic()
        res = sched._backend.solve(compiled.model)
        tel.solver_latency_s += time.monotonic() - t0
        tel.absorb(res)
        sh.reconcile = (compiled, res, list(sh.boundary))
        if not res.status.has_solution or res.x is None:
            return
        tel.objective += res.objective
        with obs.span("decode"):
            placements = compiled.decode(res.x)
            sched._prev_plan.extend(
                (rec.job_id, rec.leaf) for rec in compiled.leaf_records
                if rec.chosen_counts(res.x))
        with obs.span("materialize"):
            _materialize_transactional(ctx, compiled, placements, acc)
        obs.emit("scheduler.shard_reconcile", jobs=len(sh.boundary),
                 objective=res.objective)


class ShardAudit:
    """Verify the reconciled global schedule (``audit_mode``).

    Per-domain MILP certificates plus :func:`repro.verify.audit_sharded`:
    each domain's solution is audited in isolation (capacity, shape,
    objective reconciliation), then the cross-domain invariants — domain
    node-disjointness, no job solved in two domains, globally disjoint
    launch nodes, and aggregate space-time capacity across all batches
    including the reconciliation solve.
    """

    name = StageName.AUDIT

    def run(self, ctx: "CycleContext") -> None:
        from repro.verify import (AuditViolation, audit_sharded,
                                  certify_gap, check_certificate)
        from repro.verify.audit import check_ledger_orphans

        sched = ctx.scheduler
        orphans = check_ledger_orphans(sched.state, sched._launched)
        if orphans:
            raise AuditViolation(orphans)
        sh = ctx.shard
        if sh is None:
            return
        by_id = {d.domain_id: d for d in sh.domains}
        batches = []
        for did in sh.active_domains():
            res = sh.results.get(did)
            if res is None:
                continue
            compiled = sh.compiled[did]
            cert = check_certificate(compiled.model, res)
            if not cert.ok:
                cert.raise_if_failed()
            certify_gap(compiled.model, res).raise_if_failed()
            batches.append((by_id[did].nodes, compiled, res,
                            sh.batches[did]))
        report = audit_sharded(
            sched.state, batches, reconcile=sh.reconcile,
            quantum_s=ctx.config.quantum_s, now=ctx.now,
            allocations=ctx.result.allocations)
        obs.emit("scheduler.shard_audit", audit_ok=report.ok,
                 domains=len(batches), placements=report.placements,
                 quanta_checked=report.quanta_checked)
        report.raise_if_failed()
