"""SolveOptions: merge semantics, defaults, and removed legacy kwargs."""

import numpy as np
import pytest

from repro.solver import (BranchBoundSolver, Model, SolveOptions,
                          make_backend, solve_decomposed)
from repro.solver.decompose import decompose
from repro.solver.options import DEFAULT_OPTIONS, UNSET, is_set, resolve
from repro.solver.scipy_backend import scipy_available


def knapsack():
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(3)]
    m.add_constraint(3 * xs[0] + 4 * xs[1] + 2 * xs[2], "<=", 5)
    m.set_objective(10 * xs[0] + 13 * xs[1] + 7 * xs[2], sense="maximize")
    return m


class TestUnsetSentinel:
    def test_unset_is_falsy_singleton(self):
        from repro.solver.options import _Unset
        assert not UNSET
        assert _Unset() is UNSET

    def test_is_set_distinguishes_none_from_unset(self):
        # None is a meaningful value (e.g. time_limit=None = unlimited).
        assert is_set(None)
        assert is_set(0)
        assert not is_set(UNSET)

    def test_fields_default_to_unset(self):
        opts = SolveOptions()
        for name in ("rel_gap", "time_limit", "node_limit", "warm_start",
                     "workers", "component_cache"):
            assert getattr(opts, name) is UNSET


class TestMerge:
    def test_merged_into_overrides_only_set_fields(self):
        base = SolveOptions(rel_gap=0.5, time_limit=9.0)
        merged = SolveOptions(time_limit=2.0).merged_into(base)
        assert merged.time_limit == 2.0
        assert merged.rel_gap == 0.5  # untouched

    def test_merge_preserves_explicit_none(self):
        base = SolveOptions(time_limit=9.0)
        merged = SolveOptions(time_limit=None).merged_into(base)
        assert merged.time_limit is None  # None overrides: unlimited

    def test_resolve_fills_defaults(self):
        opts = resolve(SolveOptions(rel_gap=0.25))
        assert opts.rel_gap == 0.25
        assert opts.node_limit == DEFAULT_OPTIONS.node_limit
        assert opts.workers == 0
        assert resolve(None) is DEFAULT_OPTIONS

    def test_get_with_default(self):
        opts = SolveOptions(rel_gap=0.1)
        assert opts.get("rel_gap") == 0.1
        assert opts.get("time_limit", 7.0) == 7.0


class TestLegacyKwargsRemoved:
    """The one-release DeprecationWarning shims are gone: TypeError now."""

    def test_shim_helper_is_gone(self):
        import repro.solver.options as options_mod
        assert not hasattr(options_mod, "deprecated_kwargs_to_options")

    def test_make_backend_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError):
            make_backend("pure", rel_gap=0.125)
        with pytest.raises(TypeError):
            make_backend("pure", time_limit=3.0)
        with pytest.raises(TypeError):
            make_backend("pure", node_limit=77)

    def test_make_backend_options_replacement_works(self):
        backend = make_backend("pure", SolveOptions(rel_gap=0.125,
                                                    node_limit=77))
        assert backend.options.rel_gap == 0.125
        assert backend.options.node_limit == 77

    def test_branch_bound_solve_rejects_warm_start_kwarg(self):
        with pytest.raises(TypeError):
            BranchBoundSolver().solve(knapsack(),
                                      warm_start=np.array([1.0, 0.0, 1.0]))

    def test_solve_decomposed_rejects_warm_start_kwarg(self):
        decomp = decompose(knapsack())
        with pytest.raises(TypeError):
            solve_decomposed(decomp, BranchBoundSolver(),
                             warm_start=np.array([1.0, 0.0, 1.0]))

    def test_solve_decomposed_options_warm_start_works(self):
        decomp = decompose(knapsack())
        res = solve_decomposed(
            decomp, BranchBoundSolver(),
            SolveOptions(warm_start=np.array([1.0, 0.0, 1.0])))
        assert res.objective == pytest.approx(17.0)

    @pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
    def test_scipy_solve_rejects_warm_start_kwarg(self):
        from repro.solver.scipy_backend import ScipyMILPSolver
        with pytest.raises(TypeError):
            ScipyMILPSolver().solve(knapsack(), warm_start=np.zeros(3))


class TestPerCallOverrides:
    def test_options_do_not_leak_into_backend(self):
        backend = make_backend("pure", SolveOptions(rel_gap=1e-6))
        backend.solve(knapsack(), SolveOptions(rel_gap=0.9))
        assert backend.options.rel_gap == 1e-6

    def test_options_warm_start_matches_cold_solve(self):
        m1, m2 = knapsack(), knapsack()
        ws = np.array([1.0, 0.0, 1.0])
        warm = BranchBoundSolver().solve(m1, SolveOptions(warm_start=ws))
        cold = BranchBoundSolver().solve(m2)
        assert warm.objective == cold.objective
        assert np.array_equal(warm.x, cold.x)

    @pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
    def test_scipy_per_call_gap_override(self):
        from repro.solver.scipy_backend import ScipyMILPSolver
        backend = ScipyMILPSolver(rel_gap=1e-6)
        res = backend.solve(knapsack(), SolveOptions(rel_gap=0.5))
        assert res.status.has_solution
        assert backend.rel_gap == 1e-6
