"""Baseline schedulers and ablation variants."""

from repro.baselines.capacity_scheduler import CapacityScheduler
from repro.baselines.edf import EdfScheduler
from repro.baselines.variants import (TABLE2_CONFIGS, tetrisched_config,
                                      tetrisched_ng_config,
                                      tetrisched_nh_config,
                                      tetrisched_np_config)

__all__ = ["CapacityScheduler", "EdfScheduler", "TABLE2_CONFIGS", "tetrisched_config",
           "tetrisched_ng_config", "tetrisched_nh_config",
           "tetrisched_np_config"]
