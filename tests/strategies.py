"""Shared hypothesis strategies for the test suite.

Historically three test modules each grew their own inline strategies
(random workloads in the engine property tests, random MILPs in the
presolve tests, seed/size integers in the workload tests).  They now live
here, next to re-exports of the fuzz-harness strategies from
:mod:`repro.verify.strategies`, so property tests and the differential
fuzzer draw from the same distributions.
"""

from hypothesis import strategies as st

from repro.sim import ElasticType, GpuType, Job, MpiType, UnconstrainedType
# Re-exported for property tests; the `python -m repro fuzz` harness uses
# the same generators, so a distribution tweak changes both at once.
from repro.verify.strategies import (degenerate_lps,  # noqa: F401
                                     fuzz_instances, lp_problems,
                                     milp_models, mixed_bound_lps,
                                     multi_component_models)

#: Workload-generator seeds (and similar "any reasonable seed" draws).
seeds = st.integers(0, 10_000)

#: The job-type palette the engine property tests exercise.
JOB_TYPES = [UnconstrainedType(), GpuType(slowdown=1.5), MpiType(slowdown=2.0)]


@st.composite
def sim_workloads(draw):
    """Small random workloads for end-to-end simulator property tests."""
    n = draw(st.integers(1, 8))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(0.0, 30.0))
        runtime = draw(st.floats(5.0, 60.0))
        is_slo = draw(st.booleans())
        jobs.append(Job(
            job_id=f"j{i}",
            job_type=JOB_TYPES[draw(st.integers(0, len(JOB_TYPES) - 1))],
            k=draw(st.integers(1, 4)),
            base_runtime_s=runtime,
            submit_time=t,
            deadline=(t + runtime * draw(st.floats(0.8, 4.0))
                      if is_slo else None),
            estimate_error=draw(st.sampled_from([-0.5, -0.2, 0.0, 0.5]))))
    return jobs


@st.composite
def elastic_sim_workloads(draw):
    """Random workloads guaranteed to mix malleable and rigid gangs.

    Drives the elastic re-planning property tests: at least one job is an
    :class:`~repro.sim.ElasticType` gang (the first), the rest coin-flip
    between elastic and rigid, and rigid jobs may carry deadlines so the
    solver has SLO pressure to shrink the malleable ones against.
    """
    n = draw(st.integers(2, 6))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(0.0, 25.0))
        runtime = draw(st.floats(10.0, 50.0))
        k = draw(st.integers(2, 6))
        if i == 0 or draw(st.booleans()):
            job_type = ElasticType(
                min_k=draw(st.integers(1, max(1, k // 2))),
                efficiency=draw(st.sampled_from([1.0, 0.9])))
            deadline = None
        else:
            job_type = UnconstrainedType()
            deadline = (t + runtime * draw(st.floats(1.0, 4.0))
                        if draw(st.booleans()) else None)
        jobs.append(Job(job_id=f"j{i}", job_type=job_type, k=k,
                        base_runtime_s=runtime, submit_time=t,
                        deadline=deadline))
    return jobs


__all__ = ["JOB_TYPES", "degenerate_lps", "elastic_sim_workloads",
           "fuzz_instances", "lp_problems", "milp_models", "mixed_bound_lps",
           "multi_component_models", "seeds", "sim_workloads"]
