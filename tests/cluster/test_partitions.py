"""Tests for dynamic minimal partitioning, incl. hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, Partitioning
from repro.errors import ClusterError


@pytest.fixture()
def cluster():
    # 2 racks x 4 nodes, rack r0 GPU-enabled.
    return Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)


class TestPartitioning:
    def test_single_set_two_partitions(self, cluster):
        gpu = cluster.nodes_with_attr("gpu")
        p = Partitioning(cluster.node_names, [gpu])
        assert p.num_partitions == 2
        pids = p.partitions_of(gpu)
        assert len(pids) == 1
        assert pids[0].nodes == gpu

    def test_whole_cluster_set_one_partition(self, cluster):
        p = Partitioning(cluster.node_names, [cluster.node_names])
        assert p.num_partitions == 1

    def test_overlapping_sets_make_intersection_partitions(self, cluster):
        gpu = cluster.nodes_with_attr("gpu")           # == rack r0
        r0 = cluster.rack_nodes("r0")
        r1 = cluster.rack_nodes("r1")
        every = cluster.node_names
        p = Partitioning(every, [gpu, r0, r1, every])
        # gpu == r0, so partitions are {r0}, {r1}.
        assert p.num_partitions == 2
        assert {fs.nodes for fs in p.partitions_of(every)} == {r0, r1}

    def test_paper_fig1_style(self):
        """GPU on rack1 only; MPI wants rack1 or rack2; partitions minimal."""
        c = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
        sets = [c.nodes_with_attr("gpu"), c.rack_nodes("r0"),
                c.rack_nodes("r1"), c.node_names]
        p = Partitioning(c.node_names, sets)
        assert p.num_partitions == 2

    def test_undeclared_set_rejected(self, cluster):
        p = Partitioning(cluster.node_names, [cluster.node_names])
        with pytest.raises(ClusterError):
            p.partitions_of(cluster.rack_nodes("r0"))

    def test_out_of_universe_set_rejected(self, cluster):
        with pytest.raises(ClusterError):
            Partitioning(cluster.node_names, [frozenset({"ghost"})])

    def test_unreferenced_nodes_get_a_partition(self, cluster):
        gpu = cluster.nodes_with_attr("gpu")
        p = Partitioning(cluster.node_names, [gpu])
        covered = frozenset().union(*(q.nodes for q in p.partitions))
        assert covered == cluster.node_names

    def test_partition_of_node(self, cluster):
        gpu = cluster.nodes_with_attr("gpu")
        p = Partitioning(cluster.node_names, [gpu])
        some_gpu = next(iter(gpu))
        assert some_gpu in p.partition_of_node(some_gpu).nodes
        with pytest.raises(ClusterError):
            p.partition_of_node("ghost")

    def test_duplicate_sets_deduplicated(self, cluster):
        gpu = cluster.nodes_with_attr("gpu")
        p = Partitioning(cluster.node_names, [gpu, gpu, gpu])
        assert len(p.equivalence_sets) == 1


_universe = [f"n{i}" for i in range(10)]


class TestPartitioningProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.frozensets(st.sampled_from(_universe), min_size=1),
                    min_size=1, max_size=5))
    def test_invariants(self, eq_sets):
        universe = frozenset(_universe)
        p = Partitioning(universe, eq_sets)
        # 1. Partitions are disjoint and cover the universe.
        seen: set[str] = set()
        for part in p.partitions:
            assert not (part.nodes & seen)
            seen |= part.nodes
        assert seen == universe
        # 2. Every declared set is exactly a union of its partitions.
        for es in p.equivalence_sets:
            union = frozenset().union(*(q.nodes for q in p.partitions_of(es)))
            assert union == es
        # 3. Minimality: at most 2^|sets| non-empty signatures + leftover.
        assert p.num_partitions <= 2 ** len(p.equivalence_sets) + 1
