"""Relaxation-repair fast path: bound soundness, escalation, colgen.

Three contracts, each load-bearing for the audited-gap story:

* the repaired incumbent can never beat the reported LP bound (the gap
  the scheduler publishes is an upper bound on true suboptimality);
* lazy column generation terminates at the *full* relaxation optimum —
  pricing out with no favorable deferred group is the bounded-variable
  optimality condition, so the restricted bound is never an artifact;
* forced escalation (``gap_threshold < 0``) reproduces the wrapped exact
  backend's result bit for bit, because the escalated solve runs under
  the caller's original options with no repair-derived seeding.
"""

import pytest
from hypothesis import given, settings

from repro.solver import (BranchBoundSolver, RepairSolver, SolveOptions,
                          SolveStatus, make_backend)
from repro.solver.colgen import ColumnGroup, colgen_root, select_lazy
from repro.solver.revised_simplex import solve_lp_revised
from repro.verify import certify_gap, check_certificate
from tests.strategies import milp_models


def repair_backend(mode: str = "repair", threshold: float = 0.05):
    backend = make_backend("pure", SolveOptions(
        rel_gap=1e-9, solve_mode=mode, repair_gap_threshold=threshold))
    assert isinstance(backend, RepairSolver)
    return backend


def knapsack():
    from repro.solver import Model
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(3)]
    m.add_constraint(3 * xs[0] + 4 * xs[1] + 2 * xs[2], "<=", 5)
    m.set_objective(10 * xs[0] + 13 * xs[1] + 7 * xs[2], sense="maximize")
    return m


class TestRepairBoundSoundness:
    @settings(max_examples=30, deadline=None)
    @given(m=milp_models())
    def test_incumbent_never_beats_lp_bound(self, m):
        res = repair_backend().solve(m)
        assert res.status.has_solution
        # Maximization models: the LP relaxation bound dominates every
        # integral point, including the repaired incumbent.
        assert res.objective <= res.bound + 1e-6
        assert res.gap >= 0.0
        assert check_certificate(m, res).ok

    @settings(max_examples=30, deadline=None)
    @given(m=milp_models())
    def test_reported_gap_survives_independent_certification(self, m):
        res = repair_backend().solve(m)
        cert = certify_gap(m, res)
        assert cert.ok, cert.violations
        if res.stats.get("repair_bound_source") == "lp":
            # Non-escalated solves: the certifier recomputed the bound
            # with a different engine and reconciled the claimed gap.
            assert cert.bound_recomputed == pytest.approx(res.bound,
                                                          abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(m=milp_models())
    def test_forced_escalation_is_bit_for_bit_exact(self, m):
        exact = BranchBoundSolver().solve(m)
        auto = repair_backend(mode="auto", threshold=-1.0).solve(m)
        assert auto.objective == exact.objective
        assert (auto.x == exact.x).all()
        assert auto.stats["repair_escalations"] >= 1


class TestColgenRoot:
    @settings(max_examples=30, deadline=None)
    @given(m=milp_models())
    def test_colgen_bound_equals_full_lp_bound(self, m):
        sa = m.to_standard_arrays()
        n = sa.c.shape[0]
        # Synthetic one-column groups across two "jobs": with one seed
        # per job, most columns start pinned and must be priced back in.
        groups = [ColumnGroup(job_id=f"j{i % 2}", start=i, columns=(i,),
                              value=float(-sa.c[i])) for i in range(n)]
        root = colgen_root(sa, groups, seed_per_job=1)
        full = solve_lp_revised(sa.c, sa.a_ub, sa.b_ub, sa.a_eq, sa.b_eq,
                                sa.lb, sa.ub)
        assert root.result.status is SolveStatus.OPTIMAL
        assert full.status is SolveStatus.OPTIMAL
        assert root.result.objective == pytest.approx(full.objective,
                                                      abs=1e-6)

    def test_no_groups_degenerates_to_cold_solve(self):
        sa = knapsack().to_standard_arrays()
        root = colgen_root(sa, ())
        assert root.rounds == 1
        assert root.groups_lazy == 0
        full = solve_lp_revised(sa.c, sa.a_ub, sa.b_ub, sa.a_eq, sa.b_eq,
                                sa.lb, sa.ub)
        assert root.result.objective == pytest.approx(full.objective)

    def test_select_lazy_keeps_earliest_starts(self):
        groups = [ColumnGroup("a", start=s, columns=(s,)) for s in (3, 0, 1)]
        lazy = select_lazy(groups, seed_per_job=2)
        assert [g.start for g in lazy] == [3]


class TestSchedulerRepairCycle:
    """End-to-end: a contended cycle under audit_mode raises on any
    violation, so a clean run is the zero-violations assertion."""

    def _run(self, solve_mode):
        from repro.cluster.cluster import Cluster
        from repro.core.queues import PriorityClass
        from repro.core.scheduler import (JobRequest, TetriSched,
                                          TetriSchedConfig)
        from repro.strl.generator import SpaceOption
        from repro.valuefn import StepValue

        cluster = Cluster.build(racks=1, nodes_per_rack=4)
        cfg = TetriSchedConfig(
            quantum_s=8.0, cycle_s=8.0, plan_ahead_s=48.0, backend="pure",
            decomposition=False, solve_mode=solve_mode, audit_mode=True)
        sched = TetriSched(cluster, cfg)
        nodes = frozenset(cluster.node_names)
        # Two 3-of-4 gangs cannot share the rack, but the LP splits them
        # fractionally — the fractional-root regime the dive repairs.
        for j, k in enumerate((3, 3, 2)):
            sched.submit(JobRequest(
                job_id=f"j{j}",
                options=(SpaceOption(nodes, k=k, duration_s=16.0),),
                value_fn=StepValue(value=10.0 + j, deadline=1e9),
                priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0))
        return sched.run_cycle(0.0)

    def test_repair_cycle_is_audit_clean(self):
        res = self._run("repair")
        stats = res.stats
        assert stats.objective > 0.0
        assert 0.0 <= stats.repair_gap < 1.0

    def test_auto_cycle_matches_exact_objective(self):
        exact = self._run("exact")
        auto = self._run("auto")
        # Default 5% threshold: escalate or not, the audited objective
        # may trail the exact optimum by at most the configured gap.
        assert auto.stats.objective >= exact.stats.objective * 0.95 - 1e-9
        assert auto.stats.objective <= exact.stats.objective + 1e-9
