"""The domain coordinator: job -> domain assignment and the cycle working set.

Assignment happens at the :class:`~repro.strl.generator.SpaceOption`
level: pinning a job to a domain restricts each placement option's
equivalence set to its intersection with the domain's nodes (an option
survives when the intersection still fits the gang, ``|nodes ∩ domain|
>= k``).  Restriction never *adds* placements, so the per-domain optima
are a coarsening of the monolithic optimum — which is what makes the
declared quality bound provable:

    S_sharded  >=  S_monolithic  -  sum(max_value(j) for j in trimmed
                                        or boundary jobs)

(dropping a job's trimmed alternatives costs at most that job's best-case
value, and every untrimmed job's full option set survives inside its
domain).  When no job is trimmed and none is boundary, the bound is zero:
exact parity.

Assignment is **sticky** (a job keeps its domain across cycles, so the
per-domain delta-compilation fragment stores stay warm), **affinity-aware**
(prefer the domain that wholly contains the most options), **load-
balanced** (among equally-affine domains, pick the least-loaded per node),
and **deterministic** under the config's single RNG seed: ties break on a
keyed blake2b hash of ``(seed, job_id, domain_id)``, never on builtin
``hash`` (which is salted per process and would destroy bit-reproducible
runs).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.shard.domains import (DomainPartitioner, SchedulingDomain,
                                 resolve_shard_count)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    import numpy as np

    from repro.core.allocation import PlanAccumulator
    from repro.core.compiler import CompiledBatch
    from repro.core.scheduler import JobRequest, TetriSched, TetriSchedConfig
    from repro.solver.result import MILPResult
    from repro.strl.ast import StrlNode


@dataclass
class ShardCycle:
    """One sharded cycle's working set, threaded through the shard stages.

    ``DomainAssign`` fills the assignment half (batches / boundary /
    trimmed / quality bound); compile, solve, extract and reconcile fill
    the rest.  Lives on ``ctx.shard`` and never outlives the cycle.
    """

    domains: list[SchedulingDomain]
    #: domain_id -> ``(job_id, STRL root)`` batch, in queue order.
    batches: dict[int, list[tuple[str, "StrlNode"]]] = field(
        default_factory=dict)
    #: Cross-domain gangs no single domain can host — reconciled after the
    #: domain solves against the residual availability.
    boundary: list[tuple[str, "StrlNode"]] = field(default_factory=list)
    #: Jobs whose options were restricted when pinned to their domain.
    trimmed: set[str] = field(default_factory=set)
    #: Declared bound on objective loss vs the monolithic optimum (summed
    #: best-case value of trimmed + boundary jobs; 0 = exact parity).
    quality_bound: float = 0.0

    # -- filled by the later shard stages ----------------------------------
    compiled: dict[int, "CompiledBatch"] = field(default_factory=dict)
    warm: dict[int, "np.ndarray | None"] = field(default_factory=dict)
    results: dict[int, "MILPResult"] = field(default_factory=dict)
    solve_s: dict[int, float] = field(default_factory=dict)
    #: Domains whose MILP produced no solution (typically a timeout) and
    #: fell back to greedy one-job-at-a-time scheduling for this cycle.
    fallback_domains: list[int] = field(default_factory=list)
    #: The shared space-time accumulator every domain materializes into.
    acc: "PlanAccumulator | None" = None
    #: Reconciliation solve over the boundary jobs:
    #: ``(compiled, result, exprs)`` when it ran, else ``None``.
    reconcile: "tuple | None" = None

    def active_domains(self) -> list[int]:
        """Domain ids that received at least one job this cycle, sorted."""
        return sorted(self.batches)

    def domain_of(self) -> dict[str, int]:
        """job_id -> domain_id for every domain-assigned job."""
        return {job_id: did for did, batch in self.batches.items()
                for job_id, _ in batch}

    def domain_records(self) -> list[dict]:
        """JSON-serializable per-domain cycle records (service stats)."""
        by_id = {d.domain_id: d for d in self.domains}
        records = []
        for did in self.active_domains():
            res = self.results.get(did)
            records.append({
                "domain": by_id[did].name,
                "jobs": len(self.batches[did]),
                "objective": float(res.objective) if res is not None else 0.0,
                "solve_s": float(self.solve_s.get(did, 0.0)),
                "fallback": did in self.fallback_domains,
            })
        return records


def _tiebreak(seed: int, job_id: str, domain_id: int) -> int:
    """Deterministic, seed-keyed tie-break (process-salt-free)."""
    digest = hashlib.blake2b(f"{seed}:{job_id}:{domain_id}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class DomainCoordinator:
    """Assigns jobs to scheduling domains, one instance per scheduler.

    Persists across cycles: the domain list (stable — a pure function of
    cluster topology), the sticky job->domain map, and (``delta_mode !=
    off``) the per-domain delta-compilation fragment stores.
    """

    def __init__(self, cluster: Cluster, state: ClusterState,
                 config: "TetriSchedConfig") -> None:
        self.cluster = cluster
        self.state = state
        self.config = config
        count = resolve_shard_count(config.shard_count, cluster)
        self.domains = DomainPartitioner(cluster).partition(count)
        self._sticky: dict[str, int] = {}
        self.delta_stores = None
        if config.delta_mode != "off":
            from repro.core.delta import DomainDeltaStores
            self.delta_stores = DomainDeltaStores(state, config.quantum_s)

    # -- per-job restriction -------------------------------------------------
    def _restrict(self, req: "JobRequest", domain: SchedulingDomain
                  ) -> tuple[tuple, bool]:
        """Options surviving inside ``domain``: ``(kept, trimmed?)``.

        ``kept`` is empty when no option fits the domain (the job is not
        assignable there); ``trimmed`` is true when the survivors differ
        from the original option set in any way — the signal that the
        domain expression must regenerate and the quality bound must
        charge this job.
        """
        kept = []
        trimmed = False
        for opt in req.options:
            inter = opt.nodes & domain.nodes
            if len(inter) < opt.k:
                trimmed = True  # option dropped entirely
                continue
            if inter != opt.nodes:
                trimmed = True
                kept.append(dataclasses.replace(opt, nodes=inter))
            else:
                kept.append(opt)
        return tuple(kept), trimmed

    # -- the per-cycle assignment -------------------------------------------
    def assign(self, sched: "TetriSched",
               exprs: list[tuple[str, "StrlNode"]],
               requests: dict[str, "JobRequest"],
               now: float) -> ShardCycle:
        """Build this cycle's :class:`ShardCycle` from the generated batch.

        Walks ``exprs`` in queue order (preserving it inside each domain
        batch, so a single whole-cluster domain reproduces the monolithic
        batch exactly).  Jobs no single domain can host go to ``boundary``
        with their *unrestricted* expression.
        """
        sc = ShardCycle(domains=self.domains)
        load: dict[int, int] = {d.domain_id: 0 for d in self.domains}
        by_id = {d.domain_id: d for d in self.domains}
        drained = self.state.drained_nodes
        current: set[str] = set()

        for job_id, expr in exprs:
            current.add(job_id)
            req = requests[job_id]
            feasible: dict[int, tuple[tuple, bool]] = {}
            scores: dict[int, tuple] = {}
            for d in self.domains:
                kept, trimmed = self._restrict(req, d)
                if not kept:
                    continue
                feasible[d.domain_id] = (kept, trimmed)
                contained = sum(1 for opt in req.options
                                if opt.nodes <= d.nodes)
                overlap = sum(len(opt.nodes & d.nodes)
                              for opt in req.options)
                scores[d.domain_id] = (contained, len(kept), overlap)
            if not feasible:
                sc.boundary.append((job_id, expr))
                sc.quality_bound += expr.max_value()
                self._sticky.pop(job_id, None)
                continue

            # Prefer domains with live (non-drained) capacity; when every
            # feasible domain is fully drained, fall back to all of them
            # (a single whole-cluster domain is never excluded).
            live = [did for did in feasible
                    if by_id[did].nodes - drained]
            pool = live or list(feasible)

            sticky = self._sticky.get(job_id)
            if sticky is not None and sticky in pool:
                did = sticky
            else:
                def rank(cand: int) -> tuple:
                    contained, n_opts, overlap = scores[cand]
                    # Load per node, as an exact fraction (no float ties).
                    size = len(by_id[cand].nodes)
                    return (-contained, -n_opts,
                            load[cand] * 10**9 // size, -overlap,
                            _tiebreak(self.config.seed, job_id, cand))
                did = min(pool, key=rank)
            self._sticky[job_id] = did

            kept, trimmed = feasible[did]
            if trimmed:
                domain_expr = sched._generate(
                    dataclasses.replace(req, options=kept), now)
                if domain_expr is None:
                    # Every restricted option was culled (deadline/value):
                    # let reconciliation try the unrestricted expression.
                    sc.boundary.append((job_id, expr))
                    sc.quality_bound += expr.max_value()
                    self._sticky.pop(job_id, None)
                    continue
                sc.trimmed.add(job_id)
                sc.quality_bound += expr.max_value()
            else:
                domain_expr = expr
            sc.batches.setdefault(did, []).append((job_id, domain_expr))
            load[did] += min(opt.k for opt in kept)

        # Prune stickiness for jobs that left the queue (finished, culled,
        # cancelled) so a long-lived service never accumulates dead ids.
        self._sticky = {j: d for j, d in self._sticky.items()
                        if j in current}
        return sc
