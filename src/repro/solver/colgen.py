"""Lazy start-time column generation over the revised simplex.

Plan-ahead replicates every job's placement options across every quantized
start time, so the MILP's column count grows linearly with
``plan_ahead / quantum`` (the paper's own scaling pressure, Sec. 6).  Most
of those columns never enter the schedule: a job is placed at one start
time, and the LP relaxation prices the alternatives out quickly.  This
module exploits that by *deferring* columns instead of materializing them:

1. The compiler tags each start-time alternative of each job as a
   :class:`ColumnGroup` (its leaf indicator plus partition variables).
2. :func:`colgen_root` fixes every non-seed group at its lower bound
   (``ub := lb`` — the columns exist but cannot move) and solves the
   restricted LP relaxation with the revised simplex.
3. Deferred groups are priced by the reduced costs of the restricted
   optimum: a group whose best member prices favorably (``d_j < -tol``)
   is activated (bounds restored) and the LP re-solved with a *primal*
   warm restart — relaxing bounds keeps the incumbent basis
   primal-feasible, so reoptimization is a few primal pivots.
4. When no deferred group prices favorably the restricted optimum is
   optimal for the **full** LP: every inactive column sits at its lower
   bound with a nonnegative reduced cost, which is exactly the bounded-
   variable optimality condition.  The reported objective is therefore a
   true full-relaxation bound, never a restricted-problem artifact.

If the round limit is hit first, every remaining group is activated for
one final solve so the bound stays exact (``fallback_full`` records this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.solver.result import LPResult, SolveStatus
from repro.solver.revised_simplex import RevisedSimplexEngine

#: A deferred column must price below ``-_PRICE_TOL`` to be activated.
_PRICE_TOL = 1e-7


@dataclass(frozen=True)
class ColumnGroup:
    """One start-time alternative of one job, as model column indices.

    ``columns`` holds the leaf indicator plus its partition variables (for
    gang/Min subtrees: all leaves sharing that indicator).  Fixing them at
    their lower bounds removes the alternative from the restricted LP
    without rebuilding the matrix; restoring the upper bounds activates it.
    """

    job_id: str
    start: int
    columns: tuple[int, ...]
    value: float = 0.0


@dataclass
class ColgenRoot:
    """Outcome of a column-generation root LP solve.

    Carries the engine and the final working bounds so the repair dive can
    keep warm-restarting the same factorization with inactive columns
    still pinned (an incumbent with them at their lower bound is feasible
    for the full model, so pinning loses nothing).
    """

    result: LPResult
    engine: RevisedSimplexEngine
    lb: np.ndarray
    ub_work: np.ndarray
    rounds: int = 0
    columns_priced_in: int = 0
    groups_lazy: int = 0
    groups_activated: int = 0
    fallback_full: bool = False
    lp_iterations: int = 0
    stats: dict = field(default_factory=dict)


def select_lazy(groups, seed_per_job: int = 2) -> list[ColumnGroup]:
    """The groups to defer: all but each job's first ``seed_per_job``.

    Seeds are the earliest start times (ties broken toward higher value),
    matching the generator's earliness bias — the LP usually places jobs
    early, so the seed set alone is often near-optimal and later columns
    are priced in only when contention pushes a job's start time out.
    """
    by_job: dict[str, list[ColumnGroup]] = {}
    for g in groups:
        by_job.setdefault(g.job_id, []).append(g)
    lazy: list[ColumnGroup] = []
    for gs in by_job.values():
        gs.sort(key=lambda g: (g.start, -g.value))
        lazy.extend(gs[seed_per_job:])
    return lazy


def colgen_root(sa, groups, seed_per_job: int = 2, max_rounds: int = 25,
                tol: float = _PRICE_TOL, max_iter: int = 50_000) -> ColgenRoot:
    """Solve the LP relaxation of ``sa`` with lazy column generation.

    ``sa`` is a dense :class:`~repro.solver.model.StandardArrays` export
    (minimization orientation); ``groups`` an iterable of
    :class:`ColumnGroup`.  With no groups this degenerates to a single
    cold solve of the full relaxation.  The returned
    :attr:`ColgenRoot.result` objective is always a valid full-LP bound
    (see the module docstring for why).
    """
    engine = RevisedSimplexEngine(sa.c, sa.a_ub, sa.b_ub, sa.a_eq, sa.b_eq)
    lb = np.asarray(sa.lb, dtype=float).copy()
    ub = np.asarray(sa.ub, dtype=float).copy()
    ub_work = ub.copy()

    lazy = select_lazy(list(groups), seed_per_job)
    cols_of = {g: np.asarray(g.columns, dtype=int) for g in lazy}
    for cols in cols_of.values():
        ub_work[cols] = lb[cols]

    inactive = list(lazy)
    root = ColgenRoot(
        result=LPResult(SolveStatus.NO_SOLUTION, None, np.inf),
        engine=engine, lb=lb, ub_work=ub_work, groups_lazy=len(lazy))
    basis = None
    while True:
        res = engine.solve(lb, ub_work, start=basis, restart="primal",
                           max_iter=max_iter)
        root.rounds += 1
        root.lp_iterations += res.iterations
        root.result = res
        if res.status is not SolveStatus.OPTIMAL or not inactive \
                or res.reduced_costs is None:
            break
        d = res.reduced_costs
        favorable = [g for g in inactive if d[cols_of[g]].min() < -tol]
        if not favorable:
            break  # restricted optimum == full-LP optimum
        if root.rounds >= max_rounds:
            # Round budget exhausted: materialize everything left so the
            # final solve still reports the true full-relaxation bound.
            favorable = list(inactive)
            root.fallback_full = True
        for g in favorable:
            cols = cols_of[g]
            ub_work[cols] = ub[cols]
            root.columns_priced_in += int(cols.size)
            root.groups_activated += 1
        chosen = set(favorable)
        inactive = [g for g in inactive if g not in chosen]
        basis = res.basis
    obs.count("solver.colgen.rounds", root.rounds)
    obs.count("solver.colgen.columns_priced", root.columns_priced_in)
    root.stats = {
        "colgen_rounds": root.rounds,
        "colgen_columns_priced": root.columns_priced_in,
        "colgen_groups_lazy": root.groups_lazy,
        "colgen_groups_activated": root.groups_activated,
    }
    return root


__all__ = ["ColgenRoot", "ColumnGroup", "colgen_root", "select_lazy"]
