"""Tests for execution traces: recording, round-trip, Gantt, utilization."""

import pytest

from repro.cluster import Cluster
from repro.core import TetriSchedConfig
from repro.errors import SimulationError
from repro.sim import (ExecutionTrace, Job, Simulation, TetriSchedAdapter,
                       UnconstrainedType)
from repro.sim.trace import (ARRIVAL, COMPLETION, CULL, LAUNCH, PREEMPTION,
                             TraceEvent)

UN = UnconstrainedType()


def make_trace():
    tr = ExecutionTrace()
    tr.record(0.0, ARRIVAL, "a")
    tr.record(0.0, LAUNCH, "a", nodes=("n1", "n2"))
    tr.record(5.0, ARRIVAL, "b")
    tr.record(20.0, COMPLETION, "a")
    tr.record(20.0, LAUNCH, "b", nodes=("n1",))
    tr.record(30.0, COMPLETION, "b")
    return tr


class TestRecording:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            TraceEvent(0.0, "explode", "j")

    def test_of_kind_and_for_job(self):
        tr = make_trace()
        assert len(tr.of_kind(LAUNCH)) == 2
        assert len(tr.for_job("a")) == 3

    def test_jsonl_roundtrip(self):
        tr = make_trace()
        clone = ExecutionTrace.from_jsonl(tr.to_jsonl())
        assert clone.events == tr.events

    def test_jsonl_skips_blank_lines(self):
        tr = ExecutionTrace.from_jsonl("\n\n")
        assert tr.events == []


class TestIntervals:
    def test_intervals_from_launch_completion(self):
        tr = make_trace()
        ivs = tr.intervals()
        assert ("a", "n1", 0.0, 20.0) in ivs
        assert ("a", "n2", 0.0, 20.0) in ivs
        assert ("b", "n1", 20.0, 30.0) in ivs

    def test_preemption_closes_interval(self):
        tr = ExecutionTrace()
        tr.record(0.0, LAUNCH, "a", nodes=("n1",))
        tr.record(10.0, PREEMPTION, "a")
        assert tr.intervals() == [("a", "n1", 0.0, 10.0)]

    def test_unclosed_intervals_dropped(self):
        tr = ExecutionTrace()
        tr.record(0.0, LAUNCH, "a", nodes=("n1",))
        assert tr.intervals() == []


class TestAnalyses:
    def test_mean_utilization(self):
        tr = make_trace()
        # Work: a = 2 nodes x 20s, b = 1 node x 10s = 50 node-s over
        # 2 nodes x 30s window... but universe has 2 nodes -> 50/60.
        assert tr.mean_utilization(2) == pytest.approx(50 / 60)

    def test_mean_utilization_empty(self):
        assert ExecutionTrace().mean_utilization(4) == 0.0

    def test_utilization_timeline(self):
        tr = make_trace()
        samples = tr.utilization_timeline(total_nodes=2, step_s=10.0)
        assert samples[0] == (0.0, 1.0)       # both nodes busy with 'a'
        assert samples[2] == (20.0, 0.5)      # only 'b' on n1

    def test_timeline_validation(self):
        with pytest.raises(SimulationError):
            make_trace().utilization_timeline(0, 10)
        with pytest.raises(SimulationError):
            make_trace().utilization_timeline(2, 0)

    def test_gantt_rendering(self):
        tr = make_trace()
        chart = tr.gantt(["n1", "n2"], quantum_s=10.0)
        lines = chart.splitlines()
        assert lines[0].startswith("n1")
        assert "aab" in lines[0].replace(" ", "").replace("|", "")
        assert "aa." in lines[1].replace(" ", "").replace("|", "")

    def test_gantt_validation(self):
        with pytest.raises(SimulationError):
            make_trace().gantt(["n1"], quantum_s=0)


class TestSimulationIntegration:
    def test_trace_captures_full_lifecycle(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=3)
        tr = ExecutionTrace()
        jobs = [Job("a", UN, 2, 20, 0.0, deadline=100.0),
                Job("dead", UN, 2, 50, 0.0, deadline=10.0)]
        sched = TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40))
        Simulation(cluster, sched, jobs, trace=tr).run()
        kinds = [e.kind for e in tr.events]
        assert kinds.count(ARRIVAL) == 2
        assert kinds.count(LAUNCH) == 1
        assert kinds.count(COMPLETION) == 1
        assert kinds.count(CULL) == 1
        launch = tr.of_kind(LAUNCH)[0]
        assert launch.job_id == "a"
        assert len(launch.nodes) == 2
