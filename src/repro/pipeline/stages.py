"""The pipeline stages of one TetriSched scheduling cycle.

Each stage moves one step of the former monolithic ``_cycle_global`` into
a named, separately-timed unit (Sec. 3 of the paper: generate, aggregate
and compile, solve, extract).  ``ModelBuild`` and ``Decompose`` are new
steps introduced by the sparse-core refactor: the first forces the CSR
export (so its cost is visible instead of hiding inside the solver), the
second splits the aggregate MILP into independent blocks that
:func:`repro.solver.decompose.solve_decomposed` handles as separate,
much smaller branch-and-bound problems.
"""

from __future__ import annotations

import enum
import time
from typing import TYPE_CHECKING, Protocol

from repro import obs
from repro.core.allocation import PlanAccumulator
from repro.core.compiler import StrlCompiler
from repro.solver.decompose import decompose, solve_decomposed
from repro.solver.options import SolveOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import CycleContext


class StageName(str, enum.Enum):
    """Stable names of the pipeline stages.

    These are the documented keys of ``CycleStats.stage_timings`` (and of
    the per-stage :mod:`repro.obs` spans nested under ``"cycle"``).  The
    enum mixes in :class:`str`, so a member hashes and compares equal to
    its plain string value — bench/report code should index timing dicts
    with ``StageName.SOLVE`` rather than string-matching ``"solve"``, and
    archived JSON (where keys are plain strings) still round-trips.
    """

    GENERATE = "generate"
    COMPILE = "compile"
    MODEL_BUILD = "model_build"
    DECOMPOSE = "decompose"
    SOLVE = "solve"
    EXTRACT = "extract"
    AUDIT = "audit"
    GREEDY = "greedy"
    #: Sharded-cycle stages (:mod:`repro.shard.stages`): domain
    #: partitioning + job assignment, and the cross-domain gang
    #: reconciliation pass over the boundary jobs.
    SHARD_ASSIGN = "shard_assign"
    RECONCILE = "reconcile"

    def __str__(self) -> str:  # uniform across py3.10..3.12 str-enum quirks
        return self.value

    __format__ = str.__format__


class Stage(Protocol):
    """One step of a scheduling cycle."""

    name: str

    def run(self, ctx: "CycleContext") -> None:  # pragma: no cover
        ...


class StrlGeneration:
    """Generate one STRL expression per pending job; cull valueless jobs."""

    name = StageName.GENERATE

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        for job_id, req in list(sched.queues.items()):
            expr = sched._generate(req, ctx.now)
            if expr is None:
                sched.queues.remove(job_id)
                ctx.result.culled.append(job_id)
                continue
            ctx.exprs.append((job_id, expr))
            ctx.requests[job_id] = req
        # Running elastic jobs re-enter the batch with grow/shrink/keep
        # options (elastic_mode): even with an empty queue these fragments
        # keep the cycle alive so a gang can widen as the cluster drains.
        for job_id, expr, cand in sched._resize_fragments(ctx.now):
            ctx.exprs.append((job_id, expr))
            ctx.requests[job_id] = sched._launched[job_id]
            ctx.resizable.append(cand)
        if not ctx.exprs:
            ctx.halt()


class Compilation:
    """Aggregate STRL under the top-level SUM and compile to a MILP.

    With ``delta_mode`` on, compilation goes through the scheduler's
    persistent :class:`~repro.core.delta.DeltaCompiler`: cached fragments
    of unchanged jobs are replayed and only dirty jobs re-run Algorithm 1;
    the per-cycle :class:`~repro.core.delta.CycleDelta` lands on the
    context for the stats record.  ``delta_mode=verify`` additionally
    recompiles from scratch and asserts bit-equality.
    """

    name = StageName.COMPILE

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        preemptible = (sched._preemption_candidates()
                       if ctx.config.enable_preemption else [])
        if sched._delta is not None:
            ctx.compiled, ctx.delta = sched._delta.compile_cycle(
                ctx.exprs, preemptible=preemptible, now=ctx.now,
                verify=ctx.config.delta_mode == "verify",
                resizable=ctx.resizable)
        else:
            compiler = StrlCompiler(sched.state, ctx.config.quantum_s,
                                    ctx.now)
            ctx.compiled = compiler.compile(ctx.exprs,
                                            preemptible=preemptible,
                                            resizable=ctx.resizable)
        ctx.telemetry.milp_variables = ctx.compiled.stats["variables"]
        ctx.telemetry.milp_constraints = ctx.compiled.stats["constraints"]


class ModelBuild:
    """Force the model's sparse export and build the warm start.

    The CSR triplets are cached on the model, so the solver stage reuses
    them for free; materializing here makes export cost a visible line in
    the per-stage timings rather than noise inside ``solve``.
    """

    name = StageName.MODEL_BUILD

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        assert ctx.compiled is not None
        sp = ctx.compiled.model.to_sparse_arrays()
        ctx.nnz = sp.nnz
        obs.emit("scheduler.model_build",
                 variables=ctx.compiled.model.num_variables,
                 constraints=len(ctx.compiled.model.constraints),
                 nnz=ctx.nnz)
        if ctx.config.warm_start:
            ctx.telemetry.warm_start_attempted = True
            with obs.span("warm_start"):
                ctx.warm_start = sched._build_warm_start(ctx.compiled, ctx.now)
            # Hit/miss accounting flows through CycleStats (the simulator
            # folds it into the run profile), not the obs registry, so the
            # two layers never double-count.
            ctx.telemetry.warm_start_hit = ctx.warm_start is not None


class Decompose:
    """Split the aggregate MILP into independent connected components."""

    name = StageName.DECOMPOSE

    def run(self, ctx: "CycleContext") -> None:
        assert ctx.compiled is not None
        if not ctx.config.decomposition:
            ctx.components = 1
            return
        ctx.decomposition = decompose(ctx.compiled.model)
        ctx.components = max(1, ctx.decomposition.num_components)
        obs.emit("scheduler.decompose",
                 components=ctx.decomposition.num_components,
                 sizes=ctx.decomposition.component_sizes(),
                 free=int(ctx.decomposition.free_indices.size))


class Solve:
    """Solve the cycle MILP — per component when decomposed.

    A decomposed solve is still *one* logical solver invocation in the
    cycle telemetry (Fig. 12's solver-work tables compare global vs
    greedy solve counts; decomposition must not inflate them).  The
    per-call :class:`~repro.solver.options.SolveOptions` carries the
    cycle warm start plus the scheduler's worker-pool and component-cache
    configuration (``solver_workers`` / ``component_cache``).
    """

    name = StageName.SOLVE

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        tel = ctx.telemetry
        assert ctx.compiled is not None
        decomp = ctx.decomposition
        t0 = time.monotonic()
        if decomp is not None and (decomp.num_components > 1
                                   or decomp.free_indices.size):
            # Column groups are expressed in the monolithic model's column
            # space; component sub-models renumber columns, so decomposed
            # repair solves run per-component LP + dive without colgen.
            res = solve_decomposed(
                decomp, sched._backend,
                options=SolveOptions(
                    warm_start=ctx.warm_start,
                    workers=ctx.config.solver_workers,
                    component_cache=sched._component_cache))
        else:
            groups = None
            if ctx.config.solve_mode != "exact":
                groups = tuple(ctx.compiled.lazy_column_groups())
            res = sched._backend.solve(
                ctx.compiled.model,
                options=SolveOptions(warm_start=ctx.warm_start,
                                     column_groups=groups))
        tel.solver_latency_s += time.monotonic() - t0
        tel.absorb(res)
        if not res.status.has_solution:
            # All-zero (schedule nothing) is always feasible, so this should
            # only happen under a very tight solver budget.
            sched._prev_plan = []
            ctx.halt()
            return
        tel.objective = res.objective
        ctx.solution = res


class Extract:
    """Decode the solution, apply preemptions, launch start-now placements."""

    name = StageName.EXTRACT

    def run(self, ctx: "CycleContext") -> None:
        sched = ctx.scheduler
        compiled, res = ctx.compiled, ctx.solution
        assert compiled is not None and res is not None and res.x is not None

        # Apply preemption decisions before materializing placements: the
        # freed nodes are part of the supply the solution relied on.
        for victim_id in compiled.preempted_jobs(res.x):
            sched.state.finish(victim_id)
            req = sched._launched.pop(victim_id)
            sched.queues.push(victim_id, req.priority, req)
            ctx.result.preempted.append(victim_id)

        # Apply width re-plans the same way: an actual resize releases the
        # old allocation here (its quanta are supply the solution spent);
        # choosing the current width is the supply-neutral keep option — a
        # no-op whose placement must not be re-booked on the ledger.
        keeps: set[str] = set()
        for job_id, width in sorted(compiled.resize_decisions(res.x).items()):
            cand = compiled.resize_candidates[job_id]
            if width == cand.width:
                keeps.add(job_id)
                continue
            sched.state.finish(job_id)
            ctx.result.resized.append(job_id)
            if width > cand.width:
                ctx.resize_grown += 1
            else:
                ctx.resize_shrunk += 1

        with obs.span("decode"):
            placements = [pl for pl in compiled.decode(res.x)
                          if pl.job_id not in keeps]
            sched._prev_plan = [(rec.job_id, rec.leaf)
                                for rec in compiled.leaf_records
                                if rec.chosen_counts(res.x)
                                and rec.job_id not in compiled.resize_candidates]
            sched._prev_now = ctx.now

        with obs.span("materialize"):
            acc = PlanAccumulator(sched.state, ctx.now, ctx.config.quantum_s)
            ctx.result.allocations = sched._materialize(
                placements, compiled, acc, ctx.requests, ctx.now)


class Audit:
    """Independently recheck the cycle's decisions (``audit_mode``).

    Runs the :mod:`repro.verify` oracles between Extract and the launch
    loop — the cluster state already reflects this cycle's preemptions but
    the new allocations have not started, which is exactly the ledger the
    solution's supply constraints were written against.  Raises
    :class:`~repro.verify.audit.AuditViolation` on the first cycle whose
    solve result fails either the MILP certificate replay or the
    space-time schedule audit.  The greedy (NG) pipeline is not audited:
    it never builds an aggregate model for the oracles to replay.
    """

    name = StageName.AUDIT

    def run(self, ctx: "CycleContext") -> None:
        from repro.verify import (AuditViolation, audit_cycle, certify_gap,
                                  check_certificate)
        from repro.verify.audit import check_ledger_orphans

        # Ledger-registry consistency first: a cancellation that finished a
        # running job on the cluster ledger must have dropped it from the
        # launch registry in the same drain — an orphan here means a
        # lifecycle transition (cancel racing the solve) touched one side.
        orphans = check_ledger_orphans(ctx.scheduler.state,
                                       ctx.scheduler._launched)
        if orphans:
            raise AuditViolation(orphans)

        compiled, res = ctx.compiled, ctx.solution
        if compiled is None or res is None:
            return
        cert = check_certificate(compiled.model, res)
        # Repair-path results claim an LP-relaxation bound; re-derive it
        # with an independent LP engine and certify the reported gap.
        # Exact solves pass vacuously (no "repair_bound_source" tag).
        gap_cert = certify_gap(compiled.model, res)
        report = audit_cycle(
            ctx.scheduler.state, compiled, res, ctx.exprs,
            quantum_s=ctx.config.quantum_s, now=ctx.now,
            allocations=ctx.result.allocations)
        obs.emit("scheduler.audit",
                 certificate_ok=cert.ok, gap_certified=gap_cert.ok,
                 audit_ok=report.ok,
                 placements=report.placements,
                 quanta_checked=report.quanta_checked,
                 objective_claimed=report.objective_claimed,
                 objective_recomputed=report.objective_recomputed)
        if not cert.ok:
            cert.raise_if_failed()
        gap_cert.raise_if_failed()
        report.raise_if_failed()


class GreedyScheduling:
    """TetriSched-NG: per-job MILPs in priority order (no aggregation)."""

    name = StageName.GREEDY

    def run(self, ctx: "CycleContext") -> None:
        ctx.components = 0
        ctx.result.allocations = ctx.scheduler._cycle_greedy(
            ctx.exprs, ctx.requests, ctx.now, ctx.telemetry)
