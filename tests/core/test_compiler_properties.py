"""Property-based tests for the STRL->MILP compiler.

Invariants checked on random STRL batches:

1. both MILP backends produce the same optimal objective;
2. the objective never exceeds the batch's theoretical maximum value
   (sum over jobs of ``max_value``);
3. decoded placements never exceed per-partition per-quantum supply;
4. every nCk placement allocates exactly its ``k`` nodes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterState
from repro.core import StrlCompiler
from repro.solver import make_backend, scipy_available
from repro.strl import Max, Min, NCk

NODES = [f"n{i}" for i in range(6)]
UNIVERSE = frozenset(NODES)


@st.composite
def _leaf(draw):
    size = draw(st.integers(1, 6))
    nodes = frozenset(draw(st.permutations(NODES))[:size])
    k = draw(st.integers(1, len(nodes)))
    return NCk(nodes=nodes, k=k,
               start=draw(st.integers(0, 3)),
               duration=draw(st.integers(1, 3)),
               value=float(draw(st.integers(1, 10))))


@st.composite
def _job_expr(draw):
    kind = draw(st.sampled_from(["leaf", "max", "min"]))
    if kind == "leaf":
        return draw(_leaf())
    if kind == "max":
        return Max(*draw(st.lists(_leaf(), min_size=1, max_size=4)))
    # Min over disjoint halves keeps AND-gangs satisfiable sometimes.
    left = frozenset(NODES[:3])
    right = frozenset(NODES[3:])
    return Min(
        NCk(left, draw(st.integers(1, 3)), 0, draw(st.integers(1, 2)), 2.0),
        NCk(right, draw(st.integers(1, 3)), 0, draw(st.integers(1, 2)), 2.0))


@st.composite
def _batches(draw):
    exprs = draw(st.lists(_job_expr(), min_size=1, max_size=4))
    return [(f"job{i}", e) for i, e in enumerate(exprs)]


def _supply_ok(compiled, x) -> bool:
    """Recompute per-(partition, quantum) usage from the leaf records."""
    usage: dict[tuple[int, int], int] = {}
    for rec in compiled.leaf_records:
        counts = rec.chosen_counts(x)
        for pid, count in counts.items():
            for t in range(rec.leaf.start, rec.leaf.start + rec.leaf.duration):
                usage[(pid, t)] = usage.get((pid, t), 0) + count
    for (pid, _t), used in usage.items():
        if used > compiled.partitioning.partitions[pid].capacity:
            return False
    return True


class TestCompilerInvariants:
    @settings(max_examples=60, deadline=None)
    @given(_batches())
    def test_objective_bounded_and_feasible(self, batch):
        state = ClusterState(UNIVERSE)
        compiled = StrlCompiler(state, quantum_s=10).compile(batch)
        res = make_backend("pure").solve(compiled.model)
        assert res.status.has_solution
        upper = sum(expr.max_value() for _, expr in batch)
        assert res.objective <= upper + 1e-6
        assert res.objective >= -1e-9
        assert compiled.model.check_feasible(res.x)
        assert _supply_ok(compiled, res.x)

    @settings(max_examples=40, deadline=None)
    @given(_batches())
    def test_backends_agree(self, batch):
        if not scipy_available():
            pytest.skip("scipy required")
        state = ClusterState(UNIVERSE)
        compiled = StrlCompiler(state, quantum_s=10).compile(batch)
        pure = make_backend("pure").solve(compiled.model)
        ref = make_backend("scipy").solve(compiled.model)
        assert pure.objective == pytest.approx(ref.objective, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(_batches())
    def test_nck_placements_exact(self, batch):
        state = ClusterState(UNIVERSE)
        compiled = StrlCompiler(state, quantum_s=10).compile(batch)
        res = make_backend("auto").solve(compiled.model)
        for pl in compiled.decode(res.x):
            assert pl.total_nodes >= 1

        # Exact-k: every chosen nCk leaf record allocates exactly k.
        for rec in compiled.leaf_records:
            if isinstance(rec.leaf, NCk) and res.x[rec.indicator.index] > 0.5:
                total = sum(rec.chosen_counts(res.x).values())
                assert total == rec.leaf.k

    @settings(max_examples=30, deadline=None)
    @given(_batches(), st.integers(0, 3))
    def test_busy_cluster_respects_reduced_supply(self, batch, busy_count):
        state = ClusterState(UNIVERSE)
        busy = sorted(UNIVERSE)[:busy_count]
        if busy:
            state.start("blocker", frozenset(busy), 0.0, 1e6)
        compiled = StrlCompiler(state, quantum_s=10).compile(batch)
        res = make_backend("auto").solve(compiled.model)
        assert res.status.has_solution
        # No placement may use a busy node's capacity: recompute usage
        # against the reduced availability profile.
        for rec in compiled.leaf_records:
            for pid, count in rec.chosen_counts(res.x).items():
                part = compiled.partitioning.partitions[pid]
                free = len(part.nodes - frozenset(busy))
                assert count <= free
