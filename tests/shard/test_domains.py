"""Domain partitioning: policies, shard-count resolution, activation."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.scheduler import TetriSchedConfig
from repro.errors import SchedulerError
from repro.shard.domains import (AUTO_NODE_THRESHOLD, DomainPartitioner,
                                 SchedulingDomain, partition_policies,
                                 racks_policy, register_policy,
                                 resolve_shard_count, sharding_active)


class TestSchedulingDomain:
    def test_rejects_empty(self):
        with pytest.raises(SchedulerError):
            SchedulingDomain(0, "dom0", frozenset())

    def test_len_is_node_count(self):
        d = SchedulingDomain(0, "dom0", frozenset({"a", "b"}))
        assert len(d) == 2


class TestRacksPolicy:
    def test_partition_is_disjoint_and_covering(self):
        cluster = Cluster.build(racks=7, nodes_per_rack=3)
        domains = DomainPartitioner(cluster).partition(3)
        seen = set()
        for d in domains:
            assert not (d.nodes & seen)
            seen |= d.nodes
        assert seen == set(cluster.node_names)

    def test_domains_are_rack_aligned(self):
        cluster = Cluster.build(racks=6, nodes_per_rack=4)
        for d in DomainPartitioner(cluster).partition(3):
            racks = {n.rsplit("n", 1)[0] for n in d.nodes}
            for rack in racks:
                assert frozenset(cluster.rack_nodes(rack)) <= d.nodes

    def test_count_clamped_to_rack_count(self):
        cluster = Cluster.build(racks=2, nodes_per_rack=4)
        assert len(DomainPartitioner(cluster).partition(10)) == 2
        assert len(DomainPartitioner(cluster).partition(0)) == 1

    def test_single_domain_is_whole_cluster(self):
        cluster = Cluster.build(racks=4, nodes_per_rack=2)
        (d,) = DomainPartitioner(cluster).partition(1)
        assert d.nodes == cluster.node_names

    def test_deterministic(self):
        cluster = Cluster.build(racks=8, nodes_per_rack=4)
        a = DomainPartitioner(cluster).partition(4)
        b = DomainPartitioner(cluster).partition(4)
        assert [(d.name, sorted(d.nodes)) for d in a] \
            == [(d.name, sorted(d.nodes)) for d in b]


class TestPolicyRegistry:
    def test_racks_registered(self):
        assert "racks" in partition_policies()

    def test_unknown_policy_rejected(self):
        cluster = Cluster.build(racks=2, nodes_per_rack=2)
        with pytest.raises(SchedulerError):
            DomainPartitioner(cluster, policy="nope")

    def test_custom_policy_pluggable(self):
        from repro.shard.domains import _POLICIES
        name = "halves-test"

        @register_policy(name)
        def halves(cluster, count):
            nodes = sorted(cluster.node_names)
            mid = len(nodes) // 2
            return [frozenset(nodes[:mid]), frozenset(nodes[mid:])]

        try:
            cluster = Cluster.build(racks=2, nodes_per_rack=2)
            domains = DomainPartitioner(cluster, policy=name).partition(2)
            assert len(domains) == 2
        finally:
            _POLICIES.pop(name, None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SchedulerError):
            register_policy("racks")(racks_policy)

    def test_broken_policy_caught(self):
        from repro.shard.domains import _POLICIES
        name = "broken-test"

        @register_policy(name)
        def broken(cluster, count):
            nodes = sorted(cluster.node_names)
            return [frozenset(nodes), frozenset(nodes[:1])]  # overlap

        try:
            cluster = Cluster.build(racks=2, nodes_per_rack=2)
            with pytest.raises(SchedulerError):
                DomainPartitioner(cluster, policy=name).partition(2)
        finally:
            _POLICIES.pop(name, None)


class TestResolveAndActivation:
    def test_explicit_count_passthrough(self):
        cluster = Cluster.build(racks=8, nodes_per_rack=4)
        assert resolve_shard_count(3, cluster) == 3

    def test_default_one_domain_per_four_racks(self):
        assert resolve_shard_count(
            0, Cluster.build(racks=8, nodes_per_rack=4)) == 2
        assert resolve_shard_count(
            0, Cluster.build(racks=2, nodes_per_rack=4)) == 1

    def test_sharding_active_modes(self):
        small = Cluster.build(racks=2, nodes_per_rack=4)
        big = Cluster.build(
            racks=4, nodes_per_rack=AUTO_NODE_THRESHOLD // 4)
        off = TetriSchedConfig(shard_mode="off")
        racks = TetriSchedConfig(shard_mode="racks")
        auto = TetriSchedConfig(shard_mode="auto")
        assert not sharding_active(off, big)
        assert sharding_active(racks, small)
        assert not sharding_active(auto, small)
        assert sharding_active(auto, big)
