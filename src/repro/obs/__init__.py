"""``repro.obs`` — observability for scheduler and solver internals.

Lightweight hierarchical timers (:class:`Span`), counters, structured JSONL
event emission and a text report renderer, behind a process-global
:class:`Registry` that is a no-op until explicitly enabled:

>>> from repro import obs
>>> reg = obs.set_enabled(True)
>>> with obs.span("cycle"):
...     with obs.span("solve"):
...         obs.count("solver.solves")
>>> reg.snapshot()["timers"]["cycle/solve"]["count"]
1
>>> _ = obs.set_enabled(False)

The scheduler core, solver backends and simulator are pre-instrumented;
``python -m repro profile`` runs an experiment with the registry enabled
and emits the JSONL event stream plus a summary table.
"""

from repro.obs.events import (EVENT_SCHEMA, JsonlSink, ObsEventError,
                              iter_kinds, read_jsonl, read_jsonl_file,
                              validate_event)
from repro.obs.profile import RunProfile
from repro.obs.registry import (Counter, Registry, Span, TimerStat, count,
                                emit, enabled, get_registry, set_enabled,
                                snapshot_delta, span)
from repro.obs.report import render_profile, render_snapshot

__all__ = [
    "Counter", "EVENT_SCHEMA", "JsonlSink", "ObsEventError", "Registry",
    "RunProfile", "Span", "TimerStat", "count", "emit", "enabled",
    "get_registry", "iter_kinds", "read_jsonl", "read_jsonl_file",
    "render_profile", "render_snapshot", "set_enabled", "snapshot_delta",
    "span", "validate_event",
]
