"""Table 1: workload compositions used in the results section."""

from conftest import save_and_print

from repro.experiments import table1
from repro.workloads import TABLE1


def test_table1(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_and_print("table1", result.text)
    rows = {c.name: c.table_row() for c in TABLE1}
    # Exact paper values (Table 1).
    assert (rows["GR SLO"]["SLO"], rows["GR SLO"]["BE"]) == (100, 0)
    assert (rows["GR MIX"]["SLO"], rows["GR MIX"]["BE"]) == (52, 48)
    assert (rows["GS MIX"]["SLO"], rows["GS MIX"]["BE"]) == (70, 30)
    assert (rows["GS HET"]["SLO"], rows["GS HET"]["BE"]) == (75, 25)
    assert (rows["GS HET"]["GPU"], rows["GS HET"]["MPI"]) == (50, 50)
