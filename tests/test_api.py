"""The repro.api facade: lifecycle, spec parsing, config layering."""

import warnings

import pytest

from repro.api import Scheduler, _parse_cluster_spec
from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import (JobRequest, TetriSched, TetriSchedConfig,
                                  resolve_config)
from repro.errors import SchedulerError
from repro.strl.generator import SpaceOption
from repro.valuefn import StepValue


def small_request(cluster, job_id="j0", value=10.0):
    return JobRequest(
        job_id=job_id,
        options=(SpaceOption(cluster.node_names, k=2, duration_s=20,
                             label="any"),),
        value_fn=StepValue(value, 1e9),
        priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0)


class TestClusterSpec:
    def test_racks_by_nodes(self):
        cluster = _parse_cluster_spec("4x8")
        assert len(cluster) == 32
        assert len(cluster.rack_names) == 4

    def test_gpu_suffix(self):
        cluster = _parse_cluster_spec("4x8:2")
        assert len(cluster.nodes_with_attr("gpu")) == 16

    @pytest.mark.parametrize("bad", ["", "8", "x8", "8x", "abc"])
    def test_bad_spec_raises(self, bad):
        with pytest.raises((SchedulerError, ValueError)):
            _parse_cluster_spec(bad)

    def test_open_accepts_spec_string(self):
        api = Scheduler.open("2x4")
        assert len(api.cluster) == 8


class TestLifecycle:
    def test_open_submit_run_stats(self):
        api = Scheduler.open(Cluster.build(racks=2, nodes_per_rack=4),
                             TetriSchedConfig(quantum_s=10, cycle_s=10,
                                              plan_ahead_s=40))
        assert api.stats() is None
        api.submit(small_request(api.cluster))
        res = api.run_cycle()
        assert len(res.allocations) == 1
        assert api.stats() is api.cycle_history[-1]
        assert api.stats().objective > 0

    def test_internal_clock_advances_by_cycle_s(self):
        api = Scheduler.open("2x4", TetriSchedConfig(quantum_s=10,
                                                     cycle_s=10,
                                                     plan_ahead_s=40))
        api.run_cycle()
        api.run_cycle()
        assert [st.now for st in api.cycle_history] == [0.0, 10.0]

    def test_explicit_now_reanchors_clock(self):
        api = Scheduler.open("2x4", TetriSchedConfig(quantum_s=10,
                                                     cycle_s=10,
                                                     plan_ahead_s=40))
        api.run_cycle(100.0)
        api.run_cycle()
        assert [st.now for st in api.cycle_history] == [100.0, 110.0]

    def test_job_finished_frees_nodes(self):
        api = Scheduler.open("2x4", TetriSchedConfig(quantum_s=10,
                                                     cycle_s=10,
                                                     plan_ahead_s=40))
        api.submit(small_request(api.cluster))
        res = api.run_cycle(0.0)
        freed = api.job_finished("j0")
        assert freed == res.allocations[0].nodes

    def test_close_is_idempotent_then_raises(self):
        api = Scheduler.open("2x4")
        api.close()
        api.close()
        assert api.closed
        with pytest.raises(SchedulerError):
            api.run_cycle()
        with pytest.raises(SchedulerError):
            api.submit(small_request(api.cluster))

    def test_context_manager_closes(self):
        with Scheduler.open("2x4") as api:
            assert not api.closed
        assert api.closed

    def test_repr(self):
        api = Scheduler.open("2x4")
        assert "open" in repr(api)
        api.close()
        assert "closed" in repr(api)


class TestDeprecation:
    def test_direct_construction_warns(self):
        cluster = Cluster.build(racks=2, nodes_per_rack=2)
        with pytest.warns(DeprecationWarning, match="Scheduler.open"):
            TetriSched(cluster, TetriSchedConfig())

    def test_facade_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Scheduler.open("2x2")


class TestConfigLayering:
    def test_partial_merges_over_base(self):
        patch = TetriSchedConfig.partial(shard_mode="racks", shard_count=2)
        merged = patch.merged_into(TetriSchedConfig(quantum_s=7))
        assert merged.shard_mode == "racks"
        assert merged.shard_count == 2
        assert merged.quantum_s == 7

    def test_partial_rejects_unknown_field(self):
        with pytest.raises(SchedulerError):
            TetriSchedConfig.partial(no_such_field=1)

    def test_partial_is_not_resolved(self):
        assert not TetriSchedConfig.partial(quantum_s=5).is_resolved()
        assert TetriSchedConfig().is_resolved()

    def test_open_resolves_partial_config(self):
        api = Scheduler.open(
            "2x4", TetriSchedConfig.partial(shard_mode="racks"))
        assert api.config.is_resolved()
        assert api.config.shard_mode == "racks"
        assert api.config.cycle_s == TetriSchedConfig().cycle_s

    def test_resolve_none_gives_defaults(self):
        cfg = resolve_config(None)
        assert cfg.is_resolved()
        assert cfg.shard_mode == "off"

    def test_validate_rejects_unresolved(self):
        with pytest.raises(SchedulerError, match="unresolved"):
            TetriSchedConfig.partial(quantum_s=5).validate()

    @pytest.mark.parametrize("kw,match", [
        (dict(quantum_s=0), "quantum_s"),
        (dict(cycle_s=-1), "cycle_s"),
        (dict(delta_mode="sometimes"), "delta_mode"),
        (dict(shard_mode="pods"), "shard_mode"),
        (dict(shard_count=-1), "shard_count"),
        (dict(shard_count=2), "shard_mode='off'"),
        (dict(shard_mode="racks", global_scheduling=False),
         "global_scheduling"),
        (dict(shard_mode="racks", heterogeneity_aware=False),
         "heterogeneity_aware"),
        (dict(shard_mode="racks", enable_preemption=True), "preemption"),
        (dict(rel_gap=-0.1), "rel_gap"),
        (dict(solver_workers=-1), "solver_workers"),
    ])
    def test_validate_rejects_incoherent(self, kw, match):
        with pytest.raises(SchedulerError, match=match):
            TetriSchedConfig(**kw).validate()

    def test_validate_returns_self(self):
        cfg = TetriSchedConfig(shard_mode="racks", shard_count=2)
        assert cfg.validate() is cfg
