"""Deeper coverage of greedy (-NG) mode: tentative reservations,
fragmentation protection, and heterogeneous jobs."""

import pytest

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.sim import Job, MpiType, Simulation, TetriSchedAdapter
from repro.strl import SpaceOption
from repro.valuefn import StepValue


def greedy_sched(cluster, **kw):
    cfg = dict(quantum_s=10, cycle_s=10, plan_ahead_s=40,
               global_scheduling=False, backend="auto", rel_gap=1e-6)
    cfg.update(kw)
    return TetriSched(cluster, TetriSchedConfig(**cfg))


def request(cluster, job_id, k, dur, deadline,
            priority=PriorityClass.SLO_ACCEPTED, nodes=None):
    return JobRequest(job_id,
                      (SpaceOption(nodes or cluster.node_names, k, dur),),
                      StepValue(1000.0, deadline), priority, 0.0,
                      deadline=deadline)


class TestTentativeReservations:
    def test_earlier_job_deferred_placement_blocks_later(self):
        """A high-priority job deferred to t=10 must keep those nodes from
        a lower-priority job spanning the same future interval."""
        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        sched = greedy_sched(cluster)
        # Occupy the cluster until t=10.
        sched.state.start("running", cluster.node_names, 0.0, 10.0)
        # High priority: needs 2 nodes for 2 quanta, deadline forces t=10.
        sched.submit(request(cluster, "high", k=2, dur=20, deadline=40))
        # Low priority: long job that would collide if placed at t=10.
        sched.submit(request(cluster, "low", k=2, dur=20, deadline=200,
                             priority=PriorityClass.BEST_EFFORT))
        result = sched.run_cycle(0.0)
        # Nothing can launch now (cluster busy).
        assert result.allocations == []
        # Next cycle: the high-priority job gets the nodes.
        sched.state.finish("running")
        result = sched.run_cycle(10.0)
        launched = {a.job_id for a in result.allocations}
        assert "high" in launched

    def test_fragmented_capacity_not_over_promised(self):
        """Interval caps: a 2-quantum job must not be planned onto two
        nodes that are each free for only one (different) quantum."""
        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        sched = greedy_sched(cluster)
        nodes = sorted(cluster.node_names)
        # Stagger occupancy: n0 busy [0,10), n1 busy [10,20).
        sched.state.start("a", frozenset({nodes[0]}), 0.0, 10.0)
        sched.submit(request(cluster, "filler", k=1, dur=10, deadline=200,
                             priority=PriorityClass.SLO_ACCEPTED))
        r0 = sched.run_cycle(0.0)
        # filler takes n1 now [0,10)... then a 2-quanta 1-node job: every
        # node has a hole, but n0 frees at 10 making [10,30) viable.
        assert len(r0.allocations) == 1
        # Both occupants release at t=10.
        sched.state.finish("a")
        sched.on_job_finished("filler", 10.0)
        sched.submit(request(cluster, "long", k=1, dur=20, deadline=300))
        r0b = sched.run_cycle(10.0)
        launched = {a.job_id for a in r0b.allocations}
        assert "long" in launched

    def test_greedy_stats_count_solves(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=4)
        sched = greedy_sched(cluster)
        for i in range(3):
            sched.submit(request(cluster, f"j{i}", k=1, dur=10, deadline=500))
        result = sched.run_cycle(0.0)
        assert result.stats.solves == 3
        assert result.stats.milp_variables > 0


class TestPickRollback:
    def test_failed_pick_releases_earlier_reservations(self, monkeypatch):
        """Regression: a mid-job pick failure must roll back the job's
        earlier reservations instead of leaving phantom-occupied capacity
        that starves every later job in the cycle."""
        import repro.core.compiler as compiler_mod
        from repro.core.compiler import PlannedPlacement

        real_decode = compiler_mod.CompiledBatch.decode

        def leaky_decode(self, x):
            placements = real_decode(self, x)
            # After "doomed"'s real (assignable) placement, inject one that
            # cannot be assigned, as fragmentation can produce for
            # multi-leaf gangs.
            if any(pl.job_id == "doomed" for pl in placements):
                placements.append(PlannedPlacement(
                    job_id="doomed", start=0, duration=1,
                    node_counts={0: 99}, value=1.0))
            return placements

        monkeypatch.setattr(compiler_mod.CompiledBatch, "decode",
                            leaky_decode)

        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        sched = greedy_sched(cluster)
        # Both jobs want the whole cluster now; deadline admits only start 0.
        sched.submit(request(cluster, "doomed", k=2, dur=10, deadline=10))
        sched.submit(request(cluster, "victim", k=2, dur=10, deadline=10,
                             priority=PriorityClass.SLO_NO_RESERVATION))
        result = sched.run_cycle(0.0)
        launched = {a.job_id for a in result.allocations}
        # "doomed" must not launch a partial gang; "victim" must still get
        # the nodes "doomed"'s rolled-back picks had tentatively held.
        assert "doomed" not in launched
        assert "victim" in launched


class TestGreedyHeterogeneous:
    def test_mpi_jobs_rack_local_in_greedy_mode(self):
        cluster = Cluster.build(racks=2, nodes_per_rack=4)
        adapter = TetriSchedAdapter(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=40,
            global_scheduling=False))
        jobs = [Job(f"m{i}", MpiType(slowdown=2.0), k=3,
                    base_runtime_s=20, submit_time=0.0, deadline=300.0)
                for i in range(2)]
        res = Simulation(cluster, adapter, jobs).run()
        for o in res.outcomes.values():
            assert o.completed
            assert o.preferred_placement, "greedy should still pick racks"
            assert len(cluster.racks_of(o.nodes)) == 1

    def test_greedy_matches_global_on_uncontended(self):
        """With plenty of capacity, greedy and global agree exactly."""
        cluster = Cluster.build(racks=2, nodes_per_rack=4)
        outcomes = {}
        for mode in (True, False):
            adapter = TetriSchedAdapter(cluster, TetriSchedConfig(
                quantum_s=10, cycle_s=10, plan_ahead_s=40,
                global_scheduling=mode))
            jobs = [Job(f"j{i}", MpiType(), k=2, base_runtime_s=20,
                        submit_time=0.0, deadline=300.0) for i in range(3)]
            res = Simulation(cluster, adapter, jobs).run()
            outcomes[mode] = sorted(
                (o.job_id, o.start_time, o.finish_time)
                for o in res.outcomes.values())
        assert outcomes[True] == outcomes[False]
