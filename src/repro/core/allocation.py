"""Mapping solved schedules onto concrete nodes.

The MILP works on partition *counts*; actually launching a job requires
picking concrete free nodes.  :class:`PlanAccumulator` tracks per-node
space-time occupancy within a cycle so that

* placements launching now receive nodes that are genuinely free, and
* (in greedy mode) tentative future placements of earlier-considered jobs
  are visible to later jobs in the same cycle.

The accumulator implements the same ``availability_profile`` interface as
:class:`~repro.cluster.state.ClusterState`, so the STRL compiler can draw
supply from either: the raw cluster view (global scheduling — the MILP
resolves conflicts itself) or the accumulator (greedy scheduling — earlier
jobs' tentative placements consume capacity).

Supply constraints guarantee the counts fit, so node picking can be greedy
and deterministic (sorted order) without backtracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.partitions import Partitioning
from repro.cluster.state import ClusterState
from repro.errors import SchedulerError


@dataclass(frozen=True)
class Allocation:
    """A concrete launch decision: job -> nodes, now, for expected duration."""

    job_id: str
    nodes: frozenset[str]
    start_time: float      # absolute seconds
    expected_end: float    # absolute seconds (estimate-based)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SchedulerError(f"allocation for {self.job_id!r} has no nodes")
        if self.expected_end <= self.start_time:
            raise SchedulerError(
                f"allocation for {self.job_id!r}: end must be after start")


class PlanAccumulator:
    """Per-node occupancy (in quanta from "now") within one scheduling cycle.

    Seeds busy intervals from the running jobs in ``state`` (using their
    expected release times), then lets the caller :meth:`reserve` nodes for
    planned placements as they are materialized.
    """

    def __init__(self, state: ClusterState, now: float,
                 quantum_s: float) -> None:
        self.universe = state.universe
        self.now = now
        self.quantum_s = quantum_s
        self._busy: dict[str, set[int]] = {n: set() for n in state.universe}
        for node, quanta in state.busy_quanta(now, quantum_s).items():
            self._busy[node].update(range(quanta))

    # -- availability-provider interface (mirrors ClusterState) -------------
    def availability_profile(self, nodes: frozenset[str], horizon_quanta: int,
                             now: float, quantum_s: float) -> list[int]:
        """Free-node count per quantum, accounting for tentative plans."""
        if horizon_quanta <= 0:
            return []
        profile = [0] * horizon_quanta
        for n in nodes:
            busy = self._busy[n]
            for t in range(horizon_quanta):
                if t not in busy:
                    profile[t] += 1
        return profile

    # -- occupancy ------------------------------------------------------------
    def is_free(self, node: str, start: int, duration: int) -> bool:
        """Whether ``node`` is free for the whole ``[start, start+duration)``."""
        busy = self._busy[node]
        return all(t not in busy for t in range(start, start + duration))

    def free_nodes_within(self, nodes: frozenset[str], start: int,
                          duration: int) -> list[str]:
        """Deterministically ordered nodes free for the whole interval."""
        return [n for n in sorted(nodes) if self.is_free(n, start, duration)]

    def interval_free_count(self, nodes: frozenset[str], start: int,
                            duration: int) -> int:
        """Number of nodes free for the *entire* interval.

        Exposed to the STRL compiler so greedy-mode MILPs never plan counts
        that node-level fragmentation would make unassignable.
        """
        return len(self.free_nodes_within(nodes, start, duration))

    def reserve(self, nodes: Iterable[str], start: int, duration: int) -> None:
        """Mark nodes busy for the interval (planned placement)."""
        span = range(start, start + duration)
        for n in nodes:
            busy = self._busy[n]
            for t in span:
                if t in busy:
                    raise SchedulerError(
                        f"node {n!r} double-reserved at quantum {t}")
                busy.add(t)

    def unreserve(self, nodes: Iterable[str], start: int,
                  duration: int) -> None:
        """Roll back a prior :meth:`reserve`/:meth:`pick` of these nodes.

        Used by the greedy (-NG) cycle to undo a job's earlier successful
        picks when a later placement of the same job turns out to be
        unassignable; without the rollback, the partial reservations would
        leak and every subsequent job in the cycle would see
        phantom-occupied capacity.
        """
        span = range(start, start + duration)
        for n in nodes:
            busy = self._busy[n]
            for t in span:
                if t not in busy:
                    raise SchedulerError(
                        f"node {n!r} was not reserved at quantum {t}")
                busy.remove(t)

    def pick(self, partitioning: Partitioning, node_counts: dict[int, int],
             start: int, duration: int) -> frozenset[str]:
        """Pick and reserve concrete nodes for a placement.

        ``node_counts`` maps partition id -> count, as decoded from the MILP.
        Raises :class:`SchedulerError` if the counts don't fit — that would
        mean the supply constraints and this accumulator disagree, i.e. a
        compiler bug.
        """
        chosen: list[str] = []
        for pid, count in sorted(node_counts.items()):
            part = partitioning.partitions[pid]
            free = self.free_nodes_within(part.nodes, start, duration)
            if len(free) < count:
                raise SchedulerError(
                    f"partition {pid} has {len(free)} free nodes for "
                    f"[{start},{start + duration}), need {count}")
            chosen.extend(free[:count])
        self.reserve(chosen, start, duration)
        return frozenset(chosen)
