"""MILP certificate checking.

A solver's :class:`~repro.solver.result.MILPResult` is a *claim*: "this
point is feasible and achieves this objective".  :func:`check_certificate`
replays that claim against the model's canonical CSR export
(:meth:`~repro.solver.model.Model.to_sparse_arrays`) — variable bounds,
integrality, every inequality and equality row, the recomputed objective,
and consistency of the reported dual bound.  The check is a direct
``O(nonzeros)`` evaluation that shares no code with any solve path, so the
decomposed / parallel / cache-replay recombinations can never silently
diverge from the monolithic model: a wrong assembled ``x`` or a lied-about
objective fails here no matter which configuration produced it.

Tolerances are absolute-plus-relative: a row with right-hand side ``b``
may be violated by at most ``tol * max(1, |b|)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.model import MAXIMIZE, Model, SparseMatrix
from repro.solver.result import MILPResult, SolveStatus
from repro.verify.audit import AuditViolation, Violation


def _csr_matvec(mat: SparseMatrix, x: np.ndarray) -> np.ndarray:
    """``mat @ x`` straight off the CSR triplets (no densification)."""
    out = np.zeros(mat.shape[0])
    if mat.nnz:
        prod = mat.data * x[mat.indices]
        counts = np.diff(mat.indptr)
        nonempty = counts > 0
        # reduceat over the start offsets of non-empty rows only: each
        # segment then runs to the next non-empty row's start, which is
        # exactly that row's extent (empty rows contribute nothing).
        out[nonempty] = np.add.reduceat(prod, mat.indptr[:-1][nonempty])
    return out


@dataclass
class CertificateReport:
    """Outcome of replaying one :class:`MILPResult` against its model.

    ``violations`` is empty iff the certificate checks out; the ``max_*``
    fields carry the worst observed deviation of each kind (0.0 when that
    class of check passed or was not applicable).
    """

    violations: tuple[Violation, ...]
    #: Objective recomputed from the export at the claimed point, in the
    #: model's own sense (NaN when there was no point to evaluate).
    objective_recomputed: float = float("nan")
    max_bound_violation: float = 0.0
    max_integrality_violation: float = 0.0
    max_row_violation: float = 0.0
    objective_delta: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`AuditViolation` when any check failed."""
        if self.violations:
            raise AuditViolation(self.violations)


def check_certificate(model: Model, result: MILPResult,
                      tol: float = 1e-6) -> CertificateReport:
    """Verify a solve result against the model's sparse export.

    Checks, in order: the status/point contract (a status claiming a
    solution must carry one and vice versa), point shape and finiteness,
    variable bounds, integrality, all ``a_ub @ x <= b_ub`` and
    ``a_eq @ x == b_eq`` rows, the recomputed objective against
    ``result.objective``, and that the reported dual ``bound`` does not
    contradict the incumbent.  Statuses without a solution (INFEASIBLE,
    UNBOUNDED, NO_SOLUTION) have no point to replay and pass vacuously.

    Example
    -------
    >>> from repro.solver import BranchBoundSolver, Model
    >>> m = Model()
    >>> x = m.add_binary("x"); y = m.add_binary("y")
    >>> _ = m.add_constraint(x + y, "<=", 1)
    >>> m.set_objective(2 * x + 3 * y, sense="maximize")
    >>> res = BranchBoundSolver().solve(m)
    >>> check_certificate(m, res).ok
    True
    >>> res.x[0] = 1.0  # corrupt one assignment bit: x + y = 2 > 1
    >>> check_certificate(m, res).ok
    False
    """
    violations: list[Violation] = []
    if result.x is None:
        if result.status.has_solution:
            violations.append(Violation(
                "certificate.missing-point",
                f"status {result.status.value} claims a solution "
                f"but result.x is None"))
        return CertificateReport(tuple(violations))
    if not result.status.has_solution:
        violations.append(Violation(
            "certificate.unexpected-point",
            f"status {result.status.value} carries a solution point"))

    x = np.asarray(result.x, dtype=float)
    n = model.num_variables
    if x.shape != (n,):
        violations.append(Violation(
            "certificate.shape",
            f"point has shape {x.shape}, model has {n} variables"))
        return CertificateReport(tuple(violations))
    if not np.all(np.isfinite(x)):
        violations.append(Violation(
            "certificate.non-finite",
            f"{int(np.sum(~np.isfinite(x)))} non-finite entries in x"))
        return CertificateReport(tuple(violations))

    sa = model.to_sparse_arrays()

    # Variable bounds.
    below = np.maximum(0.0, sa.lb - x)
    above = np.maximum(0.0, x - sa.ub)
    max_bound = float(max(below.max(initial=0.0), above.max(initial=0.0)))
    if max_bound > tol:
        i = int(np.argmax(np.maximum(below, above)))
        violations.append(Violation(
            "certificate.bounds",
            f"variable {model.variables[i].name!r} = {x[i]:g} outside "
            f"[{sa.lb[i]:g}, {sa.ub[i]:g}] by {max_bound:.3e}",
            {"index": i, "magnitude": max_bound}))

    # Integrality.
    max_integrality = 0.0
    if sa.integrality.any():
        frac = np.abs(x[sa.integrality] - np.round(x[sa.integrality]))
        max_integrality = float(frac.max(initial=0.0))
        if max_integrality > tol:
            which = np.nonzero(sa.integrality)[0][int(np.argmax(frac))]
            violations.append(Violation(
                "certificate.integrality",
                f"integer variable {model.variables[int(which)].name!r} "
                f"= {x[which]:g} is fractional by {max_integrality:.3e}",
                {"index": int(which), "magnitude": max_integrality}))

    # Constraint rows (CSR, minimization orientation: GE already negated).
    max_row = 0.0
    ub_excess = (_csr_matvec(sa.a_ub, x) - sa.b_ub
                 if sa.b_ub.size else np.zeros(0))
    eq_excess = (np.abs(_csr_matvec(sa.a_eq, x) - sa.b_eq)
                 if sa.b_eq.size else np.zeros(0))
    for kind, excess, rhs, offset in (
            ("ub", ub_excess, sa.b_ub, 0),
            ("eq", eq_excess, sa.b_eq, int(sa.b_ub.size))):
        if not excess.size:
            continue
        scaled = excess / np.maximum(1.0, np.abs(rhs))
        max_row = max(max_row, float(scaled.max(initial=0.0)))
        bad = np.nonzero(scaled > tol)[0]
        if bad.size:
            r = int(bad[int(np.argmax(scaled[bad]))])
            # Row order matches model.constraints (UB rows first, then EQ
            # rows, both in constraint order) only per-kind; recover the
            # source constraint by scanning senses.
            name = _row_constraint_name(model, kind, r)
            violations.append(Violation(
                f"certificate.row-{kind}",
                f"{bad.size} {kind} row(s) violated; worst is {name!r} "
                f"by {float(excess[r]):.3e}",
                {"rows": [int(b) for b in bad[:8]],
                 "magnitude": float(scaled[r])}))

    # Objective reconciliation: model objective = obj_sign*(c@x) + const.
    recomputed = float(sa.obj_sign * (sa.c @ x) + sa.obj_constant)
    scale = max(1.0, abs(recomputed))
    delta = abs(recomputed - result.objective) / scale
    if delta > tol:
        violations.append(Violation(
            "certificate.objective",
            f"claimed objective {result.objective:g} but the point "
            f"evaluates to {recomputed:g} (relative delta {delta:.3e})",
            {"claimed": result.objective, "recomputed": recomputed}))

    # Dual-bound sanity: the incumbent can never beat the proven bound.
    if np.isfinite(result.bound):
        slack = (recomputed - result.bound
                 if model.objective_sense == MAXIMIZE
                 else result.bound - recomputed)
        if slack > tol * scale:
            violations.append(Violation(
                "certificate.bound",
                f"incumbent {recomputed:g} beats the reported dual bound "
                f"{result.bound:g} — the bound proof cannot be valid",
                {"bound": result.bound, "recomputed": recomputed}))

    return CertificateReport(
        tuple(violations), objective_recomputed=recomputed,
        max_bound_violation=max_bound,
        max_integrality_violation=max_integrality,
        max_row_violation=max_row, objective_delta=delta)


@dataclass
class GapCertificate:
    """Outcome of independently re-deriving a repair result's gap claim."""

    violations: tuple[Violation, ...]
    bound_claimed: float = float("nan")
    bound_recomputed: float = float("nan")
    gap_claimed: float = float("nan")
    gap_recomputed: float = float("nan")

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise AuditViolation(self.violations)


def certify_gap(model: Model, result: MILPResult,
                tol: float = 1e-6) -> GapCertificate:
    """Certify a repair-path result's claimed bound and optimality gap.

    The repair solver reports ``bound`` as its root LP-relaxation optimum
    and tags ``stats["repair_bound_source"] = "lp"``.  That claim is
    checkable without trusting any code the repair path ran: this re-solves
    the relaxation with an *independent* LP engine (HiGHS when scipy is
    available, else the legacy dense tableau — never the revised simplex
    that produced the claim) and verifies

    * the claimed bound matches the recomputed relaxation optimum, which
      also proves the lazy column generation terminated at the **full**
      LP optimum rather than a restricted-problem artifact; and
    * the reported ``gap`` equals the incumbent-vs-bound recomputation.

    Results not tagged as LP-bounded (exact solves, escalations) pass
    vacuously with NaN fields: their bound is a branch-and-bound proof
    already covered by :func:`check_certificate`'s bound-consistency check.
    """
    if result.stats.get("repair_bound_source") != "lp" or result.x is None:
        return GapCertificate(())
    violations: list[Violation] = []
    sa = model.to_standard_arrays()

    from repro.solver.scipy_backend import scipy_available, solve_lp_scipy
    from repro.solver.simplex import solve_lp
    lp_solve = solve_lp_scipy if scipy_available() else solve_lp
    lp = lp_solve(sa.c, a_ub=sa.a_ub if sa.b_ub.size else None,
                  b_ub=sa.b_ub if sa.b_ub.size else None,
                  a_eq=sa.a_eq if sa.b_eq.size else None,
                  b_eq=sa.b_eq if sa.b_eq.size else None,
                  lb=sa.lb, ub=sa.ub)
    if lp.status != SolveStatus.OPTIMAL:
        violations.append(Violation(
            "gap.relaxation",
            f"independent LP re-solve returned {lp.status.value} on a "
            f"model the repair path claims to have bounded"))
        return GapCertificate(tuple(violations),
                              bound_claimed=result.bound,
                              gap_claimed=result.gap)
    bound_recomputed = float(sa.obj_sign * lp.objective + sa.obj_constant)
    scale = max(1.0, abs(bound_recomputed))
    if abs(result.bound - bound_recomputed) > tol * scale:
        violations.append(Violation(
            "gap.bound-mismatch",
            f"claimed LP bound {result.bound:g} but the independent "
            f"re-solve finds {bound_recomputed:g}",
            {"claimed": result.bound, "recomputed": bound_recomputed}))

    x = np.asarray(result.x, dtype=float)
    obj_min = float(sa.c @ x)
    lp_min = float(lp.objective)
    gap_recomputed = abs(obj_min - lp_min) / max(1.0, abs(obj_min))
    if abs(result.gap - gap_recomputed) > tol:
        violations.append(Violation(
            "gap.gap-mismatch",
            f"claimed gap {result.gap:g} but incumbent vs recomputed "
            f"bound gives {gap_recomputed:g}",
            {"claimed": result.gap, "recomputed": gap_recomputed}))
    return GapCertificate(tuple(violations), bound_claimed=result.bound,
                          bound_recomputed=bound_recomputed,
                          gap_claimed=result.gap,
                          gap_recomputed=gap_recomputed)


def _row_constraint_name(model: Model, kind: str, row: int) -> str:
    """Name of the model constraint behind sparse row ``row`` of ``kind``."""
    want_eq = kind == "eq"
    i = -1
    for con in model.constraints:
        if (con.sense == "==") == want_eq:
            i += 1
            if i == row:
                return con.name
    return f"{kind}[{row}]"


__all__ = ["CertificateReport", "GapCertificate", "certify_gap",
           "check_certificate"]
