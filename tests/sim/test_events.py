"""Tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, EventKind.JOB_ARRIVAL, "b")
        q.push(1.0, EventKind.JOB_ARRIVAL, "a")
        q.push(9.0, EventKind.JOB_ARRIVAL, "c")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_same_time_kind_priority(self):
        """Completions fire before cycles at the same instant, so freed
        nodes are visible to the cycle; arrivals fire first of all."""
        q = EventQueue()
        q.push(5.0, EventKind.SCHEDULER_CYCLE, "cycle")
        q.push(5.0, EventKind.JOB_COMPLETION, "done")
        q.push(5.0, EventKind.JOB_ARRIVAL, "new")
        assert [q.pop().payload for _ in range(3)] == ["new", "done", "cycle"]

    def test_same_time_same_kind_fifo(self):
        q = EventQueue()
        q.push(1.0, EventKind.JOB_ARRIVAL, "first")
        q.push(1.0, EventKind.JOB_ARRIVAL, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_cancellation(self):
        q = EventQueue()
        ev = q.push(1.0, EventKind.JOB_COMPLETION, "x")
        q.push(2.0, EventKind.JOB_COMPLETION, "y")
        q.cancel(ev)
        assert len(q) == 1
        assert q.pop().payload == "y"
        assert q.pop() is None

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        ev = q.push(1.0, EventKind.JOB_ARRIVAL)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(-1.0, EventKind.JOB_ARRIVAL)

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, EventKind.JOB_ARRIVAL)
        q.push(3.0, EventKind.JOB_ARRIVAL)
        q.cancel(ev)
        assert q.peek_time() == 3.0

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.JOB_ARRIVAL)
        assert q and len(q) == 1
