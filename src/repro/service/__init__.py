"""Long-lived asynchronous scheduler service (paper Sec. 3.3 deployment).

The paper's TetriSched runs as a standing daemon beside YARN: jobs arrive
continuously, scheduling cycles fire on a timer, and cluster events stream
in between solves.  This package provides that deployment shape for the
repo's scheduler core:

* :class:`~repro.service.service.SchedulerService` — thread-safe job
  lifecycle registry + cycle driver around a
  :class:`~repro.core.scheduler.TetriSched`;
* :mod:`repro.service.http` — stdlib-asyncio HTTP/JSON API
  (``python -m repro serve``);
* :class:`~repro.service.clock.Clock` / ``FakeClock`` — injectable time,
  so timer behavior is deterministic under test.

The simulator remains just one client (see
:class:`repro.sim.adapters.ServiceAdapter`).
"""

from repro.service.clock import Clock, FakeClock
from repro.service.http import ServiceServer, serve
from repro.service.service import (CANCELLED, COMPLETED, CULLED, PENDING,
                                   RUNNING, JobRecord, SchedulerService,
                                   run_cycle_loop)

__all__ = ["CANCELLED", "COMPLETED", "CULLED", "Clock", "FakeClock",
           "JobRecord", "PENDING", "RUNNING", "SchedulerService",
           "ServiceServer", "run_cycle_loop", "serve"]
