"""Staged scheduling-cycle pipeline.

One TetriSched cycle is a fixed sequence of typed stages::

    StrlGeneration -> Compilation -> ModelBuild -> Decompose -> Solve -> Extract

(or ``StrlGeneration -> GreedyScheduling`` for the -NG ablation).  Each
stage is a small object with a ``name`` and a ``run(ctx)`` method; the
:class:`~repro.pipeline.driver.CyclePipeline` driver runs them in order
under per-stage :mod:`repro.obs` spans and records wall-clock timings in
the shared :class:`~repro.pipeline.context.CycleContext`.  A stage may
``ctx.halt()`` to short-circuit the rest of the cycle (nothing to
schedule, solver returned no solution).

This makes ``TetriSched.run_cycle`` a thin driver and gives experiments a
uniform "where does cycle time go" breakdown (see ``BENCH_cycle.json``
and docs/architecture.md).
"""

from repro.pipeline.context import CycleContext
from repro.pipeline.driver import CyclePipeline, global_pipeline, greedy_pipeline
from repro.pipeline.stages import (
    Compilation,
    Decompose,
    Extract,
    GreedyScheduling,
    ModelBuild,
    Solve,
    Stage,
    StageName,
    StrlGeneration,
)

__all__ = [
    "CycleContext",
    "CyclePipeline",
    "Stage",
    "StageName",
    "StrlGeneration",
    "Compilation",
    "ModelBuild",
    "Decompose",
    "Solve",
    "Extract",
    "GreedyScheduling",
    "global_pipeline",
    "greedy_pipeline",
]
