"""Unified solver options: one dataclass for every solve-control knob.

Historically each backend grew its own keyword arguments — ``rel_gap`` and
``time_limit`` on :func:`~repro.solver.backend.make_backend`, ``warm_start``
on every ``solve()``, and the parallel/caching work would have added two
more.  :class:`SolveOptions` replaces that scatter with a single value
object accepted by :func:`~repro.solver.backend.make_backend`, both
backends' ``solve()``, and
:func:`~repro.solver.decompose.solve_decomposed`.

Fields default to the :data:`UNSET` sentinel, meaning *inherit the
receiver's configured value*: a backend constructed with ``rel_gap=0.01``
keeps that gap unless a per-call ``SolveOptions(rel_gap=...)`` overrides
it.  This is what lets :func:`solve_decomposed` carve per-component time
budgets out of the cycle budget without re-specifying every other knob.

The legacy per-function keyword arguments went through a one-release
:class:`DeprecationWarning` window and have been removed; passing them now
raises :class:`TypeError` like any other unknown keyword.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import cycle guard
    from repro.solver.parallel import ComponentCache


class _Unset:
    """Singleton marking 'not specified' (distinct from a meaningful None)."""

    _instance: "_Unset | None" = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: Sentinel for "field not specified": the receiver's own default applies.
#: ``time_limit=None`` means *unlimited*; ``time_limit=UNSET`` means *keep
#: whatever the backend was configured with* — they are different values.
UNSET: Any = _Unset()


def is_set(value: Any) -> bool:
    """True when ``value`` was explicitly specified (is not :data:`UNSET`)."""
    return value is not UNSET


@dataclass(frozen=True, eq=False)
class SolveOptions:
    """Every tunable of a MILP solve, in one place.

    Example
    -------
    >>> from repro.solver import SolveOptions, make_backend
    >>> backend = make_backend("pure", SolveOptions(rel_gap=0.01))
    >>> SolveOptions(time_limit=2.0).merged_into(
    ...     SolveOptions(rel_gap=0.5, time_limit=9.0)).time_limit
    2.0
    """

    #: Relative optimality gap at which the search may stop (the paper
    #: configures its solver for solutions within 10 % of optimal).
    rel_gap: float = UNSET
    #: Wall-clock budget per solve in seconds; ``None`` = unlimited.
    time_limit: float | None = UNSET
    #: Branch-and-bound node budget; ``None`` = unlimited (pure backend).
    node_limit: int | None = UNSET
    #: Feasible seed point for this call (model column order), or ``None``.
    warm_start: np.ndarray | None = UNSET
    #: Worker processes for decomposed solves; 0/1 = solve in-process.
    workers: int = UNSET
    #: Cross-cycle component memoization cache, or ``None`` to disable.
    component_cache: "ComponentCache | None" = UNSET
    #: Solve strategy: ``"exact"`` (branch and bound to ``rel_gap``),
    #: ``"repair"`` (LP relaxation + rounding repair, audited gap), or
    #: ``"auto"`` (repair, escalating to exact when the audited gap
    #: exceeds :attr:`repair_gap_threshold`).
    solve_mode: str = UNSET
    #: Audited-gap ceiling for ``solve_mode="auto"``: a repaired incumbent
    #: whose LP-bound gap exceeds this escalates to exact branch and bound.
    repair_gap_threshold: float = UNSET
    #: Lazy start-time column groups for the repair path (a sequence of
    #: :class:`repro.solver.colgen.ColumnGroup`), or ``None`` to solve the
    #: root LP with every column materialized.
    column_groups: "tuple | None" = UNSET

    def merged_into(self, base: "SolveOptions") -> "SolveOptions":
        """``base`` with every field this instance explicitly sets applied."""
        overrides = {f.name: getattr(self, f.name) for f in fields(self)
                     if is_set(getattr(self, f.name))}
        return replace(base, **overrides) if overrides else base

    def get(self, name: str, default: Any = None) -> Any:
        """Field value, or ``default`` when the field is :data:`UNSET`."""
        value = getattr(self, name)
        return value if is_set(value) else default


#: Library-wide defaults (mirrors the historical ``make_backend`` keyword
#: defaults); :func:`resolve` folds user options onto these.
DEFAULT_OPTIONS = SolveOptions(rel_gap=1e-6, time_limit=None,
                               node_limit=200_000, warm_start=None,
                               workers=0, component_cache=None,
                               solve_mode="exact", repair_gap_threshold=0.05,
                               column_groups=None)


def resolve(options: SolveOptions | None) -> SolveOptions:
    """``options`` with every unset field filled from :data:`DEFAULT_OPTIONS`."""
    if options is None:
        return DEFAULT_OPTIONS
    return options.merged_into(DEFAULT_OPTIONS)


__all__ = ["DEFAULT_OPTIONS", "SolveOptions", "UNSET", "is_set", "resolve"]
