"""Cycle-pipeline benchmark: dense oracle vs sparse vs decomposed.

``bench_cycle`` runs the *same* fixed-seed, fig12-scale scheduling cycles
through three configurations of the staged pipeline:

* ``monolithic-dense`` — decomposition off, solver consumes the dense
  ``to_standard_arrays`` export (the pre-refactor path, kept as oracle);
* ``monolithic-sparse`` — decomposition off, CSR export + sparse presolve;
* ``decomposed-sparse`` — the default production path: sparse core plus
  independent-component decomposition.

The workload is rack-pinned (each job's placement options stay inside one
rack) so the aggregate MILP genuinely splits into one block per rack —
the regime the paper's datacenter workloads live in, where rack-local
preferences dominate (Sec. 2.1).  Distinct per-job values make the
optimum unique, so all three configurations must report the same
objective on every cycle; any mismatch is a correctness bug, and
:func:`bench_cycle` flags it in the returned report
(``results/BENCH_cycle.json`` in CI).
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import JobRequest, TetriSched, TetriSchedConfig
from repro.solver.backend import make_backend
from repro.solver.branch_bound import BranchBoundOptions, BranchBoundSolver
from repro.strl.generator import SpaceOption
from repro.valuefn import StepValue

#: (mode name, decomposition enabled, sparse arrays) — order matters for
#: the speedup report: the first mode is the oracle baseline.
MODES = (
    ("monolithic-dense", False, False),
    ("monolithic-sparse", False, True),
    ("decomposed-sparse", True, True),
)

_REL_TOL = 1e-6


def _rack_pinned_jobs(cluster: Cluster, jobs_per_rack: int, quantum_s: float,
                      seed: int) -> list[JobRequest]:
    """A deterministic oversubscribed batch of rack-local jobs.

    Values are all distinct so the MILP optimum is unique — the property
    that lets the benchmark demand exact objective agreement across
    solver configurations instead of a loose tolerance.
    """
    rng = random.Random(seed)
    racks: dict[str, list[str]] = {}
    for name in sorted(cluster.node_names):
        racks.setdefault(name.rsplit("n", 1)[0], []).append(name)
    jobs: list[JobRequest] = []
    for r, rack in enumerate(sorted(racks)):
        nodes = frozenset(racks[rack])
        for j in range(jobs_per_rack):
            k = rng.randint(2, max(2, len(nodes) // 2))
            dur_q = rng.randint(2, 4)
            jid = f"{rack}-job{j}"
            jobs.append(JobRequest(
                job_id=jid,
                options=(SpaceOption(nodes, k=k,
                                     duration_s=dur_q * quantum_s),),
                value_fn=StepValue(value=10.0 + len(jobs) * 0.37,
                                   deadline=1e9),
                priority=PriorityClass.SLO_ACCEPTED,
                submit_time=0.0))
    return jobs


def _build_backend(name: str, sparse: bool, rel_gap: float):
    """A backend forced onto the dense or sparse array path."""
    backend = make_backend(name, rel_gap=rel_gap)
    if isinstance(backend, BranchBoundSolver):
        opts = backend.options
        return BranchBoundSolver(BranchBoundOptions(
            rel_gap=opts.rel_gap, time_limit=opts.time_limit,
            node_limit=opts.node_limit, lp_solver=opts.lp_solver,
            rounding_heuristic=opts.rounding_heuristic,
            presolve=opts.presolve,
            arrays="sparse" if sparse else "dense"))
    # Scipy backend: same switch, different spelling.
    backend.use_sparse = sparse
    return backend


def bench_cycle(backend: str = "pure", plan_ahead_s: float = 96.0,
                racks: int = 4, nodes_per_rack: int = 4,
                jobs_per_rack: int = 2, cycles: int = 2,
                quantum_s: float = 8.0, seed: int = 0) -> dict[str, Any]:
    """Benchmark one fig12-style cycle sequence across the three modes.

    Returns a JSON-serializable report (written to ``BENCH_cycle.json`` by
    the ``bench-cycle`` CLI command and the fig12 benchmark suite) whose
    ``objective_match`` field is the correctness verdict: every cycle's
    objective must agree across all modes within ``1e-6`` relative.
    """
    report: dict[str, Any] = {
        "meta": {"backend": backend, "plan_ahead_s": plan_ahead_s,
                 "racks": racks, "nodes_per_rack": nodes_per_rack,
                 "jobs_per_rack": jobs_per_rack, "cycles": cycles,
                 "quantum_s": quantum_s, "seed": seed},
        "modes": {},
    }
    per_mode_objectives: dict[str, list[float]] = {}
    for mode, decomposition, sparse in MODES:
        cluster = Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack)
        cfg = TetriSchedConfig(
            quantum_s=quantum_s, cycle_s=quantum_s,
            plan_ahead_s=plan_ahead_s, backend=backend,
            rel_gap=_REL_TOL, decomposition=decomposition)
        sched = TetriSched(cluster, cfg)
        sched._backend = _build_backend(backend, sparse, cfg.rel_gap)

        objectives: list[float] = []
        components: list[int] = []
        stage_s: dict[str, float] = {}
        launched = 0
        nodes = lp_iters = 0
        nnz = variables = constraints = 0
        t0 = time.monotonic()
        for c in range(cycles):
            now = c * quantum_s
            # Fresh arrivals each cycle keep the MILP at fig12 scale even
            # after earlier launches consumed capacity.
            for job in _rack_pinned_jobs(cluster, jobs_per_rack, quantum_s,
                                         seed=seed + c):
                sched.submit(JobRequest(
                    job_id=f"c{c}-{job.job_id}", options=job.options,
                    value_fn=job.value_fn, priority=job.priority,
                    submit_time=now))
            res = sched.run_cycle(now)
            stats = res.stats
            objectives.append(stats.objective)
            components.append(stats.components)
            launched += stats.launched
            nodes += stats.solver_nodes
            lp_iters += stats.lp_iterations
            nnz = max(nnz, stats.milp_nonzeros)
            variables = max(variables, stats.milp_variables)
            constraints = max(constraints, stats.milp_constraints)
            for stage, secs in stats.stage_timings.items():
                stage_s[stage] = stage_s.get(stage, 0.0) + secs
        wall_s = time.monotonic() - t0

        per_mode_objectives[mode] = objectives
        report["modes"][mode] = {
            "objectives": objectives,
            "components": components,
            "launched": launched,
            "wall_s": wall_s,
            "cycle_mean_ms": 1000.0 * wall_s / cycles,
            "stage_timings_s": stage_s,
            "solver_nodes": nodes,
            "lp_iterations": lp_iters,
            "milp": {"variables": variables, "constraints": constraints,
                     "nonzeros": nnz},
        }

    oracle = per_mode_objectives[MODES[0][0]]
    max_delta = 0.0
    for mode, objs in per_mode_objectives.items():
        for a, b in zip(oracle, objs):
            max_delta = max(max_delta,
                            abs(a - b) / max(1.0, abs(a)))
    report["objective_match"] = max_delta <= _REL_TOL * 10
    report["max_objective_delta"] = max_delta

    def _wall(mode: str) -> float:
        return report["modes"][mode]["wall_s"]

    report["speedup"] = {
        "sparse_vs_dense": _wall("monolithic-dense")
        / max(1e-12, _wall("monolithic-sparse")),
        "decomposed_vs_dense": _wall("monolithic-dense")
        / max(1e-12, _wall("decomposed-sparse")),
        "decomposed_vs_sparse": _wall("monolithic-sparse")
        / max(1e-12, _wall("decomposed-sparse")),
    }
    return report


def format_bench(report: dict[str, Any]) -> str:
    """Human-readable summary of a :func:`bench_cycle` report."""
    lines = []
    meta = report["meta"]
    lines.append(
        f"bench-cycle: backend={meta['backend']} "
        f"plan-ahead={meta['plan_ahead_s']:g}s "
        f"cluster={meta['racks']}x{meta['nodes_per_rack']} "
        f"cycles={meta['cycles']} seed={meta['seed']}")
    for mode, m in report["modes"].items():
        stages = " ".join(f"{k}={1000 * v:.1f}ms"
                          for k, v in sorted(m["stage_timings_s"].items()))
        lines.append(
            f"  {mode:<19}: wall={m['wall_s'] * 1000:.1f}ms "
            f"components={m['components']} objectives="
            f"{[round(o, 3) for o in m['objectives']]}")
        lines.append(f"    stages: {stages}")
    sp = report["speedup"]
    lines.append(
        f"  speedup: sparse/dense={sp['sparse_vs_dense']:.2f}x "
        f"decomposed/dense={sp['decomposed_vs_dense']:.2f}x "
        f"decomposed/sparse={sp['decomposed_vs_sparse']:.2f}x")
    lines.append(
        f"  objective match: {report['objective_match']} "
        f"(max relative delta {report['max_objective_delta']:.2e})")
    return "\n".join(lines)
