"""Differential property tests: independent solve paths must agree.

Two families:

* the pure dense-tableau simplex vs scipy's HiGHS ``linprog`` wrapper, on
  random always-feasible bounded LPs (same array interface, shared-nothing
  implementations);
* the decomposed solve (union-find components, recombination) vs the
  monolithic branch-and-bound, on random multi-component MILPs — plus the
  certificate checker as a third, solve-free referee.
"""

import pytest
from hypothesis import given, settings

from repro.solver import (BranchBoundSolver, SolveOptions, SolveStatus,
                          scipy_available)
from repro.solver.decompose import decompose, solve_decomposed
from repro.solver.simplex import solve_lp
from repro.verify import check_certificate
from tests.strategies import lp_problems, multi_component_models

needs_scipy = pytest.mark.skipif(not scipy_available(),
                                 reason="scipy required")


class TestLpBackendsAgree:
    @needs_scipy
    @settings(max_examples=40, deadline=None)
    @given(lp=lp_problems())
    def test_pure_simplex_matches_scipy(self, lp):
        from repro.solver.scipy_backend import solve_lp_scipy
        ours = solve_lp(**lp)
        ref = solve_lp_scipy(**lp)
        # lb=0 with nonnegative rhs keeps the origin feasible, finite ub
        # keeps the optimum finite: both must prove optimality.
        assert ours.status == SolveStatus.OPTIMAL
        assert ref.status == SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)

    @needs_scipy
    def test_both_detect_infeasible(self):
        import numpy as np

        from repro.solver.scipy_backend import solve_lp_scipy
        lp = dict(c=np.array([1.0]), a_ub=np.array([[-1.0]]),
                  b_ub=np.array([-5.0]), lb=np.zeros(1), ub=np.array([2.0]))
        assert solve_lp(**lp).status == SolveStatus.INFEASIBLE
        assert solve_lp_scipy(**lp).status == SolveStatus.INFEASIBLE


class TestDecomposedMatchesMonolithic:
    @settings(max_examples=25, deadline=None)
    @given(mk=multi_component_models())
    def test_objective_and_certificate(self, mk):
        model, expected_components = mk
        mono = BranchBoundSolver().solve(model)
        d = decompose(model)
        assert d.num_components == expected_components
        res = solve_decomposed(d, BranchBoundSolver(), SolveOptions())
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(mono.objective, abs=1e-9)
        # The recombined point must replay cleanly against the monolithic
        # model's CSR export — the oracle the fuzz harness also uses.
        assert check_certificate(model, res).ok
        assert check_certificate(model, mono).ok

    @needs_scipy
    @settings(max_examples=15, deadline=None)
    @given(mk=multi_component_models())
    def test_scipy_decomposed_matches_pure_monolithic(self, mk):
        from repro.solver.scipy_backend import ScipyMILPSolver
        model, _ = mk
        mono = BranchBoundSolver().solve(model)
        res = solve_decomposed(decompose(model), ScipyMILPSolver(),
                               SolveOptions())
        assert res.objective == pytest.approx(mono.objective, abs=1e-6)
