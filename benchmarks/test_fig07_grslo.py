"""Fig. 7: SLO-only production-derived workload (GR SLO, scaled RC256).

Paper shapes asserted:

* Rayon/TetriSched achieves higher overall SLO attainment than Rayon/CS
  across the +/-20 % estimate-error range;
* accepted-SLO attainment stays ~100 % for TetriSched (paper: "maintaining
  ~100% SLO attainment for accepted SLO jobs").
"""

from conftest import nanmean, save_and_print

from repro.experiments import fig7

TOL = 6.0


def test_fig7(benchmark, figure_cache):
    result = benchmark.pedantic(
        lambda: figure_cache("fig7", fig7), rounds=1, iterations=1)
    save_and_print("fig7", result.text)
    sweep = result.sweep

    ts_total = sweep.get("TetriSched", "slo_total_pct")
    cs_total = sweep.get("Rayon/CS", "slo_total_pct")
    for x, ts, cs in zip(sweep.x_values, ts_total, cs_total):
        assert ts >= cs - TOL, f"TetriSched below CS at err={x}%"
    assert nanmean(ts_total) > nanmean(cs_total)

    ts_accepted = sweep.get("TetriSched", "slo_accepted_pct")
    assert min(ts_accepted) >= 90.0
