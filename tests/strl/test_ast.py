"""Unit tests for the STRL AST."""

import pytest

from repro.errors import StrlError
from repro.strl import Barrier, LnCk, Max, Min, NCk, Scale, Sum

NODES = frozenset({"M1", "M2", "M3", "M4"})


def leaf(k=2, start=0, dur=2, v=4.0, nodes=NODES):
    return NCk(nodes=nodes, k=k, start=start, duration=dur, value=v)


class TestLeafValidation:
    def test_valid_leaf(self):
        e = leaf()
        assert e.k == 2 and e.value == 4.0

    def test_empty_set_rejected(self):
        with pytest.raises(StrlError):
            NCk(frozenset(), 1, 0, 1, 1.0)

    def test_non_frozenset_rejected(self):
        with pytest.raises(StrlError):
            NCk({"M1"}, 1, 0, 1, 1.0)  # plain set, not frozenset

    def test_k_larger_than_set_rejected(self):
        with pytest.raises(StrlError):
            leaf(k=5)

    def test_nonpositive_k_rejected(self):
        with pytest.raises(StrlError):
            leaf(k=0)

    def test_negative_start_rejected(self):
        with pytest.raises(StrlError):
            leaf(start=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(StrlError):
            leaf(dur=0)

    def test_negative_value_rejected(self):
        with pytest.raises(StrlError):
            leaf(v=-1.0)

    def test_lnck_validates_too(self):
        with pytest.raises(StrlError):
            LnCk(NODES, 9, 0, 1, 1.0)


class TestOperators:
    def test_max_requires_children(self):
        with pytest.raises(StrlError):
            Max()

    def test_operators_accept_iterable(self):
        e = Max([leaf(), leaf(start=1)])
        assert len(e.subexprs) == 2

    def test_scale_negative_factor_rejected(self):
        with pytest.raises(StrlError):
            Scale(leaf(), -2.0)

    def test_barrier_negative_threshold_rejected(self):
        with pytest.raises(StrlError):
            Barrier(leaf(), -1.0)

    def test_non_node_child_rejected(self):
        with pytest.raises(StrlError):
            Sum(leaf(), "nope")

    def test_nodes_are_hashable_and_equal(self):
        assert leaf() == leaf()
        assert hash(Max(leaf(), leaf(start=1))) == hash(Max(leaf(), leaf(start=1)))


class TestTreeQueries:
    def test_walk_and_size(self):
        e = Max(leaf(), Min(leaf(start=1), leaf(start=2)))
        assert e.size == 5
        assert len(list(e.leaves())) == 3

    def test_horizon(self):
        e = Max(leaf(start=0, dur=2), leaf(start=3, dur=4))
        assert e.horizon() == 7

    def test_horizon_of_leaf(self):
        assert leaf(start=1, dur=2).horizon() == 3

    def test_referenced_nodes(self):
        gpu = frozenset({"M1", "M2"})
        e = Max(leaf(nodes=gpu), leaf())
        assert e.referenced_nodes() == NODES

    def test_max_value_semantics(self):
        e = Max(leaf(v=4.0), leaf(v=3.0))
        assert e.max_value() == 4.0
        assert Min(leaf(v=4.0), leaf(v=3.0)).max_value() == 3.0
        assert Sum(leaf(v=4.0), leaf(v=3.0)).max_value() == 7.0
        assert Scale(leaf(v=4.0), 2.5).max_value() == 10.0

    def test_barrier_max_value(self):
        assert Barrier(leaf(v=4.0), 3.0).max_value() == 3.0
        assert Barrier(leaf(v=2.0), 3.0).max_value() == 0.0
