"""Text rendering of profiles and registry snapshots.

Keeps its own tiny table formatter (instead of reusing
``repro.experiments.report``) so the obs package stays dependency-free at
the bottom of the import graph — the scheduler and solver import obs, and
the experiments layer imports them.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.obs.profile import RunProfile


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = lambda cells: " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


#: Counters surfaced in the headline block, in display order.
_HEADLINE_COUNTERS = (
    ("cycles", "scheduling cycles"),
    ("solver.solves", "MILP solves"),
    ("solver.bnb.nodes", "B&B nodes explored"),
    ("solver.bnb.pruned", "B&B nodes pruned"),
    ("solver.bnb.incumbents", "incumbent improvements"),
    ("solver.lp.iterations", "simplex/LP iterations"),
    ("solver.lp.dual_pivots", "dual-simplex pivots"),
    ("solver.lp.refactorizations", "basis refactorizations"),
    ("solver.lp.warm_restarts", "LP warm restarts"),
    ("solver.lp.warm_hits", "LP warm-restart hits"),
    ("solver.lp.factorizations", "basis factorizations (total)"),
    ("solver.lp.ft_updates", "Forrest-Tomlin updates"),
    ("solver.lp.pricing_candidates", "pricing candidates examined"),
    ("solver.lp.fill_ratio", "worst factor fill ratio"),
    ("solver.presolve.rows_dropped", "presolve rows dropped"),
    ("solver.presolve.bounds_tightened", "presolve bounds tightened"),
    ("solver.cache.hits", "component-cache exact hits"),
    ("solver.cache.warm_hits", "component-cache warm hits"),
    ("solver.cache.evictions", "component-cache evictions"),
    ("scheduler.launched", "jobs launched"),
    ("scheduler.culled", "jobs culled"),
    ("scheduler.cancelled", "jobs cancelled"),
    ("scheduler.warm_start.attempts", "warm-start attempts"),
    ("scheduler.warm_start.hits", "warm-start hits"),
    ("scheduler.delta.jobs_dirty", "delta fragments recompiled"),
    ("scheduler.delta.jobs_clean", "delta fragments reused"),
    ("scheduler.delta.rows_patched", "delta rows patched"),
    ("scheduler.delta.cols_patched", "delta cols patched"),
    ("scheduler.delta.full_rebuilds", "delta full rebuilds"),
)


def render_profile(profile: RunProfile, title: str = "Run profile") -> str:
    """Human-readable summary: headline counters, phases, other counters."""
    blocks = [title, "=" * len(title)]

    rows = [[label, profile.counter(name)]
            for name, label in _HEADLINE_COUNTERS
            if name in profile.counters]
    hit_rate = profile.warm_start_hit_rate
    if not math.isnan(hit_rate):
        rows.append(["warm-start hit rate (%)", 100.0 * hit_rate])
    lp_hit_rate = profile.lp_warm_restart_hit_rate
    if not math.isnan(lp_hit_rate):
        rows.append(["LP warm-restart hit rate (%)", 100.0 * lp_hit_rate])
    if profile.counter("solver.solves"):
        rows.append(["B&B nodes per solve", profile.nodes_per_solve])
    if rows:
        blocks += ["", "Solver / scheduler work",
                   format_table(["counter", "value"], rows)]

    # Basis-factorization / pricing economics of the revised simplex:
    # how far each factorization is stretched by Forrest-Tomlin updates,
    # how much it filled in, and how selective partial pricing was.
    facts = profile.counter("solver.lp.factorizations")
    if facts:
        ft = profile.counter("solver.lp.ft_updates")
        iters = profile.counter("solver.lp.iterations")
        cands = profile.counter("solver.lp.pricing_candidates")
        frows = [
            ["basis factorizations", facts],
            ["Forrest-Tomlin updates", ft],
            ["FT updates per factorization", ft / facts],
            ["worst fill ratio (nnz factor / nnz basis)",
             profile.counter("solver.lp.fill_ratio")],
            ["pricing candidates examined", cands],
        ]
        if iters:
            frows.append(["candidates per simplex iteration", cands / iters])
        blocks += ["", "Basis factorization / pricing",
                   format_table(["metric", "value"], frows)]

    if profile.timers:
        timer_rows = []
        for path in sorted(profile.timers):
            stat = profile.timers[path]
            timer_rows.append([
                path, stat["count"], 1000.0 * stat["total_s"],
                1000.0 * stat["mean_s"], 1000.0 * stat["max_s"]])
        blocks += ["", "Phase timings",
                   format_table(["span", "count", "total ms", "mean ms",
                                 "max ms"], timer_rows)]

    shown = {name for name, _ in _HEADLINE_COUNTERS}
    other = sorted(set(profile.counters) - shown)
    if other:
        blocks += ["", "Other counters",
                   format_table(["counter", "value"],
                                [[n, profile.counters[n]] for n in other])]
    return "\n".join(blocks)


def render_snapshot(snapshot: dict, title: str = "Registry snapshot") -> str:
    """Render a raw :meth:`Registry.snapshot` dict (debug helper)."""
    profile = RunProfile(counters=dict(snapshot.get("counters", {})),
                         timers={k: dict(v)
                                 for k, v in snapshot.get("timers", {}).items()})
    return render_profile(profile, title=title)
