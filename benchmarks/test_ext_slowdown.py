"""Extension benchmark: heterogeneity-intensity (slowdown) sweep.

The companion TR sweeps the sub-optimal-placement slowdown factor.  At
slowdown 1.0 the cluster is effectively homogeneous and soft-constraint
awareness cannot help; as the penalty for bad placement grows, the gap
between TetriSched and TetriSched-NH must widen — this is the cleanest
possible demonstration that the Fig. 9 benefit really is heterogeneity
awareness and not a side effect.
"""

from conftest import save_and_print

from repro.experiments import RC80_SCALED, RunSpec, format_table, run_experiment
from repro.workloads import GS_HET

SLOWDOWNS = [1.0, 1.5, 2.0, 3.0]


def run_all():
    out = {}
    for sched in ("TetriSched", "TetriSched-NH"):
        for sd in SLOWDOWNS:
            out[(sched, sd)] = run_experiment(RunSpec(
                scheduler=sched, composition=GS_HET, cluster=RC80_SCALED,
                num_jobs=48, target_utilization=1.3, slowdown=sd))
    return out


def test_slowdown_sweep(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for sched in ("TetriSched", "TetriSched-NH"):
        row = [sched]
        for sd in SLOWDOWNS:
            row.append(results[(sched, sd)].metrics.slo_total_pct)
        rows.append(row)
    text = ("Extension: SLO attainment vs heterogeneity slowdown "
            "(GS HET, scaled RC80)\n"
            + format_table(["scheduler"] + [f"x{s}" for s in SLOWDOWNS],
                           rows))
    save_and_print("ext_slowdown", text)

    gaps = [results[("TetriSched", sd)].metrics.slo_total_pct
            - results[("TetriSched-NH", sd)].metrics.slo_total_pct
            for sd in SLOWDOWNS]
    # Homogeneous cluster: soft constraints are worthless (gap ~0).
    assert abs(gaps[0]) <= 6.0
    # The gap grows with heterogeneity intensity and ends up large.
    assert gaps[-1] > gaps[0] + 20.0
    assert gaps[-1] >= max(gaps) - 1e-9
    # TetriSched itself stays robust across the sweep.
    ts = [results[("TetriSched", sd)].metrics.slo_total_pct
          for sd in SLOWDOWNS]
    assert min(ts) >= 90.0
