"""Bounded-variable revised simplex over a factorized basis.

This is the production LP core underneath :mod:`repro.solver.branch_bound`
(the dense two-phase tableau in :mod:`repro.solver.simplex` is retained as
the differential oracle).  Four properties make it fast on the
binary-heavy scheduling MILPs this repo compiles:

* **Native bounds** — variables sit at their lower or upper bound while
  nonbasic.  Finite upper bounds never become constraint rows (the tableau
  path adds one ``<=`` row per bounded variable, nearly doubling the row
  count on all-binary models) and free variables are never column-split.
* **Factor-solve, never an inverse** — the basis is consumed exclusively
  through FTRAN/BTRAN triangular solves on a factorization object from
  :mod:`repro.solver.sparse_lu`: a Markowitz-pivoted sparse LU with
  Forrest–Tomlin updates for large sparse bases, or a LAPACK dense LU
  with a product-form eta file for small/dense ones (``factor="auto"``
  picks per instance).  The constraint matrix itself is held as a CSC of
  the structural columns only; slack columns of ``[A | I]`` are implicit,
  so entering columns are pulled sparsely and pricing is O(nnz).
* **Partial pricing with projected-steepest-edge weights** — reduced
  costs are computed per column *section* against the BTRAN'd duals, a
  rotating cursor collects a small candidate list, and the entering
  variable maximizes ``d_j^2 / w_j`` under Devex-style reference weights
  (reset to the reference framework — an exact recompute — at every
  refactorization).  Optimality is only ever declared after a full wrap
  of the column space, and a stalled phase falls back to Bland's rule
  (full scan, lowest eligible index), so the partial scan is a pure
  optimization.  The dual simplex uses the mirrored Devex row weights
  for its leaving-row choice.
* **A dual simplex phase** — when branch and bound tightens a single
  variable bound at a child node, the parent's optimal basis stays *dual*
  feasible (reduced costs do not depend on bounds), so the child
  re-optimizes in a handful of dual pivots from the inherited
  :class:`BasisState` instead of a fresh phase-1/phase-2 solve.  Any
  factorization failure, stalled dual phase, or lost dual feasibility
  falls back to a cold solve — warm restarting is an optimization, never
  a correctness dependency.

Phase 1 of a cold solve minimizes the total bound infeasibility of the
basic variables (the composite / Maros phase-1 objective: cost ``-1`` for
a basic variable below its lower bound, ``+1`` above its upper bound),
starting from the all-slack basis, so no artificial columns are ever
added.  Equality rows carry a slack fixed at ``[0, 0]``, which keeps the
working matrix a single ``[A | I]`` block.

Counters for pivots, dual pivots, (re)factorizations, Forrest–Tomlin
updates, pricing-candidate volume and warm-restart outcomes are reported
through :mod:`repro.obs` and on the engine's ``counters`` dict (folded
into ``MILPResult.stats`` by the branch-and-bound driver); the worst
factor fill ratio seen is on :attr:`RevisedSimplexEngine.fill_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SolverError
from repro.solver.result import LPResult, SolveStatus
from repro.solver.sparse_lu import make_factor

_FEAS_TOL = 1e-8
_DUAL_TOL = 1e-9
_PIVOT_TOL = 1e-10
#: Dual-feasibility slack tolerated when validating an inherited basis.
_WARM_DUAL_TOL = 1e-6
#: Below this many rows the dense LU factor wins on BLAS throughput;
#: ``factor="auto"`` switches to the sparse LU at or above it.
_SPARSE_MIN_ROWS = 128
#: Partial pricing: columns scanned per section and the candidate-list
#: size that stops the scan early (a full wrap always happens before
#: optimality is declared).
_PRICE_SECTION = 512
_PRICE_TARGET = 48

#: Variable statuses (values of :attr:`BasisState.vstat`).
NB_LOWER = np.int8(0)
NB_UPPER = np.int8(1)
BASIC = np.int8(2)
NB_FREE = np.int8(3)


class _NumericalTrouble(Exception):
    """Internal: the current factorization/status state cannot proceed."""


@dataclass(frozen=True)
class BasisState:
    """A (re)startable simplex basis.

    ``basic`` holds the column index of the basic variable of each row (in
    row order, over the engine's full column space: structural variables
    first, then one slack per row).  ``vstat`` assigns every column a
    status (:data:`NB_LOWER`, :data:`NB_UPPER`, :data:`BASIC`,
    :data:`NB_FREE`).  The state is value-free: nonbasic values are
    recovered from the *current* bounds, which is exactly what lets a
    branch-and-bound child node reuse its parent's basis after tightening
    a bound.
    """

    basic: np.ndarray
    vstat: np.ndarray


class RevisedSimplexEngine:
    """Bounded-variable revised simplex over a fixed constraint matrix.

    The matrix (``a_ub``/``a_eq``), right-hand sides and objective are
    fixed at construction; :meth:`solve` takes per-call variable bounds
    (the only thing branch and bound changes between nodes) plus an
    optional :class:`BasisState` to warm-restart from.  Construct from
    dense arrays, or — preferred for compiled models — via
    :meth:`from_sparse` straight off a
    :class:`~repro.solver.model.SparseArrays` export, which never
    densifies the constraint matrix.

    ``factor`` selects the basis factorization backend: ``"sparse"``
    (Markowitz LU + Forrest–Tomlin), ``"dense"`` (LAPACK LU + PFI etas)
    or ``"auto"`` (sparse at/above ``sparse_min_rows`` rows).
    """

    def __init__(self, c, a_ub=None, b_ub=None, a_eq=None, b_eq=None,
                 refactor_every: int = 64, factor: str = "auto",
                 sparse_min_rows: int = _SPARSE_MIN_ROWS) -> None:
        c = np.atleast_1d(np.asarray(c, dtype=float))
        n = c.shape[0]
        a_ub = np.zeros((0, n)) if a_ub is None else \
            np.atleast_2d(np.asarray(a_ub, dtype=float))
        b_ub = np.zeros(0) if b_ub is None else \
            np.atleast_1d(np.asarray(b_ub, dtype=float))
        a_eq = np.zeros((0, n)) if a_eq is None else \
            np.atleast_2d(np.asarray(a_eq, dtype=float))
        b_eq = np.zeros(0) if b_eq is None else \
            np.atleast_1d(np.asarray(b_eq, dtype=float))
        if a_ub.shape[0] != b_ub.shape[0] or a_eq.shape[0] != b_eq.shape[0]:
            raise SolverError("constraint matrix / rhs shape mismatch")
        a = np.vstack([a_ub, a_eq]) if a_ub.size or a_eq.size else \
            np.zeros((a_ub.shape[0] + a_eq.shape[0], n))
        # Column-major nonzero scan = CSC construction order.
        cols, rows = np.nonzero(a.T)
        vals = a.T[cols, rows]
        self._init_core(c, a_ub.shape[0], a_eq.shape[0],
                        np.concatenate([b_ub, b_eq]), rows, cols, vals,
                        refactor_every, factor, sparse_min_rows)

    @classmethod
    def from_sparse(cls, arrays, refactor_every: int = 64,
                    factor: str = "auto",
                    sparse_min_rows: int = _SPARSE_MIN_ROWS
                    ) -> "RevisedSimplexEngine":
        """Build an engine from a :class:`~repro.solver.model.SparseArrays`
        export without ever densifying the constraint matrix."""
        self = cls.__new__(cls)
        c = np.asarray(arrays.c, dtype=float)
        n = c.shape[0]
        ub_m, eq_m = arrays.a_ub, arrays.a_eq
        m_ub = ub_m.shape[0]
        m_eq = eq_m.shape[0]
        rows = np.concatenate([
            np.repeat(np.arange(m_ub, dtype=np.int64),
                      np.diff(ub_m.indptr)),
            np.repeat(np.arange(m_eq, dtype=np.int64) + m_ub,
                      np.diff(eq_m.indptr))])
        cols = np.concatenate([ub_m.indices, eq_m.indices]).astype(np.int64)
        vals = np.concatenate([ub_m.data, eq_m.data]).astype(float)
        order = np.lexsort((rows, cols))
        b = np.concatenate([np.asarray(arrays.b_ub, dtype=float),
                            np.asarray(arrays.b_eq, dtype=float)])
        if cols.size and n and cols.max() >= n:
            raise SolverError("sparse arrays column index out of range")
        self._init_core(c, m_ub, m_eq, b, rows[order], cols[order],
                        vals[order], refactor_every, factor, sparse_min_rows)
        return self

    def _init_core(self, c, m_ub, m_eq, b, rows, cols, vals,
                   refactor_every, factor, sparse_min_rows) -> None:
        n = c.shape[0]
        m = m_ub + m_eq
        self.n = n
        self.m = m
        self.refactor_every = max(1, refactor_every)
        # CSC of the structural block of [A | I]; slack columns implicit.
        counts = np.bincount(cols, minlength=n) if cols.size else \
            np.zeros(n, dtype=np.int64)
        self._ap = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._ap[1:])
        self._ai = np.asarray(rows, dtype=np.int64)
        self._ax = np.asarray(vals, dtype=float)
        self._colids = np.asarray(cols, dtype=np.int64)
        self._nnz = int(self._ax.size)
        self.b = np.asarray(b, dtype=float)
        self.c_full = np.concatenate([c, np.zeros(m)])
        # Slacks: free-ish on <= rows, pinned to zero on equality rows.
        self.slack_lb = np.zeros(m)
        self.slack_ub = np.concatenate(
            [np.full(m_ub, np.inf), np.zeros(m_eq)])
        self._factor_mode = factor
        self._sparse_min_rows = sparse_min_rows
        self._factor = None
        self.counters: dict[str, int] = {
            "pivots": 0, "dual_pivots": 0, "refactorizations": 0,
            "warm_restarts": 0, "warm_hits": 0, "cold_fallbacks": 0,
            "factorizations": 0, "ft_updates": 0, "pricing_candidates": 0,
        }
        #: Worst factor fill ratio observed (nnz(L+U+etas) / nnz(B)).
        self.fill_ratio = 0.0
        # Working state (set up per solve).
        self._basic: np.ndarray | None = None
        self._vstat: np.ndarray | None = None
        self._x: np.ndarray | None = None
        self._lb: np.ndarray | None = None
        self._ub: np.ndarray | None = None
        self._etas = 0
        self._iters = 0
        self._price_cursor = 0
        self._devex = np.ones(n + m)
        self._devex_rows = np.ones(m)
        self._devex_epoch = 0

    # -- public API ----------------------------------------------------------
    def solve(self, lb=None, ub=None, start: BasisState | None = None,
              max_iter: int = 50_000, restart: str = "dual") -> LPResult:
        """Solve under the given bounds; warm-restart from ``start`` if set.

        ``restart`` picks the reoptimization phase used with ``start``:
        ``"dual"`` (the branch-and-bound case — bound *tightening* keeps the
        inherited basis dual-feasible) or ``"primal"`` (the column-generation
        case — bound *relaxation* keeps it primal-feasible instead, so the
        engine reruns the primal phases from the inherited basis).

        Returns an :class:`~repro.solver.result.LPResult` whose ``basis``
        field carries the terminal :class:`BasisState` (for OPTIMAL
        results), ready to seed a child node's solve.
        """
        n = self.n
        lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
        ub = np.full(n, np.inf) if ub is None else np.asarray(ub, dtype=float)
        if np.any(lb > ub + _FEAS_TOL):
            return LPResult(SolveStatus.INFEASIBLE, None, np.inf)
        self._lb = np.concatenate([lb, self.slack_lb])
        self._ub = np.concatenate([ub, self.slack_ub])
        self._price_cursor = 0
        before = dict(self.counters)
        result: LPResult | None = None
        if start is not None:
            self.counters["warm_restarts"] += 1
            if restart == "primal":
                result = self._primal_restart(start, max_iter)
            else:
                result = self._warm_solve(start, max_iter)
            if result is not None:
                self.counters["warm_hits"] += 1
            else:
                self.counters["cold_fallbacks"] += 1
        if result is None:
            result = self._cold_solve(max_iter)
        obs.count("solver.lp.revised.solves")
        for key in ("pivots", "dual_pivots", "refactorizations",
                    "factorizations", "ft_updates"):
            delta = self.counters[key] - before[key]
            if delta:
                obs.count(f"solver.lp.revised.{key}", delta)
        result.stats = {
            "factorizations":
                self.counters["factorizations"] - before["factorizations"],
            "ft_updates": self.counters["ft_updates"] - before["ft_updates"],
            "pricing_candidates": self.counters["pricing_candidates"]
                - before["pricing_candidates"],
            "fill_ratio": self.fill_ratio,
        }
        return result

    # -- solve drivers -------------------------------------------------------
    def _cold_solve(self, max_iter: int) -> LPResult:
        lb, ub = self._lb, self._ub
        n, m = self.n, self.m
        vstat = np.full(n + m, NB_FREE, dtype=np.int8)
        finite_lb = np.isfinite(lb[:n])
        finite_ub = np.isfinite(ub[:n])
        vstat[:n][finite_lb] = NB_LOWER
        vstat[:n][~finite_lb & finite_ub] = NB_UPPER
        vstat[n:] = BASIC
        self._basic = np.arange(n, n + m, dtype=np.int64)
        self._vstat = vstat
        self._factorize_basis()
        self._iters = 0
        self._set_nonbasic_values()
        self._recompute_basics()
        try:
            status = self._primal(phase1=True, max_iter=max_iter)
            if status == "infeasible":
                return LPResult(SolveStatus.INFEASIBLE, None, np.inf,
                                self._iters)
            if status != "feasible":
                raise SolverError("revised simplex phase-1 iteration limit")
            status = self._primal(phase1=False, max_iter=max_iter)
        except _NumericalTrouble as exc:
            raise SolverError(f"revised simplex failed: {exc}") from exc
        if status == "unbounded":
            return LPResult(SolveStatus.UNBOUNDED, None, -np.inf, self._iters)
        if status != "optimal":
            raise SolverError("revised simplex iteration limit reached")
        return self._package()

    def _warm_solve(self, start: BasisState, max_iter: int) -> LPResult | None:
        """Dual-simplex reoptimization from an inherited basis.

        Returns ``None`` when the basis cannot be used (shape mismatch,
        singular factorization, lost dual feasibility, stalled dual phase)
        — the caller then falls back to a cold solve.
        """
        if not self._install_start(start):
            return None
        vstat = self._vstat
        # The inherited basis must still price dual-feasible; bound changes
        # never break this (reduced costs ignore bounds), but guard anyway.
        # A fixed column (lb == ub) is dual-feasible at any reduced cost —
        # it cannot move either way — and branching fixes binaries all the
        # time, so skipping it here is what makes child warm starts land.
        d = self._reduced_costs(self.c_full)
        viol = np.where(vstat == NB_LOWER, -d,
                        np.where(vstat == NB_UPPER, d, 0.0))
        free_mask = vstat == NB_FREE
        if free_mask.any():
            viol[free_mask] = np.abs(d[free_mask])
        viol[~(self._ub - self._lb > _FEAS_TOL)] = 0.0
        if viol.max(initial=0.0) > _WARM_DUAL_TOL:
            return None
        try:
            status = self._dual(max_iter=max_iter)
        except _NumericalTrouble:
            return None
        if status == "infeasible":
            return LPResult(SolveStatus.INFEASIBLE, None, np.inf, self._iters)
        if status != "optimal":
            return None
        return self._package()

    def _primal_restart(self, start: BasisState,
                        max_iter: int) -> LPResult | None:
        """Primal reoptimization from an inherited basis.

        The column-generation path *relaxes* bounds (lazy columns move from
        ``ub == lb`` to their true upper bound), which preserves primal
        feasibility of the incumbent basis but not dual feasibility — so
        the engine reruns the primal phases from the inherited basis
        instead of the dual phase.  Phase 1 terminates immediately when the
        basis is still primal-feasible.  Returns ``None`` on any failure;
        the caller falls back to a cold solve.
        """
        if not self._install_start(start):
            return None
        try:
            status = self._primal(phase1=True, max_iter=max_iter)
            if status == "infeasible":
                return LPResult(SolveStatus.INFEASIBLE, None, np.inf,
                                self._iters)
            if status != "feasible":
                return None
            status = self._primal(phase1=False, max_iter=max_iter)
        except _NumericalTrouble:
            return None
        if status == "unbounded":
            return LPResult(SolveStatus.UNBOUNDED, None, -np.inf, self._iters)
        if status != "optimal":
            return None
        return self._package()

    def _install_start(self, start: BasisState) -> bool:
        """Adopt an inherited basis: repair statuses, refactorize, price."""
        n, m = self.n, self.m
        if start.basic.shape[0] != m or start.vstat.shape[0] != n + m:
            return False
        vstat = start.vstat.copy()
        # Repair nonbasic statuses against the *current* bounds: a status
        # can point at a bound that is not finite here (e.g. a basis
        # donated across presolve variants).
        lb, ub = self._lb, self._ub
        nonbasic = vstat != BASIC
        bad_lo = nonbasic & (vstat == NB_LOWER) & ~np.isfinite(lb)
        vstat[bad_lo & np.isfinite(ub)] = NB_UPPER
        vstat[bad_lo & ~np.isfinite(ub)] = NB_FREE
        bad_hi = nonbasic & (vstat == NB_UPPER) & ~np.isfinite(ub)
        vstat[bad_hi & np.isfinite(lb)] = NB_LOWER
        vstat[bad_hi & ~np.isfinite(lb)] = NB_FREE
        self._basic = start.basic.copy()
        self._vstat = vstat
        self._iters = 0
        try:
            self._refactorize()
        except np.linalg.LinAlgError:
            return False
        self._set_nonbasic_values()
        self._recompute_basics()
        return True

    # -- linear algebra ------------------------------------------------------
    def _col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Column ``j`` of ``[A | I]`` as sparse (rows, values)."""
        if j >= self.n:
            return (np.array([j - self.n], dtype=np.int64), np.ones(1))
        s, e = self._ap[j], self._ap[j + 1]
        return self._ai[s:e], self._ax[s:e]

    def _factorize_basis(self) -> None:
        """Fresh factorization of the current basis columns."""
        if self.m == 0:
            return
        if self._factor is None:
            self._factor = make_factor(self.m, self._factor_mode,
                                       self._nnz + self.m,
                                       self._sparse_min_rows)
        self._factor.factorize([self._col(int(j)) for j in self._basic])
        self.counters["factorizations"] += 1
        self.fill_ratio = max(self.fill_ratio, self._factor.fill_ratio)
        self._etas = 0
        self._reset_devex()

    def _refactorize(self) -> None:
        """Rebuild the basis factorization (LU of B; never an inverse)."""
        self.counters["refactorizations"] += 1
        self._factorize_basis()

    def _reset_devex(self) -> None:
        """Reset pricing weights to the reference framework.

        At a fresh factorization every nonbasic column *is* the reference
        framework, where its exact projected-steepest-edge weight is 1 —
        so the periodic "exact recompute" is exactly this reset.
        """
        self._devex.fill(1.0)
        self._devex_rows.fill(1.0)
        self._devex_epoch += 1

    def _ftran(self, v: np.ndarray) -> np.ndarray:
        return self._factor.ftran(v) if self.m else np.zeros(0)

    def _btran(self, v: np.ndarray) -> np.ndarray:
        return self._factor.btran(v) if self.m else np.zeros(0)

    def _ftran_col(self, j: int) -> np.ndarray:
        rows, vals = self._col(j)
        v = np.zeros(self.m)
        v[rows] = vals
        return self._ftran(v)

    def _at_y(self, y: np.ndarray) -> np.ndarray:
        """``A^T y`` over the structural columns, O(nnz)."""
        if not self._nnz:
            return np.zeros(self.n)
        return np.bincount(self._colids, weights=self._ax * y[self._ai],
                           minlength=self.n)

    def _a_times(self, xs: np.ndarray) -> np.ndarray:
        """``A @ xs`` for structural values ``xs``, O(nnz)."""
        if not self._nnz:
            return np.zeros(self.m)
        return np.bincount(self._ai, weights=self._ax * xs[self._colids],
                           minlength=self.m)

    def _basis_update(self, enter: int, leave_row: int,
                      w: np.ndarray) -> None:
        """Advance the factorization after a basis exchange.

        Tries the in-place factor update (Forrest–Tomlin on the sparse
        factor, a PFI eta on the dense one); on refusal — instability or
        fill growth — or on eta-budget exhaustion, refactorizes instead.
        """
        rows, vals = self._col(enter)
        if self._factor.update(leave_row, w, rows, vals):
            self.counters["ft_updates"] += 1
            self.fill_ratio = max(self.fill_ratio, self._factor.fill_ratio)
            self._etas += 1
            if self._etas >= self.refactor_every:
                self._refactorize()
                self._recompute_basics()
        else:
            self._refactorize()
            self._recompute_basics()

    def _set_nonbasic_values(self) -> None:
        x = np.zeros(self.n + self.m)
        vstat, lb, ub = self._vstat, self._lb, self._ub
        at_lo = vstat == NB_LOWER
        at_hi = vstat == NB_UPPER
        x[at_lo] = lb[at_lo]
        x[at_hi] = ub[at_hi]
        self._x = x

    def _recompute_basics(self) -> None:
        """``x_B = B^-1 (b - N x_N)`` from the current nonbasic values."""
        x = self._x
        xn = x.copy()
        xn[self._basic] = 0.0
        if not self.m:
            return
        rhs = self.b - self._a_times(xn[:self.n]) - xn[self.n:]
        x[self._basic] = self._ftran(rhs)

    def _reduced_costs(self, cost: np.ndarray) -> np.ndarray:
        if self.m:
            y = self._btran(cost[self._basic])
            d = np.empty(self.n + self.m)
            d[:self.n] = cost[:self.n] - self._at_y(y)
            d[self.n:] = cost[self.n:] - y
        else:
            d = cost.copy()
        d[self._basic] = 0.0
        return d

    # -- pricing -------------------------------------------------------------
    def _d_block(self, cost: np.ndarray, y: np.ndarray, j0: int,
                 j1: int) -> np.ndarray:
        """Reduced costs for the contiguous column block ``[j0, j1)``."""
        n = self.n
        d = np.empty(j1 - j0)
        if j0 < n:
            hi = min(j1, n)
            s, e = self._ap[j0], self._ap[hi]
            seg = np.zeros(hi - j0)
            if e > s:
                seg = np.bincount(self._colids[s:e] - j0,
                                  weights=self._ax[s:e] * y[self._ai[s:e]],
                                  minlength=hi - j0)
            d[:hi - j0] = cost[j0:hi] - seg
        if j1 > n:
            lo = max(j0, n)
            d[lo - j0:] = cost[lo:j1] - y[lo - n:j1 - n]
        return d

    def _price(self, cost: np.ndarray, y: np.ndarray, fixed: np.ndarray,
               full: bool) -> tuple[np.ndarray, np.ndarray]:
        """Collect eligible entering candidates and their reduced costs.

        Partial pricing: scan column sections from a rotating cursor and
        stop once the candidate list is full.  A wrap over the whole
        column space happens before an empty result is returned, so
        "no candidates" always means "priced optimal".  ``full`` forces a
        single whole-space scan (the Bland fallback).
        """
        vstat = self._vstat
        total = self.n + self.m
        if full:
            spans = [(0, total)]
        else:
            spans = []
            pos = self._price_cursor % total if total else 0
            scanned = 0
            while scanned < total:
                hi = min(pos + _PRICE_SECTION, total)
                spans.append((pos, hi))
                scanned += hi - pos
                pos = hi % total
        cands: list[np.ndarray] = []
        dvals: list[np.ndarray] = []
        found = 0
        for j0, j1 in spans:
            d = self._d_block(cost, y, j0, j1)
            vs = vstat[j0:j1]
            elig = (((vs == NB_LOWER) & (d < -_DUAL_TOL))
                    | ((vs == NB_UPPER) & (d > _DUAL_TOL))
                    | ((vs == NB_FREE) & (np.abs(d) > _DUAL_TOL)))
            elig &= ~fixed[j0:j1]
            idx = np.nonzero(elig)[0]
            if idx.size:
                cands.append(idx + j0)
                dvals.append(d[idx])
                found += idx.size
            if not full and found >= _PRICE_TARGET:
                self._price_cursor = j1 % total
                break
        else:
            self._price_cursor = 0
        if not cands:
            return (np.empty(0, dtype=np.int64), np.empty(0))
        cand = np.concatenate(cands)
        self.counters["pricing_candidates"] += int(cand.size)
        return cand, np.concatenate(dvals)

    def _update_devex_primal(self, enter: int, leaving: int, leave_row: int,
                             w: np.ndarray, cand: np.ndarray,
                             epoch: int) -> None:
        """Devex reference-weight update over the priced candidate list.

        ``alpha_j`` (the pivot row) is recovered for the candidates only,
        via a BTRAN of the leaving unit row — the standard projected
        steepest-edge recurrence restricted to the columns partial
        pricing actually looked at.
        """
        if epoch != self._devex_epoch:
            return  # a refactorization reset the reference framework
        alpha_q = w[leave_row]
        if alpha_q == 0.0:
            return
        devex = self._devex
        gq = max(devex[enter], 1.0)
        e = np.zeros(self.m)
        e[leave_row] = 1.0
        rho = self._btran(e)
        n = self.n
        alpha = np.empty(n + self.m)
        alpha[:n] = self._at_y(rho)
        alpha[n:] = rho
        inv_aq2 = 1.0 / (alpha_q * alpha_q)
        aj = alpha[cand]
        devex[cand] = np.maximum(devex[cand], (aj * aj) * (inv_aq2 * gq))
        devex[leaving] = max(gq * inv_aq2, 1.0)

    # -- primal simplex (phases 1 and 2) -------------------------------------
    def _primal(self, phase1: bool, max_iter: int) -> str:
        """Run bounded-variable primal iterations.

        Phase 1 minimizes total bound infeasibility of the basic variables
        (composite objective re-priced every iteration); phase 2 assumes a
        feasible basis and minimizes the true cost.  Returns ``"optimal"``
        (phase-2) / ``"feasible"`` (phase-1 done), ``"infeasible"``,
        ``"unbounded"`` or ``"iteration_limit"``.
        """
        lb, ub = self._lb, self._ub
        basic, vstat = self._basic, self._vstat
        fixed = ~(ub - lb > _FEAS_TOL)
        stall_after = max(200, 20 * (self.m + self.n))
        local_iters = 0
        while self._iters < max_iter:
            x = self._x
            xb = x[basic]
            lbB, ubB = lb[basic], ub[basic]
            below = xb < lbB - _FEAS_TOL
            above = xb > ubB + _FEAS_TOL
            if phase1:
                if not (below.any() or above.any()):
                    return "feasible"
                cost = np.zeros(self.n + self.m)
                cost[basic[below]] = -1.0
                cost[basic[above]] = 1.0
            else:
                cost = self.c_full
            y = self._btran(cost[basic]) if self.m else np.zeros(0)
            bland = local_iters > stall_after
            cand, d_cand = self._price(cost, y, fixed, full=bland)
            if cand.size == 0:
                if phase1:
                    total = (np.maximum(lbB - xb, 0.0).sum()
                             + np.maximum(xb - ubB, 0.0).sum())
                    return "infeasible" if total > 1e-6 else "feasible"
                return "optimal"
            if not bland:
                scores = d_cand * d_cand / self._devex[cand]
                pick = int(np.argmax(scores))
            else:
                pick = 0  # Bland: lowest index, no cycling
            enter = int(cand[pick])
            d_enter = float(d_cand[pick])
            direction = 1.0 if (vstat[enter] == NB_LOWER
                                or (vstat[enter] == NB_FREE
                                    and d_enter < 0.0)) else -1.0

            w = self._ftran_col(enter)
            rate = -direction * w  # d x_B / d t
            # Blocking targets per basic row.  Infeasible rows block only
            # at the bound they are moving back *into* (composite phase 1).
            target_lo = np.where(above, ubB, np.where(below, -np.inf, lbB))
            target_hi = np.where(below, lbB, np.where(above, np.inf, ubB))
            with np.errstate(divide="ignore", invalid="ignore"):
                t_lo = np.where(rate < -_PIVOT_TOL,
                                (xb - target_lo) / -rate, np.inf)
                t_hi = np.where(rate > _PIVOT_TOL,
                                (target_hi - xb) / rate, np.inf)
            t_rows = np.minimum(
                np.nan_to_num(t_lo, nan=np.inf, posinf=np.inf),
                np.nan_to_num(t_hi, nan=np.inf, posinf=np.inf))
            t_rows = np.maximum(t_rows, 0.0)  # degenerate steps stay at 0
            t_block = t_rows.min() if t_rows.size else np.inf
            t_own = ub[enter] - lb[enter] if vstat[enter] != NB_FREE \
                else np.inf

            self._iters += 1
            local_iters += 1
            step = min(t_block, t_own)
            if not np.isfinite(step):
                if phase1:
                    raise _NumericalTrouble("phase-1 unbounded descent")
                return "unbounded"
            if t_own <= t_block:
                # Bound flip: the entering variable crosses to its other
                # bound; the basis is unchanged.
                x[basic] = xb - step * direction * w
                if vstat[enter] == NB_LOWER:
                    vstat[enter] = NB_UPPER
                    x[enter] = ub[enter]
                else:
                    vstat[enter] = NB_LOWER
                    x[enter] = lb[enter]
                continue
            leave_row = self._pick_leave_row(t_rows, t_block, local_iters,
                                             stall_after)
            if abs(w[leave_row]) <= _PIVOT_TOL:
                self._handle_tiny_pivot()
                continue
            leaving = int(basic[leave_row])
            epoch = self._devex_epoch
            self._pivot(enter, leave_row, w, xb - step * direction * w,
                        x[enter] + step * direction)
            self.counters["pivots"] += 1
            if not bland:
                self._update_devex_primal(enter, leaving, leave_row, w,
                                          cand, epoch)
        return "iteration_limit"

    def _pick_leave_row(self, t_rows: np.ndarray, t_block: float,
                        local_iters: int, stall_after: int) -> int:
        ties = np.nonzero(t_rows <= t_block + 1e-12)[0]
        if local_iters <= stall_after:
            # Stability: among the blocking rows, pivot on the largest
            # eligible magnitude later; here prefer the first minimal.
            return int(ties[np.argmin(t_rows[ties])])
        return int(ties[np.argmin(self._basic[ties])])  # Bland

    def _pivot(self, enter: int, leave_row: int, w: np.ndarray,
               new_xb: np.ndarray, enter_value: float) -> None:
        basic, vstat, x = self._basic, self._vstat, self._x
        lb, ub = self._lb, self._ub
        leaving = int(basic[leave_row])
        x[basic] = new_xb
        # Snap the leaving variable to its nearest finite bound.
        v = x[leaving]
        lo, hi = lb[leaving], ub[leaving]
        if np.isfinite(lo) and (not np.isfinite(hi)
                                or abs(v - lo) <= abs(v - hi)):
            vstat[leaving] = NB_LOWER
            x[leaving] = lo
        elif np.isfinite(hi):
            vstat[leaving] = NB_UPPER
            x[leaving] = hi
        else:  # pragma: no cover - free rows never win the ratio test
            raise _NumericalTrouble("free variable left the basis")
        basic[leave_row] = enter
        vstat[enter] = BASIC
        x[enter] = enter_value
        self._basis_update(enter, leave_row, w)

    def _handle_tiny_pivot(self) -> None:
        """A blocking row priced with a ~zero pivot: refresh and retry."""
        if self._etas == 0:
            raise _NumericalTrouble("tiny pivot on a fresh factorization")
        self._refactorize()
        self._recompute_basics()

    # -- dual simplex --------------------------------------------------------
    def _dual(self, max_iter: int) -> str:
        """Restore primal feasibility while keeping dual feasibility.

        Assumes the current basis prices dual-feasible (the warm-restart
        precondition).  The leaving row maximizes ``viol^2 / w`` under the
        dual Devex row weights.  Returns ``"optimal"``, ``"infeasible"``
        (primal — the dual ray proves it) or ``"iteration_limit"``.
        """
        lb, ub = self._lb, self._ub
        basic, vstat = self._basic, self._vstat
        fixed = ~(ub - lb > _FEAS_TOL)
        while self._iters < max_iter:
            x = self._x
            xb = x[basic]
            lbB, ubB = lb[basic], ub[basic]
            viol = np.maximum(lbB - xb, xb - ubB)
            if not viol.size or viol.max() <= _FEAS_TOL:
                return "optimal"
            scores = np.where(viol > _FEAS_TOL,
                              viol * viol / self._devex_rows, -np.inf)
            r = int(np.argmax(scores))
            leaving_low = xb[r] < lbB[r]

            e = np.zeros(self.m)
            e[r] = 1.0
            rho = self._btran(e)
            alpha = np.empty(self.n + self.m)
            alpha[:self.n] = self._at_y(rho)
            alpha[self.n:] = rho
            alpha[basic] = 0.0
            d = self._reduced_costs(self.c_full)
            if leaving_low:
                elig = (((vstat == NB_LOWER) & (alpha < -_PIVOT_TOL))
                        | ((vstat == NB_UPPER) & (alpha > _PIVOT_TOL))
                        | ((vstat == NB_FREE)
                           & (np.abs(alpha) > _PIVOT_TOL)))
            else:
                elig = (((vstat == NB_LOWER) & (alpha > _PIVOT_TOL))
                        | ((vstat == NB_UPPER) & (alpha < -_PIVOT_TOL))
                        | ((vstat == NB_FREE)
                           & (np.abs(alpha) > _PIVOT_TOL)))
            elig &= ~fixed
            cand = np.nonzero(elig)[0]
            if cand.size == 0:
                return "infeasible"
            # Dual ratio test: the entering column minimizing |d_j/alpha_j|
            # keeps every reduced cost on its feasible side.
            scores = np.abs(d[cand]) / np.abs(alpha[cand])
            best = scores.min()
            near = cand[scores <= best + _DUAL_TOL]
            enter = int(near[np.argmax(np.abs(alpha[near]))])

            w = self._ftran_col(enter)
            if abs(w[r]) <= _PIVOT_TOL:
                self._handle_tiny_pivot()
                continue
            target = lbB[r] if leaving_low else ubB[r]
            delta = (xb[r] - target) / w[r]
            self._iters += 1
            epoch = self._devex_epoch
            wr = float(w[r])
            self._pivot(enter, r, w, xb - delta * w, x[enter] + delta)
            self.counters["dual_pivots"] += 1
            if epoch == self._devex_epoch:
                # Dual Devex row-weight recurrence (approximate, reset to
                # the reference framework at each refactorization).
                dw = self._devex_rows
                ratio = w / wr
                np.maximum(dw, ratio * ratio * dw[r], out=dw)
                dw[r] = max(dw[r] / (wr * wr), 1.0)
        return "iteration_limit"

    # -- result packaging ----------------------------------------------------
    def _package(self) -> LPResult:
        n = self.n
        x = self._x[:n].copy()
        obj = float(self.c_full[:n] @ x)
        basis = BasisState(self._basic.copy(), self._vstat.copy())
        # Simplex multipliers for the caller's rows ([ub; eq] order, the
        # construction order of the CSC) and structural reduced costs.  A
        # nonbasic slack of a binding <= row sits at its lower bound, so
        # its reduced cost -y_i is >= 0, i.e. y_ub <= 0 at optimality —
        # the same sign convention HiGHS reports for marginals.
        if self.m:
            y = self._btran(self.c_full[self._basic])
            d = self.c_full[:n] - self._at_y(y)
        else:
            y = np.zeros(0)
            d = self.c_full[:n].copy()
        d[self._vstat[:n] == BASIC] = 0.0
        return LPResult(SolveStatus.OPTIMAL, x, obj, self._iters,
                        basis=basis, duals=y, reduced_costs=d)


def solve_lp_revised(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None,
                     lb=None, ub=None, max_iter: int = 50_000) -> LPResult:
    """One-shot functional interface mirroring :func:`repro.solver.simplex.solve_lp`.

    Builds a throwaway :class:`RevisedSimplexEngine` and cold-solves.  Use
    the engine directly (as branch and bound does) to amortize matrix
    setup and warm-restart across related solves.
    """
    with obs.span("solver.lp"):
        engine = RevisedSimplexEngine(c, a_ub, b_ub, a_eq, b_eq)
        result = engine.solve(lb, ub, max_iter=max_iter)
    obs.count("solver.lp.solves")
    return result


__all__ = ["BASIC", "BasisState", "NB_FREE", "NB_LOWER", "NB_UPPER",
           "RevisedSimplexEngine", "solve_lp_revised"]
