"""Adapters exposing the TetriSched core through the simulator interface.

Performs the role of the paper's STRL Generator inputs (Sec. 3.1): combines
reservation information (accepted / rejected, deadline) with the job type's
placement options and the Fig. 5 value functions to build
:class:`~repro.core.scheduler.JobRequest` objects.

Two adapters share that translation (:func:`request_from_job`):
:class:`TetriSchedAdapter` drives the scheduler library directly (the
fast path every experiment uses), while :class:`ServiceAdapter` routes the
same calls through a long-lived
:class:`~repro.service.service.SchedulerService` — the simulator becomes
just one client of the service core, which keeps the service's lifecycle
bookkeeping honest against the full simulation test matrix.
"""

from __future__ import annotations

from repro.api import Scheduler
from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import JobRequest, TetriSchedConfig
from repro.sim.interface import ClusterScheduler, CycleDecisions
from repro.sim.jobs import ElasticType, Job
from repro.valuefn import (SLO_ACCEPTED_MULTIPLIER,
                           SLO_NO_RESERVATION_MULTIPLIER, GraceStepValue,
                           best_effort_value)


def request_from_job(job: Job, accepted: bool, cluster: Cluster,
                     config: TetriSchedConfig) -> JobRequest:
    """Build the scheduler's :class:`JobRequest` for a simulator job.

    For SLO jobs, a one-quantum grace window (at discounted value)
    compensates for ceil-rounded durations and cycle misalignment; on-time
    placements always dominate, and SLO attainment is still measured
    against the true deadline by the simulator.
    """
    if job.is_slo:
        grace = config.deadline_grace_quanta * config.quantum_s
        mult = (SLO_ACCEPTED_MULTIPLIER if accepted
                else SLO_NO_RESERVATION_MULTIPLIER)
        value_fn = GraceStepValue(mult, job.deadline, grace)
        deadline = job.deadline + grace
        priority = (PriorityClass.SLO_ACCEPTED if accepted
                    else PriorityClass.SLO_NO_RESERVATION)
    else:
        value_fn = best_effort_value(release_time=job.submit_time)
        priority = PriorityClass.BEST_EFFORT
        deadline = None
    return JobRequest(
        job_id=job.job_id, options=tuple(job.estimated_options(cluster)),
        value_fn=value_fn, priority=priority,
        submit_time=job.submit_time, deadline=deadline,
        elastic=isinstance(job.job_type, ElasticType))


class TetriSchedAdapter:
    """Rayon/TetriSched stack as a simulator-drivable scheduler."""

    def __init__(self, cluster: Cluster,
                 config: TetriSchedConfig | None = None,
                 name: str = "TetriSched") -> None:
        self.name = name
        self.cluster = cluster
        self.api = Scheduler.open(cluster, config)
        self.scheduler = self.api.core
        self.cycle_s = self.scheduler.config.cycle_s
        self._running: set[str] = set()

    # -- ClusterScheduler interface -----------------------------------------
    def submit(self, job: Job, accepted: bool, now: float) -> None:
        self.scheduler.submit(request_from_job(
            job, accepted, self.cluster, self.scheduler.config))

    def cycle(self, now: float) -> CycleDecisions:
        result = self.scheduler.run_cycle(now)
        self._running.update(a.job_id for a in result.allocations)
        self._running.difference_update(result.preempted)
        return CycleDecisions(allocations=result.allocations,
                              culled=result.culled,
                              preempted=result.preempted,
                              resized=result.resized, stats=result.stats)

    def job_finished(self, job_id: str, now: float) -> None:
        self.scheduler.on_job_finished(job_id, now)
        self._running.discard(job_id)

    @property
    def active_jobs(self) -> int:
        return self.scheduler.pending_count + len(self._running)

    @property
    def cycle_history(self):
        """Per-cycle stats (Fig. 12 scalability data)."""
        return self.scheduler.cycle_history


class _SimClock:
    """A clock the simulation driver sets explicitly before each call."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    async def sleep(self, delay_s: float) -> None:  # pragma: no cover
        raise RuntimeError("the simulator drives cycles explicitly; "
                           "the service timer must not run")


class ServiceAdapter:
    """The simulator as one client of a long-lived scheduler service.

    Same :class:`~repro.sim.interface.ClusterScheduler` contract as
    :class:`TetriSchedAdapter`, but every call goes through a
    :class:`~repro.service.service.SchedulerService`: submissions become
    service job records, cycles run through the service's lifecycle
    bookkeeping, and completions are *reported* rather than auto-detected
    (``auto_complete=False`` — runtime mis-estimation experiments need
    true completion times to differ from expectations).  The service
    clock is slaved to the simulator's virtual time.
    """

    def __init__(self, cluster: Cluster,
                 config: TetriSchedConfig | None = None,
                 name: str = "TetriSched-service") -> None:
        from repro.service.service import SchedulerService

        self.name = name
        self.cluster = cluster
        self._clock = _SimClock()
        self.service = SchedulerService(cluster, config, clock=self._clock,
                                        auto_complete=False)
        self.scheduler = self.service.scheduler
        self.cycle_s = self.scheduler.config.cycle_s
        self._running: set[str] = set()

    # -- ClusterScheduler interface -----------------------------------------
    def submit(self, job: Job, accepted: bool, now: float) -> None:
        self._clock._now = now
        self.service.submit(request_from_job(
            job, accepted, self.cluster, self.scheduler.config))

    def cycle(self, now: float) -> CycleDecisions:
        self._clock._now = now
        result = self.service.run_one_cycle()
        self._running.update(a.job_id for a in result.allocations)
        self._running.difference_update(result.preempted)
        self._running.difference_update(result.cancelled)
        return CycleDecisions(allocations=result.allocations,
                              culled=result.culled,
                              preempted=result.preempted,
                              resized=result.resized, stats=result.stats)

    def job_finished(self, job_id: str, now: float) -> None:
        self._clock._now = now
        self.service.complete(job_id)
        self._running.discard(job_id)

    @property
    def active_jobs(self) -> int:
        return self.scheduler.pending_count + len(self._running)

    @property
    def cycle_history(self):
        return self.scheduler.cycle_history
