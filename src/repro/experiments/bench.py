"""Cycle-pipeline benchmark: tableau oracle vs revised simplex vs
sparse/decomposed variants.

``bench_cycle`` runs the *same* fixed-seed, fig12-scale scheduling cycles
through six configurations of the staged pipeline:

* ``monolithic-tableau`` — decomposition off, dense arrays, LP
  relaxations solved by the legacy dense two-phase tableau (the PR-4
  solver core, kept as the speedup baseline and differential oracle);
* ``monolithic-dense`` — decomposition off, solver consumes the dense
  ``to_standard_arrays`` export over the revised simplex;
* ``monolithic-sparse`` — decomposition off, CSR export + sparse presolve;
* ``monolithic-sparse-lu`` — the sparse pipeline with the Markowitz
  sparse-LU basis factorization forced on in the revised simplex (the
  auto heuristic would keep the LAPACK dense factor at smoke scale);
* ``decomposed-sparse`` — sparse core plus independent-component
  decomposition, solved sequentially in-process;
* ``decomposed-parallel`` — the same components dispatched to the
  persistent :class:`~repro.solver.parallel.WorkerPool` (``--workers``);
* ``decomposed-cached`` — sequential, but with the cross-cycle
  :class:`~repro.solver.parallel.ComponentCache`: the cycle sequence runs
  twice sharing one cache, the first (cold) pass warms it, the second
  (warm) pass is the one reported — every component solve becomes an
  exact-fingerprint replay;
* ``monolithic-repair`` — the relaxation-repair fast path
  (:mod:`repro.solver.repair`): lazy start-time column generation at the
  root, dive repair, audited optimality gap.  Measured against
  ``monolithic-dense`` on the solve stage, and held to its *audited* gap
  of the oracle objective instead of exact agreement;
* ``monolithic-auto-exact`` — ``solve_mode="auto"`` with a negative gap
  threshold, so every cycle escalates to the wrapped exact backend and
  must reproduce ``monolithic-dense`` bit for bit.

The workload is rack-pinned (each job's placement options stay inside one
rack) so the aggregate MILP genuinely splits into one block per rack —
the regime the paper's datacenter workloads live in, where rack-local
preferences dominate (Sec. 2.1).  Distinct per-job values make the
optimum unique, so all five configurations must report the same
objective on every cycle; any mismatch is a correctness bug, and
:func:`bench_cycle` flags it in the returned report
(``results/BENCH_cycle.json`` in CI).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any

from repro.api import Scheduler
from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import JobRequest, TetriSchedConfig
from repro.solver.backend import make_backend
from repro.solver.branch_bound import BranchBoundOptions, BranchBoundSolver
from repro.solver.options import SolveOptions
from repro.solver.parallel import ComponentCache
from repro.solver.repair import RepairSolver
from repro.strl.generator import SpaceOption
from repro.valuefn import StepValue


@dataclass(frozen=True)
class BenchMode:
    """One pipeline configuration the benchmark compares."""

    name: str
    decomposition: bool
    sparse: bool
    #: Worker processes for component solves (0 = sequential in-process).
    workers: int = 0
    #: Run the cycle sequence twice sharing a ComponentCache and report
    #: the warm pass.
    cached: bool = False
    #: LP-relaxation engine for the pure branch-and-bound backend:
    #: ``"revised"`` or the legacy ``"tableau"`` oracle.
    lp_engine: str = "revised"
    #: Solve pipeline: ``"exact"`` (branch and bound), ``"repair"``
    #: (relaxation-repair fast path) or ``"auto"`` (repair, escalating to
    #: exact when the audited gap exceeds ``gap_threshold``).
    solve_mode: str = "exact"
    #: Auto-escalation gap ceiling; negative forces escalation every cycle.
    gap_threshold: float = 0.05


#: Order matters for the speedup report: the first mode is the oracle
#: baseline and ``decomposed-sparse`` is the sequential reference the
#: parallel/cached variants are measured against.
MODES = (
    BenchMode("monolithic-tableau", decomposition=False, sparse=False,
              lp_engine="tableau"),
    BenchMode("monolithic-dense", decomposition=False, sparse=False),
    BenchMode("monolithic-sparse", decomposition=False, sparse=True),
    BenchMode("monolithic-sparse-lu", decomposition=False, sparse=True,
              lp_engine="sparse-lu"),
    BenchMode("decomposed-sparse", decomposition=True, sparse=True),
    BenchMode("decomposed-parallel", decomposition=True, sparse=True,
              workers=2),
    BenchMode("decomposed-cached", decomposition=True, sparse=True,
              cached=True),
    # Monolithic so the compiler's lazy column groups attach (component
    # sub-models renumber columns, which disables colgen when decomposed).
    BenchMode("monolithic-repair", decomposition=False, sparse=False,
              solve_mode="repair"),
    BenchMode("monolithic-auto-exact", decomposition=False, sparse=False,
              solve_mode="auto", gap_threshold=-1.0),
)

_REL_TOL = 1e-6


def _rack_pinned_jobs(cluster: Cluster, jobs_per_rack: int, quantum_s: float,
                      seed: int) -> list[JobRequest]:
    """A deterministic oversubscribed batch of rack-local jobs.

    Values are all distinct so the MILP optimum is unique — the property
    that lets the benchmark demand exact objective agreement across
    solver configurations instead of a loose tolerance.

    A fifth of the jobs ask for three quarters of their rack instead of
    half.  Two such gangs cannot share a rack-quantum, but the LP
    relaxation happily splits them fractionally — so the root relaxation
    is genuinely fractional and exact branch and bound must search,
    which is the regime the relaxation-repair fast path is for (a
    near-integral root makes ``repair`` and ``exact`` do the same work).
    """
    rng = random.Random(seed)
    racks: dict[str, list[str]] = {}
    for name in sorted(cluster.node_names):
        racks.setdefault(name.rsplit("n", 1)[0], []).append(name)
    jobs: list[JobRequest] = []
    for r, rack in enumerate(sorted(racks)):
        nodes = frozenset(racks[rack])
        for j in range(jobs_per_rack):
            wide = rng.random() < 0.2
            k = max(2, (3 * len(nodes)) // 4) if wide \
                else rng.randint(2, max(2, len(nodes) // 2))
            dur_q = rng.randint(2, 4)
            jid = f"{rack}-job{j}"
            jobs.append(JobRequest(
                job_id=jid,
                options=(SpaceOption(nodes, k=k,
                                     duration_s=dur_q * quantum_s),),
                value_fn=StepValue(value=10.0 + len(jobs) * 0.37,
                                   deadline=1e9),
                priority=PriorityClass.SLO_ACCEPTED,
                submit_time=0.0))
    return jobs


def _build_backend(name: str, sparse: bool, rel_gap: float,
                   lp_engine: str = "revised", solve_mode: str = "exact",
                   gap_threshold: float = 0.05):
    """A backend forced onto the dense or sparse array path."""
    backend = make_backend(name, SolveOptions(
        rel_gap=rel_gap, solve_mode=solve_mode,
        repair_gap_threshold=gap_threshold))
    repair = backend if isinstance(backend, RepairSolver) else None
    if repair is not None:
        backend = repair.exact
    if isinstance(backend, BranchBoundSolver):
        opts = backend.options
        backend = BranchBoundSolver(BranchBoundOptions(
            rel_gap=opts.rel_gap, time_limit=opts.time_limit,
            node_limit=opts.node_limit, lp_solver=opts.lp_solver,
            rounding_heuristic=opts.rounding_heuristic,
            presolve=opts.presolve,
            arrays="sparse" if sparse else "dense",
            lp_engine=lp_engine))
    else:
        # Scipy backend: same switch, different spelling.
        backend.use_sparse = sparse
    if repair is not None:
        return RepairSolver(backend, mode=repair.mode,
                            gap_threshold=repair.gap_threshold,
                            rel_gap=rel_gap, time_limit=repair.time_limit)
    return backend


def _run_pass(mode: BenchMode, backend: str, plan_ahead_s: float, racks: int,
              nodes_per_rack: int, jobs_per_rack: int, cycles: int,
              quantum_s: float, seed: int, workers: int,
              cache: ComponentCache | None) -> dict[str, Any]:
    """One full cycle sequence under one mode; returns its report entry.

    A fresh cluster + scheduler every call — only ``cache`` carries state
    between passes (the cached mode's cold/warm pair).
    """
    cluster = Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack)
    cfg = TetriSchedConfig(
        quantum_s=quantum_s, cycle_s=quantum_s,
        plan_ahead_s=plan_ahead_s, backend=backend,
        rel_gap=_REL_TOL, decomposition=mode.decomposition,
        solver_workers=workers if mode.workers else 0,
        solve_mode=mode.solve_mode,
        repair_gap_threshold=mode.gap_threshold,
        # Regression tripwire: every benchmarked cycle also runs the
        # repro.verify oracles — including the gap certifier, which
        # re-derives a repair result's claimed LP bound with an
        # independent engine — so a configuration that drifts from the
        # space-time invariants fails loudly instead of just slower.
        audit_mode=True)
    sched = Scheduler.open(cluster, cfg).core
    sched._backend = _build_backend(backend, mode.sparse, cfg.rel_gap,
                                    mode.lp_engine, mode.solve_mode,
                                    mode.gap_threshold)
    sched._component_cache = cache

    objectives: list[float] = []
    components: list[int] = []
    stage_s: dict[str, float] = {}
    launched = 0
    nodes = lp_iters = 0
    dual_pivots = refactorizations = warm_restarts = warm_hits = 0
    factorizations = ft_updates = pricing_candidates = 0
    fill_ratio = 0.0
    nnz = variables = constraints = 0
    cache_hits = cache_warm_hits = 0
    colgen_rounds = colgen_priced = repair_escalations = 0
    repair_gap = 0.0
    t0 = time.monotonic()
    for c in range(cycles):
        now = c * quantum_s
        # Fresh arrivals each cycle keep the MILP at fig12 scale even
        # after earlier launches consumed capacity.
        for job in _rack_pinned_jobs(cluster, jobs_per_rack, quantum_s,
                                     seed=seed + c):
            sched.submit(JobRequest(
                job_id=f"c{c}-{job.job_id}", options=job.options,
                value_fn=job.value_fn, priority=job.priority,
                submit_time=now))
        res = sched.run_cycle(now)
        stats = res.stats
        objectives.append(stats.objective)
        components.append(stats.components)
        launched += stats.launched
        nodes += stats.solver_nodes
        lp_iters += stats.lp_iterations
        dual_pivots += stats.lp_dual_pivots
        refactorizations += stats.lp_refactorizations
        warm_restarts += stats.lp_warm_restarts
        warm_hits += stats.lp_warm_hits
        factorizations += stats.lp_factorizations
        ft_updates += stats.lp_ft_updates
        pricing_candidates += stats.lp_pricing_candidates
        fill_ratio = max(fill_ratio, stats.lp_fill_ratio)
        cache_hits += stats.cache_hits
        cache_warm_hits += stats.cache_warm_hits
        colgen_rounds += stats.colgen_rounds
        colgen_priced += stats.colgen_columns_priced
        repair_escalations += stats.repair_escalations
        repair_gap = max(repair_gap, stats.repair_gap)
        nnz = max(nnz, stats.milp_nonzeros)
        variables = max(variables, stats.milp_variables)
        constraints = max(constraints, stats.milp_constraints)
        for stage, secs in stats.stage_timings.items():
            stage_s[str(stage)] = stage_s.get(str(stage), 0.0) + secs
    wall_s = time.monotonic() - t0

    entry: dict[str, Any] = {
        "objectives": objectives,
        "components": components,
        "launched": launched,
        "wall_s": wall_s,
        "cycle_mean_ms": 1000.0 * wall_s / cycles,
        "stage_timings_s": stage_s,
        "solver_nodes": nodes,
        "lp_iterations": lp_iters,
        "lp": {"engine": mode.lp_engine, "dual_pivots": dual_pivots,
               "refactorizations": refactorizations,
               "warm_restarts": warm_restarts, "warm_hits": warm_hits,
               "factorizations": factorizations, "ft_updates": ft_updates,
               "pricing_candidates": pricing_candidates,
               "fill_ratio": fill_ratio},
        "workers": workers if mode.workers else 0,
        "cache": {"hits": cache_hits, "warm_hits": cache_warm_hits},
        "milp": {"variables": variables, "constraints": constraints,
                 "nonzeros": nnz},
    }
    if mode.solve_mode != "exact":
        # The gap below is certificate-verified: audit_mode=True ran
        # certify_gap on every cycle, so reaching this line means the
        # claimed bound and gap matched an independent recomputation.
        entry["repair"] = {
            "mode": mode.solve_mode,
            "gap": repair_gap,
            "colgen_rounds": colgen_rounds,
            "columns_priced": colgen_priced,
            "escalations": repair_escalations,
        }
    return entry


def _streaming_jobs(cluster: Cluster, per_rack: int, quantum_s: float,
                    seed: int, tag: str = "") -> list[JobRequest]:
    """Rack-pinned gangs with *far* deadlines for the delta benchmark.

    Two deliberate differences from :func:`_rack_pinned_jobs`: no wide
    3/4-rack gangs (the root relaxation stays near-integral, so the
    oversubscribed queue solves fast enough to benchmark many cycles),
    and the ``StepValue`` deadline sits far beyond the plan-ahead window
    so each job's generated STRL is *shift-invariant* — the expression is
    identical from cycle to cycle, which is the property that lets the
    delta compiler reuse its cached fragment.  Deadline-near jobs
    re-shape their value every cycle and are honestly dirty; a streaming
    steady state of far-deadline jobs is the regime the cross-cycle
    cache is built for.
    """
    rng = random.Random(seed)
    racks: dict[str, list[str]] = {}
    for name in sorted(cluster.node_names):
        racks.setdefault(name.rsplit("n", 1)[0], []).append(name)
    jobs: list[JobRequest] = []
    for rack in sorted(racks):
        nodes = frozenset(racks[rack])
        for j in range(per_rack):
            k = rng.randint(2, max(2, len(nodes) // 2))
            dur_q = rng.randint(2, 4)
            jobs.append(JobRequest(
                job_id=f"{tag}{rack}-s{j}",
                options=(SpaceOption(nodes, k=k,
                                     duration_s=dur_q * quantum_s),),
                value_fn=StepValue(value=10.0 + rng.random() * 5.0,
                                   deadline=1e9),
                priority=PriorityClass.SLO_ACCEPTED,
                submit_time=0.0))
    return jobs


def _delta_stream_pass(delta_mode: str, backend: str, racks: int,
                       nodes_per_rack: int, jobs_per_rack: int, churn: int,
                       cycles: int, plan_ahead_s: float, quantum_s: float,
                       seed: int) -> dict[str, Any]:
    """One streaming cycle sequence under one ``delta_mode``.

    An oversubscribed initial batch keeps a persistent pending queue
    (plan-ahead places most jobs in future quanta, so they stay queued),
    and each later cycle streams in ``churn`` fresh arrivals — well under
    20% of the live batch.  The loose ``rel_gap`` is deliberate: the
    delta legs compare *models*, not optima, and bit-equal models through
    a deterministic solver yield bit-equal objectives at any gap, so the
    benchmark spends its wall-clock on the compile/build stages under
    test instead of proving optimality.
    """
    cluster = Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack)
    cfg = TetriSchedConfig(
        quantum_s=quantum_s, cycle_s=quantum_s, plan_ahead_s=plan_ahead_s,
        backend=backend, rel_gap=0.25, decomposition=True,
        delta_mode=delta_mode)
    sched = Scheduler.open(cluster, cfg).core
    for job in _streaming_jobs(cluster, jobs_per_rack, quantum_s, seed):
        sched.submit(job)

    objectives: list[float] = []
    compile_build_s: list[float] = []
    dirty = clean = rows = cols = full_rebuilds = 0
    t0 = time.monotonic()
    for c in range(cycles):
        now = c * quantum_s
        if c > 0:
            arrivals = _streaming_jobs(cluster, 1, quantum_s,
                                       seed + 100 * c, tag=f"c{c}-")[:churn]
            for job in arrivals:
                sched.submit(job)
        stats = sched.run_cycle(now).stats
        objectives.append(stats.objective)
        compile_build_s.append(
            stats.stage_timings.get("compile", 0.0)
            + stats.stage_timings.get("model_build", 0.0))
        if c > 0:  # steady state only; the first cycle is cold in any mode
            dirty += stats.jobs_dirty
            clean += stats.jobs_clean
            rows += stats.rows_patched
            cols += stats.cols_patched
            full_rebuilds += int(stats.delta_full_rebuild)
    live = dirty + clean
    return {
        "objectives": objectives,
        "wall_s": time.monotonic() - t0,
        "compile_build_s": compile_build_s,
        # Steady-state aggregate: every cycle after the cold first one.
        "steady_compile_build_s": sum(compile_build_s[1:]),
        "jobs_dirty": dirty,
        "jobs_clean": clean,
        "rows_patched": rows,
        "cols_patched": cols,
        "full_rebuilds": full_rebuilds,
        "dirty_fraction": dirty / live if live else 0.0,
    }


def bench_delta(backend: str = "pure", racks: int = 4,
                nodes_per_rack: int = 4, quantum_s: float = 8.0,
                seed: int = 0, jobs_per_rack: int = 8, churn: int = 2,
                cycles: int = 6, plan_ahead_s: float = 64.0) -> dict[str, Any]:
    """The delta-compilation benchmark: full rebuild vs cross-cycle patch.

    Runs the identical streaming workload under ``delta_mode`` off / on /
    verify and reports the steady-state compile+model_build speedup of
    the patched path over the full rebuild.  ``ok`` demands all three at
    once: bit-equal objectives across the modes, the verify leg finishing
    without a :class:`~repro.core.delta.DeltaDivergence`, a sub-20%
    per-cycle churn, and a >=3x compile+build speedup — the acceptance
    bar for the incremental path.
    """
    from repro.core.delta import DeltaDivergence

    params = dict(backend=backend, racks=racks,
                  nodes_per_rack=nodes_per_rack,
                  jobs_per_rack=jobs_per_rack, churn=churn, cycles=cycles,
                  plan_ahead_s=plan_ahead_s, quantum_s=quantum_s, seed=seed)
    section: dict[str, Any] = {"meta": dict(params), "modes": {}}
    verify_ok = True
    for mode in ("off", "on", "verify"):
        try:
            entry = _delta_stream_pass(delta_mode=mode, **params)
        except DeltaDivergence as exc:  # pragma: no cover - regression path
            verify_ok = False
            section["modes"][mode] = {"error": str(exc)}
            continue
        section["modes"][mode] = entry

    section["verify_ok"] = verify_ok
    if verify_ok:
        objs = [section["modes"][m]["objectives"] for m in ("off", "on",
                                                            "verify")]
        section["bit_equal"] = objs[0] == objs[1] == objs[2]
        on = section["modes"]["on"]
        full = section["modes"]["off"]["steady_compile_build_s"]
        patched = on["steady_compile_build_s"]
        section["dirty_fraction"] = on["dirty_fraction"]
        section["churn_below_20pct"] = on["dirty_fraction"] < 0.2
        section["speedup_compile_build"] = full / max(1e-12, patched)
        section["speedup_ok"] = section["speedup_compile_build"] >= 3.0
        section["ok"] = (section["bit_equal"]
                         and section["churn_below_20pct"]
                         and section["speedup_ok"])
    else:
        section["bit_equal"] = False
        section["ok"] = False
    return section


#: LP-engine ablation arms: label, scheduler backend, lp_engine override
#: (``None`` leaves the backend's own LP machinery alone — the scipy arm
#: is HiGHS branch-and-cut end to end).
_LP_ARMS = (
    ("dense-inverse", "pure", "revised-inverse"),
    ("sparse-lu", "pure", "sparse-lu"),
    ("highs", "scipy", None),
)


def _lp_jobs(cluster: Cluster, jobs_per_rack: int, quantum_s: float,
             seed: int) -> list[JobRequest]:
    """Rack-pinned jobs for the LP ablation: no 3/4-rack wide gangs.

    The ``_rack_pinned_jobs`` contention profile is deliberately
    fractional so exact search has something to do; here it would make
    the benchmark measure branch-and-bound tree size instead of LP-engine
    speed.  Half-rack-and-under requests keep the root relaxations
    near-integral, so solve time is dominated by the simplex iterations
    and basis factorizations the ablation is about.
    """
    rng = random.Random(seed)
    racks: dict[str, list[str]] = {}
    for name in sorted(cluster.node_names):
        racks.setdefault(name.rsplit("n", 1)[0], []).append(name)
    jobs: list[JobRequest] = []
    for rack in sorted(racks):
        nodes = frozenset(racks[rack])
        for j in range(jobs_per_rack):
            k = rng.randint(2, max(2, len(nodes) // 2))
            dur_q = rng.randint(2, 4)
            jobs.append(JobRequest(
                job_id=f"{rack}-job{j}",
                options=(SpaceOption(nodes, k=k,
                                     duration_s=dur_q * quantum_s),),
                value_fn=StepValue(value=10.0 + len(jobs) * 0.37,
                                   deadline=1e9),
                priority=PriorityClass.SLO_ACCEPTED,
                submit_time=0.0))
    return jobs


def _lp_pass(backend_name: str, lp_engine: str | None, racks: int,
             nodes_per_rack: int, jobs_per_rack: int, cycles: int,
             quantum_s: float, plan_ahead_s: float,
             seed: int) -> dict[str, Any]:
    """One cycle sequence under one LP-engine arm (monolithic, no audit)."""
    cluster = Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack)
    cfg = TetriSchedConfig(
        quantum_s=quantum_s, cycle_s=quantum_s, plan_ahead_s=plan_ahead_s,
        backend=backend_name, rel_gap=_REL_TOL, decomposition=False)
    sched = Scheduler.open(cluster, cfg).core
    if lp_engine is not None:
        sched._backend = BranchBoundSolver(BranchBoundOptions(
            rel_gap=_REL_TOL, lp_engine=lp_engine, arrays="sparse"))
    objectives: list[float] = []
    solve_s = 0.0
    iters = factorizations = ft_updates = pricing = 0
    fill = 0.0
    t0 = time.monotonic()
    for c in range(cycles):
        now = c * quantum_s
        for job in _lp_jobs(cluster, jobs_per_rack, quantum_s,
                            seed=seed + c):
            sched.submit(JobRequest(
                job_id=f"c{c}-{job.job_id}", options=job.options,
                value_fn=job.value_fn, priority=job.priority,
                submit_time=now))
        stats = sched.run_cycle(now).stats
        objectives.append(stats.objective)
        solve_s += stats.stage_timings.get("solve", 0.0)
        iters += stats.lp_iterations
        factorizations += stats.lp_factorizations
        ft_updates += stats.lp_ft_updates
        pricing += stats.lp_pricing_candidates
        fill = max(fill, stats.lp_fill_ratio)
    return {
        "objectives": objectives,
        "wall_s": time.monotonic() - t0,
        "solve_s": solve_s,
        "lp_iterations": iters,
        "factorizations": factorizations,
        "ft_updates": ft_updates,
        "pricing_candidates": pricing,
        "fill_ratio": fill,
    }


def bench_lp(sizes: tuple[int, ...] = (64, 128, 256),
             jobs_per_rack: int = 2, cycles: int = 1, quantum_s: float = 8.0,
             plan_ahead_s: float = 64.0, seed: int = 0) -> dict[str, Any]:
    """LP-engine ablation: dense-inverse vs sparse-LU vs HiGHS by scale.

    Runs the identical monolithic cycle sequence at each cluster size
    through the legacy explicit-inverse revised simplex, the sparse-LU /
    Forrest–Tomlin engine, and (when scipy is installed) HiGHS
    branch-and-cut, recording solve-stage time plus the engine's
    iteration/factorization/fill counters.  The two pure arms share one
    pivot path, so their objectives must agree bit for bit; HiGHS is held
    to the usual relative tolerance.  ``sparse_lu_wins_at_128`` is the
    ROADMAP acceptance verdict: the sparse factorization must beat the
    inverse engine on solve-stage time at every size >= 128 nodes.
    """
    from repro.solver.scipy_backend import scipy_available

    report: dict[str, Any] = {
        "meta": {"sizes": list(sizes), "jobs_per_rack": jobs_per_rack,
                 "cycles": cycles, "quantum_s": quantum_s,
                 "plan_ahead_s": plan_ahead_s, "seed": seed},
        "sizes": [],
    }
    for size in sizes:
        racks = max(1, size // 8)
        nodes_per_rack = size // racks
        engines: dict[str, Any] = {}
        for label, backend_name, lp_engine in _LP_ARMS:
            if backend_name == "scipy" and not scipy_available():
                continue
            engines[label] = _lp_pass(
                backend_name, lp_engine, racks, nodes_per_rack,
                jobs_per_rack, cycles, quantum_s, plan_ahead_s, seed)
        base = engines["dense-inverse"]["objectives"]
        match = engines["sparse-lu"]["objectives"] == base
        if "highs" in engines:
            match = match and all(
                abs(a - b) <= _REL_TOL * 10 * max(1.0, abs(a))
                for a, b in zip(base, engines["highs"]["objectives"]))
        entry: dict[str, Any] = {
            "nodes": size, "racks": racks,
            "nodes_per_rack": nodes_per_rack,
            "engines": engines,
            "objective_match": match,
            # >1 means the sparse LU spent less solve-stage time than the
            # explicit-inverse engine on the identical cycle sequence.
            "sparse_lu_speedup_solve":
                engines["dense-inverse"]["solve_s"]
                / max(1e-12, engines["sparse-lu"]["solve_s"]),
        }
        if "highs" in engines:
            h = max(1e-12, engines["highs"]["solve_s"])
            # Solve-time multiples over HiGHS (lower is closer).
            entry["vs_highs"] = {
                "dense_inverse": engines["dense-inverse"]["solve_s"] / h,
                "sparse_lu": engines["sparse-lu"]["solve_s"] / h,
            }
        report["sizes"].append(entry)
    report["objective_match"] = all(e["objective_match"]
                                    for e in report["sizes"])
    report["sparse_lu_wins_at_128"] = all(
        e["sparse_lu_speedup_solve"] > 1.0
        for e in report["sizes"] if e["nodes"] >= 128)
    return report


def bench_cycle(backend: str = "pure", plan_ahead_s: float = 96.0,
                racks: int = 4, nodes_per_rack: int = 4,
                jobs_per_rack: int = 2, cycles: int = 2,
                quantum_s: float = 8.0, seed: int = 0,
                workers: int = 2) -> dict[str, Any]:
    """Benchmark one fig12-style cycle sequence across the eight modes.

    Returns a JSON-serializable report (written to ``BENCH_cycle.json`` by
    the ``bench-cycle`` CLI command and the fig12 benchmark suite) whose
    ``objective_match`` field is the correctness verdict: every cycle's
    objective must agree across all exact modes within ``1e-6`` relative —
    including the parallel and cache-replay paths, which are required to
    be bit-equal to the sequential solve.  The repair mode is instead held
    to its certificate-verified audited gap of the oracle, and the
    forced-escalation auto mode must match ``monolithic-dense`` bit for
    bit; both checks fold into the same verdict.
    """
    report: dict[str, Any] = {
        "meta": {"backend": backend, "plan_ahead_s": plan_ahead_s,
                 "racks": racks, "nodes_per_rack": nodes_per_rack,
                 "jobs_per_rack": jobs_per_rack, "cycles": cycles,
                 "quantum_s": quantum_s, "seed": seed, "workers": workers},
        "modes": {},
    }
    per_mode_objectives: dict[str, list[float]] = {}
    for mode in MODES:
        run = lambda cache: _run_pass(  # noqa: E731
            mode, backend, plan_ahead_s, racks, nodes_per_rack,
            jobs_per_rack, cycles, quantum_s, seed, workers, cache)
        if mode.cached:
            cache = ComponentCache()
            cold = run(cache)
            entry = run(cache)  # warm pass: every solve is a cache replay
            entry["cold_wall_s"] = cold["wall_s"]
        else:
            entry = run(None)
        per_mode_objectives[mode.name] = entry["objectives"]
        report["modes"][mode.name] = entry

    oracle = per_mode_objectives[MODES[0].name]
    max_delta = 0.0
    repair_within_gap = True
    for mode in MODES:
        objs = per_mode_objectives[mode.name]
        if mode.solve_mode == "repair":
            # Gap-tolerant: the repaired incumbent may undershoot the
            # oracle, but only by its own *audited* gap — and never
            # overshoot a proven optimum.
            gap = report["modes"][mode.name]["repair"]["gap"]
            for a, b in zip(oracle, objs):
                scale = max(1.0, abs(a))
                shortfall = a - b
                if (shortfall > gap * max(1.0, abs(b)) + _REL_TOL * 10 * scale
                        or shortfall < -_REL_TOL * 10 * scale):
                    repair_within_gap = False
            continue
        for a, b in zip(oracle, objs):
            max_delta = max(max_delta,
                            abs(a - b) / max(1.0, abs(a)))
    # Forced escalation (gap_threshold < 0) must reproduce the exact
    # monolithic-dense objectives bit for bit — same backend, same
    # options, after a discarded repair attempt.
    auto_bitmatch = (per_mode_objectives["monolithic-auto-exact"]
                     == per_mode_objectives["monolithic-dense"])
    report["objective_match"] = (max_delta <= _REL_TOL * 10
                                 and repair_within_gap and auto_bitmatch)
    report["max_objective_delta"] = max_delta
    report["repair_within_gap"] = repair_within_gap
    report["auto_exact_bitmatch"] = auto_bitmatch

    def _wall(mode_name: str) -> float:
        return report["modes"][mode_name]["wall_s"]

    def _solve_s(mode_name: str) -> float:
        return report["modes"][mode_name]["stage_timings_s"].get("solve", 0.0)

    report["speedup"] = {
        # The tentpole number: revised-simplex solve stage vs the legacy
        # tableau on the identical monolithic-dense configuration.
        "revised_vs_tableau": _solve_s("monolithic-tableau")
        / max(1e-12, _solve_s("monolithic-dense")),
        "sparse_vs_dense": _wall("monolithic-dense")
        / max(1e-12, _wall("monolithic-sparse")),
        "decomposed_vs_dense": _wall("monolithic-dense")
        / max(1e-12, _wall("decomposed-sparse")),
        "decomposed_vs_sparse": _wall("monolithic-sparse")
        / max(1e-12, _wall("decomposed-sparse")),
        "parallel_vs_sequential": _wall("decomposed-sparse")
        / max(1e-12, _wall("decomposed-parallel")),
        "cached_vs_sequential": _wall("decomposed-sparse")
        / max(1e-12, _wall("decomposed-cached")),
        # Relaxation-repair fast path vs exact branch and bound on the
        # identical monolithic-dense configuration, solve stage only
        # (the gap-certification overhead lands in the audit stage).
        "repair_vs_exact_solve": _solve_s("monolithic-dense")
        / max(1e-12, _solve_s("monolithic-repair")),
    }
    # The delta-compilation benchmark runs at its own canonical streaming
    # scale (a persistent oversubscribed queue) rather than the caller's
    # fig12 geometry — small smoke geometries would starve the cache of
    # clean fragments and measure nothing.
    report["delta"] = bench_delta(backend=backend, quantum_s=quantum_s,
                                  seed=seed)
    repair_entry = report["modes"]["monolithic-repair"]["repair"]
    report["repair"] = {
        "gap": repair_entry["gap"],
        "gap_ok": repair_entry["gap"] <= 0.05,
        "colgen_rounds": repair_entry["colgen_rounds"],
        "columns_priced": repair_entry["columns_priced"],
        "escalations": repair_entry["escalations"],
        "solve_speedup_vs_exact": report["speedup"]["repair_vs_exact_solve"],
        "auto_escalations":
            report["modes"]["monolithic-auto-exact"]["repair"]["escalations"],
    }
    # Elastic-vs-rigid gang comparison, also at its own canonical
    # contended 256-node geometry: the claim under test (width re-planning
    # beats max-width gangs on utilization *and* value) needs a cluster
    # where rigid gangs genuinely strand capacity.
    report["elastic"] = bench_elastic(backend=backend, seed=seed)
    # LP-engine ablation at its own canonical 64/128/256-node scales —
    # the sparse-LU-vs-inverse claim needs bases big enough for the
    # factorization to matter, not the caller's smoke geometry.
    report["bench_lp"] = bench_lp(seed=seed)
    return report


def _elastic_gangs(cluster: Cluster, quantum_s: float, horizon_q: int,
                   elastic: bool) -> list[JobRequest]:
    """One malleable gang per rack: width 24 of 32 preferred, ladder to 16.

    Durations are work-conserving (``24 * horizon / w``, rounded up to
    quanta), so shrinking a gang trades width for runtime at constant
    node-seconds.  The rigid arm submits the identical gangs as their
    max-width option *only* — the all-or-nothing shape malleability
    replaces.
    """
    jobs: list[JobRequest] = []
    full_q = horizon_q
    for rack in sorted(cluster.rack_names):
        nodes = frozenset(cluster.rack_nodes(rack))
        top = (3 * len(nodes)) // 4
        lo = len(nodes) // 2
        widths = range(lo, top + 1) if elastic else range(top, top + 1)
        jobs.append(JobRequest(
            job_id=f"{rack}-gang",
            options=tuple(
                SpaceOption(nodes, k=w,
                            duration_s=-(-top * full_q // w) * quantum_s,
                            label=f"w{w}")
                for w in sorted(widths, reverse=True)),
            value_fn=StepValue(value=5.0, deadline=1e9),
            priority=PriorityClass.BEST_EFFORT, submit_time=0.0,
            elastic=elastic))
    return jobs


def _elastic_burst(cluster: Cluster, quantum_s: float, now: float,
                   per_rack: int, tag: str) -> list[JobRequest]:
    """A burst of rack-pinned SLO gangs that only fit if gangs shrink.

    Each wants half a rack for one quantum within a three-quantum
    deadline.  With a rigid 3/4-rack gang in place only a quarter rack is
    free, so every one of these is culled; a malleable gang shrunk to
    half-rack leaves exactly the room to run them back to back.
    """
    jobs: list[JobRequest] = []
    for rack in sorted(cluster.rack_names):
        nodes = frozenset(cluster.rack_nodes(rack))
        k = len(nodes) // 2
        deadline = now + 3 * quantum_s
        for j in range(per_rack):
            jobs.append(JobRequest(
                job_id=f"{tag}{rack}-slo{j}",
                options=(SpaceOption(nodes, k=k, duration_s=quantum_s),),
                value_fn=StepValue(value=50.0, deadline=deadline),
                priority=PriorityClass.SLO_ACCEPTED, submit_time=now,
                deadline=deadline))
    return jobs


def _elastic_pass(elastic: bool, backend: str, racks: int,
                  nodes_per_rack: int, quantum_s: float, horizon_q: int,
                  burst_cycles: tuple[int, ...], burst_per_rack: int,
                  plan_ahead_s: float, seed: int,
                  max_cycles: int) -> dict[str, Any]:
    """One arm of the elastic-vs-rigid comparison, run to completion.

    Cycles continue until the cluster drains (no running or pending
    work), so each arm is scored over its *own* makespan — work
    conservation means a shrunk gang runs longer, and cutting it off
    early would flatter the elastic arm.
    """
    cluster = Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack)
    cfg = TetriSchedConfig(
        quantum_s=quantum_s, cycle_s=quantum_s, plan_ahead_s=plan_ahead_s,
        backend=backend, rel_gap=1e-6, decomposition=True,
        elastic_mode=elastic, seed=seed,
        # Every cycle replays the MILP certificate and the schedule
        # auditor (including the elastic-shape conformance checks), so a
        # re-plan that violates capacity or the width ladder fails the
        # bench instead of inflating its utilization.
        audit_mode=True)
    api = Scheduler.open(cluster, cfg)
    capacity = len(cluster)
    for job in _elastic_gangs(cluster, quantum_s, horizon_q, elastic):
        api.submit(job)

    busy_node_s = 0.0
    value_by_job: dict[str, float] = {}
    done: set[str] = set()
    resizes = launched = 0
    cycle_ms: list[float] = []
    end_time = 0.0
    for c in range(max_cycles):
        now = c * quantum_s
        # The facade leaves completion reporting to the caller: every job
        # runs exactly its planned duration here, so finish each one at
        # its (resize-adjusted) expected end.
        for job_id, end in sorted(value_by_job.items()):
            if job_id not in done and end <= now + 1e-9:
                api.job_finished(job_id, now)
                done.add(job_id)
        if c in burst_cycles:
            for job in _elastic_burst(cluster, quantum_s, now,
                                      burst_per_rack, tag=f"b{c}-"):
                api.submit(job)
        t0 = time.monotonic()
        res = api.run_cycle(now)
        cycle_ms.append(1000.0 * (time.monotonic() - t0))
        resizes += len(res.resized)
        launched += len(res.allocations) - len(res.resized)
        for a in res.allocations:
            value_by_job[a.job_id] = a.expected_end
            end_time = max(end_time, a.expected_end)
        busy = capacity - len(api.core.state.free_nodes())
        busy_node_s += busy * quantum_s
        if busy == 0 and api.pending_count == 0 and c >= max(
                burst_cycles, default=0):
            break
    # Realized value: each launched job scored once, at its final
    # expected completion (resizes updated it); culled jobs score zero.
    reqs = {j.job_id: j for j in
            _elastic_gangs(cluster, quantum_s, horizon_q, elastic)}
    for bc in burst_cycles:
        for j in _elastic_burst(cluster, quantum_s, bc * quantum_s,
                                burst_per_rack, tag=f"b{bc}-"):
            reqs[j.job_id] = j
    total_value = sum(reqs[job_id].value_fn(end)
                      for job_id, end in value_by_job.items())
    entry = {
        "elastic_mode": elastic,
        "makespan_s": end_time,
        "utilization": (busy_node_s / (capacity * end_time)
                        if end_time else 0.0),
        "total_value": total_value,
        "launched": launched,
        "resizes": resizes,
        "slo_completed": sum(1 for j in value_by_job if "-slo" in j),
        "slo_offered": len(burst_cycles) * burst_per_rack * racks,
        "cycle_mean_ms": (sum(cycle_ms) / len(cycle_ms)
                          if cycle_ms else 0.0),
        "cycles": len(cycle_ms),
    }
    api.close()
    return entry


def bench_elastic(backend: str = "pure", racks: int = 8,
                  nodes_per_rack: int = 32, quantum_s: float = 8.0,
                  horizon_q: int = 8,
                  burst_cycles: tuple[int, ...] = (2, 5),
                  burst_per_rack: int = 3, plan_ahead_s: float = 64.0,
                  seed: int = 0, max_cycles: int = 24) -> dict[str, Any]:
    """Elastic width re-planning vs rigid max-width gangs at 256 nodes.

    The identical contended workload — one 3/4-rack gang per rack plus
    bursts of half-rack SLO jobs — runs through both arms.  The rigid arm
    submits each gang as its max-width option only; the elastic arm
    submits the full width ladder with ``elastic_mode`` on.  Because gang
    durations are work-conserving, the gangs contribute the same
    node-seconds in both arms; any utilization difference comes from the
    SLO work the cluster could or could not also admit.  Verdict ``ok``
    requires the elastic arm to win on *both* cluster utilization and
    total realized value, with at least one width re-plan actually
    performed (every cycle of both arms ran under the audit oracle).
    """
    params = dict(backend=backend, racks=racks,
                  nodes_per_rack=nodes_per_rack, quantum_s=quantum_s,
                  horizon_q=horizon_q, burst_cycles=burst_cycles,
                  burst_per_rack=burst_per_rack, plan_ahead_s=plan_ahead_s,
                  seed=seed, max_cycles=max_cycles)
    report: dict[str, Any] = {
        "meta": {**params, "burst_cycles": list(burst_cycles),
                 "nodes": racks * nodes_per_rack},
    }
    report["rigid"] = _elastic_pass(elastic=False, **params)
    report["elastic"] = _elastic_pass(elastic=True, **params)
    report["utilization_win"] = (report["elastic"]["utilization"]
                                 > report["rigid"]["utilization"])
    report["value_win"] = (report["elastic"]["total_value"]
                           > report["rigid"]["total_value"])
    report["resizes"] = report["elastic"]["resizes"]
    report["ok"] = (report["utilization_win"] and report["value_win"]
                    and report["resizes"] > 0)
    return report


def format_bench_elastic(report: dict[str, Any]) -> str:
    """Human-readable summary of a :func:`bench_elastic` report."""
    meta = report["meta"]
    lines = [f"bench-elastic: backend={meta['backend']} "
             f"{meta['nodes']} nodes "
             f"({meta['racks']}x{meta['nodes_per_rack']}) "
             f"bursts at cycles {meta['burst_cycles']} seed={meta['seed']}"]
    for arm in ("rigid", "elastic"):
        e = report[arm]
        lines.append(
            f"  {arm:<7}: utilization={e['utilization']:.3f} "
            f"value={e['total_value']:.0f} "
            f"slo={e['slo_completed']}/{e['slo_offered']} "
            f"resizes={e['resizes']} makespan={e['makespan_s']:.0f}s "
            f"({e['cycle_mean_ms']:.0f}ms/cycle x {e['cycles']})")
    lines.append(
        f"  elastic wins utilization: {report['utilization_win']}, "
        f"value: {report['value_win']}, resizes>0: "
        f"{report['resizes'] > 0} -> ok={report['ok']}")
    return "\n".join(lines)


class StreamingStats:
    """Constant-memory accumulator for a metric stream (Welford mean).

    The sharded bench replays hundreds of cycles at up to 1024 nodes;
    keeping every per-cycle record would make peak memory grow with
    trace length.  This keeps five floats per metric and still reports
    count / mean / min / max / total.
    """

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    @property
    def total(self) -> float:
        return self.mean * self.n

    @property
    def variance(self) -> float:
        return self._m2 / self.n if self.n else 0.0

    def to_dict(self) -> dict[str, float]:
        if self.n == 0:
            return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "total": 0.0}
        return {"n": self.n, "mean": self.mean, "min": self.min,
                "max": self.max, "total": self.total}


def _shard_jobs(cluster: Cluster, per_rack: int, quantum_s: float,
                seed: int, tag: str = "") -> list[JobRequest]:
    """Rack-affine gangs with a pod-pair-spanning fallback option.

    Each job prefers its home rack but also carries a wider, longer
    option spanning the next rack over (wrap-around).  The fallbacks
    chain every rack to its neighbour, so the monolithic MILP is one
    giant connected component — the regime where global scheduling at
    1k nodes blows the cycle budget.  Rack-aligned domains cut exactly
    those chains: jobs interior to a domain keep both options
    (untrimmed, exact), jobs at a domain seam lose the spanning
    fallback (trimmed, charged to the declared quality bound).
    """
    rng = random.Random(seed)
    rack_list = sorted(cluster.rack_names)
    jobs: list[JobRequest] = []
    for r, rack in enumerate(rack_list):
        home = frozenset(cluster.rack_nodes(rack))
        pair = home | frozenset(
            cluster.rack_nodes(rack_list[(r + 1) % len(rack_list)]))
        for j in range(per_rack):
            k = rng.randint(2, max(2, len(home) // 2))
            dur_q = rng.randint(2, 4)
            jobs.append(JobRequest(
                job_id=f"{tag}{rack}-g{j}",
                options=(
                    SpaceOption(home, k=k, duration_s=dur_q * quantum_s,
                                label="rack"),
                    SpaceOption(pair, k=k, duration_s=(dur_q + 1) * quantum_s,
                                label="pod-pair"),
                ),
                value_fn=StepValue(value=10.0 + rng.random() * 5.0,
                                   deadline=1e9),
                priority=PriorityClass.SLO_ACCEPTED,
                submit_time=0.0))
    return jobs


def _shard_pass(racks: int, nodes_per_rack: int, shard_mode: str,
                shard_count: int, backend: str, jobs_per_rack: int,
                cycles: int, quantum_s: float, plan_ahead_s: float,
                seed: int, workers: int, time_limit: float,
                audit: bool = False,
                keep_allocs: bool = False) -> dict[str, Any]:
    """One trace replay (monolithic or sharded) with streaming metrics.

    ``cycle_history`` is cleared after each cycle is folded into the
    streaming accumulators, so memory stays constant in trace length —
    the property that makes the 1024-node replay feasible in CI.
    """
    cluster = Cluster.build(racks=racks, nodes_per_rack=nodes_per_rack)
    cfg = TetriSchedConfig(
        quantum_s=quantum_s, cycle_s=quantum_s, plan_ahead_s=plan_ahead_s,
        backend=backend, rel_gap=0.1, decomposition=True,
        solver_workers=workers, solver_time_limit=time_limit,
        shard_mode=shard_mode, shard_count=shard_count, seed=seed,
        audit_mode=audit)
    api = Scheduler.open(cluster, cfg)
    sched = api.core

    cycle_ms = StreamingStats()
    solve_ms = StreamingStats()
    objective = StreamingStats()
    launched = StreamingStats()
    bound = StreamingStats()
    objectives: list[float] = []
    allocs: list[tuple] = []
    boundary_jobs = trimmed_jobs = fallbacks = 0
    t0 = time.monotonic()
    for c in range(cycles):
        now = c * quantum_s
        # Workload stream is derived from the config's single seed so a
        # sharded replay is bit-reproducible end to end.
        for job in _shard_jobs(cluster, jobs_per_rack, quantum_s,
                               seed=cfg.seed + 1000 * c, tag=f"c{c}-"):
            api.submit(job)
        t_cycle = time.monotonic()
        res = api.run_cycle(now)
        cycle_ms.add(1000.0 * (time.monotonic() - t_cycle))
        stats = res.stats
        solve_ms.add(1000.0 * stats.solver_latency_s)
        objective.add(stats.objective)
        launched.add(stats.launched)
        bound.add(stats.shard_quality_bound)
        boundary_jobs += stats.shard_boundary_jobs
        trimmed_jobs += stats.shard_trimmed_jobs
        fallbacks += stats.shard_greedy_fallbacks
        objectives.append(stats.objective)
        if keep_allocs:
            allocs.extend(
                sorted((a.job_id, tuple(sorted(a.nodes)), a.start_time,
                        a.expected_end) for a in res.allocations))
        # Constant memory: fold, then drop the per-cycle record.
        sched.cycle_history.clear()
    entry: dict[str, Any] = {
        "nodes": len(cluster),
        "shard_mode": shard_mode,
        "domains": (len(sched._coordinator.domains)
                    if sched._coordinator is not None else 1),
        "wall_s": time.monotonic() - t0,
        "cycle_ms": cycle_ms.to_dict(),
        "solve_ms": solve_ms.to_dict(),
        "objective": objective.to_dict(),
        "launched": launched.to_dict(),
        "quality_bound": bound.to_dict(),
        "boundary_jobs": boundary_jobs,
        "trimmed_jobs": trimmed_jobs,
        "greedy_fallbacks": fallbacks,
        "objectives": objectives,
    }
    if keep_allocs:
        entry["allocations"] = allocs
    api.close()
    return entry


def bench_shard(sizes: tuple[int, ...] = (256, 512, 1024),
                backend: str = "pure", nodes_per_rack: int = 32,
                jobs_per_rack: int = 2, cycles: int = 3,
                quantum_s: float = 8.0, plan_ahead_s: float = 64.0,
                seed: int = 0, workers: int = 2,
                time_limit: float = 2.0) -> dict[str, Any]:
    """The sharding benchmark: monolithic-parallel vs sharded trace replay.

    For each cluster size, the identical seeded workload stream replays
    through (a) the monolithic pipeline with parallel decomposed solves
    under ``time_limit`` per solve — the best non-sharded configuration —
    and (b) the sharded pipeline (rack-aligned domains).  Per-size
    verdicts:

    * ``speedup_ok`` — sharded mean cycle time at least 2x better;
    * ``quality_ok`` — sharded objective within the *declared* bound of
      the monolithic objective on every cycle (the bound each cycle
      published, audited via ``shard_quality_bound``);

    and once, at the smallest size, ``shard1_bit_equal``: the sharded
    pipeline at ``shard_count=1`` must reproduce the monolithic run's
    allocations and objectives bit for bit.
    """
    report: dict[str, Any] = {
        "meta": {"sizes": list(sizes), "backend": backend,
                 "nodes_per_rack": nodes_per_rack,
                 "jobs_per_rack": jobs_per_rack, "cycles": cycles,
                 "quantum_s": quantum_s, "plan_ahead_s": plan_ahead_s,
                 "seed": seed, "workers": workers,
                 "time_limit": time_limit},
        "sizes": [],
    }
    common = dict(nodes_per_rack=nodes_per_rack, backend=backend,
                  jobs_per_rack=jobs_per_rack, cycles=cycles,
                  quantum_s=quantum_s, plan_ahead_s=plan_ahead_s,
                  seed=seed, workers=workers, time_limit=time_limit)
    all_ok = True
    for size in sizes:
        racks = max(1, size // nodes_per_rack)
        mono = _shard_pass(racks=racks, shard_mode="off", shard_count=0,
                           **common)
        shard = _shard_pass(racks=racks, shard_mode="racks", shard_count=0,
                            audit=True, **common)
        speedup = mono["cycle_ms"]["mean"] / max(1e-9,
                                                 shard["cycle_ms"]["mean"])
        # Per-cycle quality audit: the sharded objective may trail the
        # monolithic one by at most the bound that cycle declared.
        tol = 1e-6
        quality_ok = all(
            s >= m - b - tol * max(1.0, abs(m))
            for m, s, b in zip(
                mono["objectives"], shard["objectives"],
                [shard["quality_bound"]["max"]] * len(mono["objectives"])))
        exact_parity = (shard["trimmed_jobs"] == 0
                        and shard["boundary_jobs"] == 0)
        if exact_parity:
            quality_ok = mono["objectives"] == shard["objectives"]
        entry = {
            "nodes": size, "racks": racks,
            "monolithic": mono, "sharded": shard,
            "speedup_cycle": speedup,
            "speedup_ok": speedup >= 2.0,
            "quality_ok": quality_ok,
            "exact_parity": exact_parity,
        }
        all_ok = all_ok and entry["speedup_ok"] and quality_ok
        report["sizes"].append(entry)

    # shard_count=1 bit-equality at the smallest size: one whole-cluster
    # domain must reproduce the monolithic pipeline exactly.
    racks0 = max(1, min(sizes) // nodes_per_rack)
    small = dict(common, cycles=min(cycles, 2))
    mono1 = _shard_pass(racks=racks0, shard_mode="off", shard_count=0,
                        keep_allocs=True, **small)
    shard1 = _shard_pass(racks=racks0, shard_mode="racks", shard_count=1,
                         keep_allocs=True, **small)
    report["shard1_bit_equal"] = (
        mono1["objectives"] == shard1["objectives"]
        and mono1["allocations"] == shard1["allocations"])
    report["ok"] = all_ok and report["shard1_bit_equal"]
    return report


def format_bench_shard(report: dict[str, Any]) -> str:
    """Human-readable summary of a :func:`bench_shard` report."""
    meta = report["meta"]
    lines = [f"bench-shard: backend={meta['backend']} "
             f"sizes={meta['sizes']} cycles={meta['cycles']} "
             f"seed={meta['seed']} time-limit={meta['time_limit']:g}s"]
    for entry in report["sizes"]:
        mono, shard = entry["monolithic"], entry["sharded"]
        lines.append(
            f"  {entry['nodes']:>5} nodes: monolithic "
            f"{mono['cycle_ms']['mean']:.0f}ms/cycle vs sharded "
            f"{shard['cycle_ms']['mean']:.0f}ms/cycle "
            f"({shard['domains']} domains) -> "
            f"{entry['speedup_cycle']:.2f}x "
            f"(>=2x ok={entry['speedup_ok']})")
        lines.append(
            f"    quality: ok={entry['quality_ok']} "
            f"exact-parity={entry['exact_parity']} "
            f"bound(max)={shard['quality_bound']['max']:.2f} "
            f"trimmed={shard['trimmed_jobs']} "
            f"boundary={shard['boundary_jobs']} "
            f"fallbacks={shard['greedy_fallbacks']}")
    lines.append(f"  shard_count=1 bit-equal: {report['shard1_bit_equal']}")
    lines.append(f"  ok: {report['ok']}")
    return "\n".join(lines)


def format_bench(report: dict[str, Any]) -> str:
    """Human-readable summary of a :func:`bench_cycle` report."""
    lines = []
    meta = report["meta"]
    lines.append(
        f"bench-cycle: backend={meta['backend']} "
        f"plan-ahead={meta['plan_ahead_s']:g}s "
        f"cluster={meta['racks']}x{meta['nodes_per_rack']} "
        f"cycles={meta['cycles']} seed={meta['seed']} "
        f"workers={meta.get('workers', 0)}")
    for mode, m in report["modes"].items():
        stages = " ".join(f"{k}={1000 * v:.1f}ms"
                          for k, v in sorted(m["stage_timings_s"].items()))
        lines.append(
            f"  {mode:<19}: wall={m['wall_s'] * 1000:.1f}ms "
            f"components={m['components']} objectives="
            f"{[round(o, 3) for o in m['objectives']]}")
        lines.append(f"    stages: {stages}")
        lp = m.get("lp", {})
        if lp:
            lines.append(
                f"    lp[{lp.get('engine', '?')}]: "
                f"{m['lp_iterations']} iterations, "
                f"{lp.get('dual_pivots', 0)} dual pivots, "
                f"{lp.get('refactorizations', 0)} refactorizations, "
                f"warm restarts {lp.get('warm_hits', 0)}"
                f"/{lp.get('warm_restarts', 0)}")
        cache = m.get("cache", {})
        if cache.get("hits") or cache.get("warm_hits"):
            lines.append(
                f"    cache: {cache['hits']} exact hits, "
                f"{cache['warm_hits']} warm-start hits "
                f"(cold pass {1000 * m.get('cold_wall_s', 0.0):.1f}ms)")
        repair = m.get("repair")
        if repair:
            lines.append(
                f"    repair[{repair['mode']}]: gap={repair['gap']:.2e} "
                f"colgen rounds={repair['colgen_rounds']} "
                f"priced={repair['columns_priced']} "
                f"escalations={repair['escalations']}")
    sp = report["speedup"]
    lines.append(
        f"  speedup: revised/tableau(solve)={sp['revised_vs_tableau']:.2f}x "
        f"sparse/dense={sp['sparse_vs_dense']:.2f}x "
        f"decomposed/dense={sp['decomposed_vs_dense']:.2f}x "
        f"decomposed/sparse={sp['decomposed_vs_sparse']:.2f}x")
    lines.append(
        f"  parallel/sequential={sp['parallel_vs_sequential']:.2f}x "
        f"cached/sequential={sp['cached_vs_sequential']:.2f}x "
        f"repair/exact(solve)={sp['repair_vs_exact_solve']:.2f}x")
    rep = report.get("repair")
    if rep:
        lines.append(
            f"  repair: certified gap {rep['gap']:.2e} "
            f"(gap_ok={rep['gap_ok']}) "
            f"solve speedup {rep['solve_speedup_vs_exact']:.2f}x, "
            f"auto escalations {rep['auto_escalations']}, "
            f"bit-match {report.get('auto_exact_bitmatch')}")
    delta = report.get("delta")
    if delta:
        on = delta["modes"].get("on", {})
        lines.append(
            f"  delta: compile+build speedup "
            f"{delta.get('speedup_compile_build', 0.0):.2f}x "
            f"(>=3x ok={delta.get('speedup_ok')}) "
            f"dirty fraction {delta.get('dirty_fraction', 0.0):.1%} "
            f"(dirty={on.get('jobs_dirty', 0)} clean={on.get('jobs_clean', 0)} "
            f"full rebuilds={on.get('full_rebuilds', 0)})")
        lines.append(
            f"  delta: bit-equal {delta.get('bit_equal')} "
            f"verify ok {delta.get('verify_ok')} -> ok={delta.get('ok')}")
    lp_rep = report.get("bench_lp")
    if lp_rep:
        for entry in lp_rep["sizes"]:
            engines = entry["engines"]
            parts = []
            for label, arm in engines.items():
                extra = ""
                if arm["factorizations"]:
                    extra = (f" fact={arm['factorizations']}"
                             f" ft={arm['ft_updates']}"
                             f" fill={arm['fill_ratio']:.1f}")
                parts.append(f"{label}={1000 * arm['solve_s']:.0f}ms"
                             f" it={arm['lp_iterations']}{extra}")
            lines.append(f"  lp[{entry['nodes']}n]: " + " | ".join(parts))
            lines.append(
                f"    sparse-lu/inverse solve speedup "
                f"{entry['sparse_lu_speedup_solve']:.2f}x "
                f"match={entry['objective_match']}")
        lines.append(
            f"  lp ablation: sparse-lu wins at >=128n: "
            f"{lp_rep['sparse_lu_wins_at_128']} "
            f"(objectives match: {lp_rep['objective_match']})")
    lines.append(
        f"  objective match: {report['objective_match']} "
        f"(max relative delta {report['max_objective_delta']:.2e}, "
        f"repair within gap {report.get('repair_within_gap')})")
    return "\n".join(lines)
