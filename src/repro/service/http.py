"""Asyncio HTTP/JSON front end for the scheduler service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
third-party web framework, connection-per-request (``Connection: close``),
JSON in and out.  Routes (see ``docs/service.md`` for curl examples):

========  =====================  ==========================================
method    path                   action
========  =====================  ==========================================
POST      ``/jobs``              submit a job spec
GET       ``/jobs``              list all job records
GET       ``/jobs/<id>``         one job's lifecycle record
DELETE    ``/jobs/<id>``         request cancellation
GET       ``/status``            service + delta-compiler summary
GET       ``/cycles``            recent per-cycle stats records
POST      ``/cluster/events``    ``{"action": "remove"|"add", "node": n}``
POST      ``/shard/drain``       ``{"domain": "dom1"}`` (``"~dom1"`` restores)
POST      ``/drain``             graceful drain; responds with final stats
GET       ``/healthz``           liveness probe
========  =====================  ==========================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError, ServiceError
from repro.service.service import SchedulerService, run_cycle_loop

_MAX_HEADER = 64 * 1024
_MAX_BODY = 4 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            500: "Internal Server Error"}


def _response(status: int, payload: Any) -> bytes:
    body = json.dumps(payload, default=str).encode()
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode() + body


async def _read_request(reader: asyncio.StreamReader
                        ) -> tuple[str, str, dict[str, str], bytes]:
    raw = await reader.readuntil(b"\r\n\r\n")
    if len(raw) > _MAX_HEADER:
        raise _HttpError(400, "headers too large")
    head = raw.decode("latin-1").split("\r\n")
    try:
        method, target, _version = head[0].split(" ", 2)
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    for line in head[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise _HttpError(400, "body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target.split("?", 1)[0], headers, body


def _json_body(body: bytes) -> Any:
    if not body:
        raise _HttpError(400, "request body required")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpError(400, f"invalid JSON body: {exc}") from None


class ServiceServer:
    """The HTTP server plus the cycle-timer task, with a drain lifecycle."""

    def __init__(self, service: SchedulerService, host: str = "127.0.0.1",
                 port: int = 0, cycle_s: float | None = None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.cycle_s = cycle_s
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._cycle_task: asyncio.Task | None = None
        self._drained = asyncio.Event()

    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._cycle_task = asyncio.ensure_future(
            run_cycle_loop(self.service, self._stop, self.cycle_s))
        return self

    async def drain(self) -> dict[str, Any]:
        """Stop the timer, drain the service, release the listener."""
        self._stop.set()
        if self._cycle_task is not None:
            await self._cycle_task
        loop = asyncio.get_running_loop()
        final = await loop.run_in_executor(None, self.service.drain)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()
        return final

    async def wait_drained(self) -> None:
        await self._drained.wait()

    # -- request handling ----------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        drain_after = False
        try:
            try:
                method, path, _headers, body = await _read_request(reader)
                status, payload, drain_after = await self._route(
                    method, path, body)
            except _HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            except ServiceError as exc:
                status, payload = 400, {"error": str(exc)}
            except ReproError as exc:
                status, payload = 500, {"error": str(exc)}
            writer.write(_response(status, payload))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if drain_after:
            # Full drain happens after the response is on the wire so the
            # caller sees the final stats instead of a reset connection.
            await self.drain()

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, Any, bool]:
        svc = self.service
        loop = asyncio.get_running_loop()
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True}, False
        if path == "/status" and method == "GET":
            return 200, svc.status(), False
        if path == "/cycles" and method == "GET":
            return 200, {"cycles": svc.cycles()}, False
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": [r.to_dict() for r in svc.jobs()]}, False
        if path == "/jobs" and method == "POST":
            spec = _json_body(body)
            # Submission takes the service lock; keep the loop responsive.
            rec = await loop.run_in_executor(None, svc.submit_spec, spec)
            return 201, rec.to_dict(), False
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            try:
                if method == "GET":
                    return 200, svc.job(job_id).to_dict(), False
                if method == "DELETE":
                    return 200, svc.cancel(job_id).to_dict(), False
            except ServiceError as exc:
                return 404, {"error": str(exc)}, False
            return 405, {"error": f"{method} not allowed on {path}"}, False
        if path == "/cluster/events" and method == "POST":
            spec = _json_body(body)
            if not isinstance(spec, dict):
                raise _HttpError(400, "event must be a JSON object")
            out = await loop.run_in_executor(
                None, svc.cluster_event,
                str(spec.get("action", "")), str(spec.get("node", "")))
            return 200, out, False
        if path == "/shard/drain" and method == "POST":
            spec = _json_body(body)
            if not isinstance(spec, dict):
                raise _HttpError(400, "event must be a JSON object")
            try:
                out = await loop.run_in_executor(
                    None, svc.drain_domain, str(spec.get("domain", "")))
            except ServiceError as exc:
                return 400, {"error": str(exc)}, False
            return 200, out, False
        if path == "/drain" and method == "POST":
            # Settle state under the service lock for the response body;
            # the listener itself is torn down post-response.
            final = await loop.run_in_executor(None, svc.drain)
            return 200, final, True
        return 404, {"error": f"no route for {method} {path}"}, False


async def serve(service: SchedulerService, host: str = "127.0.0.1",
                port: int = 0, cycle_s: float | None = None) -> ServiceServer:
    """Start the HTTP API + cycle timer; returns the running server."""
    return await ServiceServer(service, host, port, cycle_s).start()


__all__ = ["ServiceServer", "serve"]
