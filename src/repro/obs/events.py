"""Structured JSONL event emission and round-tripping.

Events complement the aggregate timers/counters in
:mod:`repro.obs.registry`: where a counter answers "how many B&B nodes did
this run explore?", the event stream answers "when did the incumbent
improve, and what was the gap at that moment?".  Each event is one JSON
object per line with a small mandatory envelope:

* ``kind`` — dotted event type, e.g. ``"solver.incumbent"``;
* ``seq`` — 1-based emission order within the registry session;
* ``t`` — seconds since the registry session started (monotonic clock);

plus arbitrary JSON-serializable payload fields.  ``validate_event``
checks the envelope so archived profiles can be schema-checked in tests.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.errors import ReproError

#: Envelope fields every event must carry (name -> required type).
EVENT_SCHEMA = {"kind": str, "seq": int, "t": (int, float)}


class ObsEventError(ReproError):
    """An event record violates the envelope schema."""


def validate_event(record: dict) -> dict:
    """Check the event envelope; returns the record for chaining."""
    if not isinstance(record, dict):
        raise ObsEventError(f"event must be a JSON object, got {type(record)}")
    for name, types in EVENT_SCHEMA.items():
        if name not in record:
            raise ObsEventError(f"event missing required field {name!r}")
        if not isinstance(record[name], types):
            raise ObsEventError(
                f"event field {name!r} has type {type(record[name]).__name__},"
                f" expected {types}")
    if not record["kind"]:
        raise ObsEventError("event kind must be non-empty")
    return record


class JsonlSink:
    """Collects event records; serializes to JSON lines.

    Records are buffered in memory; :meth:`dump` / :meth:`to_jsonl` write
    them out.  An optional ``stream`` receives each line eagerly as well,
    so long runs can be tailed.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.records: list[dict] = []
        self.stream = stream

    def write(self, record: dict) -> None:
        self.records.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record, sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> list[dict]:
        return [r for r in self.records if r.get("kind") == kind]

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(r, sort_keys=True) for r in self.records)

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(text: str, validate: bool = True) -> list[dict]:
    """Parse a JSONL event stream back into records (inverse of dumping)."""
    records = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsEventError(f"line {line_no}: invalid JSON: {exc}") from None
        if validate:
            validate_event(record)
        records.append(record)
    return records


def read_jsonl_file(path, validate: bool = True) -> list[dict]:
    with open(path) as fh:
        return read_jsonl(fh.read(), validate=validate)


def iter_kinds(records: Iterable[dict]) -> dict[str, int]:
    """Histogram of event kinds (handy for summaries and tests)."""
    out: dict[str, int] = {}
    for record in records:
        kind = record.get("kind", "?")
        out[kind] = out.get(kind, 0) + 1
    return out
