"""A dense two-phase primal simplex LP solver (pure Python + numpy).

This is the from-scratch LP engine underneath the branch-and-bound MILP
solver in :mod:`repro.solver.branch_bound`.  The paper solved its MILPs with
IBM CPLEX; we cannot ship CPLEX, so this module (plus branch-and-bound) is the
"any MILP backend" substitution documented in DESIGN.md.

Design notes
------------
* Problems are given in ``linprog``-style form: minimize ``c @ x`` subject to
  ``a_ub @ x <= b_ub``, ``a_eq @ x == b_eq`` and per-variable bounds.
* We reduce to standard form (equalities, nonnegative variables):

  - variables with finite lower bound are shifted (``x = y + lb``);
  - free variables are split (``x = y+ - y-``);
  - finite upper bounds become extra inequality rows;
  - inequality rows gain slack variables;
  - rows are sign-normalized so the RHS is nonnegative.

* Phase 1 introduces artificial variables for rows lacking an identity
  column and minimizes their sum; phase 2 optimizes the true objective.
* Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
  after a stall threshold, guaranteeing termination.

The implementation favors clarity over speed; the scipy/HiGHS backend in
:mod:`repro.solver.scipy_backend` is the fast path for large experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SolverError
from repro.solver.result import LPResult, SolveStatus

_FEAS_TOL = 1e-8
_OPT_TOL = 1e-9
_PIVOT_TOL = 1e-10


@dataclass
class _StandardForm:
    """Standard-form program plus the recipe to map solutions back."""

    a: np.ndarray          # m x n_std equality matrix
    b: np.ndarray          # m, nonnegative
    c: np.ndarray          # n_std objective
    obj_shift: float       # constant from variable shifting
    n_orig: int
    # per original variable: (kind, col[, col_neg]) where kind in
    # {"shift", "split"}; shift also carries the lb offset.
    recover: list[tuple]
    # Row layout before sign normalization: caller <= rows, then one row
    # per finite upper bound, then equality rows; ``neg`` marks rows whose
    # sign was flipped to make the RHS nonnegative.  Dual recovery needs
    # all three to map standard-form multipliers back to caller rows.
    m_ub_caller: int = 0
    m_bound: int = 0
    neg: np.ndarray | None = None


def _to_standard_form(c, a_ub, b_ub, a_eq, b_eq, lb, ub) -> _StandardForm:
    n = len(c)
    c = np.asarray(c, dtype=float)
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)

    # Column construction: for each original var either one shifted column or
    # a split pair.  Track columns so we can build the matrix in one pass.
    recover: list[tuple] = []
    col_of_pos = np.zeros(n, dtype=int)
    col_of_neg = np.full(n, -1, dtype=int)
    n_std = 0
    for j in range(n):
        if np.isfinite(lb[j]):
            recover.append(("shift", n_std, lb[j]))
            col_of_pos[j] = n_std
            n_std += 1
        else:
            recover.append(("split", n_std, n_std + 1))
            col_of_pos[j] = n_std
            col_of_neg[j] = n_std + 1
            n_std += 2

    def expand_rows(a_rows: np.ndarray) -> np.ndarray:
        if a_rows.size == 0:
            return np.zeros((a_rows.shape[0], n_std))
        out = np.zeros((a_rows.shape[0], n_std))
        out[:, col_of_pos] = a_rows
        split_mask = col_of_neg >= 0
        if split_mask.any():
            out[:, col_of_neg[split_mask]] = -a_rows[:, split_mask]
        return out

    # Upper bounds as extra <= rows in original variable space: one batch
    # of unit rows scattered in a single fancy-indexed assignment.
    finite_ub = np.nonzero(np.isfinite(ub))[0]
    ub_rows = np.zeros((finite_ub.size, n))
    ub_rows[np.arange(finite_ub.size), finite_ub] = 1.0
    ub_rhs = ub[finite_ub]

    a_ub_full = np.vstack([m for m in (a_ub, ub_rows) if m.size]) \
        if (a_ub.size or ub_rows.size) else np.zeros((0, n))
    b_ub_full = np.concatenate([v for v in (b_ub, ub_rhs) if v.size]) \
        if (b_ub.size or ub_rhs.size) else np.zeros(0)

    a_ub_std = expand_rows(a_ub_full)
    a_eq_std = expand_rows(a_eq)

    # Shift RHS by contributions of lb offsets: row @ lb_offset.
    lb_offset = np.where(np.isfinite(lb), lb, 0.0)
    b_ub_std = b_ub_full - (a_ub_full @ lb_offset if a_ub_full.size else 0.0)
    b_eq_std = b_eq - (a_eq @ lb_offset if a_eq.size else 0.0)

    # Objective in standard space.
    c_std = np.zeros(n_std)
    c_std[col_of_pos] = c
    split_mask = col_of_neg >= 0
    if split_mask.any():
        c_std[col_of_neg[split_mask]] = -c[split_mask]
    obj_shift = float(c @ lb_offset)

    # Slacks for inequality rows.
    m_ub = a_ub_std.shape[0]
    m_eq = a_eq_std.shape[0]
    a = np.zeros((m_ub + m_eq, n_std + m_ub))
    if m_ub:
        a[:m_ub, :n_std] = a_ub_std
        a[:m_ub, n_std:n_std + m_ub] = np.eye(m_ub)
    if m_eq:
        a[m_ub:, :n_std] = a_eq_std
    b = np.concatenate([b_ub_std, b_eq_std]) if (m_ub or m_eq) else np.zeros(0)
    c_full = np.concatenate([c_std, np.zeros(m_ub)])

    # Normalize RHS signs.
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    return _StandardForm(a=a, b=b, c=c_full, obj_shift=obj_shift,
                         n_orig=n, recover=recover,
                         m_ub_caller=int(b_ub.shape[0]),
                         m_bound=int(finite_ub.size), neg=neg)


def _simplex_core(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                  basis: np.ndarray, max_iter: int) -> tuple[str, np.ndarray, int]:
    """Run primal simplex iterations on tableau data.

    ``a`` is modified in place and must already be in canonical form with the
    given ``basis`` (identity columns on basis variables).  Returns
    ``(status, x_basic_values_by_row, iterations)`` with status in
    {"optimal", "unbounded", "iteration_limit"}.
    """
    m, ncols = a.shape
    iters = 0
    bland_after = max(200, 20 * (m + ncols))
    while iters < max_iter:
        iters += 1
        # Reduced costs: z_j - c_j with current basis.
        cb = c[basis]
        # y = cb solves y B = cb; since tableau is canonical, B is identity:
        # reduced = c - cb @ a.
        reduced = c - cb @ a
        reduced[basis] = 0.0
        if iters <= bland_after:
            enter = int(np.argmin(reduced))
            if reduced[enter] >= -_OPT_TOL:
                return "optimal", b.copy(), iters
        else:
            neg = np.nonzero(reduced < -_OPT_TOL)[0]
            if neg.size == 0:
                return "optimal", b.copy(), iters
            enter = int(neg[0])  # Bland: lowest index

        col = a[:, enter]
        positive = col > _PIVOT_TOL
        if not positive.any():
            return "unbounded", b.copy(), iters
        ratios = np.full(m, np.inf)
        ratios[positive] = b[positive] / col[positive]
        if iters <= bland_after:
            leave_row = int(np.argmin(ratios))
        else:
            # Bland: among min-ratio rows pick the one whose basic variable
            # has the lowest index.
            min_ratio = ratios.min()
            candidates = np.nonzero(np.isclose(ratios, min_ratio, atol=1e-12))[0]
            leave_row = int(candidates[np.argmin(basis[candidates])])

        # Pivot.
        pivot = a[leave_row, enter]
        a[leave_row] /= pivot
        b[leave_row] /= pivot
        for r in range(m):
            if r != leave_row and abs(a[r, enter]) > _PIVOT_TOL:
                factor = a[r, enter]
                a[r] -= factor * a[leave_row]
                b[r] -= factor * b[leave_row]
        b[b < 0] = np.where(b[b < 0] > -_FEAS_TOL, 0.0, b[b < 0])
        basis[leave_row] = enter
    return "iteration_limit", b.copy(), iters


def solve_lp(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None,
             lb=None, ub=None, max_iter: int = 50_000) -> LPResult:
    """Solve ``min c@x  s.t.  a_ub@x <= b_ub, a_eq@x == b_eq, lb <= x <= ub``.

    Arrays may be ``None``/empty.  ``lb`` defaults to 0, ``ub`` to +inf.
    """
    with obs.span("solver.lp"):
        result = _solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub, max_iter)
    obs.count("solver.lp.solves")
    return result


def _solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub, max_iter: int) -> LPResult:
    c = np.atleast_1d(np.asarray(c, dtype=float))
    n = c.shape[0]
    a_ub = np.zeros((0, n)) if a_ub is None else np.atleast_2d(np.asarray(a_ub, float))
    b_ub = np.zeros(0) if b_ub is None else np.atleast_1d(np.asarray(b_ub, float))
    a_eq = np.zeros((0, n)) if a_eq is None else np.atleast_2d(np.asarray(a_eq, float))
    b_eq = np.zeros(0) if b_eq is None else np.atleast_1d(np.asarray(b_eq, float))
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.full(n, np.inf) if ub is None else np.asarray(ub, dtype=float)
    if a_ub.shape[0] != b_ub.shape[0] or a_eq.shape[0] != b_eq.shape[0]:
        raise SolverError("constraint matrix / rhs shape mismatch")
    if np.any(lb > ub + _FEAS_TOL):
        return LPResult(SolveStatus.INFEASIBLE, None, np.inf)

    sf = _to_standard_form(c, a_ub, b_ub, a_eq, b_eq, lb, ub)
    m, n_std = sf.a.shape
    if m == 0:
        # Unconstrained over the nonnegative orthant.
        x_std = np.zeros(n_std)
        if np.any(sf.c < -_OPT_TOL):
            return LPResult(SolveStatus.UNBOUNDED, None, -np.inf)
        x = _recover(sf, x_std, n)
        return LPResult(SolveStatus.OPTIMAL, x, float(c @ x),
                        duals=np.zeros(0), reduced_costs=c.copy())

    # Phase 1: artificial variables on every row (simple and robust).
    a1 = np.hstack([sf.a, np.eye(m)])
    b1 = sf.b.copy()
    c1 = np.concatenate([np.zeros(n_std), np.ones(m)])
    basis = np.arange(n_std, n_std + m)
    status, bvals, it1 = _simplex_core(a1, b1, c1, basis, max_iter)
    if status == "iteration_limit":
        raise SolverError("phase-1 simplex iteration limit reached")
    phase1_obj = float(np.sum(bvals[np.nonzero(basis >= n_std)[0]]))
    if phase1_obj > 1e-6:
        return LPResult(SolveStatus.INFEASIBLE, None, np.inf, it1)

    # Drive any artificial variables remaining in the basis out (or confirm
    # their rows are redundant).
    keep_rows = np.ones(m, dtype=bool)
    for row in range(m):
        if basis[row] >= n_std:
            pivot_col = -1
            for j in range(n_std):
                if abs(a1[row, j]) > 1e-7:
                    pivot_col = j
                    break
            if pivot_col < 0:
                keep_rows[row] = False  # redundant row
                continue
            pivot = a1[row, pivot_col]
            a1[row] /= pivot
            b1[row] /= pivot
            for r in range(m):
                if r != row and abs(a1[r, pivot_col]) > _PIVOT_TOL:
                    factor = a1[r, pivot_col]
                    a1[r] -= factor * a1[row]
                    b1[r] -= factor * b1[row]
            basis[row] = pivot_col

    a2 = a1[keep_rows][:, :n_std].copy()
    b2 = b1[keep_rows].copy()
    basis2 = basis[keep_rows].copy()
    c2 = sf.c.copy()
    status, bvals, it2 = _simplex_core(a2, b2, c2, basis2, max_iter)
    if status == "iteration_limit":
        raise SolverError("phase-2 simplex iteration limit reached")
    if status == "unbounded":
        return LPResult(SolveStatus.UNBOUNDED, None, -np.inf, it1 + it2)

    x_std = np.zeros(n_std)
    x_std[basis2] = bvals
    x = _recover(sf, x_std, n)
    obj = float(c @ x)
    duals, reduced = _recover_duals(sf, keep_rows, basis2, c, a_ub, a_eq)
    return LPResult(SolveStatus.OPTIMAL, x, obj, it1 + it2,
                    duals=duals, reduced_costs=reduced)


def _recover_duals(sf: _StandardForm, keep_rows: np.ndarray,
                   basis2: np.ndarray, c: np.ndarray, a_ub: np.ndarray,
                   a_eq: np.ndarray) -> tuple:
    """Simplex multipliers for the caller's rows from the phase-2 basis.

    ``sf.a`` is never touched by the pivoting (phase 1 hstacks a copy), so
    the final basis columns read off it give the true basis matrix ``B``;
    ``B^T y = c_B`` then yields the multipliers of the kept, sign-normalized
    rows.  Rows dropped as redundant take dual 0 (always valid for a
    redundant row), the sign normalization is undone, and the finite-upper-
    bound rows are skipped: their multipliers fold into the caller-space
    reduced costs ``c - [a_ub; a_eq]^T y`` automatically, giving the same
    bounded-variable convention the revised engine reports (a variable
    nonbasic at its upper bound prices ``<= 0``).  Returns ``(None, None)``
    when the basis matrix cannot be solved.
    """
    m = sf.a.shape[0]
    try:
        y_norm = np.zeros(m)
        if m:
            bmat = sf.a[keep_rows][:, basis2]
            y_norm[keep_rows] = np.linalg.solve(bmat.T, sf.c[basis2])
        y_rows = np.where(sf.neg, -y_norm, y_norm)
    except np.linalg.LinAlgError:
        return None, None
    m_ub_full = sf.m_ub_caller + sf.m_bound
    y = np.concatenate([y_rows[:sf.m_ub_caller], y_rows[m_ub_full:]])
    reduced = c.copy()
    if a_ub.size:
        reduced -= a_ub.T @ y_rows[:sf.m_ub_caller]
    if a_eq.size:
        reduced -= a_eq.T @ y_rows[m_ub_full:]
    return y, reduced


def _recover(sf: _StandardForm, x_std: np.ndarray, n: int) -> np.ndarray:
    """Map a standard-form point back to original variable space."""
    x = np.zeros(n)
    for j, spec in enumerate(sf.recover):
        if spec[0] == "shift":
            _, col, offset = spec
            x[j] = x_std[col] + offset
        else:
            _, pos, negc = spec
            x[j] = x_std[pos] - x_std[negc]
    return x
