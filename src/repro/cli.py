"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``
    Regenerate paper tables/figures (all or a subset) into ``results/``.
``run``
    Run one experiment (scheduler x workload x parameters) and print the
    paper's four metrics; optionally dump an execution trace.
``workload``
    Generate a workload and save it as JSON for auditing or replay.
``solve``
    Parse an STRL expression file, compile it against a synthetic cluster
    (Algorithm 1), solve the MILP, and print the chosen placements.
``profile``
    Run one experiment with the observability layer (:mod:`repro.obs`)
    enabled: emits the structured JSONL event stream and prints a summary
    table of per-phase cycle timings, solver work counters (B&B nodes, LP
    iterations, presolve reductions) and the warm-start hit rate.
``bench-cycle``
    Run fixed-seed scheduling cycles through the five pipeline
    configurations (dense oracle / sparse / decomposed sequential /
    decomposed parallel / decomposed cached), write ``BENCH_cycle.json``
    with per-stage timings, component counts, worker-pool and
    component-cache statistics, and exit nonzero if the configurations
    disagree on the objective.
``serve``
    Run the long-lived asyncio scheduler service (:mod:`repro.service`)
    with its HTTP/JSON API: clients submit/cancel jobs and post cluster
    events while a timer drives scheduling cycles; ``POST /drain``
    stops it gracefully.  ``--smoke`` runs a self-contained end-to-end
    check over real sockets instead (used by CI).
``fuzz``
    Differential fuzzing: generate seeded random cluster/workload
    instances, solve each under every solver configuration (pure dense /
    sparse / decomposed / parallel / cached, plus the scipy mirrors when
    available), and assert the :mod:`repro.verify` oracles accept every
    result and all objectives agree.  Failures shrink to a JSON seed
    file replayable with ``--replay``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.compiler import StrlCompiler
from repro.errors import ReproError
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.runner import (SCHEDULER_NAMES, ClusterSpec, RunSpec,
                                      run_experiment)
from repro.sim.trace import ExecutionTrace
from repro.solver.backend import make_backend
from repro.strl.parser import parse as parse_strl
from repro.workloads.compositions import COMPOSITIONS
from repro.workloads.gridmix import GridmixConfig, generate_workload
from repro.workloads.serialization import save_workload_file


def _cluster_spec(text: str) -> ClusterSpec:
    """Parse ``racks x nodes[, gpu_racks]`` e.g. ``8x8`` or ``4x8:2``."""
    gpu = 0
    if ":" in text:
        text, gpu_text = text.split(":", 1)
        gpu = int(gpu_text)
    try:
        racks, per = (int(p) for p in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected RACKSxNODES[:GPU_RACKS], got {text!r}") from None
    return ClusterSpec(racks=racks, nodes_per_rack=per, gpu_racks=gpu)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TetriSched (EuroSys'16) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument("ids", nargs="*", default=[],
                       help=f"subset of {sorted(ALL_FIGURES)} (default all)")
    p_fig.add_argument("--full", action="store_true",
                       help="larger workloads + seed averaging")
    p_fig.add_argument("--out", default="results", help="output directory")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("--scheduler", default="TetriSched",
                       choices=SCHEDULER_NAMES)
    p_run.add_argument("--workload", default="GR MIX",
                       choices=sorted(COMPOSITIONS))
    p_run.add_argument("--cluster", type=_cluster_spec, default="8x8",
                       help="RACKSxNODES[:GPU_RACKS], e.g. 4x8:2")
    p_run.add_argument("--jobs", type=int, default=48)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--error", type=float, default=0.0,
                       help="estimate error fraction, e.g. -0.5")
    p_run.add_argument("--util", type=float, default=1.3,
                       help="target offered load (fraction of capacity)")
    p_run.add_argument("--plan-ahead", type=float, default=96.0)
    p_run.add_argument("--quantum", type=float, default=10.0)
    p_run.add_argument("--backend", default="auto")
    p_run.add_argument("--trace", default=None,
                       help="write a JSONL execution trace here")

    p_wl = sub.add_parser("workload", help="generate + save a workload")
    p_wl.add_argument("--composition", default="GR MIX",
                      choices=sorted(COMPOSITIONS))
    p_wl.add_argument("--cluster", type=_cluster_spec, default="8x8")
    p_wl.add_argument("--jobs", type=int, default=48)
    p_wl.add_argument("--seed", type=int, default=0)
    p_wl.add_argument("--error", type=float, default=0.0)
    p_wl.add_argument("--util", type=float, default=1.3)
    p_wl.add_argument("--out", required=True, help="output JSON path")

    p_solve = sub.add_parser("solve", help="compile+solve one STRL file")
    p_solve.add_argument("file", help="path to an STRL s-expression file")
    p_solve.add_argument("--cluster", type=_cluster_spec, default="2x2:1")
    p_solve.add_argument("--quantum", type=float, default=10.0)
    p_solve.add_argument("--backend", default="auto")

    p_prof = sub.add_parser(
        "profile", help="run one experiment with observability enabled")
    p_prof.add_argument("--scheduler", default="TetriSched",
                        choices=SCHEDULER_NAMES)
    p_prof.add_argument("--workload", default="GS HET",
                        choices=sorted(COMPOSITIONS))
    p_prof.add_argument("--cluster", type=_cluster_spec, default="2x4:1",
                        help="RACKSxNODES[:GPU_RACKS], e.g. 4x8:2")
    p_prof.add_argument("--jobs", type=int, default=12)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--util", type=float, default=1.3)
    p_prof.add_argument("--plan-ahead", type=float, default=60.0)
    p_prof.add_argument("--quantum", type=float, default=10.0)
    p_prof.add_argument("--backend", default="auto")
    p_prof.add_argument("--delta-mode", default="on",
                        choices=["off", "on", "verify"],
                        help="cross-cycle delta compilation (surfaces the "
                             "fragment-reuse and patch-size counters)")
    p_prof.add_argument("--out", default="profile.jsonl",
                        help="JSONL event-stream output path")

    p_bench = sub.add_parser(
        "bench-cycle",
        help="benchmark dense/sparse/decomposed/parallel/cached pipelines")
    p_bench.add_argument("--backend", default="pure")
    p_bench.add_argument("--plan-ahead", type=float, default=96.0)
    p_bench.add_argument("--racks", type=int, default=4)
    p_bench.add_argument("--nodes-per-rack", type=int, default=4)
    p_bench.add_argument("--jobs-per-rack", type=int, default=2)
    p_bench.add_argument("--cycles", type=int, default=2)
    p_bench.add_argument("--quantum", type=float, default=8.0)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--workers", type=int, default=2,
                         help="worker processes for the parallel mode")
    p_bench.add_argument("--out", default="results/BENCH_cycle.json",
                         help="JSON report output path")
    p_bench.add_argument("--shard-sizes", default=None,
                         help="comma-separated cluster sizes for the "
                              "sharded trace-replay bench (e.g. 256 or "
                              "256,512,1024); adds a 'shard' section with "
                              "per-size speedup/quality verdicts and the "
                              "shard_count=1 bit-equality check")
    p_bench.add_argument("--shard-cycles", type=int, default=3,
                         help="cycles per sharded trace replay")
    p_bench.add_argument("--shard-time-limit", type=float, default=2.0,
                         help="per-solve time limit (seconds) for the "
                              "monolithic baseline and the domain solves")

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived scheduler service with the HTTP/JSON API")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--cluster", type=_cluster_spec, default="2x4:1",
                         help="RACKSxNODES[:GPU_RACKS], e.g. 4x8:2")
    p_serve.add_argument("--quantum", type=float, default=10.0)
    p_serve.add_argument("--plan-ahead", type=float, default=60.0)
    p_serve.add_argument("--cycle", type=float, default=None,
                         help="scheduling-cycle period in wall seconds "
                              "(default: one quantum)")
    p_serve.add_argument("--backend", default="pure")
    p_serve.add_argument("--delta-mode", default="on",
                         choices=["off", "on", "verify"],
                         help="cross-cycle delta compilation mode")
    p_serve.add_argument("--shard-mode", default="off",
                         choices=["off", "racks", "auto"],
                         help="sharded multi-domain scheduling mode")
    p_serve.add_argument("--shard-count", type=int, default=0,
                         help="scheduling domains (0 = one per 4 racks)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="RNG seed (domain tie-breaks, dispatch order)")
    p_serve.add_argument("--stats", default=None,
                         help="write final drain stats JSON here")
    p_serve.add_argument("--smoke", action="store_true",
                         help="self-test: drive the running server over "
                              "HTTP (submit, cycle, cancel, drain) and "
                              "exit nonzero on any failure")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz the five-way solver stack against the "
             "verification oracles")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="hypothesis seed (same seed, same instances)")
    p_fuzz.add_argument("--iterations", type=int, default=25,
                        help="number of generated instances")
    p_fuzz.add_argument("--time-budget", type=float, default=None,
                        help="soft wall-clock cap in seconds; remaining "
                             "draws pass trivially once exceeded")
    p_fuzz.add_argument("--replay", default=None, metavar="SEED_FILE",
                        help="re-run one dumped instance instead of fuzzing "
                             "(does not require hypothesis)")
    p_fuzz.add_argument("--out", default="fuzz-failure.json",
                        help="where to write the shrunk failing instance")
    return parser


# -- command implementations ---------------------------------------------------

def _cmd_figures(args) -> int:
    ids = args.ids or list(ALL_FIGURES)
    unknown = [i for i in ids if i not in ALL_FIGURES]
    if unknown:
        print(f"unknown ids: {unknown}", file=sys.stderr)
        return 2
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    scale = "full" if args.full else "bench"
    for figure_id in ids:
        fn = ALL_FIGURES[figure_id]
        t0 = time.monotonic()
        result = fn(scale) if figure_id.startswith("fig") else fn()
        (out_dir / f"{figure_id}.txt").write_text(result.text + "\n")
        print(result.text)
        print(f"[{figure_id}: {time.monotonic() - t0:.1f}s]\n")
    return 0


def _cmd_run(args) -> int:
    spec = RunSpec(scheduler=args.scheduler,
                   composition=COMPOSITIONS[args.workload],
                   cluster=args.cluster, num_jobs=args.jobs, seed=args.seed,
                   estimate_error=args.error, target_utilization=args.util,
                   plan_ahead_s=args.plan_ahead, quantum_s=args.quantum,
                   cycle_s=args.quantum, backend=args.backend)
    if args.trace:
        # Re-run the pipeline by hand so we can attach a trace.
        from repro.experiments.runner import build_scheduler
        from repro.reservation.rayon import RayonReservationSystem
        from repro.sim.engine import Simulation
        cluster = spec.cluster.build()
        workload = generate_workload(spec.composition, cluster, GridmixConfig(
            num_jobs=spec.num_jobs, target_utilization=spec.target_utilization,
            estimate_error=spec.estimate_error, seed=spec.seed))
        rayon = RayonReservationSystem(len(cluster), step_s=spec.cycle_s)
        scheduler = build_scheduler(spec, cluster, rayon)
        trace = ExecutionTrace()
        result = Simulation(cluster, scheduler, workload, rayon=rayon,
                            trace=trace).run()
        pathlib.Path(args.trace).write_text(trace.to_jsonl() + "\n")
        print(f"[trace -> {args.trace}]")
        samples = trace.utilization_timeline(len(cluster),
                                             step_s=spec.cycle_s)
        if samples:
            from repro.experiments.ascii_chart import render_series
            xs = [t for t, _ in samples]
            ys = [100.0 * u for _, u in samples]
            print(render_series(
                xs, {"utilization": ys},
                title=f"Cluster utilization (mean "
                      f"{100 * trace.mean_utilization(len(cluster)):.0f}%)",
                y_label="busy nodes (%)"))
    else:
        result = run_experiment(spec)
    print(result)
    m = result.metrics
    print(f"  jobs: {m.jobs_total} total, {m.jobs_slo} SLO "
          f"({m.jobs_accepted} accepted), {m.jobs_best_effort} best-effort")
    print(f"  preferred placements: {m.preferred_placements_pct:.1f}%")
    return 0


def _cmd_workload(args) -> int:
    cluster = args.cluster.build()
    jobs = generate_workload(COMPOSITIONS[args.composition], cluster,
                             GridmixConfig(num_jobs=args.jobs, seed=args.seed,
                                           estimate_error=args.error,
                                           target_utilization=args.util))
    save_workload_file(jobs, args.out)
    slo = sum(1 for j in jobs if j.is_slo)
    print(f"wrote {len(jobs)} jobs ({slo} SLO) to {args.out}")
    return 0


def _cmd_profile(args) -> int:
    from repro import obs
    from repro.experiments.report import format_profile
    spec = RunSpec(scheduler=args.scheduler,
                   composition=COMPOSITIONS[args.workload],
                   cluster=args.cluster, num_jobs=args.jobs, seed=args.seed,
                   target_utilization=args.util,
                   plan_ahead_s=args.plan_ahead, quantum_s=args.quantum,
                   cycle_s=args.quantum, backend=args.backend,
                   delta_mode=args.delta_mode)
    sink = obs.JsonlSink()
    obs.set_enabled(True, sink=sink)
    try:
        result = run_experiment(spec)
    finally:
        obs.set_enabled(False)
    out = pathlib.Path(args.out)
    if out.parent != pathlib.Path():
        out.parent.mkdir(parents=True, exist_ok=True)
    sink.dump(out)
    print(f"[{len(sink)} events -> {out}]")
    print(result)
    print()
    print(format_profile(
        result.profile,
        title=f"Profile: {args.scheduler} / {args.workload} "
              f"({spec.cluster.size} nodes, {args.jobs} jobs)"))
    return 0


def _cmd_bench_cycle(args) -> int:
    import json

    from repro.experiments.bench import (bench_cycle, bench_shard,
                                         format_bench, format_bench_elastic,
                                         format_bench_shard)
    report = bench_cycle(
        backend=args.backend, plan_ahead_s=args.plan_ahead, racks=args.racks,
        nodes_per_rack=args.nodes_per_rack, jobs_per_rack=args.jobs_per_rack,
        cycles=args.cycles, quantum_s=args.quantum, seed=args.seed,
        workers=args.workers)
    if args.shard_sizes:
        sizes = tuple(int(s) for s in args.shard_sizes.split(","))
        report["shard"] = bench_shard(
            sizes=sizes, backend=args.backend, seed=args.seed,
            workers=args.workers, cycles=args.shard_cycles,
            time_limit=args.shard_time_limit)
    out = pathlib.Path(args.out)
    if out.parent != pathlib.Path():
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(format_bench(report))
    print(format_bench_elastic(report["elastic"]))
    if "shard" in report:
        print(format_bench_shard(report["shard"]))
    print(f"[report -> {out}]")
    if not report["objective_match"]:
        print("FAIL: pipeline configurations disagree on the objective",
              file=sys.stderr)
        return 1
    delta = report.get("delta", {})
    if not (delta.get("bit_equal") and delta.get("verify_ok")
            and delta.get("churn_below_20pct")):
        print("FAIL: delta compilation diverged from the full rebuild",
              file=sys.stderr)
        return 1
    if not delta.get("speedup_ok"):
        # Timing, not correctness: report loudly but do not hard-fail a
        # loaded CI box on a wall-clock ratio.
        print(f"WARN: delta compile+build speedup "
              f"{delta.get('speedup_compile_build', 0.0):.2f}x below the "
              f"3x target", file=sys.stderr)
    elastic = report.get("elastic", {})
    if not elastic.get("ok"):
        print("FAIL: elastic width re-planning did not beat rigid "
              "max-width gangs on utilization and value", file=sys.stderr)
        return 1
    shard = report.get("shard")
    if shard is not None:
        # Correctness verdicts hard-fail; the >=2x speedup is wall-clock
        # and only warns (same policy as the delta speedup above).
        if not shard["shard1_bit_equal"]:
            print("FAIL: sharded pipeline at shard_count=1 diverged from "
                  "the monolithic schedule", file=sys.stderr)
            return 1
        if not all(e["quality_ok"] for e in shard["sizes"]):
            print("FAIL: sharded objective fell below the declared "
                  "quality bound", file=sys.stderr)
            return 1
        if not all(e["speedup_ok"] for e in shard["sizes"]):
            print("WARN: sharded cycle-time speedup below the 2x target",
                  file=sys.stderr)
    return 0


def _serve_smoke(service, host: str, cycle_s: float) -> int:
    """End-to-end self-test of a live server over real HTTP sockets.

    The server (and its cycle timer) runs on a background event-loop
    thread; this thread plays the external client with blocking urllib
    calls — the same split a real deployment has.
    """
    import asyncio
    import json
    import threading
    import urllib.error
    import urllib.request

    from repro.service import ServiceServer

    started = threading.Event()
    box: dict[str, object] = {}

    def runner() -> None:
        async def main() -> None:
            server = ServiceServer(service, host=host, port=0,
                                   cycle_s=cycle_s)
            await server.start()
            box["port"] = server.port
            started.set()
            await server.wait_drained()
        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced to the client thread
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    if not started.wait(10.0) or "error" in box:
        print(f"smoke FAIL: server did not start ({box.get('error')})",
              file=sys.stderr)
        return 1
    port = box["port"]

    def call(method: str, path: str, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(f"http://{host}:{port}{path}",
                                     data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def check(ok: bool, what: str) -> None:
        if not ok:
            raise RuntimeError(f"smoke check failed: {what}")

    quantum = service.config.quantum_s
    try:
        check(call("GET", "/healthz")[1] == {"ok": True}, "healthz")
        spec = {"options": [{"k": 1, "duration_s": quantum}],
                "value": 100.0, "deadline": 100000.0}
        for i in range(3):
            status, rec = call("POST", "/jobs", dict(spec, job_id=f"smoke-{i}"))
            check(status == 201 and rec["state"] == "pending",
                  f"submit smoke-{i}")
        call("POST", "/jobs", dict(spec, job_id="smoke-cancel"))
        status, rec = call("DELETE", "/jobs/smoke-cancel")
        check(status == 200 and rec["state"] == "cancelled", "cancel")

        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            status_payload = call("GET", "/status")[1]
            if status_payload["jobs"].get("completed", 0) >= 3:
                break
            time.sleep(0.2)
        else:
            raise RuntimeError(
                f"smoke timeout: jobs never completed "
                f"(status {status_payload})")
        check(status_payload["cycles_run"] > 0, "cycles ran")
        if service.config.delta_mode != "off":
            check(status_payload["delta"]["cycles"] > 0, "delta engaged")

        node = sorted(service.cluster.node_names)[0]
        check(call("POST", "/cluster/events",
                   {"action": "drain", "node": node})[0] == 200, "drain node")
        check(call("POST", "/cluster/events",
                   {"action": "restore", "node": node})[0] == 200,
              "restore node")

        status, final = call("POST", "/drain")
        check(status == 200 and final["clean"] is True, "graceful drain")
        check(final["status"]["cycles_run"] > 0,
              "final stats carry cycle count")
    except (RuntimeError, OSError) as exc:
        print(f"smoke FAIL: {exc}", file=sys.stderr)
        return 1
    thread.join(10.0)
    print(f"smoke ok: jobs {final['status']['jobs']} over "
          f"{final['status']['cycles_run']} cycles, clean drain")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.core.scheduler import TetriSchedConfig
    from repro.service import SchedulerService, serve

    cluster = args.cluster.build()
    cfg = TetriSchedConfig(
        quantum_s=args.quantum, cycle_s=args.cycle or args.quantum,
        plan_ahead_s=args.plan_ahead, backend=args.backend,
        delta_mode=args.delta_mode, shard_mode=args.shard_mode,
        shard_count=args.shard_count, seed=args.seed)
    stats = pathlib.Path(args.stats) if args.stats else None
    service = SchedulerService(cluster, cfg, stats_path=stats)
    if args.smoke:
        return _serve_smoke(service, args.host,
                            cycle_s=args.cycle or 0.25)

    async def main() -> None:
        server = await serve(service, host=args.host, port=args.port,
                             cycle_s=args.cycle)
        print(f"[service on http://{args.host}:{server.port} — "
              f"{len(cluster)} nodes, delta_mode={cfg.delta_mode}; "
              f"POST /drain to stop]")
        await server.wait_drained()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        final = service.drain()
        print(f"[interrupted: drained {final['jobs']} "
              f"after {final['cycles']} cycles]")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.verify import fuzz
    if args.replay is not None:
        return fuzz.replay_file(args.replay)
    return fuzz.run_fuzz(seed=args.seed, iterations=args.iterations,
                         seed_file=args.out, time_budget=args.time_budget)


def _cmd_solve(args) -> int:
    text = pathlib.Path(args.file).read_text()
    expr = parse_strl(text)
    cluster = args.cluster.build()
    missing = expr.referenced_nodes() - cluster.node_names
    if missing:
        print(f"expression references unknown nodes: {sorted(missing)[:5]} "
              f"(cluster has {sorted(cluster.node_names)[:5]}...)",
              file=sys.stderr)
        return 2
    state = ClusterState(cluster.node_names)
    compiled = StrlCompiler(state, quantum_s=args.quantum).compile(
        [("request", expr)])
    res = make_backend(args.backend).solve(compiled.model)
    print(f"MILP: {compiled.stats}")
    print(f"status: {res.status.value}, objective: {res.objective:.3f}, "
          f"nodes: {res.nodes}, time: {res.solve_time * 1000:.1f}ms")
    if res.status.has_solution:
        for pl in compiled.decode(res.x):
            nodes = []
            for pid, count in sorted(pl.node_counts.items()):
                members = sorted(compiled.partitioning.partitions[pid].nodes)
                nodes.append(f"{count} of {members}")
            print(f"  placement: start={pl.start}q dur={pl.duration}q "
                  f"value={pl.value:g} -> {'; '.join(nodes)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "workload":
            return _cmd_workload(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "bench-cycle":
            return _cmd_bench_cycle(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
