"""Workload generation: SWIM-derived classes, Table 1 compositions, gridmix."""

from repro.workloads.compositions import (COMPOSITIONS, GR_MIX, GR_SLO,
                                          GS_HET, GS_MIX, TABLE1,
                                          WorkloadComposition)
from repro.workloads.distributions import (BoundedLogNormal, Rng, UniformFloat,
                                           UniformInt)
from repro.workloads.gridmix import (JOB_TYPES, GridmixConfig, generate_workload,
                                     offered_load)
from repro.workloads.swim import (FB2009_2, GS_SYNTHETIC, JOB_CLASSES,
                                  YAHOO_1, JobClassSpec)

__all__ = [
    "BoundedLogNormal", "COMPOSITIONS", "FB2009_2", "GR_MIX", "GR_SLO",
    "GS_HET", "GS_MIX", "GS_SYNTHETIC", "GridmixConfig", "JOB_CLASSES",
    "JOB_TYPES", "JobClassSpec", "Rng", "TABLE1", "UniformFloat",
    "UniformInt", "WorkloadComposition", "YAHOO_1", "generate_workload",
    "offered_load",
]
