"""Cross-cycle delta compilation: bit-equality against full recompiles."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.core.allocation import PlanAccumulator
from repro.core.delta import (CycleDelta, DeltaCompiler, DeltaDivergence,
                              assert_models_equal)
from repro.core.compiler import StrlCompiler
from repro.errors import SchedulerError
from repro.strl import SpaceOption
from repro.strl.ast import Max, NCk
from repro.valuefn import StepValue

RACK0 = frozenset(f"r0n{i}" for i in range(4))
RACK1 = frozenset(f"r1n{i}" for i in range(4))
ALL = RACK0 | RACK1


def state():
    return ClusterState(ALL)


def job_expr(k, value, rack=RACK0, start_max=2, duration=2):
    return Max(*[NCk(nodes, k=k, start=s, duration=duration, value=v)
                 for nodes, v in ((rack, value), (ALL, value * 0.5))
                 for s in range(start_max)])


class TestDeltaCompiler:
    def test_first_cycle_is_full_rebuild(self):
        dc = DeltaCompiler(state(), quantum_s=10.0)
        compiled, delta = dc.compile_cycle(
            [("a", job_expr(2, 10.0))], verify=True)
        assert delta.full_rebuild and delta.reason == "first cycle"
        assert delta.added == ("a",)
        assert delta.rows_patched == compiled.model.num_constraints
        assert delta.cols_patched == compiled.model.num_variables

    def test_unchanged_batch_reuses_every_fragment(self):
        dc = DeltaCompiler(state(), quantum_s=10.0)
        batch = [("a", job_expr(2, 10.0)), ("b", job_expr(1, 8.0, RACK1))]
        dc.compile_cycle(batch, verify=True)
        compiled, delta = dc.compile_cycle(batch, verify=True)
        assert delta.clean == ("a", "b")
        assert delta.jobs_dirty == 0 and not delta.full_rebuild
        # Only the availability-carrying supply rows are rewritten.
        frag_rows = sum(f.num_constraints for f in dc._fragments.values())
        assert delta.rows_patched == compiled.model.num_constraints - frag_rows
        assert delta.cols_patched == 0

    def test_arrival_and_departure(self):
        dc = DeltaCompiler(state(), quantum_s=10.0)
        dc.compile_cycle([("a", job_expr(2, 10.0)),
                          ("b", job_expr(1, 8.0))], verify=True)
        _, delta = dc.compile_cycle([("a", job_expr(2, 10.0)),
                                     ("c", job_expr(3, 6.0))], verify=True)
        assert delta.added == ("c",)
        assert delta.removed == ("b",)
        assert delta.clean == ("a",)

    def test_changed_expression_is_dirty(self):
        dc = DeltaCompiler(state(), quantum_s=10.0)
        dc.compile_cycle([("a", job_expr(2, 10.0))], verify=True)
        _, delta = dc.compile_cycle([("a", job_expr(2, 11.0))], verify=True)
        assert delta.dirty == ("a",)
        assert not delta.full_rebuild

    def test_partitioning_change_forces_full_rebuild(self):
        dc = DeltaCompiler(state(), quantum_s=10.0)
        dc.compile_cycle([("a", job_expr(2, 10.0))], verify=True)
        novel = Max(NCk(frozenset({"r0n0", "r0n1"}), k=1, start=0,
                        duration=1, value=3.0))
        _, delta = dc.compile_cycle([("a", job_expr(2, 10.0)),
                                     ("b", novel)], verify=True)
        assert delta.full_rebuild
        assert delta.reason == "partitioning changed"

    def test_availability_change_stays_clean_and_equal(self):
        cs = state()
        dc = DeltaCompiler(cs, quantum_s=10.0)
        batch = [("a", job_expr(2, 10.0))]
        dc.compile_cycle(batch, verify=True)
        cs.start("other", frozenset({"r0n0", "r0n1"}), 0.0, 35.0)
        compiled, delta = dc.compile_cycle(batch, now=10.0, verify=True)
        assert delta.clean == ("a",)
        # Supply reflects the new occupancy even though no fragment moved.
        supply = [c for c in compiled.model.constraints
                  if c.name.startswith("supply[")]
        assert any(c.rhs < len(RACK0) for c in supply)

    def test_drained_node_stays_clean_and_equal(self):
        cs = state()
        dc = DeltaCompiler(cs, quantum_s=10.0)
        batch = [("a", job_expr(2, 10.0))]
        dc.compile_cycle(batch, verify=True)
        cs.drain("r0n0")
        _, delta = dc.compile_cycle(batch, verify=True)
        assert delta.clean == ("a",)
        cs.restore("r0n0")
        dc.compile_cycle(batch, verify=True)

    def test_empty_and_duplicate_batches_rejected(self):
        dc = DeltaCompiler(state(), quantum_s=10.0)
        with pytest.raises(SchedulerError):
            dc.compile_cycle([])
        expr = job_expr(1, 5.0)
        with pytest.raises(SchedulerError):
            dc.compile_cycle([("a", expr), ("a", expr)])

    def test_accumulator_state_never_caches(self):
        cs = state()
        acc = PlanAccumulator(cs, now=0.0, quantum_s=10.0)
        dc = DeltaCompiler(acc, quantum_s=10.0)
        _, d1 = dc.compile_cycle([("a", job_expr(2, 10.0))])
        _, d2 = dc.compile_cycle([("a", job_expr(2, 10.0))])
        assert d1.full_rebuild and d2.full_rebuild
        assert d2.reason == "interval-capped availability"
        assert not dc._fragments

    def test_matches_full_compiler_exactly(self):
        cs = state()
        dc = DeltaCompiler(cs, quantum_s=10.0)
        batch = [("a", job_expr(2, 10.0)), ("b", job_expr(1, 8.0, RACK1))]
        dc.compile_cycle(batch)
        compiled, _ = dc.compile_cycle(batch)
        reference = StrlCompiler(cs, 10.0, 0.0).compile(batch)
        assert_models_equal(compiled.model, reference.model)

    def test_assert_models_equal_detects_divergence(self):
        cs = state()
        a = StrlCompiler(cs, 10.0, 0.0).compile([("a", job_expr(2, 10.0))])
        b = StrlCompiler(cs, 10.0, 0.0).compile([("a", job_expr(2, 11.0))])
        with pytest.raises(DeltaDivergence):
            assert_models_equal(a.model, b.model)


# A small palette of jobs over shared equivalence sets; sequences of
# (batch subset, node events) exercise add/remove/dirty/clean churn.
_PALETTE = {
    "a": job_expr(2, 10.0),
    "b": job_expr(1, 8.0, RACK1),
    "c": job_expr(3, 6.0),
    "d": job_expr(1, 12.0, RACK1, start_max=3),
    "e": job_expr(2, 9.0, duration=1),
}
_VARIANT = {jid: job_expr(1, 99.0, start_max=1) for jid in _PALETTE}


@st.composite
def delta_sequences(draw):
    steps = []
    for _ in range(draw(st.integers(2, 6))):
        ids = draw(st.lists(st.sampled_from(sorted(_PALETTE)),
                            min_size=1, max_size=5, unique=True))
        mutate = draw(st.lists(st.sampled_from(sorted(_PALETTE)),
                               max_size=2, unique=True))
        event = draw(st.sampled_from(
            ["none", "drain:r0n0", "restore:r0n0", "drain:r1n3"]))
        steps.append((ids, mutate, event))
    return steps


class TestDeltaEquivalenceProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(steps=delta_sequences())
    def test_any_sequence_is_bit_equal_to_rebuild(self, steps):
        cs = state()
        dc = DeltaCompiler(cs, quantum_s=10.0)
        for ids, mutate, event in steps:
            if event != "none":
                action, node = event.split(":")
                (cs.drain if action == "drain" else cs.restore)(node)
            batch = [(jid, _VARIANT[jid] if jid in mutate else _PALETTE[jid])
                     for jid in ids]
            # verify=True runs the from-scratch recompile and raises
            # DeltaDivergence unless models are bit-identical.
            compiled, delta = dc.compile_cycle(batch, verify=True)
            assert set(delta.added) | set(delta.dirty) | set(delta.clean) \
                == set(ids)
            assert delta.jobs_dirty + delta.jobs_clean == len(ids)


def _sched(delta_mode, **kw):
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    cfg = TetriSchedConfig(quantum_s=10.0, cycle_s=10.0, plan_ahead_s=40.0,
                           backend="pure", rel_gap=1e-6,
                           delta_mode=delta_mode, **kw)
    return cluster, TetriSched(cluster, cfg)


class TestSchedulerIntegration:
    def test_invalid_mode_rejected(self):
        cluster = Cluster.build(racks=1, nodes_per_rack=2)
        with pytest.raises(SchedulerError):
            TetriSched(cluster, TetriSchedConfig(delta_mode="sometimes"))

    def test_greedy_mode_has_no_delta_compiler(self):
        _, sched = _sched("on", global_scheduling=False)
        assert sched._delta is None

    @pytest.mark.parametrize("mode", ["on", "verify"])
    def test_cycle_stats_carry_delta_counters(self, mode):
        cluster, sched = _sched(mode)
        for jid in ("a", "b"):
            sched.submit(JobRequest(
                job_id=jid,
                options=(SpaceOption(cluster.node_names, k=1,
                                     duration_s=20),),
                value_fn=StepValue(1000.0, 500.0),
                priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
                deadline=500.0))
        r1 = sched.run_cycle(0.0)
        assert r1.stats.delta_full_rebuild
        assert r1.stats.jobs_dirty == 2 and r1.stats.jobs_clean == 0
        assert r1.stats.rows_patched > 0 and r1.stats.cols_patched > 0
