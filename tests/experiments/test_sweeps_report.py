"""Tests for sweeps, report formatting, and figure drivers (tiny sizes)."""

import math

import pytest

from repro.experiments import (ClusterSpec, RunSpec, estimate_error_sweep,
                               format_sweep, format_sweep_metric, format_table,
                               plan_ahead_sweep, shape_check, table1, table2)
from repro.workloads import GR_MIX, GS_HET


def tiny_spec(composition=GR_MIX):
    return RunSpec(scheduler="TetriSched", composition=composition,
                   cluster=ClusterSpec(racks=2, nodes_per_rack=3,
                                       gpu_racks=1),
                   num_jobs=8, backend="auto", target_utilization=1.2,
                   plan_ahead_s=40.0)


class TestSweeps:
    def test_estimate_error_sweep_structure(self):
        sweep = estimate_error_sweep(tiny_spec(), ["TetriSched", "Rayon/CS"],
                                     [-20, 0, 20])
        assert sweep.x_values == [-20, 0, 20]
        for sched in ("TetriSched", "Rayon/CS"):
            series = sweep.get(sched, "slo_total_pct")
            assert len(series) == 3
            assert all(math.isnan(v) or 0 <= v <= 100 for v in series)
        assert ("TetriSched", -20) in sweep.raw

    def test_plan_ahead_sweep_structure(self):
        sweep = plan_ahead_sweep(tiny_spec(GS_HET), ["TetriSched"], [0, 40])
        assert sweep.x_values == [0, 40]
        assert len(sweep.get("TetriSched", "mean_be_latency_s")) == 2

    def test_multiple_seeds_averaged(self):
        sweep = estimate_error_sweep(tiny_spec(), ["TetriSched"], [0],
                                     seeds=[0, 1])
        assert len(sweep.raw[("TetriSched", 0)]) == 2


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "long-header"], [[1, 2.5], [33, float("nan")]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "n/a" in text

    def test_format_sweep_metric(self):
        sweep = estimate_error_sweep(tiny_spec(), ["TetriSched"], [0])
        text = format_sweep_metric(sweep, "slo_total_pct")
        assert "SLO Attainment" in text
        assert "TetriSched" in text

    def test_format_sweep_title(self):
        sweep = estimate_error_sweep(tiny_spec(), ["TetriSched"], [0])
        text = format_sweep(sweep, ["slo_total_pct"], title="Figure X")
        assert text.startswith("Figure X\n=")

    def test_shape_check(self):
        assert "[ok]" in shape_check("works", True)
        assert "[DIVERGES]" in shape_check("broken", False)


class TestTables:
    def test_table1_text(self):
        text = table1().text
        assert "GR SLO" in text and "GS HET" in text
        assert "100" in text

    def test_table2_text(self):
        text = table2().text
        assert "TetriSched-NP" in text
        # NP row disables only plan-ahead.
        np_row = [l for l in text.splitlines() if "TetriSched-NP" in l][0]
        assert np_row.count("off") == 1
