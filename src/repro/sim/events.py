"""Event queue for the discrete-event simulator.

A tiny, deterministic priority queue: events fire in (time, sequence) order,
so same-time events fire in insertion order.  Events can be cancelled in
place (used when the CapacityScheduler preempts a running job and its
completion event must not fire).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


class EventKind(enum.Enum):
    JOB_ARRIVAL = "arrival"
    JOB_COMPLETION = "completion"
    JOB_FAILURE = "failure"
    SCHEDULER_CYCLE = "cycle"


#: Same-timestamp ordering: arrivals and completions are visible to a cycle
#: firing at the same instant (freed nodes / new jobs are schedulable now).
_KIND_PRIORITY = {
    EventKind.JOB_ARRIVAL: 0,
    EventKind.JOB_COMPLETION: 1,
    EventKind.JOB_FAILURE: 1,  # frees nodes like a completion
    EventKind.SCHEDULER_CYCLE: 2,
}


@dataclass(order=True)
class Event:
    """A scheduled simulator event (ordered by time, kind priority, seq)."""

    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Min-heap of events with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        ev = Event(time, _KIND_PRIORITY[kind], next(self._counter), kind,
                   payload)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def pop(self) -> Event | None:
        """Next non-cancelled event, or ``None`` when the queue is drained."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
