"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import _cluster_spec, build_parser, main


class TestArgumentParsing:
    def test_cluster_spec_parsing(self):
        spec = _cluster_spec("4x8:2")
        assert (spec.racks, spec.nodes_per_rack, spec.gpu_racks) == (4, 8, 2)
        spec = _cluster_spec("8x8")
        assert spec.gpu_racks == 0

    def test_bad_cluster_spec(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _cluster_spec("banana")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "Nope"])


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        rc = main(["run", "--scheduler", "TetriSched", "--workload",
                   "GR MIX", "--jobs", "8", "--cluster", "2x4",
                   "--plan-ahead", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLO total" in out
        assert "jobs: 8 total" in out

    def test_run_with_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        rc = main(["run", "--jobs", "6", "--cluster", "2x3",
                   "--plan-ahead", "40", "--trace", str(trace_path)])
        assert rc == 0
        assert trace_path.exists()
        assert '"kind"' in trace_path.read_text()
        out = capsys.readouterr().out
        assert "Cluster utilization" in out
        assert "busy nodes (%)" in out

    def test_run_cs_stack(self, capsys):
        rc = main(["run", "--scheduler", "Rayon/CS", "--jobs", "6",
                   "--cluster", "2x3"])
        assert rc == 0
        assert "Rayon/CS" in capsys.readouterr().out


class TestWorkloadCommand:
    def test_workload_saved(self, tmp_path, capsys):
        out = tmp_path / "wl.json"
        rc = main(["workload", "--composition", "GS HET", "--cluster",
                   "2x4:1", "--jobs", "10", "--out", str(out)])
        assert rc == 0
        assert "wrote 10 jobs" in capsys.readouterr().out
        from repro.workloads.serialization import load_workload_file
        assert len(load_workload_file(out)) == 10


class TestSolveCommand:
    STRL = ("(max (nCk (set r0n0 r0n1) :k 2 :start 0 :dur 2 :v 4)\n"
            "     (nCk (set r0n0 r0n1 r1n0 r1n1) :k 2 :start 0 :dur 3 :v 3))")

    def test_solve_prints_placement(self, tmp_path, capsys):
        f = tmp_path / "req.strl"
        f.write_text(self.STRL)
        rc = main(["solve", str(f), "--cluster", "2x2:1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "objective: 4.000" in out
        assert "placement" in out

    def test_solve_unknown_nodes(self, tmp_path, capsys):
        f = tmp_path / "req.strl"
        f.write_text("(nCk (set mars) :k 1 :start 0 :dur 1 :v 1)")
        rc = main(["solve", str(f), "--cluster", "1x2"])
        assert rc == 2
        assert "unknown nodes" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_emits_schema_valid_jsonl_and_summary(self, tmp_path,
                                                          capsys):
        out = tmp_path / "profile.jsonl"
        rc = main(["profile", "--workload", "GS HET", "--cluster", "2x4:1",
                   "--jobs", "8", "--plan-ahead", "40", "--out", str(out)])
        assert rc == 0
        # Every emitted event must satisfy the envelope schema.
        from repro.obs import iter_kinds, read_jsonl_file
        records = read_jsonl_file(out)  # validates each record
        kinds = iter_kinds(records)
        assert kinds.get("sim.cycle", 0) > 0
        assert kinds.get("solver.solve", 0) > 0
        # Summary table: solver work counters + phase timings + hit rate.
        text = capsys.readouterr().out
        assert f"events -> {out}" in text
        assert "MILP solves" in text
        assert "Phase timings" in text
        assert "cycle/solve" in text
        assert "warm-start hit rate" in text

    def test_profile_leaves_observability_disabled(self, tmp_path):
        from repro.obs import get_registry
        main(["profile", "--workload", "GS HET", "--cluster", "1x4",
              "--jobs", "4", "--plan-ahead", "40",
              "--out", str(tmp_path / "p.jsonl")])
        assert get_registry().enabled is False


class TestFiguresCommand:
    def test_tables_only(self, tmp_path, capsys):
        rc = main(["figures", "table1", "table2", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table2.txt").exists()

    def test_unknown_id(self, capsys):
        rc = main(["figures", "fig99"])
        assert rc == 2
        assert "unknown ids" in capsys.readouterr().err
